//! A scripted terminal session (paper §6.1/§6.2): login with an echo-off
//! password prompt, pipes between applications, redirection, background
//! jobs, and `ps` listing applications across the VM.
//!
//! ```sh
//! cargo run --example shell_pipeline
//! ```

use jmp_core::MpRuntime;
use jmp_security::Policy;
use jmp_shell::spawn_login_session;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let policy_text = format!(
        "{}\n{}",
        jmp_shell::default_policy_text(),
        r#"
        grant user "alice" { permission file "/home/alice/-" "read,write,delete";
                             permission file "/home/alice" "read"; };
        "#
    );
    let rt = MpRuntime::builder()
        .policy(Policy::parse(&policy_text)?)
        .user("alice", "sesame")
        .build()?;
    jmp_shell::install(&rt)?;

    let (terminal, session) = spawn_login_session(&rt)?;
    for line in [
        "alice",
        "sesame",
        "whoami",
        "echo alpha > words.txt",
        "echo beta-match >> words.txt",
        "echo gamma-match >> words.txt",
        "cat words.txt | grep match | wc",
        "sleep 150 &",
        "jobs",
        "ps",
        "ls -l",
        "history",
        "quit",
    ] {
        terminal.type_line(line)?;
    }
    terminal.type_eof();
    session.wait_for()?;

    println!("{}", terminal.screen_text());
    assert!(terminal.screen_text().contains("\n2 2 "));
    rt.shutdown();
    Ok(())
}
