//! Mobile code under the sandbox (paper §6.3): publish applets as `jbc`
//! class images on the simulated network, run them through the unprivileged
//! Appletviewer inside a terminal session, and watch the sandbox decide.
//!
//! ```sh
//! cargo run --example applet_sandbox
//! ```

use jmp_core::MpRuntime;
use jmp_security::Policy;
use jmp_shell::{publish_applet, spawn_login_session};

const GREETER: &str = r#"
    class Greeter
    ; computes a little and prints — harmless mobile code
    method main/0 locals=2
        push_int 0
        store 1
        push_int 10
        store 0
    loop:
        load 0
        push_int 0
        gt
        jump_if_false done
        load 1
        load 0
        add
        store 1
        load 0
        push_int 1
        sub
        store 0
        jump loop
    done:
        push_str "sum(1..10) computed by an applet: "
        load 1
        concat
        native println/1
        pop
        return
"#;

const THIEF: &str = r#"
    class Thief
    method main/0 locals=0
        push_str "/home/alice/secrets.txt"
        native read_file/1
        native println/1
        pop
        return
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let policy_text = format!(
        "{}\n{}",
        jmp_shell::default_policy_text(),
        r#"grant user "alice" { permission file "/home/alice/-" "read,write,delete"; };"#
    );
    let rt = MpRuntime::builder()
        .policy(Policy::parse(&policy_text)?)
        .user("alice", "apw")
        .build()?;
    jmp_shell::install(&rt)?;

    // Alice has a secret the applet will try to steal.
    let alice = rt.users().lookup("alice")?;
    rt.vfs()
        .write("/home/alice/secrets.txt", b"the cake is a lie", alice.id())?;

    // Publish mobile code on the simulated network.
    publish_applet(&rt, "applets.example.com", "/greeter.jbc", GREETER)?;
    publish_applet(&rt, "applets.example.com", "/thief.jbc", THIEF)?;

    // Alice logs in and runs both applets.
    let (terminal, session) = spawn_login_session(&rt)?;
    terminal.type_line("alice")?;
    terminal.type_line("apw")?;
    terminal.type_line("appletviewer http://applets.example.com/greeter.jbc")?;
    terminal.type_line("appletviewer http://applets.example.com/thief.jbc")?;
    terminal.type_line("quit")?;
    terminal.type_eof();
    session.wait_for()?;

    println!("{}", terminal.screen_text());
    let screen = terminal.screen_text();
    assert!(screen.contains("sum(1..10) computed by an applet: 55"));
    assert!(screen.contains("security"), "the thief must be refused");
    assert!(!screen.contains("the cake is a lie"));
    println!("sandbox verdict: greeter ran, thief was refused — as in the paper.");
    rt.shutdown();
    Ok(())
}
