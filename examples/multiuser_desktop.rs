//! The paper's motivating desktop (§4 Feature 7): Alice and Bob run the
//! *same* GUI text editor concurrently in one VM. With per-application
//! event dispatching (Fig 4), each *Save File* click runs on a dispatcher
//! thread belonging to the right application — so each file is written as
//! the right user.
//!
//! ```sh
//! cargo run --example multiuser_desktop
//! ```

use std::time::Duration;

use jmp_awt::{ComponentId, DispatchMode, Toolkit};
use jmp_core::MpRuntime;
use jmp_security::Policy;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let policy_text = format!(
        "{}\n{}",
        jmp_shell::default_policy_text(),
        r#"
        grant user "alice" { permission file "/home/alice/-" "read,write,delete"; };
        grant user "bob"   { permission file "/home/bob/-" "read,write,delete"; };
        "#
    );
    let rt = MpRuntime::builder()
        .policy(Policy::parse(&policy_text)?)
        .user("alice", "apw")
        .user("bob", "bpw")
        .gui(DispatchMode::PerApplication)
        .build()?;
    jmp_shell::install(&rt)?;

    let display = rt.display().unwrap().clone();
    let toolkit = rt.toolkit().unwrap().clone();

    // Both users launch the same `edit` program on their own document.
    let alice_edit = rt.launch_as("alice", "edit", &["/home/alice/todo.txt"])?;
    let bob_edit = rt.launch_as("bob", "edit", &["/home/bob/todo.txt"])?;
    assert!(Toolkit::wait_until(Duration::from_secs(5), || {
        toolkit.window_count() == 2
    }));
    let alice_win = toolkit.windows_of_app(alice_edit.id().0)[0];
    let bob_win = toolkit.windows_of_app(bob_edit.id().0)[0];

    // Simulated keyboard/mouse: type into each editor, then Save File.
    let text_field = ComponentId(1);
    let save_item = ComponentId(2);
    let quit_item = ComponentId(3);
    display.inject_text(alice_win, text_field, "buy flowers")?;
    display.inject_text(bob_win, text_field, "fix the fence")?;
    display.inject_action(alice_win, save_item)?;
    display.inject_action(bob_win, save_item)?;

    // Wait for both saves, then quit both editors through their menus.
    let alice = rt.users().lookup("alice")?;
    let bob = rt.users().lookup("bob")?;
    assert!(Toolkit::wait_until(Duration::from_secs(5), || {
        rt.vfs().exists("/home/alice/todo.txt", alice.id())
            && rt.vfs().exists("/home/bob/todo.txt", bob.id())
    }));
    display.inject_action(alice_win, quit_item)?;
    display.inject_action(bob_win, quit_item)?;
    alice_edit.wait_for()?;
    bob_edit.wait_for()?;

    for (who, user, path) in [
        ("alice", &alice, "/home/alice/todo.txt"),
        ("bob", &bob, "/home/bob/todo.txt"),
    ] {
        let contents = String::from_utf8_lossy(&rt.vfs().read(path, user.id())?).into_owned();
        let owner = rt.vfs().stat(path, user.id())?.owner;
        println!("{who}: {path} = {contents:?}, owned by uid {}", owner.0);
        assert_eq!(owner, user.id(), "saved as the RIGHT user (Fig 4)");
    }
    println!("--- app console ---\n{}", rt.console_output());
    rt.shutdown();
    Ok(())
}
