//! Quickstart: build a multi-processing runtime, register an application as
//! class material, and run it as a user — the `jmp-core` equivalent of the
//! paper's `Application.exec("MyClass", args); app.waitFor();` (§5.1).
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use jmp_core::{jsystem, Application, MpRuntime};
use jmp_security::{CodeSource, Policy};
use jmp_vm::ClassDef;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A policy in the paper's syntax: local applications may exercise their
    // running user's permissions; alice owns her home directory.
    let policy = Policy::parse(
        r#"
        grant codeBase "file:/apps/-" {
            permission user "exerciseUserPermissions";
            permission runtime "execApplication";
        };
        grant user "alice" {
            permission file "/home/alice/-" "read,write,delete";
        };
        "#,
    )?;

    let rt = MpRuntime::builder()
        .policy(policy)
        .user("alice", "sesame")
        .build()?;

    // "Greeter" is ordinary application code: it sees its own System.out,
    // its running user, and the checked file API.
    rt.vm().material().register(
        ClassDef::builder("Greeter")
            .main(|args| {
                let app = Application::current().expect("running as an application");
                jsystem::println(&format!(
                    "hello {} — I am application {} run by {}",
                    args.first().map(String::as_str).unwrap_or("world"),
                    app.id(),
                    app.user().name(),
                ))?;
                jmp_core::files::write("diary.txt", b"dear diary, multi-processing works")?;
                Ok(())
            })
            .build(),
        CodeSource::local("file:/apps/greeter"),
    )?;

    // Launch two concurrent instances — distinct applications (Fig 3).
    let first = rt.launch_as("alice", "Greeter", &["first"])?;
    let second = rt.launch_as("alice", "Greeter", &["second"])?;
    first.wait_for()?;
    second.wait_for()?;

    println!("--- console ---\n{}", rt.console_output());
    let alice = rt.users().lookup("alice")?;
    println!(
        "diary on the VFS: {:?}",
        String::from_utf8_lossy(&rt.vfs().read("/home/alice/diary.txt", alice.id())?)
    );
    rt.shutdown();
    Ok(())
}
