//! Offline stand-in for the `parking_lot` crate.
//!
//! This build environment has no access to crates.io, so the workspace
//! vendors the small slice of the `parking_lot` API it actually uses,
//! implemented on `std::sync`. Semantics match `parking_lot` where the
//! two differ from `std`: guards are returned directly (no `Result`),
//! poisoning is ignored, and `Condvar::wait_for` takes the guard by
//! `&mut` reference.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutual-exclusion lock (non-poisoning facade over [`std::sync::Mutex`]).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the data.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: Some(guard) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard for [`Mutex`]. The inner `Option` is only ever `None`
/// transiently inside [`Condvar::wait_for`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Result of a timed wait on a [`Condvar`].
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable paired with [`Mutex`].
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Waits on `guard` until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard taken");
        let (std_guard, result) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
        WaitTimeoutResult(result.timed_out())
    }

    /// Waits on `guard` until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard taken");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
    }
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// A reader-writer lock (non-poisoning facade over [`std::sync::RwLock`]).
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the data.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            Err(_) => f.write_str("RwLock { <locked> }"),
        }
    }
}

/// RAII shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut guard = m.lock();
        let started = Instant::now();
        let result = cv.wait_for(&mut guard, Duration::from_millis(20));
        assert!(result.timed_out());
        assert!(started.elapsed() >= Duration::from_millis(10));
    }

    #[test]
    fn condvar_notification_crosses_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            *pair2.0.lock() = true;
            pair2.1.notify_all();
        });
        let (lock, cv) = &*pair;
        let mut done = lock.lock();
        while !*done {
            cv.wait_for(&mut done, Duration::from_millis(50));
        }
        handle.join().unwrap();
    }
}
