//! Offline stand-in for the `criterion` crate.
//!
//! This build environment has no access to crates.io, so the workspace
//! vendors a small wall-clock harness exposing the criterion API surface the
//! benches use: `criterion_group!`/`criterion_main!`, benchmark groups with
//! `sample_size`/`throughput`, `bench_function`/`bench_with_input`, and
//! `Bencher::{iter, iter_batched}`. Each benchmark calibrates an iteration
//! count, takes timed samples, and prints mean/median per-iteration times to
//! stdout in a stable `name ... time: [..]` format.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock spent measuring one benchmark (after calibration).
const TARGET_MEASURE: Duration = Duration::from_millis(200);
/// Wall-clock budget for the calibration phase.
const TARGET_CALIBRATE: Duration = Duration::from_millis(20);

/// The benchmark driver (a stub of criterion's `Criterion`).
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("## {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, 10, f);
        self
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares throughput for reporting (recorded but not rendered by the
    /// stub beyond a note line).
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        match throughput {
            Throughput::Bytes(n) => println!("   throughput: {n} bytes/iter"),
            Throughput::Elements(n) => println!("   throughput: {n} elements/iter"),
        }
        self
    }

    /// Sets the measurement time (accepted for API compatibility; the stub
    /// uses a fixed internal budget).
    pub fn measurement_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(&format!("{}/{}", self.name, id.text), self.sample_size, f);
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_benchmark(
            &format!("{}/{}", self.name, id.text),
            self.sample_size,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            text: format!("{}/{parameter}", name.into()),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(text: &str) -> BenchmarkId {
        BenchmarkId {
            text: text.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(text: String) -> BenchmarkId {
        BenchmarkId { text }
    }
}

/// Throughput declaration for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Batch sizing for [`Bencher::iter_batched`].
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs: one setup per measured iteration.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Each batch is exactly one iteration.
    PerIteration,
}

enum Mode {
    Calibrate { spent: Duration },
    Measure { per_iter: Vec<Duration> },
}

/// Passed to each benchmark closure; records timing for the routine.
pub struct Bencher {
    iters: u64,
    mode: Mode,
}

impl Bencher {
    /// Times `routine` over this sample's iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.record(start.elapsed(), self.iters);
    }

    /// Times `routine` with a fresh un-timed `setup` input per iteration.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.record(total, self.iters);
    }

    fn record(&mut self, elapsed: Duration, iters: u64) {
        match &mut self.mode {
            Mode::Calibrate { spent } => *spent += elapsed,
            Mode::Measure { per_iter } => {
                per_iter.push(elapsed / u32::try_from(iters.max(1)).unwrap_or(u32::MAX));
            }
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    // Calibrate: grow the iteration count until one sample costs enough to
    // time reliably, or the calibration budget is spent.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            mode: Mode::Calibrate {
                spent: Duration::ZERO,
            },
        };
        f(&mut b);
        let Mode::Calibrate { spent } = b.mode else {
            unreachable!()
        };
        if spent >= TARGET_CALIBRATE || iters >= 1 << 20 {
            let per_iter = spent.checked_div(u32::try_from(iters).unwrap_or(u32::MAX));
            let per_iter = per_iter
                .unwrap_or(Duration::ZERO)
                .max(Duration::from_nanos(1));
            let budget = TARGET_MEASURE.div_duration_f64(per_iter) / samples.max(1) as f64;
            iters = (budget as u64).clamp(1, 1 << 24);
            break;
        }
        iters = iters.saturating_mul(4);
    }

    let mut b = Bencher {
        iters,
        mode: Mode::Measure {
            per_iter: Vec::with_capacity(samples),
        },
    };
    for _ in 0..samples {
        f(&mut b);
    }
    let Mode::Measure { mut per_iter } = b.mode else {
        unreachable!()
    };
    per_iter.sort();
    let mean: Duration =
        per_iter.iter().sum::<Duration>() / u32::try_from(per_iter.len().max(1)).unwrap();
    let median = per_iter[per_iter.len() / 2];
    let low = per_iter[0];
    let high = per_iter[per_iter.len() - 1];
    println!(
        "{name:<50} time: [{} {} {}]  (mean {}, {} samples x {iters} iters)",
        fmt_duration(low),
        fmt_duration(median),
        fmt_duration(high),
        fmt_duration(mean),
        per_iter.len(),
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", ns as f64 / 1_000_000_000.0)
    }
}

/// Declares a group-runner function from benchmark functions, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` from group-runner functions, mirroring criterion's macro
/// of the same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("stub");
        group.sample_size(3);
        let mut count = 0u64;
        group.bench_function("counting", |b| b.iter(|| count += 1));
        group.finish();
        assert!(count > 0);
    }

    #[test]
    fn iter_batched_gets_fresh_inputs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("stub2");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter_batched(
                || vec![n; 4],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            );
        });
        group.finish();
    }
}
