//! Offline stand-in for the `serde` crate.
//!
//! This build environment has no access to crates.io, so the workspace
//! vendors a simplified serde: instead of the visitor-based zero-copy
//! architecture, [`Serialize`] renders a type into an owned [`Value`] tree
//! and [`Deserialize`] rebuilds the type from one. The derive macros
//! (re-exported from the vendored `serde_derive`) generate impls with the
//! same external shape as real serde's defaults — maps for named structs,
//! externally-tagged variants for enums — so JSON produced via the vendored
//! `serde_json` looks like what real serde would emit.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

pub use serde_derive::{Deserialize, Serialize};

/// The intermediate data model every serializable type renders into.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer too large for `i64`.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (preserves insertion order).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The sequence elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a key in a map value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Error produced when rebuilding a type from a [`Value`].
#[derive(Debug, Clone)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error with a free-form message.
    pub fn custom(message: impl fmt::Display) -> DeError {
        DeError {
            message: message.to_string(),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.message)
    }
}

impl std::error::Error for DeError {}

/// A type that can render itself into the [`Value`] data model.
pub trait Serialize {
    /// Renders `self` as a [`Value`] tree.
    fn serialize_value(&self) -> Value;
}

/// A type that can rebuild itself from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`] tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when `value` does not have the expected shape.
    fn deserialize_value(value: &Value) -> Result<Self, DeError>;

    /// The value to use when a struct field is absent from its map.
    /// `None` (the default) makes the absence an error; `Option<T>`
    /// overrides this so missing fields deserialize to `None`.
    fn deserialize_missing() -> Option<Self> {
        None
    }
}

/// Looks up `key` in a struct map and deserializes it, honoring
/// [`Deserialize::deserialize_missing`] for absent keys. Used by derived
/// impls.
///
/// # Errors
///
/// Returns [`DeError`] if the key is absent (and the field type has no
/// missing-value default) or if the field fails to deserialize.
pub fn field_from_map<T: Deserialize>(
    entries: &[(String, Value)],
    key: &str,
) -> Result<T, DeError> {
    match entries.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::deserialize_value(v),
        None => T::deserialize_missing()
            .ok_or_else(|| DeError::custom(format!("missing field `{key}`"))),
    }
}

// ---------------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------------

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64, isize);

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                let v = *self as u64;
                if let Ok(i) = i64::try_from(v) {
                    Value::I64(i)
                } else {
                    Value::U64(v)
                }
            }
        }
    )*};
}
ser_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Rc<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(v) => v.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize_value(&self) -> Value {
        Value::Seq(vec![self.0.serialize_value(), self.1.serialize_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize_value(&self) -> Value {
        Value::Seq(vec![
            self.0.serialize_value(),
            self.1.serialize_value(),
            self.2.serialize_value(),
        ])
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize_value()))
                .collect(),
        )
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.serialize_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types
// ---------------------------------------------------------------------------

fn numeric(value: &Value, what: &str) -> Result<f64, DeError> {
    match value {
        Value::I64(i) => Ok(*i as f64),
        Value::U64(u) => Ok(*u as f64),
        Value::F64(f) => Ok(*f),
        other => Err(DeError::custom(format!("expected {what}, got {other:?}"))),
    }
}

macro_rules! de_signed {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize_value(value: &Value) -> Result<Self, DeError> {
                let wide = match value {
                    Value::I64(i) => *i,
                    Value::U64(u) => i64::try_from(*u)
                        .map_err(|_| DeError::custom("unsigned value out of range"))?,
                    Value::F64(f) if f.fract() == 0.0 => *f as i64,
                    other => {
                        return Err(DeError::custom(format!(
                            "expected integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(wide).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}
de_signed!(i8, i16, i32, i64, isize);

macro_rules! de_unsigned {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize_value(value: &Value) -> Result<Self, DeError> {
                let wide = match value {
                    Value::I64(i) => u64::try_from(*i)
                        .map_err(|_| DeError::custom("negative value for unsigned field"))?,
                    Value::U64(u) => *u,
                    Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    other => {
                        return Err(DeError::custom(format!(
                            "expected unsigned integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(wide).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}
de_unsigned!(u8, u16, u32, u64, usize);

impl Deserialize for f64 {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        numeric(value, "number")
    }
}

impl Deserialize for f32 {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        numeric(value, "number").map(|f| f as f32)
    }
}

impl Deserialize for bool {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Deserialize for char {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        let s = value
            .as_str()
            .ok_or_else(|| DeError::custom("expected single-character string"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom("expected single-character string")),
        }
    }
}

impl Deserialize for String {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::custom(format!("expected string, got {value:?}")))
    }
}

impl Deserialize for Value {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

impl Deserialize for Arc<str> {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_str()
            .map(Arc::from)
            .ok_or_else(|| DeError::custom(format!("expected string, got {value:?}")))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }

    fn deserialize_missing() -> Option<Self> {
        Some(None)
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_seq()
            .ok_or_else(|| DeError::custom(format!("expected sequence, got {value:?}")))?
            .iter()
            .map(T::deserialize_value)
            .collect()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        T::deserialize_value(value).map(Box::new)
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        let seq = value
            .as_seq()
            .ok_or_else(|| DeError::custom("expected 2-element sequence"))?;
        if seq.len() != 2 {
            return Err(DeError::custom("expected 2-element sequence"));
        }
        Ok((
            A::deserialize_value(&seq[0])?,
            B::deserialize_value(&seq[1])?,
        ))
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_map()
            .ok_or_else(|| DeError::custom(format!("expected map, got {value:?}")))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize_value(v)?)))
            .collect()
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_map()
            .ok_or_else(|| DeError::custom(format!("expected map, got {value:?}")))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize_value(v)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_missing_field_defaults_to_none() {
        let map = vec![("present".to_string(), Value::I64(3))];
        let present: Option<i64> = field_from_map(&map, "present").unwrap();
        let absent: Option<i64> = field_from_map(&map, "absent").unwrap();
        assert_eq!(present, Some(3));
        assert_eq!(absent, None);
        let required: Result<i64, _> = field_from_map(&map, "absent");
        assert!(required.is_err());
    }

    #[test]
    fn numeric_widths_round_trip() {
        let v = u64::MAX.serialize_value();
        assert_eq!(u64::deserialize_value(&v).unwrap(), u64::MAX);
        let v = (-5i8).serialize_value();
        assert_eq!(i8::deserialize_value(&v).unwrap(), -5);
        assert!(u8::deserialize_value(&Value::I64(-1)).is_err());
        assert!(u8::deserialize_value(&Value::I64(300)).is_err());
    }

    #[test]
    fn arc_str_round_trips() {
        let s: Arc<str> = Arc::from("hello");
        let v = s.serialize_value();
        assert_eq!(&*Arc::<str>::deserialize_value(&v).unwrap(), "hello");
    }
}
