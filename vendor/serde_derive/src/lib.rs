//! Offline stand-in for the `serde_derive` crate.
//!
//! Generates impls of the vendored serde's [`Serialize`]/[`Deserialize`]
//! traits (the simplified value-tree model) without depending on `syn` or
//! `quote`: the item is parsed with a small hand-rolled scanner that only
//! understands the shapes this workspace actually derives on — non-generic
//! structs with named or tuple fields, and enums whose variants are unit,
//! tuple, or struct-like. Attributes (including `#[serde(...)]`) are
//! ignored; the encoding matches real serde's defaults (struct → map,
//! enum → externally-tagged variant).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives the vendored serde's `Serialize` (value-tree rendering).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Tuple(1) => "::serde::Serialize::serialize_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let mut items = String::new();
                    for i in 0..*n {
                        items.push_str(&format!(
                            "__seq.push(::serde::Serialize::serialize_value(&self.{i}));"
                        ));
                    }
                    format!(
                        "{{ let mut __seq: ::std::vec::Vec<::serde::Value> = \
                         ::std::vec::Vec::new(); {items} ::serde::Value::Seq(__seq) }}"
                    )
                }
                Fields::Named(names) => {
                    let mut items = String::new();
                    for f in names {
                        items.push_str(&format!(
                            "__m.push((::std::string::String::from(\"{f}\"), \
                             ::serde::Serialize::serialize_value(&self.{f})));"
                        ));
                    }
                    format!(
                        "{{ let mut __m: ::std::vec::Vec<(::std::string::String, \
                         ::serde::Value)> = ::std::vec::Vec::new(); {items} \
                         ::serde::Value::Map(__m) }}"
                    )
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{ \
                 fn serialize_value(&self) -> ::serde::Value {{ {body} }} }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(\
                         ::std::string::String::from(\"{vn}\")),"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let pattern = binds.join(", ");
                        let inner = if *n == 1 {
                            "::serde::Serialize::serialize_value(__f0)".to_string()
                        } else {
                            let mut items = String::new();
                            for b in &binds {
                                items.push_str(&format!(
                                    "__seq.push(::serde::Serialize::serialize_value({b}));"
                                ));
                            }
                            format!(
                                "{{ let mut __seq: ::std::vec::Vec<::serde::Value> = \
                                 ::std::vec::Vec::new(); {items} \
                                 ::serde::Value::Seq(__seq) }}"
                            )
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({pattern}) => {{ \
                             let mut __m: ::std::vec::Vec<(::std::string::String, \
                             ::serde::Value)> = ::std::vec::Vec::new(); \
                             __m.push((::std::string::String::from(\"{vn}\"), {inner})); \
                             ::serde::Value::Map(__m) }},"
                        ));
                    }
                    Fields::Named(names) => {
                        let pattern = names.join(", ");
                        let mut items = String::new();
                        for f in names {
                            items.push_str(&format!(
                                "__fm.push((::std::string::String::from(\"{f}\"), \
                                 ::serde::Serialize::serialize_value({f})));"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {pattern} }} => {{ \
                             let mut __fm: ::std::vec::Vec<(::std::string::String, \
                             ::serde::Value)> = ::std::vec::Vec::new(); {items} \
                             let mut __m: ::std::vec::Vec<(::std::string::String, \
                             ::serde::Value)> = ::std::vec::Vec::new(); \
                             __m.push((::std::string::String::from(\"{vn}\"), \
                             ::serde::Value::Map(__fm))); \
                             ::serde::Value::Map(__m) }},"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{ \
                 fn serialize_value(&self) -> ::serde::Value {{ \
                 match self {{ {arms} }} }} }}"
            )
        }
    };
    body.parse().expect("generated Serialize impl parses")
}

/// Derives the vendored serde's `Deserialize` (value-tree rebuilding).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(\
                     ::serde::Deserialize::deserialize_value(__value)?))"
                ),
                Fields::Tuple(n) => {
                    let mut items = String::new();
                    for i in 0..*n {
                        items.push_str(&format!(
                            "::serde::Deserialize::deserialize_value(&__seq[{i}])?,"
                        ));
                    }
                    format!(
                        "{{ let __seq = __value.as_seq().ok_or_else(|| \
                         ::serde::DeError::custom(\"expected sequence for `{name}`\"))?; \
                         if __seq.len() != {n} {{ return ::std::result::Result::Err(\
                         ::serde::DeError::custom(\"wrong tuple length for `{name}`\")); }} \
                         ::std::result::Result::Ok({name}({items})) }}"
                    )
                }
                Fields::Named(names) => {
                    let mut items = String::new();
                    for f in names {
                        items.push_str(&format!("{f}: ::serde::field_from_map(__m, \"{f}\")?,"));
                    }
                    format!(
                        "{{ let __m = __value.as_map().ok_or_else(|| \
                         ::serde::DeError::custom(\"expected map for `{name}`\"))?; \
                         ::std::result::Result::Ok({name} {{ {items} }}) }}"
                    )
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{ \
                 fn deserialize_value(__value: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::DeError> {{ {body} }} }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        unit_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),"
                        ));
                        // Also accept the map form {"Variant": null}.
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),"
                        ));
                    }
                    Fields::Tuple(1) => tagged_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                         ::serde::Deserialize::deserialize_value(__inner)?)),"
                    )),
                    Fields::Tuple(n) => {
                        let mut items = String::new();
                        for i in 0..*n {
                            items.push_str(&format!(
                                "::serde::Deserialize::deserialize_value(&__seq[{i}])?,"
                            ));
                        }
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{ let __seq = __inner.as_seq().ok_or_else(|| \
                             ::serde::DeError::custom(\
                             \"expected sequence for variant `{vn}`\"))?; \
                             if __seq.len() != {n} {{ return ::std::result::Result::Err(\
                             ::serde::DeError::custom(\
                             \"wrong tuple length for variant `{vn}`\")); }} \
                             ::std::result::Result::Ok({name}::{vn}({items})) }},"
                        ));
                    }
                    Fields::Named(names) => {
                        let mut items = String::new();
                        for f in names {
                            items.push_str(&format!(
                                "{f}: ::serde::field_from_map(__fm, \"{f}\")?,"
                            ));
                        }
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{ let __fm = __inner.as_map().ok_or_else(|| \
                             ::serde::DeError::custom(\
                             \"expected map for variant `{vn}`\"))?; \
                             ::std::result::Result::Ok({name}::{vn} {{ {items} }}) }},"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{ \
                 fn deserialize_value(__value: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::DeError> {{ \
                 match __value {{ \
                 ::serde::Value::Str(__s) => match __s.as_str() {{ {unit_arms} \
                 __other => ::std::result::Result::Err(::serde::DeError::custom(\
                 format!(\"unknown variant `{{__other}}` of `{name}`\"))) }}, \
                 ::serde::Value::Map(__entries) if __entries.len() == 1 => {{ \
                 let (__tag, __inner) = &__entries[0]; \
                 match __tag.as_str() {{ {tagged_arms} \
                 __other => ::std::result::Result::Err(::serde::DeError::custom(\
                 format!(\"unknown variant `{{__other}}` of `{name}`\"))) }} }}, \
                 __other => ::std::result::Result::Err(::serde::DeError::custom(\
                 format!(\"expected variant of `{name}`, got {{__other:?}}\"))) \
                 }} }} }}"
            )
        }
    };
    body.parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Item scanner
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);
    let kind = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("vendored serde_derive does not support generic types (`{name}`)");
        }
    }
    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    parse_named_fields(g.stream())
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_top_level_commas(g.stream()))
                }
                _ => Fields::Unit,
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let Some(TokenTree::Group(g)) = tokens.get(i) else {
                panic!("expected enum body for `{name}`");
            };
            Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            }
        }
        other => panic!("cannot derive for item kind `{other}`"),
    }
}

fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    while let Some(TokenTree::Punct(p)) = tokens.get(*i) {
        if p.as_char() != '#' {
            return;
        }
        *i += 1; // '#'
        if matches!(tokens.get(*i), Some(TokenTree::Group(_))) {
            *i += 1; // '[...]'
        }
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1; // pub(crate) / pub(super)
                }
            }
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("expected identifier, found {other:?}"),
    }
}

/// Counts top-level comma-separated entries (angle brackets tracked so
/// `HashMap<String, V>` counts as one entry).
fn count_top_level_commas(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle = 0i32;
    let mut saw_tokens_since_comma = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => {
                    angle += 1;
                    saw_tokens_since_comma = true;
                }
                '>' => {
                    angle -= 1;
                    saw_tokens_since_comma = true;
                }
                ',' if angle == 0 => {
                    count += 1;
                    saw_tokens_since_comma = false;
                }
                _ => saw_tokens_since_comma = true,
            },
            _ => saw_tokens_since_comma = true,
        }
    }
    if !saw_tokens_since_comma {
        count -= 1; // trailing comma
    }
    count
}

fn parse_named_fields(stream: TokenStream) -> Fields {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut names = Vec::new();
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut i);
        let name = expect_ident(&tokens, &mut i);
        names.push(name);
        // Skip `: Type` up to the next top-level comma.
        let mut angle = 0i32;
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    Fields::Named(names)
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_top_level_commas(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                parse_named_fields(g.stream())
            }
            _ => Fields::Unit,
        };
        // Skip any discriminant (`= expr`) and the separating comma.
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}
