//! Offline stand-in for the `serde_json` crate.
//!
//! Renders the vendored serde's [`Value`] tree to JSON text and parses JSON
//! text back into it. Supports exactly the API surface this workspace uses:
//! [`to_string`], [`to_string_pretty`], [`to_vec`], [`from_str`],
//! [`from_slice`], and the [`Error`] type.

#![forbid(unsafe_code)]

use std::fmt;

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Serialization/deserialization failure.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Error {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error::new(e.to_string())
    }
}

/// Serializes `value` to compact JSON text.
///
/// # Errors
///
/// Infallible for well-formed value trees; the `Result` mirrors the real
/// serde_json signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.serialize_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` to pretty-printed JSON text (2-space indent).
///
/// # Errors
///
/// Infallible for well-formed value trees (see [`to_string`]).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.serialize_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Serializes `value` to compact JSON bytes.
///
/// # Errors
///
/// Infallible for well-formed value trees (see [`to_string`]).
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserializes a `T` from JSON text.
///
/// # Errors
///
/// Fails on malformed JSON or on a value tree that does not match `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    Ok(T::deserialize_value(&value)?)
}

/// Deserializes a `T` from JSON bytes (UTF-8).
///
/// # Errors
///
/// Fails on invalid UTF-8, malformed JSON, or a mismatched value tree.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let text = std::str::from_utf8(bytes).map_err(|e| Error::new(e.to_string()))?;
    from_str(text)
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

fn render(value: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                // Keep a decimal point so floats survive a round trip as
                // floats (serde_json prints 1.0 as "1.0").
                let text = f.to_string();
                out.push_str(&text);
                if !text.contains('.') && !text.contains('e') && !text.contains("inf") {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => render_string(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                render(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                render_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), Error> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                expected as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{literal}` at offset {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null").map(|()| Value::Null),
            Some(b't') => self.eat_literal("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat_literal("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected input {other:?} at offset {}",
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new(format!("bad array at offset {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new(format!("bad object at offset {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(e.to_string()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|e| Error::new(e.to_string()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| Error::new(e.to_string()))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_round_trip() {
        let value = Value::Map(vec![
            ("name".to_string(), Value::Str("a\"b\\c\n".to_string())),
            (
                "items".to_string(),
                Value::Seq(vec![Value::I64(-3), Value::Bool(true), Value::Null]),
            ),
            ("big".to_string(), Value::U64(u64::MAX)),
            ("ratio".to_string(), Value::F64(1.5)),
        ]);
        let text = to_string(&value).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn pretty_output_is_indented_and_parses() {
        let value = Value::Map(vec![(
            "rows".to_string(),
            Value::Seq(vec![Value::Str("x".to_string())]),
        )]);
        let text = to_string_pretty(&value).unwrap();
        assert!(text.contains("\n  "));
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn whole_floats_keep_their_point() {
        let text = to_string(&Value::F64(2.0)).unwrap();
        assert_eq!(text, "2.0");
        assert_eq!(from_str::<Value>(&text).unwrap(), Value::F64(2.0));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Value>("{} x").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
    }

    #[test]
    fn unicode_escapes_parse() {
        let v: Value = from_str(r#""a\u0041b""#).unwrap();
        assert_eq!(v, Value::Str("aAb".to_string()));
    }
}
