//! Offline stand-in for the `crossbeam-channel` crate.
//!
//! This build environment has no access to crates.io, so the workspace
//! vendors the slice of the `crossbeam-channel` API it uses: multi-producer
//! multi-consumer unbounded channels with cloneable senders and receivers,
//! disconnection tracking, and timed receives. Built on a `VecDeque` behind
//! `std::sync::{Mutex, Condvar}`.

#![forbid(unsafe_code)]

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    available: Condvar,
}

impl<T> Shared<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Creates an unbounded MPMC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        available: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

/// The sending half of a channel.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Sender<T> {
    /// Sends a message. Fails only when every receiver is gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.lock();
        if state.receivers == 0 {
            return Err(SendError(value));
        }
        state.queue.push_back(value);
        drop(state);
        self.shared.available.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Sender<T> {
        self.shared.lock().senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.lock();
        state.senders -= 1;
        let last = state.senders == 0;
        drop(state);
        if last {
            self.shared.available.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

/// The receiving half of a channel.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Receiver<T> {
    /// Receives a message, blocking until one arrives or all senders drop.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.lock();
        loop {
            if let Some(value) = state.queue.pop_front() {
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self
                .shared
                .available
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Receives a message, waiting at most `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.shared.lock();
        loop {
            if let Some(value) = state.queue.pop_front() {
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _) = self
                .shared
                .available
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            state = guard;
        }
    }

    /// Receives a message if one is immediately available.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.shared.lock();
        match state.queue.pop_front() {
            Some(value) => Ok(value),
            None if state.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Receiver<T> {
        self.shared.lock().receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.lock().receivers -= 1;
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

/// Error returned by [`Sender::send`] when all receivers are gone; carries
/// the unsent message.
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// Error returned by [`Receiver::recv`] when all senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The timeout elapsed with no message.
    Timeout,
    /// All senders disconnected and the queue is drained.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
            RecvTimeoutError::Disconnected => f.write_str("channel is empty and disconnected"),
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message was ready.
    Empty,
    /// All senders disconnected and the queue is drained.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("receiving on an empty channel"),
            TryRecvError::Disconnected => f.write_str("channel is empty and disconnected"),
        }
    }
}

impl std::error::Error for TryRecvError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_and_receive_in_order() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn recv_timeout_reports_timeout_then_disconnect() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn send_fails_after_receivers_drop() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(5).is_err());
    }

    #[test]
    fn cloned_senders_keep_channel_open() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        drop(tx);
        std::thread::spawn(move || tx2.send(7).unwrap());
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
    }
}
