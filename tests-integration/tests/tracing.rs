//! Causal tracing integration: one trace id survives exec → AWT
//! post/dispatch → pipe write/read; the watchdog flags a blocked
//! dispatcher; and the `traceVm` permission gates the flight recorder.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use jmp_awt::{ComponentId, DispatchMode, Toolkit};
use jmp_core::MpRuntime;
use jmp_obs::{EventKind, SpanCategory};
use jmp_security::Policy;
use tests_integration::{register_app, runtime};

fn gui_runtime(mode: DispatchMode) -> MpRuntime {
    let text = format!(
        "{}\n{}",
        jmp_shell::default_policy_text(),
        r#"
        grant user "alice" { permission file "/home/alice/-" "read,write,delete"; };
        "#
    );
    let rt = MpRuntime::builder()
        .policy(Policy::parse(&text).unwrap())
        .user("alice", "apw")
        .gui(mode)
        .build()
        .unwrap();
    jmp_shell::install(&rt).unwrap();
    rt
}

static CLICKS: AtomicUsize = AtomicUsize::new(0);
static TRACER_DONE: AtomicUsize = AtomicUsize::new(0);

#[test]
fn one_trace_id_survives_exec_dispatch_and_pipe() {
    // An application execs (rooting a trace), opens a window (permission
    // check), posts an action to itself (AWT enqueue→dispatch), and pushes
    // bytes through a pipe (write→read). Every span the flight recorder
    // collects along the way must carry the exec's trace id: causality
    // survives the thread, queue, and pipe handoffs.
    CLICKS.store(0, Ordering::SeqCst);
    let rt = gui_runtime(DispatchMode::PerApplication);
    register_app(&rt, "tracer", |_| {
        let window = jmp_core::gui::create_window("tracer")?;
        let button = window.add_button("go");
        window.on_action(button, |_| {
            CLICKS.fetch_add(1, Ordering::SeqCst);
        });
        // Post an event to our own window: the event carries this thread's
        // trace context across the queue to the dispatcher.
        let toolkit = jmp_core::gui::toolkit()?;
        toolkit.display().inject_action(window.id(), button)?;
        assert!(Toolkit::wait_until(Duration::from_secs(5), || {
            CLICKS.load(Ordering::SeqCst) == 1
        }));
        // Pipe hop: the write stamps the pipe with our context, the read
        // rides it.
        let (out, input) = jmp_core::pipes::make_pipe()?;
        out.write(b"payload")?;
        let mut buf = [0u8; 16];
        input.read(&mut buf)?;
        TRACER_DONE.store(1, Ordering::SeqCst);
        // The per-application dispatcher keeps the group non-empty, so park
        // until the test stops us.
        jmp_vm::thread::sleep(Duration::from_secs(600))
    });
    let app = rt.launch_as("alice", "tracer", &[]).unwrap();
    assert!(Toolkit::wait_until(Duration::from_secs(5), || {
        TRACER_DONE.load(Ordering::SeqCst) == 1
    }));
    app.stop(0).unwrap();
    let _ = app.wait_for();

    let spans = rt.vm().obs().recorder().dump();
    let exec = spans
        .iter()
        .find(|s| s.category == SpanCategory::Exec && s.name.contains("tracer"))
        .expect("the exec span is on the record");
    let trace = exec.trace_id;
    for category in [
        SpanCategory::Dispatch,
        SpanCategory::Pipe,
        SpanCategory::Check,
    ] {
        assert!(
            spans
                .iter()
                .any(|s| s.category == category && s.trace_id == trace),
            "a {category} span carries the exec's trace id; got {spans:?}"
        );
    }
    // Both pipe ends are linked: the read span sits under the writer's
    // context.
    let write = spans
        .iter()
        .find(|s| s.name == "pipe.write" && s.trace_id == trace)
        .expect("pipe.write recorded");
    let read = spans
        .iter()
        .find(|s| s.name == "pipe.read" && s.trace_id == trace)
        .expect("pipe.read recorded");
    assert_eq!(write.parent, read.parent);
    rt.shutdown();
}

#[test]
fn watchdog_flags_a_blocked_dispatcher() {
    // A listener that wedges its dispatcher thread goes silent past the
    // stall threshold; the watchdog raises an event, bumps the metric, and
    // the stall shows in the registry rows.
    let rt = gui_runtime(DispatchMode::PerApplication);
    rt.vm()
        .obs()
        .watchdogs()
        .set_threshold(Duration::from_millis(200));
    register_app(&rt, "freezer", |_| {
        let window = jmp_core::gui::create_window("freezer")?;
        let button = window.add_button("wedge");
        window.on_action(button, |_| {
            // Block the dispatcher well past the threshold (interruptible,
            // so teardown still works).
            let _ = jmp_vm::thread::sleep(Duration::from_millis(800));
        });
        jmp_vm::thread::sleep(Duration::from_secs(600))
    });
    let app = rt.launch_as("alice", "freezer", &[]).unwrap();
    let toolkit = rt.toolkit().unwrap().clone();
    assert!(Toolkit::wait_until(Duration::from_secs(5), || toolkit
        .window_count()
        == 1));
    let window = toolkit.windows_of_app(app.id().0)[0];
    rt.display()
        .unwrap()
        .inject_action(window, ComponentId(1))
        .unwrap();

    let hub = rt.vm().obs().clone();
    assert!(
        Toolkit::wait_until(Duration::from_secs(5), || {
            hub.vm_metrics().counter("watchdog.stalls").get() >= 1
        }),
        "the stalled dispatcher is detected within the threshold"
    );
    let stall_events: Vec<_> = hub
        .sink()
        .recent()
        .into_iter()
        .filter(|e| e.kind == EventKind::Watchdog)
        .collect();
    assert!(
        !stall_events.is_empty(),
        "the stall lands on the event stream"
    );
    assert_eq!(stall_events[0].app, Some(app.id().0));
    assert!(
        hub.watchdogs()
            .rows()
            .iter()
            .any(|row| row.stalled && row.name.contains("awt-dispatch")),
        "the registry row shows the stalled dispatcher"
    );
    app.stop(0).unwrap();
    let _ = app.wait_for();
    rt.shutdown();
}

#[test]
fn trace_vm_permission_gates_the_recorder() {
    // Steering or exporting the flight recorder sees every application's
    // spans, so it demands RuntimePermission("traceVm") — granted to the
    // `system` account by the default policy, refused (and audited) for
    // ordinary users.
    let rt = runtime();
    register_app(&rt, "peeker", |_| {
        let rt = jmp_core::MpRuntime::current().unwrap();
        assert!(
            jmp_core::obs::chrome_trace(&rt).is_err(),
            "the export is gated"
        );
        assert!(
            jmp_core::obs::set_tracing(&rt, false).is_err(),
            "steering is gated"
        );
        Ok(())
    });
    rt.launch_as("bob", "peeker", &[])
        .unwrap()
        .wait_for()
        .unwrap();
    assert!(
        rt.vm()
            .obs()
            .audit_query(Some("bob"), None)
            .iter()
            .any(|r| r.permission.contains("traceVm")),
        "the refusal is audited"
    );

    register_app(&rt, "exporter", |_| {
        let rt = jmp_core::MpRuntime::current().unwrap();
        let json = jmp_core::obs::chrome_trace(&rt).expect("system may export");
        assert!(json.contains("traceEvents"));
        assert!(jmp_core::obs::tracing_enabled(&rt).expect("system may ask"));
        Ok(())
    });
    rt.launch_as("system", "exporter", &[])
        .unwrap()
        .wait_for()
        .unwrap();
    rt.shutdown();
}

#[test]
fn denials_carry_the_flight_record() {
    // A denial's audit record arrives with the recorder ring at the moment
    // of refusal — the dump-on-denial flight record.
    let rt = runtime();
    let alice = rt.users().lookup("alice").unwrap();
    rt.vfs()
        .write("/home/alice/secret.txt", b"private", alice.id())
        .unwrap();
    register_app(&rt, "snoop2", |_| {
        assert!(jmp_core::files::read("/home/alice/secret.txt").is_err());
        Ok(())
    });
    rt.launch_as("bob", "snoop2", &[])
        .unwrap()
        .wait_for()
        .unwrap();
    let denials = rt.vm().obs().audit_query(Some("bob"), None);
    assert_eq!(denials.len(), 1);
    assert!(
        !denials[0].trace.is_empty(),
        "the flight record rides the audit entry: {denials:?}"
    );
    assert!(
        denials[0]
            .trace
            .iter()
            .any(|s| s.category == SpanCategory::Exec && s.name.contains("snoop2")),
        "the record shows how we got here (the exec span): {:?}",
        denials[0].trace
    );
    rt.shutdown();
}
