//! E7 (§5.6) integration: the system security manager's rules exercised
//! across real applications, plus reflection-style member access.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use jmp_core::{files, jsystem, Application};
use tests_integration::{register_app, runtime};

#[test]
fn applications_cannot_interrupt_each_other() {
    let rt = runtime();
    register_app(&rt, "victim", |_| {
        jmp_vm::thread::sleep(Duration::from_secs(600))
    });
    let victim = rt.launch_as("bob", "victim", &[]).unwrap();
    // Let the victim's main thread start.
    assert!(jmp_awt::Toolkit::wait_until(Duration::from_secs(5), || {
        !victim.threads().is_empty()
    }));

    static OUTCOMES: parking_lot::Mutex<Vec<bool>> = parking_lot::Mutex::new(Vec::new());
    let victim2 = victim.clone();
    rt.vm()
        .material()
        .register(
            jmp_vm::ClassDef::builder("attacker")
                .main(move |_| {
                    let vm = jmp_vm::Vm::current().unwrap();
                    let target = victim2.threads().into_iter().next().unwrap();
                    // Under an untrusted frame: denied by the ancestor rule +
                    // missing modifyThread permission.
                    let untrusted = Arc::new(jmp_security::ProtectionDomain::untrusted(
                        jmp_security::CodeSource::remote("http://evil/x"),
                    ));
                    let denied =
                        jmp_vm::stack::call_as("Evil", untrusted, || vm.interrupt_thread(&target))
                            .is_err();
                    OUTCOMES.lock().push(denied);
                    Ok(())
                })
                .build(),
            jmp_security::CodeSource::local("file:/apps/attacker"),
        )
        .unwrap();
    rt.launch_as("alice", "attacker", &[])
        .unwrap()
        .wait_for()
        .unwrap();
    assert_eq!(*OUTCOMES.lock(), vec![true]);
    assert!(matches!(victim.status(), jmp_core::AppStatus::Running));
    victim.stop(0).unwrap();
    victim.wait_for().unwrap();
    rt.shutdown();
}

#[test]
fn member_access_rule() {
    // §5.6: "Public members of a class can be accessed normally through the
    // reflection API. Access to non-public members needs an appropriate
    // permission."
    let rt = runtime();
    let vm = rt.vm().clone();
    let sm = vm.security_manager().expect("system SM installed");
    let class = vm
        .system_loader()
        .load_class(jmp_core::SYSTEM_CLASS)
        .unwrap();

    // Trusted (host) context: allowed.
    sm.check_member_access(&vm, &class).unwrap();

    // Untrusted frame: denied.
    let untrusted = Arc::new(jmp_security::ProtectionDomain::untrusted(
        jmp_security::CodeSource::remote("http://evil/x"),
    ));
    jmp_vm::stack::call_as("Evil", untrusted, || {
        assert!(sm.check_member_access(&vm, &class).is_err());
    });

    // A code source granted accessDeclaredMembers: allowed.
    let mut policy = (*vm.policy()).clone();
    policy.grant_code(
        jmp_security::CodeSource::local("file:/apps/reflector"),
        vec![jmp_security::Permission::runtime("accessDeclaredMembers")],
    );
    vm.set_policy(policy).unwrap();
    let granted = Arc::new(jmp_security::ProtectionDomain::new(
        jmp_security::CodeSource::local("file:/apps/reflector"),
        vm.policy()
            .permissions_for(&jmp_security::CodeSource::local("file:/apps/reflector")),
    ));
    jmp_vm::stack::call_as("Reflector", granted, || {
        sm.check_member_access(&vm, &class).unwrap();
    });
    rt.shutdown();
}

#[test]
fn app_sm_cannot_weaken_the_system_sm() {
    // The §5.6 punchline: an application SM that "allows everything" still
    // cannot authorize what the system SM denies, because system code never
    // consults it.
    let rt = runtime();
    struct AllowEverything;
    impl jmp_vm::SecurityManager for AllowEverything {
        fn check_permission(
            &self,
            _vm: &jmp_vm::Vm,
            _perm: &jmp_security::Permission,
        ) -> jmp_vm::Result<()> {
            Ok(())
        }
    }
    static STILL_DENIED: AtomicUsize = AtomicUsize::new(0);
    register_app(&rt, "optimist", |_| {
        jsystem::set_security_manager(Arc::new(AllowEverything))?;
        // The system policy still denies alice's app access to bob's home.
        if files::read("/home/bob/secret").unwrap_err().is_security() {
            STILL_DENIED.fetch_add(1, Ordering::SeqCst);
        }
        Ok(())
    });
    rt.launch_as("alice", "optimist", &[])
        .unwrap()
        .wait_for()
        .unwrap();
    assert_eq!(STILL_DENIED.load(Ordering::SeqCst), 1);
    rt.shutdown();
}

#[test]
fn privileged_system_service_pattern() {
    // The Font pattern (§5.6) through the real runtime: a trusted service
    // reads a file an app cannot, via doPrivileged, on the app's behalf —
    // but refuses to be lured into doing it for a callback.
    let rt = runtime();
    // A "font file" no application may read directly.
    rt.vfs()
        .mkdirs("/sys/fonts", jmp_security::UserId(0))
        .unwrap();
    rt.vfs()
        .write("/sys/fonts/helv.fnt", b"glyphs", jmp_security::UserId(0))
        .unwrap();

    static RESULTS: parking_lot::Mutex<Vec<(String, bool)>> = parking_lot::Mutex::new(Vec::new());
    register_app(&rt, "fontuser", |_| {
        let vm = jmp_vm::Vm::current().unwrap();
        let rt = jmp_core::MpRuntime::current().unwrap();
        let demand =
            jmp_security::Permission::file("/sys/fonts/helv.fnt", jmp_security::FileActions::READ);
        // Direct read by the app: denied.
        RESULTS.lock().push((
            "app reads font directly".into(),
            files::read("/sys/fonts/helv.fnt").is_ok(),
        ));
        // The trusted Font service asserts privilege and reads on behalf.
        let font_domain = Arc::new(jmp_security::ProtectionDomain::system());
        let served = jmp_vm::stack::call_as("Font", font_domain, || {
            jmp_vm::stack::do_privileged(|| {
                vm.check_permission(&demand).is_ok()
                    && rt
                        .vfs()
                        .read("/sys/fonts/helv.fnt", jmp_security::UserId(0))
                        .is_ok()
            })
        });
        RESULTS
            .lock()
            .push(("Font service reads via doPrivileged".into(), served));
        Ok(())
    });
    rt.launch_as("alice", "fontuser", &[])
        .unwrap()
        .wait_for()
        .unwrap();
    let results = RESULTS.lock();
    assert_eq!(
        *results,
        vec![
            ("app reads font directly".to_string(), false),
            ("Font service reads via doPrivileged".to_string(), true),
        ]
    );
    rt.shutdown();
}

#[test]
fn exit_vm_is_reserved_for_the_system() {
    // §4: System.exit must not let one application kill the VM. In the MP
    // runtime, jsystem::exit maps to Application::exit; the raw VM exit
    // demands a permission no application policy grants.
    let rt = runtime();
    static VM_EXIT_DENIED: AtomicUsize = AtomicUsize::new(0);
    register_app(&rt, "nuker", |_| {
        let vm = jmp_vm::Vm::current().unwrap();
        if vm.exit(1).unwrap_err().is_security() {
            VM_EXIT_DENIED.fetch_add(1, Ordering::SeqCst);
        }
        // The blessed path only ends this application.
        Application::exit(0).map_err(jmp_vm::VmError::from)
    });
    let app = rt.launch_as("alice", "nuker", &[]).unwrap();
    assert_eq!(app.wait_for().unwrap(), 0);
    assert_eq!(VM_EXIT_DENIED.load(Ordering::SeqCst), 1);
    assert!(!rt.vm().is_shutdown(), "the VM survived the application");
    rt.shutdown();
}
