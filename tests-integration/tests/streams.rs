//! E10 (§5.1) integration: stream ownership across the shell's
//! redirection/pipe dance, end to end.

use std::time::Duration;

use jmp_core::{pipes, Application};
use jmp_shell::spawn_login_session;
use tests_integration::{register_app, runtime};

#[test]
fn shell_restores_its_streams_after_redirection() {
    // §6.1: "Afterwards, the shell's streams are re-set to their original
    // values" — observable because output after a redirected command goes
    // back to the terminal.
    let rt = runtime();
    let (terminal, session) = spawn_login_session(&rt).unwrap();
    for line in [
        "alice",
        "apw",
        "echo hidden > somewhere.txt",
        "echo visible-again",
        "quit",
    ] {
        terminal.type_line(line).unwrap();
    }
    terminal.type_eof();
    session.wait_for().unwrap();
    let screen = terminal.screen_text();
    assert!(
        !screen.contains("\nhidden\n"),
        "redirected output must not reach the terminal"
    );
    assert!(screen.contains("\nvisible-again\n"));
    rt.shutdown();
}

#[test]
fn pipeline_stage_sees_eof_when_shell_closes_the_writer() {
    // wc blocks until EOF on its stdin; it only terminates because the
    // shell closes the pipe's write end after the upstream stage finishes.
    let rt = runtime();
    let (terminal, session) = spawn_login_session(&rt).unwrap();
    for line in ["alice", "apw", "echo counted | wc", "quit"] {
        terminal.type_line(line).unwrap();
    }
    terminal.type_eof();
    let finished = session.wait_for();
    assert_eq!(finished.unwrap(), 0, "session must not hang");
    assert!(terminal.screen_text().contains("\n1 1 8\n"));
    rt.shutdown();
}

#[test]
fn app_cannot_close_the_terminal_out_from_under_its_sibling() {
    // The §5.1 motivation: two applications share a terminal; one closing
    // its inherited stream must not break the other.
    let rt = runtime();
    static CLOSE_REJECTED: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
    register_app(&rt, "closer2", |_| {
        let app = Application::current().unwrap();
        if app.stdout().close(app.io_token()).is_err() {
            CLOSE_REJECTED.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        }
        Ok(())
    });
    let (terminal, session) = spawn_login_session(&rt).unwrap();
    for line in ["alice", "apw", "closer2", "echo still-works", "quit"] {
        terminal.type_line(line).unwrap();
    }
    terminal.type_eof();
    session.wait_for().unwrap();
    assert_eq!(CLOSE_REJECTED.load(std::sync::atomic::Ordering::SeqCst), 1);
    assert!(terminal.screen_text().contains("still-works"));
    rt.shutdown();
}

#[test]
fn pipes_between_applications_via_core_api() {
    // Direct (non-shell) use of pipes between two applications, as §5.5
    // advertises.
    let rt = runtime();
    let (holder_tx, holder_rx) = std::sync::mpsc::channel();
    register_app(&rt, "producer_consumer", move |_| {
        let (out, input) = pipes::make_pipe().unwrap();
        // Launch a consumer inheriting the pipe read end as stdin.
        Application::set_streams(Some(input), None, None)?;
        let consumer = Application::exec("consumer", &[]).map_err(jmp_vm::VmError::from)?;
        // Restore own stdin (the dance from §6.1).
        let out_clone = out.clone();
        out_clone.println("over the pipe")?;
        out_clone.close(Application::current().unwrap().io_token())?;
        let code = consumer.wait_for().map_err(jmp_vm::VmError::from)?;
        holder_tx.send(code).ok();
        Ok(())
    });
    register_app(&rt, "consumer", |_| {
        let input = jmp_core::jsystem::stdin()?;
        let line = input.read_line()?;
        assert_eq!(line.as_deref(), Some("over the pipe"));
        Ok(())
    });
    let app = rt.launch_as("alice", "producer_consumer", &[]).unwrap();
    app.wait_for().unwrap();
    assert_eq!(holder_rx.recv_timeout(Duration::from_secs(5)).unwrap(), 0);
    rt.shutdown();
}
