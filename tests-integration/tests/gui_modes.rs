//! The strongest form of the paper's Feature 6/7 complaint, demonstrated:
//! under legacy (Fig 2) dispatching, the shared dispatcher thread lives in
//! whichever application opened a window first — so tearing *that*
//! application down silently kills event delivery for everyone else.
//! Per-application dispatching (Fig 4) keeps applications independent.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use jmp_awt::{ComponentId, DispatchMode, Toolkit};
use jmp_core::MpRuntime;
use jmp_security::Policy;

fn gui_runtime(mode: DispatchMode) -> MpRuntime {
    let text = format!(
        "{}\n{}",
        jmp_shell::default_policy_text(),
        r#"
        grant user "alice" { permission file "/home/alice/-" "read,write,delete"; };
        grant user "bob"   { permission file "/home/bob/-" "read,write,delete"; };
        "#
    );
    let rt = MpRuntime::builder()
        .policy(Policy::parse(&text).unwrap())
        .user("alice", "apw")
        .user("bob", "bpw")
        .gui(mode)
        .build()
        .unwrap();
    jmp_shell::install(&rt).unwrap();
    rt
}

static CLICKS_B: AtomicUsize = AtomicUsize::new(0);

fn register_gui_apps(rt: &MpRuntime) {
    rt.vm()
        .material()
        .register(
            jmp_vm::ClassDef::builder("guiA")
                .main(|_| {
                    let w = jmp_core::gui::create_window("A")?;
                    w.add_button("a");
                    jmp_vm::thread::sleep(Duration::from_secs(600))
                })
                .build(),
            jmp_security::CodeSource::local("file:/apps/guiA"),
        )
        .unwrap();
    rt.vm()
        .material()
        .register(
            jmp_vm::ClassDef::builder("guiB")
                .main(|_| {
                    let w = jmp_core::gui::create_window("B")?;
                    let b = w.add_button("b");
                    w.on_action(b, |_| {
                        CLICKS_B.fetch_add(1, Ordering::SeqCst);
                    });
                    jmp_vm::thread::sleep(Duration::from_secs(600))
                })
                .build(),
            jmp_security::CodeSource::local("file:/apps/guiB"),
        )
        .unwrap();
}

fn run_scenario(mode: DispatchMode) -> (usize, usize) {
    CLICKS_B.store(0, Ordering::SeqCst);
    let rt = gui_runtime(mode);
    register_gui_apps(&rt);
    let display = rt.display().unwrap().clone();
    let toolkit = rt.toolkit().unwrap().clone();

    // A opens its window FIRST (so in legacy mode the dispatcher lands in
    // A's group), then B.
    let app_a = rt.launch_as("alice", "guiA", &[]).unwrap();
    assert!(Toolkit::wait_until(Duration::from_secs(5), || toolkit
        .window_count()
        == 1));
    let app_b = rt.launch_as("bob", "guiB", &[]).unwrap();
    assert!(Toolkit::wait_until(Duration::from_secs(5), || toolkit
        .window_count()
        == 2));
    let win_b = toolkit.windows_of_app(app_b.id().0)[0];
    let button_b = ComponentId(1);

    // Sanity: B's button works while A is alive.
    display.inject_action(win_b, button_b).unwrap();
    assert!(Toolkit::wait_until(Duration::from_secs(5), || {
        CLICKS_B.load(Ordering::SeqCst) == 1
    }));
    let before = CLICKS_B.load(Ordering::SeqCst);

    // Kill A; then click B's button a few more times.
    app_a.stop(0).unwrap();
    app_a.wait_for().unwrap();
    std::thread::sleep(Duration::from_millis(50));
    for _ in 0..3 {
        let _ = display.inject_action(win_b, button_b);
        std::thread::sleep(Duration::from_millis(10));
    }
    // Give delivery a moment either way.
    Toolkit::wait_until(Duration::from_millis(400), || {
        CLICKS_B.load(Ordering::SeqCst) >= before + 3
    });
    let after = CLICKS_B.load(Ordering::SeqCst);
    app_b.stop(0).unwrap();
    let _ = app_b.wait_for();
    rt.shutdown();
    (before, after)
}

#[test]
fn legacy_dispatcher_dies_with_the_first_app() {
    let (before, after) = run_scenario(DispatchMode::Legacy);
    assert_eq!(
        after, before,
        "after killing app A, app B's events are no longer delivered under \
         the legacy shared dispatcher (the Fig 2 pathology)"
    );
}

#[test]
fn per_app_dispatchers_survive_a_neighbors_death() {
    let (before, after) = run_scenario(DispatchMode::PerApplication);
    assert_eq!(
        after,
        before + 3,
        "killing app A must not affect app B's event delivery (Fig 4)"
    );
}
