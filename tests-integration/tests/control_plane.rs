//! Control-plane scale-out under adversarial conditions: concurrent
//! spawn/reap/lookup stress across the sharded app registry, `ps` sweeps
//! racing an exec storm, the lazy per-user policy store end to end, and
//! decision-cache epoch exactness across the epoch-published policy root.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use jmp_security::{FileActions, Permission};
use tests_integration::{register_app, runtime};

/// A main body that parks until the runtime tears the application down.
fn register_parker(rt: &jmp_core::MpRuntime, name: &str) {
    register_app(rt, name, |_| {
        // Sleep returns Err when the reaper interrupts the thread.
        while jmp_vm::thread::sleep(Duration::from_millis(50)).is_ok() {}
        Ok(())
    });
}

/// Spawn/reap/lookup stress across shards: four spawner threads race four
/// reaper-feeders and a lookup thread. Invariants: every spawn yields a
/// unique AppId, every id is visible by lookup until stopped, and after the
/// storm drains the registry is exactly empty — no lost, duplicated, or
/// resurrected entries.
#[test]
fn concurrent_spawn_reap_lookup_stress() {
    const SPAWNERS: usize = 4;
    const APPS_PER_SPAWNER: usize = 50;

    let rt = runtime();
    register_app(&rt, "burst", |_| Ok(()));
    register_parker(&rt, "parker");

    let seen = Arc::new(parking_lot::Mutex::new(std::collections::HashSet::new()));
    let stop = Arc::new(AtomicBool::new(false));
    let lookups = Arc::new(AtomicUsize::new(0));

    let prober = {
        let rt = rt.clone();
        let stop = Arc::clone(&stop);
        let lookups = Arc::clone(&lookups);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                // Sweeps and point lookups interleave with spawns/reaps; a
                // single sweep must never show a duplicated id.
                let apps = rt.applications();
                let mut ids: Vec<_> = apps.iter().map(|a| a.id()).collect();
                ids.dedup();
                assert_eq!(ids.len(), apps.len(), "duplicate AppId in one sweep");
                for app in &apps {
                    let _ = rt.application(app.id());
                }
                lookups.fetch_add(1, Ordering::Relaxed);
            }
        })
    };

    let mut spawners = Vec::new();
    for _ in 0..SPAWNERS {
        let rt = rt.clone();
        let seen = Arc::clone(&seen);
        spawners.push(std::thread::spawn(move || {
            for i in 0..APPS_PER_SPAWNER {
                // Alternate short-lived apps (immediate natural exit → reap)
                // with parked ones torn down explicitly.
                let name = if i % 2 == 0 { "burst" } else { "parker" };
                let app = rt.launch_as("alice", name, &[]).expect("spawn succeeds");
                assert!(
                    seen.lock().insert(app.id()),
                    "duplicate AppId handed out: {}",
                    app.id()
                );
                if name == "parker" {
                    app.stop(0).unwrap();
                }
            }
        }));
    }
    for spawner in spawners {
        spawner.join().unwrap();
    }
    assert!(
        rt.await_idle(Duration::from_secs(30)),
        "storm must drain: {} apps still live",
        rt.application_count()
    );
    stop.store(true, Ordering::Relaxed);
    prober.join().unwrap();

    assert_eq!(seen.lock().len(), SPAWNERS * APPS_PER_SPAWNER);
    assert_eq!(rt.application_count(), 0);
    assert!(lookups.load(Ordering::Relaxed) > 0, "prober ran");
    rt.shutdown();
}

/// Satellite: `ps`-style sweeps during a 1k-app exec storm never block
/// spawns. The sweeps read shard by shard, so a spawner on another shard
/// proceeds; the storm must finish in bounded time with every sweep seeing
/// internally-consistent data.
#[test]
fn ps_during_exec_storm_does_not_block_spawns() {
    const APPS: usize = 1_000;

    let rt = runtime();
    register_parker(&rt, "resident");

    let stop = Arc::new(AtomicBool::new(false));
    let sweeps = Arc::new(AtomicUsize::new(0));
    let sweeper = {
        let rt = rt.clone();
        let stop = Arc::clone(&stop);
        let sweeps = Arc::clone(&sweeps);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                // The `ps`/`top` read-out path: a full sweep plus the
                // per-app gauge refresh, run from the trusted host context.
                let rows = jmp_core::obs::top_rows(&rt).expect("host may read metrics");
                assert!(rows.windows(2).all(|w| w[0].id < w[1].id), "rows sorted");
                sweeps.fetch_add(1, Ordering::Relaxed);
            }
        })
    };

    let started = Instant::now();
    let mut apps = Vec::with_capacity(APPS);
    for _ in 0..APPS {
        apps.push(rt.launch_as("alice", "resident", &[]).expect("spawn"));
    }
    let spawn_elapsed = started.elapsed();
    assert_eq!(rt.application_count(), APPS);
    assert!(
        spawn_elapsed < Duration::from_secs(60),
        "spawn storm blocked behind sweeps: {spawn_elapsed:?}"
    );

    stop.store(true, Ordering::Relaxed);
    sweeper.join().unwrap();
    assert!(
        sweeps.load(Ordering::Relaxed) > 0,
        "sweeper made progress during the storm"
    );

    for app in &apps {
        app.stop(0).unwrap();
    }
    assert!(rt.await_idle(Duration::from_secs(60)), "storm drains");
    rt.shutdown();
}

/// The lazy policy store end to end: a grant provisioned as a per-user file
/// under /etc/policy.d is invisible until the first check demands it, is
/// served from the store's cache afterwards, and is revoked — despite warm
/// caches at both layers — when the file is replaced.
#[test]
fn lazy_user_grants_load_on_first_check_and_revoke_on_reprovision() {
    let rt = runtime();
    let store = Arc::clone(
        rt.vm()
            .policy()
            .user_store()
            .expect("the runtime attaches a lazy store"),
    );
    let loads_before = store.loads();

    // Provision a grant the resident policy does not contain.
    rt.provision_user_policy(
        "alice",
        r#"grant user "alice" { permission file "/srv/lazy.txt" "read"; };"#,
    )
    .unwrap();

    // A failed `main` still exits 0 (natural group end), so the outcome is
    // observed through captured counters, not the exit code.
    let granted = Arc::new(AtomicUsize::new(0));
    let denied = Arc::new(AtomicUsize::new(0));
    {
        let granted = Arc::clone(&granted);
        let denied = Arc::clone(&denied);
        register_app(&rt, "lazyreader", move |_| {
            let vm = jmp_vm::Vm::current().expect("on a VM thread");
            for _ in 0..5 {
                match vm.access_check(&Permission::file("/srv/lazy.txt", FileActions::READ)) {
                    Ok(()) => granted.fetch_add(1, Ordering::Relaxed),
                    Err(_) => denied.fetch_add(1, Ordering::Relaxed),
                };
            }
            Ok(())
        });
    }
    let app = rt.launch_as("alice", "lazyreader", &[]).unwrap();
    app.wait_for().unwrap();
    assert_eq!(granted.load(Ordering::Relaxed), 5, "lazy grant honored");
    assert_eq!(denied.load(Ordering::Relaxed), 0);
    assert!(
        store.loads() > loads_before,
        "the first check pulled alice's grants through the store"
    );
    assert!(store.resident_users() >= 1);

    // Re-provision without the grant: both the store cache and the decision
    // cache were warm; the next run must still be denied.
    rt.provision_user_policy("alice", r#"grant user "alice" { };"#)
        .unwrap();
    let app = rt.launch_as("alice", "lazyreader", &[]).unwrap();
    app.wait_for().unwrap();
    assert_eq!(
        denied.load(Ordering::Relaxed),
        5,
        "revoked lazy grant denied despite warm caches"
    );
    rt.shutdown();
}

/// An evicted (invalidated) store entry reloads identically: invalidating
/// the cache does not change what the grants say, only where they are read
/// from.
#[test]
fn invalidated_store_entries_reload_identically() {
    let rt = runtime();
    let store = Arc::clone(rt.vm().policy().user_store().unwrap());
    rt.provision_user_policy(
        "bob",
        r#"grant user "bob" { permission file "/srv/bob.txt" "read,write"; };"#,
    )
    .unwrap();

    let demand = Permission::file("/srv/bob.txt", FileActions::WRITE);
    let policy = rt.vm().policy();
    assert!(policy.user_implies("bob", &demand));
    let loads = store.loads();
    // Served from the store cache: no new load.
    assert!(policy.user_implies("bob", &demand));
    assert_eq!(store.loads(), loads);
    // Cold after invalidation, and the answer is bit-identical.
    store.invalidate();
    assert!(policy.user_implies("bob", &demand));
    assert!(store.loads() > loads, "the reload went back to the source");
    rt.shutdown();
}

/// Decision-cache epoch exactness across the epoch-published policy root:
/// `set_policy` on the runtime's VM retires every warm decision exactly
/// once — grants added by the new policy are honored on the very next
/// check, revoked ones denied, with the lazy store still attached.
#[test]
fn set_policy_over_published_root_keeps_cache_exact() {
    let rt = runtime();
    let vm = rt.vm().clone();

    let outcomes = Arc::new(parking_lot::Mutex::new(Vec::new()));
    {
        let outcomes = Arc::clone(&outcomes);
        register_app(&rt, "flipreader", move |_| {
            let vm = jmp_vm::Vm::current().expect("on a VM thread");
            let ok = vm
                .access_check(&Permission::file("/flip/x", FileActions::READ))
                .is_ok();
            outcomes.lock().push(ok);
            Ok(())
        });
    }
    let run = |expect: bool, label: &str| {
        let app = rt.launch_as("alice", "flipreader", &[]).unwrap();
        app.wait_for().unwrap();
        assert_eq!(outcomes.lock().pop(), Some(expect), "{label}");
    };

    // Keep the pre-grant policy (store attached) so the revoke below
    // publishes the exact previous shape.
    let without_grant = (*vm.policy()).clone();
    run(false, "not granted yet: denied, and the denial path warmed");

    // Derive the next policy from the live one (carrying the user store),
    // add the grant, publish.
    let mut with_grant = (*vm.policy()).clone();
    with_grant.grant_user(
        "alice",
        vec![Permission::file("/flip/x", FileActions::READ)],
    );
    vm.set_policy(with_grant).unwrap();
    assert!(
        vm.policy().user_store().is_some(),
        "the published policy still carries the lazy store"
    );
    run(true, "new grant honored on the very next check");

    // Revoke by publishing the previous shape again.
    vm.set_policy(without_grant).unwrap();
    run(false, "revoked grant denied on the very next check");
    rt.shutdown();
}
