//! Data-plane integration: the ring pipe and the batched/coalescing event
//! queue exercised across crate boundaries — byte-exactness under seam
//! pressure, short-write accounting, end-to-end paint coalescing, dropped
//! events surfacing in `vmstat`, parked (not stalled) idle dispatchers, and
//! span exactness for traced pipes.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use jmp_awt::{DispatchMode, Event, EventKind, Toolkit, WindowId};
use jmp_core::MpRuntime;
use jmp_obs::SpanCategory;
use jmp_security::Policy;
use jmp_shell::spawn_session;
use jmp_vm::io::{pipe, pipe_traced};
use jmp_vm::VmError;

fn gui_runtime() -> MpRuntime {
    let text = format!(
        "{}\n{}",
        jmp_shell::default_policy_text(),
        r#"
        grant user "alice" { permission file "/home/alice/-" "read,write,delete"; };
        "#
    );
    let rt = MpRuntime::builder()
        .policy(Policy::parse(&text).unwrap())
        .user("alice", "apw")
        .gui(DispatchMode::PerApplication)
        .build()
        .unwrap();
    jmp_shell::install(&rt).unwrap();
    rt
}

fn register_window_app(rt: &MpRuntime, name: &str) {
    rt.vm()
        .material()
        .register(
            jmp_vm::ClassDef::builder(name)
                .main(|_| {
                    let w = jmp_core::gui::create_window("data-plane")?;
                    w.add_button("b");
                    jmp_vm::thread::sleep(Duration::from_secs(600))
                })
                .build(),
            jmp_security::CodeSource::local(format!("file:/apps/{name}")),
        )
        .unwrap();
}

fn pattern(len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u64).wrapping_mul(131).wrapping_add(i as u64 >> 7) as u8)
        .collect()
}

/// A deliberately seam-hostile ring (odd 13-byte capacity, chunk sizes
/// coprime with it) stays byte-exact across 100 KiB moved between two VM
/// threads.
#[test]
fn ring_pipe_is_byte_exact_under_seam_pressure() {
    let rt = tests_integration::runtime();
    let (writer, reader) = pipe(13);
    let data = pattern(100 * 1024);
    let expected = data.clone();

    let producer = rt
        .vm()
        .thread_builder()
        .name("seam-writer")
        .spawn(move |_| {
            let mut offset = 0;
            let mut step = 1;
            while offset < data.len() {
                let n = step.min(data.len() - offset);
                writer.write_all(&data[offset..offset + n]).unwrap();
                offset += n;
                step = step % 37 + 1;
            }
            writer.close();
        })
        .unwrap();

    let mut received = Vec::new();
    let mut buf = [0u8; 29];
    loop {
        let n = reader.read(&mut buf).unwrap();
        if n == 0 {
            break;
        }
        received.extend_from_slice(&buf[..n]);
    }
    producer.join().unwrap();
    assert_eq!(received, expected);
    rt.shutdown();
}

/// The degenerate ring: capacity one still moves every byte, in order.
#[test]
fn capacity_one_pipe_moves_every_byte() {
    let rt = tests_integration::runtime();
    let (writer, reader) = pipe(1);
    let data = pattern(1000);
    let expected = data.clone();
    let producer = rt
        .vm()
        .thread_builder()
        .name("one-byte-writer")
        .spawn(move |_| {
            writer.write_all(&data).unwrap();
            writer.close();
        })
        .unwrap();
    let mut received = Vec::new();
    let mut buf = [0u8; 64];
    loop {
        let n = reader.read(&mut buf).unwrap();
        if n == 0 {
            break;
        }
        received.extend_from_slice(&buf[..n]);
    }
    producer.join().unwrap();
    assert_eq!(received, expected);
    rt.shutdown();
}

/// Regression (satellite 2): a `write_all` cut short by the reader closing
/// reports how many bytes were accepted before the failure, both in the
/// variant payload and in the rendered message.
#[test]
fn short_write_reports_accepted_bytes() {
    let rt = tests_integration::runtime();
    let (writer, reader) = pipe(4);
    let (tx, rx) = std::sync::mpsc::channel();
    let producer = rt
        .vm()
        .thread_builder()
        .name("short-writer")
        .spawn(move |_| {
            let _ = tx.send(writer.write_all(&[7u8; 10]));
        })
        .unwrap();
    // Take the first buffered chunk, then hang up with the writer mid-call.
    let mut buf = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        got += reader.read(&mut buf[got..]).unwrap();
    }
    reader.close();
    let err = rx.recv().unwrap().unwrap_err();
    producer.join().unwrap();
    let message = err.to_string();
    match err {
        VmError::ShortWrite { accepted, cause } => {
            assert!(
                (4..10).contains(&accepted),
                "made progress but did not finish: {accepted}"
            );
            assert!(matches!(cause.as_ref(), VmError::StreamClosed));
            assert!(message.contains(&format!("{accepted} bytes accepted")));
        }
        other => panic!("expected ShortWrite, got {other:?}"),
    }
    rt.shutdown();
}

/// Traced pipes record exactly one `pipe.write` span per call (however many
/// blocking rounds it takes) and charge `pipe.read` to the writer's trace,
/// so the write→read link lines up.
#[test]
fn traced_pipe_spans_are_exact_and_linked() {
    let rt = tests_integration::runtime();
    let recorder = rt.vm().obs().recorder().clone();
    let (writer, reader) = pipe_traced(8, None, Some(recorder.clone()));

    let producer = rt
        .vm()
        .thread_builder()
        .name("traced-writer")
        .spawn(move |_| {
            let exec = recorder.begin(SpanCategory::Exec, "exec:producer");
            // 32 bytes through an 8-byte pipe: four blocking rounds, one call.
            writer.write_all(&[1u8; 32]).unwrap();
            drop(exec);
            jmp_obs::trace::clear();
            writer.close();
        })
        .unwrap();

    let mut sunk = 0;
    let mut buf = [0u8; 8];
    loop {
        let n = reader.read(&mut buf).unwrap();
        if n == 0 {
            break;
        }
        sunk += n;
    }
    producer.join().unwrap();
    assert_eq!(sunk, 32);

    let spans = rt.vm().obs().recorder().spans();
    let writes: Vec<_> = spans.iter().filter(|s| s.name == "pipe.write").collect();
    let reads: Vec<_> = spans.iter().filter(|s| s.name == "pipe.read").collect();
    assert_eq!(writes.len(), 1, "one span per write_all call: {spans:#?}");
    assert!(!reads.is_empty());
    for read in &reads {
        assert_eq!(
            read.trace_id, writes[0].trace_id,
            "reads are charged to the writer's trace"
        );
    }
    rt.shutdown();
}

/// A paint storm injected at the display collapses before dispatch and the
/// merges land in the VM-wide `events.coalesced` rollup counter.
#[test]
fn paint_storms_coalesce_end_to_end() {
    let rt = gui_runtime();
    register_window_app(&rt, "painter");
    let app = rt.launch_as("alice", "painter", &[]).unwrap();
    let toolkit = rt.toolkit().unwrap().clone();
    let display = rt.display().unwrap().clone();
    assert!(Toolkit::wait_until(Duration::from_secs(5), || toolkit
        .window_count()
        == 1));
    let window = toolkit.windows_of_app(app.id().0)[0];

    // Storm until a merge is observed (batching makes back-to-back paints
    // adjacent somewhere — the display wire or the app queue — virtually
    // immediately; the loop just makes the test schedule-proof).
    let mut merged = 0;
    for _ in 0..20 {
        for _ in 0..1000 {
            display.inject_paint(window, None).unwrap();
        }
        let rollup = jmp_core::obs::vm_rollup(&rt).unwrap();
        merged = rollup
            .counters
            .get("events.coalesced")
            .copied()
            .unwrap_or(0);
        if merged > 0 {
            break;
        }
    }
    assert!(merged > 0, "a 20k-paint storm must coalesce somewhere");
    app.stop(0).unwrap();
    let _ = app.wait_for();
    rt.shutdown();
}

/// Satellite 1: pushes to a closed (torn-down) application queue are counted
/// as dropped, and the counter surfaces in the shell's `vmstat`.
#[test]
fn post_close_pushes_surface_as_dropped_in_vmstat() {
    let rt = gui_runtime();
    register_window_app(&rt, "dropper");
    let app = rt.launch_as("alice", "dropper", &[]).unwrap();
    let toolkit = rt.toolkit().unwrap().clone();
    assert!(Toolkit::wait_until(Duration::from_secs(5), || toolkit
        .window_count()
        == 1));
    let tag = app.id().0;
    let queue = toolkit.queue_of(tag).unwrap();

    app.stop(0).unwrap();
    app.wait_for().unwrap();
    assert!(Toolkit::wait_until(Duration::from_secs(5), || queue.is_closed()));
    // A late event from a racing producer: dropped, not delivered.
    queue.push(Event::new(WindowId(999), None, EventKind::Paint));
    assert_eq!(queue.total_dropped(), 1);
    let rollup = jmp_core::obs::vm_rollup(&rt).unwrap();
    assert!(rollup.counters.get("events.dropped").copied().unwrap_or(0) >= 1);

    // And the operator can see it: a system-account shell's vmstat prints
    // the rollup counter (readMetrics is granted to `system` only).
    let (terminal, session) = spawn_session(&rt, "shell", &[]).unwrap();
    for line in ["vmstat", "quit"] {
        terminal.type_line(line).unwrap();
    }
    terminal.type_eof();
    session.wait_for().unwrap();
    let screen = terminal.screen_text();
    assert!(
        screen.contains("events.dropped"),
        "vmstat lists the drop counter:\n{screen}"
    );
    rt.shutdown();
}

static CLICKS: AtomicUsize = AtomicUsize::new(0);

/// Idle dispatchers park: the watchdog reports them parked (not stalled),
/// they accrue zero idle wakeups, and they still dispatch promptly when an
/// event finally arrives.
#[test]
fn idle_dispatchers_park_without_wakeups() {
    CLICKS.store(0, Ordering::SeqCst);
    let rt = gui_runtime();
    rt.vm()
        .material()
        .register(
            jmp_vm::ClassDef::builder("clicker")
                .main(|_| {
                    let w = jmp_core::gui::create_window("idle")?;
                    let b = w.add_button("go");
                    w.on_action(b, |_| {
                        CLICKS.fetch_add(1, Ordering::SeqCst);
                    });
                    jmp_vm::thread::sleep(Duration::from_secs(600))
                })
                .build(),
            jmp_security::CodeSource::local("file:/apps/clicker"),
        )
        .unwrap();
    let app = rt.launch_as("alice", "clicker", &[]).unwrap();
    let toolkit = rt.toolkit().unwrap().clone();
    let display = rt.display().unwrap().clone();
    assert!(Toolkit::wait_until(Duration::from_secs(5), || toolkit
        .window_count()
        == 1));
    let tag = app.id().0;
    let queue = toolkit.queue_of(tag).unwrap();

    // Let everything go idle, then look at the watchdog table: the
    // dispatcher and the input thread sit parked, nobody is stalled, and
    // the idle interval cost zero queue wakeups.
    std::thread::sleep(Duration::from_millis(150));
    let rows = jmp_core::obs::watchdog_rows(&rt).unwrap();
    let dispatcher = rows
        .iter()
        .find(|r| r.name.contains("dispatch") && r.app == Some(tag))
        .unwrap_or_else(|| panic!("dispatcher row present: {rows:#?}"));
    assert!(dispatcher.parked, "idle dispatcher parks: {dispatcher:#?}");
    assert!(
        !dispatcher.stalled,
        "parked is not stalled: {dispatcher:#?}"
    );
    let input = rows.iter().find(|r| r.name == "awt-input").unwrap();
    assert!(input.parked && !input.stalled);
    assert_eq!(queue.idle_wakeups(), 0, "idle must cost zero wakeups");

    // Parked, not dead: a click still lands.
    let window = toolkit.windows_of_app(tag)[0];
    display
        .inject_action(window, jmp_awt::ComponentId(1))
        .unwrap();
    assert!(Toolkit::wait_until(Duration::from_secs(5), || CLICKS
        .load(Ordering::SeqCst)
        == 1));
    app.stop(0).unwrap();
    let _ = app.wait_for();
    rt.shutdown();
}
