//! Property-style tests over the core data structures and invariants:
//! the permission lattice, policy round-trips, path normalization, the VFS
//! against a model, thread-group accounting, and — most importantly — the
//! `jbc` verifier's soundness contract.
//!
//! Originally written with `proptest`; this build environment has no
//! registry access, so the same properties are exercised with a seeded
//! SplitMix64 generator — deterministic, still hundreds of cases each.

use std::collections::HashMap;

/// SplitMix64: tiny, seedable, good enough for structured case generation.
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound.max(1)
    }

    fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        lo + self.below((hi - lo) as u64) as i64
    }

    /// A lowercase word of 1..=max_len characters.
    fn word(&mut self, max_len: u64) -> String {
        let len = 1 + self.below(max_len);
        (0..len)
            .map(|_| char::from(b'a' + self.below(26) as u8))
            .collect()
    }

    /// 1..5 path components joined by `/` (no leading slash).
    fn path_components(&mut self) -> String {
        let n = 1 + self.below(4);
        (0..n).map(|_| self.word(6)).collect::<Vec<_>>().join("/")
    }

    fn file_actions(&mut self) -> jmp_security::FileActions {
        jmp_security::FileActions {
            read: self.bool(),
            write: self.bool(),
            execute: self.bool(),
            delete: self.bool(),
        }
    }
}

// ---------------------------------------------------------------------------
// Permissions
// ---------------------------------------------------------------------------

#[test]
fn recursive_file_grant_implies_everything_under_it() {
    let mut g = Gen::new(0xA11CE);
    for _ in 0..256 {
        let base_path = format!("/{}", g.path_components());
        let deep_path = format!("{base_path}/{}", g.path_components());
        let actions = g.file_actions();
        let grant = jmp_security::Permission::file(format!("{base_path}/-"), actions);
        let demand = jmp_security::Permission::file(&deep_path, actions);
        assert!(
            grant.implies(&demand),
            "{base_path}/- must imply {deep_path}"
        );
        // ...but never the base directory itself, and never a sibling.
        assert!(!grant.implies(&jmp_security::Permission::file(&base_path, actions)));
        let sibling = format!("{base_path}x/file");
        assert!(!grant.implies(&jmp_security::Permission::file(sibling, actions)));
    }
}

#[test]
fn action_superset_is_monotone() {
    let mut g = Gen::new(0xB0B);
    for _ in 0..256 {
        let path = format!("/{}", g.path_components());
        let a = g.file_actions();
        let b = g.file_actions();
        let union = a.union(b);
        let grant = jmp_security::Permission::file(&path, union);
        assert!(grant.implies(&jmp_security::Permission::file(&path, a)));
        assert!(grant.implies(&jmp_security::Permission::file(&path, b)));
        // And implication requires containment:
        let grant_a = jmp_security::Permission::file(&path, a);
        let demand_b = jmp_security::Permission::file(&path, b);
        assert_eq!(grant_a.implies(&demand_b), a.contains(b));
    }
}

#[test]
fn all_permission_implies_any_file() {
    let mut g = Gen::new(0xCAFE);
    for _ in 0..256 {
        let p =
            jmp_security::Permission::file(format!("/{}", g.path_components()), g.file_actions());
        assert!(jmp_security::Permission::All.implies(&p));
        assert!(p.implies(&p), "reflexivity");
    }
}

// ---------------------------------------------------------------------------
// Policy round-trip
// ---------------------------------------------------------------------------

fn gen_permission(g: &mut Gen) -> jmp_security::Permission {
    match g.below(5) {
        0 => jmp_security::Permission::All,
        1 => {
            // Non-empty action set.
            let mut actions = g.file_actions();
            if actions == jmp_security::FileActions::default() {
                actions.read = true;
            }
            jmp_security::Permission::file(format!("/{}", g.path_components()), actions)
        }
        2 => jmp_security::Permission::runtime(g.word(8)),
        3 => jmp_security::Permission::awt(g.word(8)),
        _ => jmp_security::Permission::user(g.word(8)),
    }
}

#[test]
fn policy_display_reparse_roundtrip() {
    let mut g = Gen::new(0xD00D);
    for _ in 0..128 {
        let mut policy = jmp_security::Policy::new();
        for _ in 0..g.below(5) {
            let target = if g.bool() {
                jmp_security::GrantTarget::User(g.word(8))
            } else {
                jmp_security::GrantTarget::Code(jmp_security::CodeSource::local(format!(
                    "file:/{}",
                    g.path_components()
                )))
            };
            let permissions = (0..g.below(4)).map(|_| gen_permission(&mut g)).collect();
            policy.add_grant(jmp_security::Grant {
                target,
                permissions,
            });
        }
        let reparsed = jmp_security::Policy::parse(&policy.to_string()).unwrap();
        assert_eq!(policy, reparsed);
    }
}

// ---------------------------------------------------------------------------
// Paths
// ---------------------------------------------------------------------------

fn gen_pathish(g: &mut Gen, max_len: u64, alphabet: &[u8]) -> String {
    let len = g.below(max_len + 1);
    (0..len)
        .map(|_| char::from(alphabet[g.below(alphabet.len() as u64) as usize]))
        .collect()
}

#[test]
fn normalize_is_idempotent() {
    let mut g = Gen::new(0x9A7);
    let alphabet: Vec<u8> = (b'a'..=b'e').chain([b'/', b'.']).collect();
    for _ in 0..512 {
        let raw = gen_pathish(&mut g, 30, &alphabet);
        let once = jmp_vfs::normalize(&raw);
        assert_eq!(jmp_vfs::normalize(&once), once, "input {raw:?}");
        assert!(once.starts_with('/'));
        assert!(!once.contains("//"));
        assert!(!once.split('/').any(|c| c == "." || c == ".."));
    }
}

#[test]
fn join_of_normalized_is_stable() {
    let mut g = Gen::new(0x901E);
    let base_alphabet: Vec<u8> = (b'a'..=b'e').chain([b'/']).collect();
    let rel_alphabet: Vec<u8> = (b'a'..=b'e').chain([b'/', b'.']).collect();
    for _ in 0..512 {
        let base = jmp_vfs::normalize(&gen_pathish(&mut g, 16, &base_alphabet));
        let rel = gen_pathish(&mut g, 16, &rel_alphabet);
        let joined = jmp_vfs::join(&base, &rel);
        assert_eq!(
            jmp_vfs::normalize(&joined),
            joined,
            "base {base:?} rel {rel:?}"
        );
        // Joining an absolute path ignores the base entirely.
        assert_eq!(jmp_vfs::join(&base, &joined), joined);
    }
}

// ---------------------------------------------------------------------------
// VFS vs. a model
// ---------------------------------------------------------------------------

#[test]
fn vfs_matches_a_hashmap_model() {
    let mut g = Gen::new(0xF5);
    for _ in 0..128 {
        let fs = jmp_vfs::Vfs::new();
        let root = jmp_security::UserId(0);
        fs.mkdirs("/m", root).unwrap();
        let mut model: HashMap<String, Vec<u8>> = HashMap::new();
        let path = |f: u64| format!("/m/f{f}");

        for _ in 0..g.below(40) {
            match g.below(4) {
                0 => {
                    let f = g.below(8);
                    let data: Vec<u8> = (0..g.below(16)).map(|_| g.next_u64() as u8).collect();
                    fs.write(&path(f), &data, root).unwrap();
                    model.insert(path(f), data);
                }
                1 => {
                    let f = g.below(8);
                    let data: Vec<u8> = (0..g.below(16)).map(|_| g.next_u64() as u8).collect();
                    fs.append(&path(f), &data, root).unwrap();
                    model.entry(path(f)).or_default().extend_from_slice(&data);
                }
                2 => {
                    let f = g.below(8);
                    let fs_result = fs.remove(&path(f), root).is_ok();
                    let model_result = model.remove(&path(f)).is_some();
                    assert_eq!(fs_result, model_result);
                }
                _ => {
                    let (a, b) = (g.below(8), g.below(8));
                    let fs_result = fs.rename(&path(a), &path(b), root).is_ok();
                    let can =
                        model.contains_key(&path(a)) && !model.contains_key(&path(b)) && a != b;
                    assert_eq!(fs_result, can);
                    if can {
                        let data = model.remove(&path(a)).unwrap();
                        model.insert(path(b), data);
                    }
                }
            }
        }
        // Final state equivalence.
        for f in 0u64..8 {
            let p = path(f);
            match model.get(&p) {
                Some(expected) => assert_eq!(&fs.read(&p, root).unwrap(), expected),
                None => assert!(!fs.exists(&p, root)),
            }
        }
        let listed = fs.list_dir("/m", root).unwrap().len();
        assert_eq!(listed, model.len());
    }
}

// ---------------------------------------------------------------------------
// Thread-group accounting
// ---------------------------------------------------------------------------

#[test]
fn group_counts_are_consistent() {
    let mut g = Gen::new(0x6E0);
    for _ in 0..128 {
        let root = jmp_vm::ThreadGroup::new_root("root");
        let children = [
            root.new_child("a").unwrap(),
            root.new_child("b").unwrap(),
            root.new_child("a/x").unwrap(),
        ];
        let mut live: Vec<(usize, bool, jmp_vm::ThreadId)> = Vec::new();
        for next_id in 0..g.below(30) {
            let which = g.below(3) as usize;
            let daemon = g.bool();
            let id = jmp_vm::ThreadId(next_id);
            children[which].register_thread(id, daemon).unwrap();
            live.push((which, daemon, id));
            // Occasionally retire the oldest.
            if live.len() > 4 {
                let (w, d, id) = live.remove(0);
                children[w].deregister_thread(id, d);
            }
        }
        // Invariant: the root's counts equal the sum over the live set.
        let nondaemon = live.iter().filter(|(_, d, _)| !*d).count();
        assert_eq!(root.nondaemon_count(), nondaemon);
        assert_eq!(root.thread_count(), live.len());
        // Drain; counts return to zero.
        for (w, d, id) in live {
            children[w].deregister_thread(id, d);
        }
        assert_eq!(root.nondaemon_count(), 0);
        assert_eq!(root.thread_count(), 0);
    }
}

// ---------------------------------------------------------------------------
// Shell parser: rendered commands re-parse to the same structure
// ---------------------------------------------------------------------------

fn gen_word(g: &mut Gen) -> String {
    let alphabet = b"abcdefgh0123._/-";
    let len = 1 + g.below(8);
    (0..len)
        .map(|_| char::from(alphabet[g.below(alphabet.len() as u64) as usize]))
        .collect()
}

fn gen_stage(g: &mut Gen) -> jmp_shell::parser::Stage {
    jmp_shell::parser::Stage {
        program: gen_word(g),
        args: (0..g.below(3)).map(|_| gen_word(g)).collect(),
        stdin_from: g.bool().then(|| gen_word(g)),
        stdout_to: g.bool().then(|| jmp_shell::parser::Redirect {
            path: gen_word(g),
            append: g.bool(),
        }),
    }
}

fn render_stage(stage: &jmp_shell::parser::Stage) -> String {
    let mut out = stage.program.clone();
    for arg in &stage.args {
        out.push(' ');
        out.push_str(arg);
    }
    if let Some(path) = &stage.stdin_from {
        out.push_str(" < ");
        out.push_str(path);
    }
    if let Some(redirect) = &stage.stdout_to {
        out.push_str(if redirect.append { " >> " } else { " > " });
        out.push_str(&redirect.path);
    }
    out
}

#[test]
fn rendered_commands_reparse_identically() {
    let mut g = Gen::new(0x5E11);
    for _ in 0..256 {
        let stages: Vec<_> = (0..1 + g.below(3)).map(|_| gen_stage(&mut g)).collect();
        let background = g.bool();
        let line = format!(
            "{}{}",
            stages
                .iter()
                .map(render_stage)
                .collect::<Vec<_>>()
                .join(" | "),
            if background { " &" } else { "" }
        );
        let parsed = jmp_shell::parser::parse_line(&line).unwrap();
        assert_eq!(parsed.len(), 1, "line {line:?}");
        assert_eq!(&parsed[0].stages, &stages, "line {line:?}");
        assert_eq!(parsed[0].background, background);
    }
}

// ---------------------------------------------------------------------------
// Interpreter vs. a model: compiled expressions evaluate identically
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Expr {
    Const(i64),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    Neg(Box<Expr>),
}

impl Expr {
    fn eval(&self) -> i64 {
        match self {
            Expr::Const(v) => *v,
            Expr::Add(a, b) => a.eval().wrapping_add(b.eval()),
            Expr::Sub(a, b) => a.eval().wrapping_sub(b.eval()),
            Expr::Mul(a, b) => a.eval().wrapping_mul(b.eval()),
            Expr::Neg(a) => a.eval().wrapping_neg(),
        }
    }

    /// Post-order compilation to `jbc` stack code.
    fn compile(&self, out: &mut Vec<jmp_vm::interp::Insn>) {
        use jmp_vm::interp::Insn;
        match self {
            Expr::Const(v) => out.push(Insn::PushInt(*v)),
            Expr::Add(a, b) => {
                a.compile(out);
                b.compile(out);
                out.push(Insn::Add);
            }
            Expr::Sub(a, b) => {
                a.compile(out);
                b.compile(out);
                out.push(Insn::Sub);
            }
            Expr::Mul(a, b) => {
                a.compile(out);
                b.compile(out);
                out.push(Insn::Mul);
            }
            Expr::Neg(a) => {
                a.compile(out);
                out.push(Insn::Neg);
            }
        }
    }
}

fn gen_expr(g: &mut Gen, depth: u64) -> Expr {
    if depth == 0 || g.below(4) == 0 {
        return Expr::Const(g.i64_in(-1000, 1000));
    }
    match g.below(4) {
        0 => Expr::Add(
            Box::new(gen_expr(g, depth - 1)),
            Box::new(gen_expr(g, depth - 1)),
        ),
        1 => Expr::Sub(
            Box::new(gen_expr(g, depth - 1)),
            Box::new(gen_expr(g, depth - 1)),
        ),
        2 => Expr::Mul(
            Box::new(gen_expr(g, depth - 1)),
            Box::new(gen_expr(g, depth - 1)),
        ),
        _ => Expr::Neg(Box::new(gen_expr(g, depth - 1))),
    }
}

#[test]
fn compiled_expressions_evaluate_like_the_model() {
    use jmp_vm::interp::{ClassImage, Insn, Interpreter, MethodImage, NoNatives, Value};
    let mut g = Gen::new(0xE47);
    for _ in 0..256 {
        let expr = gen_expr(&mut g, 5);
        let mut code = Vec::new();
        expr.compile(&mut code);
        code.push(Insn::ReturnValue);
        let image = ClassImage {
            name: "Expr".into(),
            methods: vec![MethodImage {
                name: "main".into(),
                params: 0,
                locals: 0,
                code,
            }],
        };
        // Anything the compiler emits must verify...
        jmp_vm::interp::verify(&image).unwrap();
        // ...and evaluate exactly like the model (wrapping semantics).
        let interp =
            Interpreter::new(std::sync::Arc::new(image), std::sync::Arc::new(NoNatives)).unwrap();
        assert_eq!(interp.run("main", vec![]).unwrap(), Value::Int(expr.eval()));
    }
}

// ---------------------------------------------------------------------------
// Verifier soundness
// ---------------------------------------------------------------------------

/// A raw instruction spec: `(opcode selector, int payload, jump payload)`.
/// Mapped to a concrete [`Insn`](jmp_vm::interp::Insn) once the final code
/// length is known (jump targets are taken modulo the length).
type InsnSpec = (u8, i64, u16);

fn build_insn(spec: InsnSpec, code_len: usize, locals: u8) -> jmp_vm::interp::Insn {
    use jmp_vm::interp::Insn;
    let (op, int, jump) = spec;
    let target = (jump as usize % code_len) as u16;
    let slot = (int.unsigned_abs() as u8) % locals.max(1);
    match op % 21 {
        0 => Insn::PushInt(int),
        1 => Insn::PushNull,
        2 => Insn::PushBool(int % 2 == 0),
        3 => Insn::Load(slot),
        4 => Insn::Store(slot),
        5 => Insn::Pop,
        6 => Insn::Dup,
        7 => Insn::Swap,
        8 => Insn::Add,
        9 => Insn::Sub,
        10 => Insn::Mul,
        11 => Insn::Neg,
        12 => Insn::Concat,
        13 => Insn::Eq,
        14 => Insn::Lt,
        15 => Insn::Not,
        16 => Insn::Jump(target),
        17 => Insn::JumpIfFalse(target),
        18 => Insn::JumpIfTrue(target),
        19 => Insn::Return,
        _ => Insn::ReturnValue,
    }
}

/// The verifier's contract: if it accepts an image, interpretation must
/// never fault on *machine-safety* grounds (stack underflow, bad slot,
/// falling off the code). Resource traps (fuel) are fine; type
/// mismatches (int ops on strings) trap safely and are also fine — what
/// must never happen is an internal panic or an underflow trap.
#[test]
fn verified_images_never_underflow() {
    use jmp_vm::interp::{ClassImage, Interpreter, MethodImage, NoNatives};
    let mut g = Gen::new(0x50F7);
    for _ in 0..512 {
        let locals = 2u8;
        let len = 1 + g.below(13) as usize;
        let code: Vec<_> = (0..len)
            .map(|_| {
                let spec: InsnSpec = (g.next_u64() as u8, g.i64_in(-8, 8), g.next_u64() as u16);
                build_insn(spec, len, locals)
            })
            .collect();
        let image = ClassImage {
            name: "Fuzz".into(),
            methods: vec![MethodImage {
                name: "main".into(),
                params: 0,
                locals,
                code,
            }],
        };
        if jmp_vm::interp::verify(&image).is_ok() {
            let interp =
                Interpreter::new(std::sync::Arc::new(image), std::sync::Arc::new(NoNatives))
                    .unwrap()
                    .with_fuel(5_000);
            match interp.run("main", vec![]) {
                Ok(_) => {}
                Err(jmp_vm::VmError::Trap { message }) => {
                    assert!(
                        !message.contains("underflow") && !message.contains("empty stack"),
                        "verified code must not underflow: {message}"
                    );
                }
                Err(other) => panic!("unexpected error class: {other}"),
            }
        }
    }
}
