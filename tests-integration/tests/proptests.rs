//! Property-based tests over the core data structures and invariants:
//! the permission lattice, policy round-trips, path normalization, the VFS
//! against a model, thread-group accounting, and — most importantly — the
//! `jbc` verifier's soundness contract.

use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Permissions
// ---------------------------------------------------------------------------

fn arb_file_actions() -> impl Strategy<Value = jmp_security::FileActions> {
    (any::<bool>(), any::<bool>(), any::<bool>(), any::<bool>()).prop_map(|(r, w, x, d)| {
        jmp_security::FileActions {
            read: r,
            write: w,
            execute: x,
            delete: d,
        }
    })
}

fn arb_path_components() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec("[a-z]{1,6}", 1..5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn recursive_file_grant_implies_everything_under_it(
        base in arb_path_components(),
        extra in arb_path_components(),
        actions in arb_file_actions(),
    ) {
        let base_path = format!("/{}", base.join("/"));
        let deep_path = format!("{base_path}/{}", extra.join("/"));
        let grant = jmp_security::Permission::file(format!("{base_path}/-"), actions);
        let demand = jmp_security::Permission::file(&deep_path, actions);
        prop_assert!(grant.implies(&demand));
        // ...but never the base directory itself, and never a sibling.
        prop_assert!(!grant.implies(&jmp_security::Permission::file(&base_path, actions)));
        let sibling = format!("{base_path}x/file");
        prop_assert!(!grant.implies(&jmp_security::Permission::file(sibling, actions)));
    }

    #[test]
    fn action_superset_is_monotone(
        a in arb_file_actions(),
        b in arb_file_actions(),
        path in arb_path_components(),
    ) {
        let path = format!("/{}", path.join("/"));
        let union = a.union(b);
        let grant = jmp_security::Permission::file(&path, union);
        prop_assert!(grant.implies(&jmp_security::Permission::file(&path, a)));
        prop_assert!(grant.implies(&jmp_security::Permission::file(&path, b)));
        // And implication requires containment:
        let grant_a = jmp_security::Permission::file(&path, a);
        let demand_b = jmp_security::Permission::file(&path, b);
        prop_assert_eq!(grant_a.implies(&demand_b), a.contains(b));
    }

    #[test]
    fn all_permission_implies_any_file(path in arb_path_components(), actions in arb_file_actions()) {
        let p = jmp_security::Permission::file(format!("/{}", path.join("/")), actions);
        prop_assert!(jmp_security::Permission::All.implies(&p));
        prop_assert!(p.implies(&p), "reflexivity");
    }
}

// ---------------------------------------------------------------------------
// Policy round-trip
// ---------------------------------------------------------------------------

fn arb_permission() -> impl Strategy<Value = jmp_security::Permission> {
    prop_oneof![
        Just(jmp_security::Permission::All),
        (arb_path_components(), arb_file_actions()).prop_filter_map(
            "non-empty actions",
            |(p, a)| {
                if a == jmp_security::FileActions::default() {
                    None
                } else {
                    Some(jmp_security::Permission::file(
                        format!("/{}", p.join("/")),
                        a,
                    ))
                }
            }
        ),
        "[a-z]{1,8}".prop_map(jmp_security::Permission::runtime),
        "[a-z]{1,8}".prop_map(jmp_security::Permission::awt),
        "[a-z]{1,8}".prop_map(jmp_security::Permission::user),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn policy_display_reparse_roundtrip(
        grants in prop::collection::vec(
            (prop_oneof![
                "[a-z]{1,8}".prop_map(jmp_security::GrantTarget::User),
                "[a-z/]{1,12}".prop_map(|p| jmp_security::GrantTarget::Code(
                    jmp_security::CodeSource::local(format!("file:/{p}"))
                )),
            ],
            prop::collection::vec(arb_permission(), 0..4)),
            0..5
        )
    ) {
        let mut policy = jmp_security::Policy::new();
        for (target, permissions) in grants {
            policy.add_grant(jmp_security::Grant { target, permissions });
        }
        let reparsed = jmp_security::Policy::parse(&policy.to_string()).unwrap();
        prop_assert_eq!(policy, reparsed);
    }
}

// ---------------------------------------------------------------------------
// Paths
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn normalize_is_idempotent(raw in "[a-z/.]{0,30}") {
        let once = jmp_vfs::normalize(&raw);
        prop_assert_eq!(jmp_vfs::normalize(&once), once.clone());
        prop_assert!(once.starts_with('/'));
        prop_assert!(!once.contains("//"));
        prop_assert!(!once.split('/').any(|c| c == "." || c == ".."));
    }

    #[test]
    fn join_of_normalized_is_stable(base in "[a-z/]{0,16}", rel in "[a-z/.]{0,16}") {
        let base = jmp_vfs::normalize(&base);
        let joined = jmp_vfs::join(&base, &rel);
        prop_assert_eq!(jmp_vfs::normalize(&joined), joined.clone());
        // Joining an absolute path ignores the base entirely.
        prop_assert_eq!(jmp_vfs::join(&base, &joined), joined);
    }
}

// ---------------------------------------------------------------------------
// VFS vs. a model
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum FsOp {
    Write(u8, Vec<u8>),
    Append(u8, Vec<u8>),
    Delete(u8),
    Rename(u8, u8),
}

fn arb_fs_op() -> impl Strategy<Value = FsOp> {
    prop_oneof![
        (0u8..8, prop::collection::vec(any::<u8>(), 0..16)).prop_map(|(f, d)| FsOp::Write(f, d)),
        (0u8..8, prop::collection::vec(any::<u8>(), 0..16)).prop_map(|(f, d)| FsOp::Append(f, d)),
        (0u8..8).prop_map(FsOp::Delete),
        (0u8..8, 0u8..8).prop_map(|(a, b)| FsOp::Rename(a, b)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn vfs_matches_a_hashmap_model(ops in prop::collection::vec(arb_fs_op(), 0..40)) {
        use std::collections::HashMap;
        let fs = jmp_vfs::Vfs::new();
        let root = jmp_security::UserId(0);
        fs.mkdirs("/m", root).unwrap();
        let mut model: HashMap<String, Vec<u8>> = HashMap::new();
        let path = |f: u8| format!("/m/f{f}");

        for op in ops {
            match op {
                FsOp::Write(f, data) => {
                    fs.write(&path(f), &data, root).unwrap();
                    model.insert(path(f), data);
                }
                FsOp::Append(f, data) => {
                    fs.append(&path(f), &data, root).unwrap();
                    model.entry(path(f)).or_default().extend_from_slice(&data);
                }
                FsOp::Delete(f) => {
                    let fs_result = fs.remove(&path(f), root).is_ok();
                    let model_result = model.remove(&path(f)).is_some();
                    prop_assert_eq!(fs_result, model_result);
                }
                FsOp::Rename(a, b) => {
                    let fs_result = fs.rename(&path(a), &path(b), root).is_ok();
                    let can = model.contains_key(&path(a))
                        && !model.contains_key(&path(b))
                        && a != b;
                    prop_assert_eq!(fs_result, can);
                    if can {
                        let data = model.remove(&path(a)).unwrap();
                        model.insert(path(b), data);
                    }
                }
            }
        }
        // Final state equivalence.
        for f in 0u8..8 {
            let p = path(f);
            match model.get(&p) {
                Some(expected) => prop_assert_eq!(&fs.read(&p, root).unwrap(), expected),
                None => prop_assert!(!fs.exists(&p, root)),
            }
        }
        let listed = fs.list_dir("/m", root).unwrap().len();
        prop_assert_eq!(listed, model.len());
    }
}

// ---------------------------------------------------------------------------
// Thread-group accounting
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    #[allow(clippy::explicit_counter_loop)] // next_id doubles as thread-id source
    fn group_counts_are_consistent(ops in prop::collection::vec((0u8..3, any::<bool>()), 0..30)) {
        let root = jmp_vm::ThreadGroup::new_root("root");
        let children = [
            root.new_child("a").unwrap(),
            root.new_child("b").unwrap(),
            root.new_child("a/x").unwrap(),
        ];
        let mut live: Vec<(u8, bool, jmp_vm::ThreadId)> = Vec::new();
        let mut next_id = 0u64;
        for (which, daemon) in ops {
            let group = &children[which as usize];
            let id = jmp_vm::ThreadId(next_id);
            next_id += 1;
            group.register_thread(id, daemon).unwrap();
            live.push((which, daemon, id));
            // Occasionally retire the oldest.
            if live.len() > 4 {
                let (w, d, id) = live.remove(0);
                children[w as usize].deregister_thread(id, d);
            }
        }
        // Invariant: the root's counts equal the sum over the live set.
        let nondaemon = live.iter().filter(|(_, d, _)| !*d).count();
        prop_assert_eq!(root.nondaemon_count(), nondaemon);
        prop_assert_eq!(root.thread_count(), live.len());
        // Drain; counts return to zero.
        for (w, d, id) in live {
            children[w as usize].deregister_thread(id, d);
        }
        prop_assert_eq!(root.nondaemon_count(), 0);
        prop_assert_eq!(root.thread_count(), 0);
    }
}

// ---------------------------------------------------------------------------
// Shell parser: rendered commands re-parse to the same structure
// ---------------------------------------------------------------------------

fn arb_word() -> impl Strategy<Value = String> {
    "[a-z0-9._/-]{1,8}"
}

fn arb_stage() -> impl Strategy<Value = jmp_shell::parser::Stage> {
    (
        arb_word(),
        prop::collection::vec(arb_word(), 0..3),
        prop::option::of(arb_word()),
        prop::option::of((arb_word(), any::<bool>())),
    )
        .prop_map(
            |(program, args, stdin_from, redirect)| jmp_shell::parser::Stage {
                program,
                args,
                stdin_from,
                stdout_to: redirect
                    .map(|(path, append)| jmp_shell::parser::Redirect { path, append }),
            },
        )
}

fn render_stage(stage: &jmp_shell::parser::Stage) -> String {
    let mut out = stage.program.clone();
    for arg in &stage.args {
        out.push(' ');
        out.push_str(arg);
    }
    if let Some(path) = &stage.stdin_from {
        out.push_str(" < ");
        out.push_str(path);
    }
    if let Some(redirect) = &stage.stdout_to {
        out.push_str(if redirect.append { " >> " } else { " > " });
        out.push_str(&redirect.path);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn rendered_commands_reparse_identically(
        stages in prop::collection::vec(arb_stage(), 1..4),
        background in any::<bool>(),
    ) {
        let line = format!(
            "{}{}",
            stages.iter().map(render_stage).collect::<Vec<_>>().join(" | "),
            if background { " &" } else { "" }
        );
        let parsed = jmp_shell::parser::parse_line(&line).unwrap();
        prop_assert_eq!(parsed.len(), 1);
        prop_assert_eq!(&parsed[0].stages, &stages);
        prop_assert_eq!(parsed[0].background, background);
    }
}

// ---------------------------------------------------------------------------
// Interpreter vs. a model: compiled expressions evaluate identically
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Expr {
    Const(i64),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    Neg(Box<Expr>),
}

impl Expr {
    fn eval(&self) -> i64 {
        match self {
            Expr::Const(v) => *v,
            Expr::Add(a, b) => a.eval().wrapping_add(b.eval()),
            Expr::Sub(a, b) => a.eval().wrapping_sub(b.eval()),
            Expr::Mul(a, b) => a.eval().wrapping_mul(b.eval()),
            Expr::Neg(a) => a.eval().wrapping_neg(),
        }
    }

    /// Post-order compilation to `jbc` stack code.
    fn compile(&self, out: &mut Vec<jmp_vm::interp::Insn>) {
        use jmp_vm::interp::Insn;
        match self {
            Expr::Const(v) => out.push(Insn::PushInt(*v)),
            Expr::Add(a, b) => {
                a.compile(out);
                b.compile(out);
                out.push(Insn::Add);
            }
            Expr::Sub(a, b) => {
                a.compile(out);
                b.compile(out);
                out.push(Insn::Sub);
            }
            Expr::Mul(a, b) => {
                a.compile(out);
                b.compile(out);
                out.push(Insn::Mul);
            }
            Expr::Neg(a) => {
                a.compile(out);
                out.push(Insn::Neg);
            }
        }
    }
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = (-1000i64..1000).prop_map(Expr::Const);
    leaf.prop_recursive(5, 64, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Mul(Box::new(a), Box::new(b))),
            inner.prop_map(|a| Expr::Neg(Box::new(a))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn compiled_expressions_evaluate_like_the_model(expr in arb_expr()) {
        use jmp_vm::interp::{ClassImage, Insn, Interpreter, MethodImage, NoNatives, Value};
        let mut code = Vec::new();
        expr.compile(&mut code);
        code.push(Insn::ReturnValue);
        let image = ClassImage {
            name: "Expr".into(),
            methods: vec![MethodImage {
                name: "main".into(),
                params: 0,
                locals: 0,
                code,
            }],
        };
        // Anything the compiler emits must verify...
        jmp_vm::interp::verify(&image).unwrap();
        // ...and evaluate exactly like the model (wrapping semantics).
        let interp = Interpreter::new(std::sync::Arc::new(image), std::sync::Arc::new(NoNatives)).unwrap();
        prop_assert_eq!(interp.run("main", vec![]).unwrap(), Value::Int(expr.eval()));
    }
}

// ---------------------------------------------------------------------------
// Verifier soundness
// ---------------------------------------------------------------------------

/// A raw instruction spec: `(opcode selector, int payload, jump payload)`.
/// Mapped to a concrete [`Insn`](jmp_vm::interp::Insn) once the final code
/// length is known (jump targets are taken modulo the length).
type InsnSpec = (u8, i64, u16);

fn build_insn(spec: InsnSpec, code_len: usize, locals: u8) -> jmp_vm::interp::Insn {
    use jmp_vm::interp::Insn;
    let (op, int, jump) = spec;
    let target = (jump as usize % code_len) as u16;
    let slot = (int.unsigned_abs() as u8) % locals.max(1);
    match op % 21 {
        0 => Insn::PushInt(int),
        1 => Insn::PushNull,
        2 => Insn::PushBool(int % 2 == 0),
        3 => Insn::Load(slot),
        4 => Insn::Store(slot),
        5 => Insn::Pop,
        6 => Insn::Dup,
        7 => Insn::Swap,
        8 => Insn::Add,
        9 => Insn::Sub,
        10 => Insn::Mul,
        11 => Insn::Neg,
        12 => Insn::Concat,
        13 => Insn::Eq,
        14 => Insn::Lt,
        15 => Insn::Not,
        16 => Insn::Jump(target),
        17 => Insn::JumpIfFalse(target),
        18 => Insn::JumpIfTrue(target),
        19 => Insn::Return,
        _ => Insn::ReturnValue,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The verifier's contract: if it accepts an image, interpretation must
    /// never fault on *machine-safety* grounds (stack underflow, bad slot,
    /// falling off the code). Resource traps (fuel) are fine; type
    /// mismatches (int ops on strings) trap safely and are also fine — what
    /// must never happen is an internal panic or an underflow trap.
    #[test]
    fn verified_images_never_underflow(
        specs in prop::collection::vec((any::<u8>(), -8i64..8, any::<u16>()), 1..14)
    ) {
        use jmp_vm::interp::{ClassImage, Interpreter, MethodImage, NoNatives};
        let locals = 2u8;
        let len = specs.len();
        let code: Vec<_> = specs
            .into_iter()
            .map(|spec| build_insn(spec, len, locals))
            .collect();
        let image = ClassImage {
            name: "Fuzz".into(),
            methods: vec![MethodImage {
                name: "main".into(),
                params: 0,
                locals,
                code,
            }],
        };
        if jmp_vm::interp::verify(&image).is_ok() {
            let interp = Interpreter::new(std::sync::Arc::new(image), std::sync::Arc::new(NoNatives))
                .unwrap()
                .with_fuel(5_000);
            match interp.run("main", vec![]) {
                Ok(_) => {}
                Err(jmp_vm::VmError::Trap { message }) => {
                    prop_assert!(
                        !message.contains("underflow") && !message.contains("empty stack"),
                        "verified code must not underflow: {}", message
                    );
                }
                Err(other) => prop_assert!(false, "unexpected error class: {other}"),
            }
        }
    }
}
