//! Observability integration: the audit trail, the permission gating of the
//! read-out, and the event stream, across real applications.

use std::time::Duration;

use jmp_obs::EventKind;
use jmp_security::Permission;
use tests_integration::{register_app, runtime};

#[test]
fn denied_cross_user_read_produces_exactly_one_audit_record() {
    // The paper's Alice/Bob scenario, observed: Bob's program tries to read
    // Alice's file, the §5.3 combination refuses, and the refusal shows up
    // in the audit trail exactly once, attributed to Bob and his app.
    let rt = runtime();
    let alice = rt.users().lookup("alice").unwrap();
    rt.vfs()
        .write("/home/alice/secret.txt", b"private", alice.id())
        .unwrap();

    register_app(&rt, "snoop", |_| {
        assert!(
            jmp_core::files::read("/home/alice/secret.txt").is_err(),
            "bob must not read alice's file"
        );
        Ok(())
    });
    let app = rt.launch_as("bob", "snoop", &[]).unwrap();
    let snoop_id = app.id().0;
    app.wait_for().unwrap();

    let denials = rt.vm().obs().audit_query(None, None);
    assert_eq!(
        denials.len(),
        1,
        "exactly one denial is audited: {denials:?}"
    );
    let record = &denials[0];
    assert_eq!(record.user.as_deref(), Some("bob"));
    assert_eq!(record.app, Some(snoop_id));
    assert!(
        record.permission.contains("/home/alice/secret.txt"),
        "the record names the refused permission: {record:?}"
    );
    // The denial also hit the metrics and the event stream.
    assert_eq!(
        rt.vm().obs().vm_metrics().counter("security.denied").get(),
        1
    );
    let denied_events: Vec<_> = rt
        .vm()
        .obs()
        .sink()
        .recent()
        .into_iter()
        .filter(|e| e.kind == EventKind::AccessDenied)
        .collect();
    assert_eq!(denied_events.len(), 1);
    assert_eq!(denied_events[0].user.as_deref(), Some("bob"));
    rt.shutdown();
}

#[test]
fn unprivileged_readout_is_denied_and_the_denial_is_audited() {
    // An ordinary user's app may not read the metrics or the audit log —
    // and each refusal lands in the audit trail like any other denial.
    let rt = runtime();
    register_app(&rt, "nosy", |_| {
        let rt = jmp_core::MpRuntime::current().unwrap();
        assert!(jmp_core::obs::top_rows(&rt).is_err(), "metrics are gated");
        assert!(
            jmp_core::obs::audit_records(&rt, None, None).is_err(),
            "the audit log is gated"
        );
        assert!(
            jmp_core::obs::profile_report(&rt).is_err(),
            "the profiler read-out is gated"
        );
        assert!(
            jmp_core::obs::set_profiling(&rt, false).is_err(),
            "steering the profiler is gated too"
        );
        Ok(())
    });
    rt.launch_as("bob", "nosy", &[])
        .unwrap()
        .wait_for()
        .unwrap();

    let denials = rt.vm().obs().audit_query(Some("bob"), None);
    assert!(
        denials.iter().any(|r| r.permission.contains("readMetrics")),
        "the refused metrics read is audited: {denials:?}"
    );
    assert!(
        denials
            .iter()
            .any(|r| r.permission.contains("readAuditLog")),
        "the refused audit read is audited: {denials:?}"
    );
    assert!(
        denials.iter().any(|r| r.permission.contains("readProfile")),
        "the refused profile read is audited: {denials:?}"
    );
    // The profiler stayed on: the unprivileged set_profiling was refused.
    assert!(rt.vm().obs().profiler().is_enabled());
    rt.shutdown();
}

#[test]
fn system_user_grant_admits_the_readout() {
    // The default policy grants the bootstrap `system` account
    // readMetrics/readAuditLog; a program it runs (whose code source holds
    // exerciseUserPermissions) reads the hub through the §5.3 mechanism.
    let rt = runtime();
    register_app(&rt, "probe", |_| {
        let rt = jmp_core::MpRuntime::current().unwrap();
        let rows = jmp_core::obs::top_rows(&rt).expect("system may read metrics");
        assert!(rows.iter().any(|row| row.name == "probe"));
        let snapshot = jmp_core::obs::vm_snapshot(&rt).expect("system may snapshot");
        assert!(snapshot.vm.counters["security.checks"] > 0);
        jmp_core::obs::audit_records(&rt, None, None).expect("system may read audit");
        let report = jmp_core::obs::profile_report(&rt).expect("system may read the profile");
        assert!(report.accounting_enabled, "the profiler is on by default");
        jmp_core::obs::profile_flame(&rt, None).expect("system may export the flamegraph");
        Ok(())
    });
    rt.launch_as("system", "probe", &[])
        .unwrap()
        .wait_for()
        .unwrap();
    rt.shutdown();
}

#[test]
fn subscribers_see_lifecycle_events() {
    let rt = runtime();
    let events = rt.vm().obs().sink().subscribe();
    register_app(&rt, "blip", |_| Ok(()));
    let app = rt.launch_as("alice", "blip", &[]).unwrap();
    let id = app.id().0;
    app.wait_for().unwrap();

    // The stream interleaves class-define events from the launch; collect
    // the lifecycle events charged to our app (the reaper runs
    // asynchronously, so keep receiving until the reap arrives).
    let mut lifecycle = Vec::new();
    while lifecycle.last().map(|e: &jmp_obs::Event| e.kind) != Some(EventKind::AppReap) {
        let event = events
            .recv_timeout(Duration::from_secs(5))
            .expect("lifecycle events arrive");
        if event.app == Some(id) && event.kind != EventKind::ClassDefined {
            lifecycle.push(event);
        }
    }
    let kinds: Vec<_> = lifecycle.iter().map(|e| e.kind).collect();
    assert_eq!(
        kinds,
        vec![EventKind::AppExec, EventKind::AppExit, EventKind::AppReap]
    );
    assert_eq!(lifecycle[0].user.as_deref(), Some("alice"));
    assert_eq!(lifecycle[0].detail, "blip");
    rt.shutdown();
}

#[test]
fn app_lifecycle_feeds_the_counters() {
    let rt = runtime();
    let before = rt.vm().obs().vm_metrics().counter("apps.execed").get();
    register_app(&rt, "unit", |_| Ok(()));
    let app = rt.launch_as("alice", "unit", &[]).unwrap();
    app.wait_for().unwrap();
    let metrics = rt.vm().obs().vm_metrics();
    assert_eq!(metrics.counter("apps.execed").get(), before + 1);
    // Reaping is asynchronous; wait for the reaped counter to follow.
    let reaped = jmp_awt::Toolkit::wait_until(Duration::from_secs(5), || {
        metrics.counter("apps.reaped").get() >= 1
    });
    assert!(reaped, "the reap is counted");
    rt.shutdown();
}

#[test]
fn check_permission_from_an_app_carries_its_attribution() {
    // An app-originated denial is charged to the app's registry while the
    // registry is live (before the reaper drops it).
    let rt = runtime();
    register_app(&rt, "selfcheck", |_| {
        let rt = jmp_core::MpRuntime::current().unwrap();
        assert!(rt
            .vm()
            .check_permission(&Permission::runtime("noSuchPrivilege"))
            .is_err());
        // Observe our own registry from inside, pre-reap.
        let app = jmp_core::Application::current().unwrap();
        let registry = rt
            .vm()
            .obs()
            .existing_app_registry(app.id().0)
            .expect("registry live while running");
        assert!(registry.counter("security.denied").get() >= 1);
        Ok(())
    });
    rt.launch_as("bob", "selfcheck", &[])
        .unwrap()
        .wait_for()
        .unwrap();
    rt.shutdown();
}
