//! §8 extension: shared objects as inter-application communication.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use jmp_core::{shared, MpRuntime};
use jmp_security::Policy;

/// Runtime whose policy grants shared-object verbs selectively: the
/// publisher may publish under `chat.*`, the consumer may look up there;
/// `nogrant` programs get nothing.
fn shared_runtime() -> MpRuntime {
    let text = format!(
        "{}\n{}",
        jmp_shell::default_policy_text(),
        r#"
        grant codeBase "file:/apps/publisher" {
            permission runtime "sharedObject.publish.chat.*";
        };
        grant codeBase "file:/apps/consumer" {
            permission runtime "sharedObject.lookup.chat.*";
        };
        "#
    );
    let rt = MpRuntime::builder()
        .policy(Policy::parse(&text).unwrap())
        .user("alice", "apw")
        .user("bob", "bpw")
        .build()
        .unwrap();
    jmp_shell::install(&rt).unwrap();
    rt
}

fn register(
    rt: &MpRuntime,
    name: &str,
    main: impl Fn(Vec<String>) -> jmp_vm::Result<()> + Send + Sync + 'static,
) {
    rt.vm()
        .material()
        .register(
            jmp_vm::ClassDef::builder(name).main(main).build(),
            jmp_security::CodeSource::local(format!("file:/apps/{name}")),
        )
        .unwrap();
}

#[test]
fn objects_flow_between_applications() {
    let rt = shared_runtime();
    register(&rt, "publisher", |_| {
        shared::publish("chat.motd", Arc::new("welcome to jmproc".to_string()))?;
        // Stay alive so the export persists while the consumer reads it.
        jmp_vm::thread::sleep(Duration::from_secs(600))
    });
    static GOT: parking_lot::Mutex<Option<String>> = parking_lot::Mutex::new(None);
    register(&rt, "consumer", |_| {
        for _ in 0..200 {
            if let Some(motd) = shared::lookup::<String>("chat.motd")? {
                *GOT.lock() = Some((*motd).clone());
                return Ok(());
            }
            jmp_vm::thread::sleep(Duration::from_millis(5))?;
        }
        Ok(())
    });
    let publisher = rt.launch_as("alice", "publisher", &[]).unwrap();
    let consumer = rt.launch_as("bob", "consumer", &[]).unwrap();
    consumer.wait_for().unwrap();
    assert_eq!(GOT.lock().as_deref(), Some("welcome to jmproc"));
    publisher.stop(0).unwrap();
    publisher.wait_for().unwrap();
    rt.shutdown();
}

#[test]
fn grants_gate_both_verbs() {
    let rt = shared_runtime();
    static OUTCOMES: parking_lot::Mutex<Vec<(String, bool)>> = parking_lot::Mutex::new(Vec::new());
    register(&rt, "nogrant", |_| {
        OUTCOMES.lock().push((
            "publish without grant".into(),
            shared::publish("chat.x", Arc::new(1u32)).is_err(),
        ));
        OUTCOMES.lock().push((
            "lookup without grant".into(),
            shared::lookup::<u32>("chat.x").is_err(),
        ));
        Ok(())
    });
    rt.launch_as("alice", "nogrant", &[])
        .unwrap()
        .wait_for()
        .unwrap();
    assert_eq!(
        *OUTCOMES.lock(),
        vec![
            ("publish without grant".to_string(), true),
            ("lookup without grant".to_string(), true)
        ]
    );
    rt.shutdown();
}

#[test]
fn lookup_is_a_checked_downcast() {
    // The type-safety answer to the paper's §8 concern: a wrong-type lookup
    // yields None, never a confused value.
    let rt = shared_runtime();
    static RESULTS: parking_lot::Mutex<Vec<bool>> = parking_lot::Mutex::new(Vec::new());
    register(&rt, "publisher2", |_| {
        shared::publish("chat.num", Arc::new(42u64))?;
        jmp_vm::thread::sleep(Duration::from_secs(600))
    });
    register(&rt, "consumer2", |_| {
        for _ in 0..200 {
            if let Some(v) = shared::lookup::<u64>("chat.num")? {
                RESULTS
                    .lock()
                    .push(shared::lookup::<String>("chat.num")?.is_none());
                RESULTS.lock().push(*v == 42);
                return Ok(());
            }
            jmp_vm::thread::sleep(Duration::from_millis(5))?;
        }
        Ok(())
    });
    // publisher2/consumer2 live at fresh code sources: extend the policy.
    let mut policy = (*rt.vm().policy()).clone();
    policy.grant_code(
        jmp_security::CodeSource::local("file:/apps/publisher2"),
        vec![jmp_security::Permission::runtime(
            "sharedObject.publish.chat.*",
        )],
    );
    policy.grant_code(
        jmp_security::CodeSource::local("file:/apps/consumer2"),
        vec![jmp_security::Permission::runtime(
            "sharedObject.lookup.chat.*",
        )],
    );
    rt.vm().set_policy(policy).unwrap();
    let p = rt.launch_as("alice", "publisher2", &[]).unwrap();
    rt.launch_as("bob", "consumer2", &[])
        .unwrap()
        .wait_for()
        .unwrap();
    let results = RESULTS.lock();
    assert!(results.iter().all(|b| *b), "{results:?}");
    p.stop(0).unwrap();
    rt.shutdown();
}

#[test]
fn exports_die_with_their_publisher() {
    let rt = shared_runtime();
    register(&rt, "publisher", |_| {
        shared::publish("chat.ephemeral", Arc::new(7u8))?;
        Ok(()) // finishes immediately; reaper drops the export
    });
    static SEEN: AtomicUsize = AtomicUsize::new(0);
    register(&rt, "consumer", |_| {
        if shared::lookup::<u8>("chat.ephemeral")?.is_none() {
            SEEN.fetch_add(1, Ordering::SeqCst);
        }
        Ok(())
    });
    rt.launch_as("alice", "publisher", &[])
        .unwrap()
        .wait_for()
        .unwrap();
    rt.launch_as("bob", "consumer", &[])
        .unwrap()
        .wait_for()
        .unwrap();
    assert_eq!(
        SEEN.load(Ordering::SeqCst),
        1,
        "export must not outlive its app"
    );
    rt.shutdown();
}

#[test]
fn withdraw_is_publisher_only() {
    let rt = shared_runtime();
    register(&rt, "publisher", |_| {
        shared::publish("chat.keep", Arc::new(1u8))?;
        jmp_vm::thread::sleep(Duration::from_secs(600))
    });
    static DENIED: AtomicUsize = AtomicUsize::new(0);
    register(&rt, "consumer", |_| {
        // Consumer may look up but not withdraw someone else's export.
        for _ in 0..200 {
            if shared::lookup::<u8>("chat.keep")?.is_some() {
                if shared::withdraw("chat.keep").is_err() {
                    DENIED.fetch_add(1, Ordering::SeqCst);
                }
                return Ok(());
            }
            jmp_vm::thread::sleep(Duration::from_millis(5))?;
        }
        Ok(())
    });
    let p = rt.launch_as("alice", "publisher", &[]).unwrap();
    rt.launch_as("bob", "consumer", &[])
        .unwrap()
        .wait_for()
        .unwrap();
    assert_eq!(DENIED.load(Ordering::SeqCst), 1);
    p.stop(0).unwrap();
    rt.shutdown();
}

#[test]
fn shared_channel_carries_bytes_between_apps() {
    // The paper's motivating use: inter-application communication.
    let rt = shared_runtime();
    register(&rt, "publisher", |_| {
        let out = shared::publish_channel("chat.line")?;
        out.println("hello over a shared object")?;
        jmp_vm::thread::sleep(Duration::from_secs(600))
    });
    static LINE: parking_lot::Mutex<Option<String>> = parking_lot::Mutex::new(None);
    register(&rt, "consumer", |_| {
        for _ in 0..200 {
            if let Some(input) = shared::lookup::<jmp_vm::io::InStream>("chat.line")? {
                *LINE.lock() = input.read_line()?;
                return Ok(());
            }
            jmp_vm::thread::sleep(Duration::from_millis(5))?;
        }
        Ok(())
    });
    let p = rt.launch_as("alice", "publisher", &[]).unwrap();
    rt.launch_as("bob", "consumer", &[])
        .unwrap()
        .wait_for()
        .unwrap();
    assert_eq!(LINE.lock().as_deref(), Some("hello over a shared object"));
    p.stop(0).unwrap();
    rt.shutdown();
}
