//! E6 (§5.3) integration: user-based access control composed with
//! code-source policy, across real applications and the real VFS.

use std::sync::Arc;

use jmp_core::{files, login, Application};
use parking_lot::Mutex;
use tests_integration::{register_app, runtime};

#[test]
fn same_code_different_users_different_rights() {
    let rt = runtime();
    let alice = rt.users().lookup("alice").unwrap();
    let bob = rt.users().lookup("bob").unwrap();
    rt.vfs()
        .write("/home/alice/a.txt", b"A", alice.id())
        .unwrap();
    rt.vfs().write("/home/bob/b.txt", b"B", bob.id()).unwrap();

    let results: Arc<Mutex<Vec<(String, bool, bool)>>> = Arc::new(Mutex::new(Vec::new()));
    let results2 = Arc::clone(&results);
    rt.vm()
        .material()
        .register(
            jmp_vm::ClassDef::builder("matrix")
                .main(move |_| {
                    let me = Application::current().unwrap().user().name().to_string();
                    results2.lock().push((
                        me,
                        files::read("/home/alice/a.txt").is_ok(),
                        files::read("/home/bob/b.txt").is_ok(),
                    ));
                    Ok(())
                })
                .build(),
            jmp_security::CodeSource::local("file:/apps/matrix"),
        )
        .unwrap();
    for user in ["alice", "bob"] {
        rt.launch_as(user, "matrix", &[])
            .unwrap()
            .wait_for()
            .unwrap();
    }
    assert_eq!(
        *results.lock(),
        vec![
            ("alice".to_string(), true, false),
            ("bob".to_string(), false, true)
        ]
    );
    rt.shutdown();
}

#[test]
fn rights_follow_a_mid_flight_user_change() {
    // §5.2: after login re-binds the user, subsequent checks use the new
    // user's grants — same application, same code.
    let rt = runtime();
    let alice = rt.users().lookup("alice").unwrap();
    rt.vfs()
        .write("/home/alice/a.txt", b"A", alice.id())
        .unwrap();

    static PHASES: Mutex<Vec<(bool, bool)>> = Mutex::new(Vec::new());
    // Needs the setUser grant, which the default policy binds to the exact
    // code source "file:/apps/login" — two classes may share a code source,
    // so register the probe right there.
    rt.vm()
        .material()
        .register(
            jmp_vm::ClassDef::builder("chameleon")
                .main(|_| {
                    let before = files::read("/home/alice/a.txt").is_ok();
                    login::login("alice", "apw").map_err(jmp_vm::VmError::from)?;
                    let after = files::read("/home/alice/a.txt").is_ok();
                    PHASES.lock().push((before, after));
                    Ok(())
                })
                .build(),
            jmp_security::CodeSource::local("file:/apps/login"),
        )
        .unwrap();
    let app = rt.launch_as("bob", "chameleon", &[]).unwrap();
    app.wait_for().unwrap();
    let phases = PHASES.lock();
    let (before, after) = phases.first().expect("probe ran");
    assert!(!before, "as bob, alice's file is unreadable");
    assert!(after, "after login as alice, it is readable");
    rt.shutdown();
}

#[test]
fn policy_grants_are_code_source_exact_and_recursive() {
    let rt = runtime();
    // default policy: "file:/apps/login" (exact) holds setUser;
    // "file:/apps/-" (recursive) does not.
    let policy = rt.vm().policy();
    let set_user = jmp_security::Permission::runtime("setUser");
    assert!(policy
        .permissions_for(&jmp_security::CodeSource::local("file:/apps/login"))
        .implies(&set_user));
    assert!(!policy
        .permissions_for(&jmp_security::CodeSource::local("file:/apps/editor"))
        .implies(&set_user));
    rt.shutdown();
}

#[test]
fn user_grants_do_not_apply_without_a_running_user_match() {
    let rt = runtime();
    let alice = rt.users().lookup("alice").unwrap();
    rt.vfs()
        .write("/home/alice/a.txt", b"A", alice.id())
        .unwrap();
    static OUTCOME: Mutex<Option<bool>> = Mutex::new(None);
    register_app(&rt, "sysprobe2", |_| {
        *OUTCOME.lock() = Some(files::read("/home/alice/a.txt").is_ok());
        Ok(())
    });
    // Run as the system account: no `grant user "system"` exists, so the
    // exercise-user permission contributes nothing...
    let app = rt.launch("sysprobe2", &[]).unwrap();
    app.wait_for().unwrap();
    // ...but note the O/S layer would have allowed it (uid 0); the denial
    // comes from the runtime policy.
    assert_eq!(*OUTCOME.lock(), Some(false));
    rt.shutdown();
}
