//! E8 (§6.3) integration: mobile code end to end — published on the
//! simulated network as serialized class images, verified, interpreted,
//! sandboxed.

use jmp_shell::{publish_applet, SimNetwork};
use jmp_vm::interp::Value;
use tests_integration::{register_app, runtime};

/// Runs the appletviewer *inside an application* and returns the applet's
/// result (so tests can assert on values, not just screen text).
fn run_applet_as(rt: &jmp_core::MpRuntime, user: &str, url: &str) -> Result<Value, String> {
    let (tx, rx) = std::sync::mpsc::channel();
    let url = url.to_string();
    let name = format!("runner_{}", rx_id());
    rt.vm()
        .material()
        .register(
            jmp_vm::ClassDef::builder(&name)
                .main(move |_| {
                    let outcome = jmp_shell::appletviewer::run_applet(&url, vec![])
                        .map_err(|e| e.to_string());
                    tx.send(outcome).ok();
                    Ok(())
                })
                .build(),
            // The runner needs the appletviewer's privileges.
            jmp_security::CodeSource::local("file:/apps/appletviewer"),
        )
        .unwrap();
    rt.launch_as(user, &name, &[]).unwrap().wait_for().unwrap();
    rx.recv().expect("runner reported")
}

fn rx_id() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

#[test]
fn applet_computes_and_returns_values() {
    let rt = runtime();
    publish_applet(
        &rt,
        "applets.example.com",
        "/calc.jbc",
        r#"
        class Calc
        method main/0 locals=0
            push_int 6
            push_int 7
            mul
            return_value
        "#,
    )
    .unwrap();
    let result = run_applet_as(&rt, "alice", "http://applets.example.com/calc.jbc").unwrap();
    assert_eq!(result, Value::Int(42));
    rt.shutdown();
}

#[test]
fn applet_file_access_follows_the_policy_not_the_user() {
    let rt = runtime();
    let alice = rt.users().lookup("alice").unwrap();
    rt.vfs()
        .write("/home/alice/private.txt", b"mine", alice.id())
        .unwrap();
    rt.vfs()
        .write("/tmp/world.txt", b"shared", alice.id())
        .unwrap();
    publish_applet(
        &rt,
        "applets.example.com",
        "/readhome.jbc",
        r#"
        class ReadHome
        method main/0 locals=0
            push_str "/home/alice/private.txt"
            native read_file/1
            return_value
        "#,
    )
    .unwrap();
    publish_applet(
        &rt,
        "trusted.example.com",
        "/readtmp.jbc",
        r#"
        class ReadTmp
        method main/0 locals=0
            push_str "/tmp/world.txt"
            native read_file/1
            return_value
        "#,
    )
    .unwrap();
    // Untrusted origin: denied even though alice runs it.
    let err = run_applet_as(&rt, "alice", "http://applets.example.com/readhome.jbc").unwrap_err();
    assert!(err.contains("security"), "{err}");

    // Trusted origin with a code-source grant: allowed.
    let mut policy = (*rt.vm().policy()).clone();
    policy.grant_code(
        jmp_security::CodeSource::remote("http://trusted.example.com/-"),
        vec![jmp_security::Permission::file(
            "/tmp/-",
            jmp_security::FileActions::READ,
        )],
    );
    rt.vm().set_policy(policy).unwrap();
    let result = run_applet_as(&rt, "alice", "http://trusted.example.com/readtmp.jbc").unwrap();
    assert_eq!(result, Value::str("shared"));
    rt.shutdown();
}

#[test]
fn connect_back_rule() {
    let rt = runtime();
    let network = SimNetwork::of(&rt).unwrap();
    network.publish("friendly.example.com", "/x", b"hi".to_vec());
    publish_applet(
        &rt,
        "applets.example.com",
        "/home.jbc",
        r#"
        class Home
        method main/0 locals=0
            push_str "applets.example.com"
            native connect/1
            return_value
        "#,
    )
    .unwrap();
    publish_applet(
        &rt,
        "applets.example.com",
        "/stranger.jbc",
        r#"
        class Stranger
        method main/0 locals=0
            push_str "friendly.example.com"
            native connect/1
            return_value
        "#,
    )
    .unwrap();
    assert_eq!(
        run_applet_as(&rt, "alice", "http://applets.example.com/home.jbc").unwrap(),
        Value::Bool(true)
    );
    let err = run_applet_as(&rt, "alice", "http://applets.example.com/stranger.jbc").unwrap_err();
    assert!(err.contains("security"), "{err}");
    rt.shutdown();
}

#[test]
fn runaway_applet_is_stopped_by_fuel() {
    let rt = runtime();
    publish_applet(
        &rt,
        "applets.example.com",
        "/spin.jbc",
        r#"
        class Spin
        method main/0 locals=0
        loop:
            jump loop
        "#,
    )
    .unwrap();
    let err = run_applet_as(&rt, "alice", "http://applets.example.com/spin.jbc").unwrap_err();
    assert!(err.contains("fuel"), "{err}");
    rt.shutdown();
}

#[test]
fn malformed_and_unverifiable_images_are_rejected() {
    let rt = runtime();
    let network = SimNetwork::of(&rt).unwrap();
    // Garbage bytes.
    network.publish("applets.example.com", "/garbage.jbc", b"not json".to_vec());
    let err = run_applet_as(&rt, "alice", "http://applets.example.com/garbage.jbc").unwrap_err();
    assert!(err.contains("bad class image"), "{err}");

    // Well-formed JSON, unverifiable code (stack underflow).
    let bad = jmp_vm::interp::ClassImage {
        name: "Bad".into(),
        methods: vec![jmp_vm::interp::MethodImage {
            name: "main".into(),
            params: 0,
            locals: 0,
            code: vec![jmp_vm::interp::Insn::Add, jmp_vm::interp::Insn::Return],
        }],
    };
    network.publish("applets.example.com", "/bad.jbc", bad.to_wire().unwrap());
    let err = run_applet_as(&rt, "alice", "http://applets.example.com/bad.jbc").unwrap_err();
    assert!(err.contains("verification"), "{err}");
    rt.shutdown();
}

#[test]
fn applet_images_survive_vfs_storage() {
    // Mobile code is data: store an image in the filesystem, re-publish it,
    // run it. (The wire format is the serde JSON of ClassImage.)
    let rt = runtime();
    let image = jmp_vm::interp::assemble(
        r#"
        class Stored
        method main/0 locals=0
            push_str "ran from storage"
            return_value
        "#,
    )
    .unwrap();
    let wire = image.to_wire().unwrap();
    rt.vfs()
        .write("/tmp/stored.jbc", &wire, jmp_security::UserId(0))
        .unwrap();
    let from_disk = rt
        .vfs()
        .read("/tmp/stored.jbc", jmp_security::UserId(0))
        .unwrap();
    SimNetwork::of(&rt)
        .unwrap()
        .publish("applets.example.com", "/stored.jbc", from_disk);
    assert_eq!(
        run_applet_as(&rt, "alice", "http://applets.example.com/stored.jbc").unwrap(),
        Value::str("ran from storage")
    );
    rt.shutdown();
}

#[test]
fn appletviewer_requires_its_code_source_grants() {
    // A copy of the viewer logic registered under a plain code source lacks
    // createClassLoader/socket grants and must fail closed.
    let rt = runtime();
    publish_applet(
        &rt,
        "applets.example.com",
        "/h.jbc",
        "class H\nmethod main/0\n  push_null\n  return_value\n",
    )
    .unwrap();
    static FAILED: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
    register_app(&rt, "fakeviewer", |_| {
        let err = jmp_shell::appletviewer::run_applet("http://applets.example.com/h.jbc", vec![])
            .unwrap_err();
        assert!(err.is_security(), "{err}");
        FAILED.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        Ok(())
    });
    rt.launch_as("alice", "fakeviewer", &[])
        .unwrap()
        .wait_for()
        .unwrap();
    assert_eq!(FAILED.load(std::sync::atomic::Ordering::SeqCst), 1);
    rt.shutdown();
}
