//! Profiler integration: opcode-accounting attribution across thread
//! spawn — work done by a spawned thread bills the spawner's application,
//! work done by a detached thread bills only the VM bucket — plus the
//! always-on defaults inside a real runtime.

use std::sync::Arc;

use jmp_vm::interp::{assemble, Interpreter, NoNatives, Value};
use tests_integration::{register_app, runtime};

const CRUNCH: &str = r#"
    class Crunch
    method main/1 locals=2
        push_int 0
        store 1
    loop:
        load 0
        push_int 0
        gt
        jump_if_false done
        load 1
        load 0
        add
        store 1
        load 0
        push_int 1
        sub
        store 0
        jump loop
    done:
        load 1
        return_value
"#;

/// Iterations of the crunch loop — at 8 instructions per iteration this
/// comfortably clears the attribution thresholds below.
const N: i64 = 2_000;

fn run_crunch() {
    let image = Arc::new(assemble(CRUNCH).expect("crunch assembles"));
    let interp = Interpreter::new(image, Arc::new(NoNatives)).expect("interpreter builds");
    interp
        .run("main", vec![Value::Int(N)])
        .expect("crunch runs");
}

#[test]
fn spawned_thread_work_bills_the_spawning_app() {
    // Ownership propagates across spawn (paper §4: threads created by an
    // application belong to it) — and so does profile attribution: the
    // child thread's interpreter work lands in the spawner's view.
    let rt = runtime();
    register_app(&rt, "spawner", |_| {
        let vm = jmp_vm::Vm::current().expect("on a VM thread");
        let child = vm
            .thread_builder()
            .name("crunch-worker")
            .spawn(|_vm| run_crunch())?;
        child.join()?;
        Ok(())
    });
    let app = rt.launch_as("alice", "spawner", &[]).unwrap();
    let id = app.id().0;
    app.wait_for().unwrap();

    let report = rt.vm().obs().profiler().report();
    let view = report
        .view(Some(id))
        .expect("the spawner application has a profile view");
    assert!(
        view.instructions >= N as u64,
        "the child's interpreter work is billed to the spawner: {}",
        view.instructions
    );
    // The loop's add executes as a fused superinstruction under the
    // pre-decoded engine ("add" stays for unfused tails / seed runs).
    assert!(
        view.opcodes.iter().any(|o| matches!(
            o.opcode.as_str(),
            "add" | "add2_store" | "addi_store_jump"
        ) && o.count > 0),
        "the opcode mix reflects the child's workload"
    );
    // The VM-wide view covers it too.
    assert!(report.vm.instructions >= view.instructions);
    rt.shutdown();
}

#[test]
fn detached_thread_work_bills_the_vm_bucket_only() {
    // A detached thread carries no AppContext, so its interpreter work is
    // VM overhead, not application work — it must not inflate the
    // launching application's profile.
    let rt = runtime();
    register_app(&rt, "detacher", |_| {
        let vm = jmp_vm::Vm::current().expect("on a VM thread");
        let child = vm
            .thread_builder()
            .name("free-cruncher")
            .detached()
            .spawn(|_vm| run_crunch())?;
        child.join()?;
        Ok(())
    });
    let app = rt.launch_as("bob", "detacher", &[]).unwrap();
    let id = app.id().0;
    app.wait_for().unwrap();

    let report = rt.vm().obs().profiler().report();
    assert!(
        report.vm.instructions >= N as u64,
        "the detached work still lands in the VM bucket: {}",
        report.vm.instructions
    );
    // The application executed no interpreter work of its own: its view is
    // either absent or carries zero accounted instructions.
    let app_instructions = report.view(Some(id)).map_or(0, |v| v.instructions);
    assert_eq!(
        app_instructions, 0,
        "detached work must not bill the launching application"
    );
    rt.shutdown();
}

#[test]
fn profiler_is_always_on_and_attributes_in_app_work() {
    // The baseline case: interpreter work done directly on the
    // application's own thread, with no opt-in anywhere.
    let rt = runtime();
    assert!(rt.vm().obs().profiler().is_enabled(), "on by default");
    register_app(&rt, "direct", |_| {
        run_crunch();
        Ok(())
    });
    let app = rt.launch_as("alice", "direct", &[]).unwrap();
    let id = app.id().0;
    app.wait_for().unwrap();

    let report = rt.vm().obs().profiler().report();
    let view = report.view(Some(id)).expect("the app has a profile view");
    assert!(view.instructions >= N as u64);
    rt.shutdown();
}
