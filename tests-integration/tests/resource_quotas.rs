//! Ledger exactness and quota enforcement across the whole stack: every
//! charge an application incurs — threads at spawn, pipe bytes at write,
//! queued events at injection, handles at open — must be released by the
//! matching drain/close/teardown path, so a reaped application's ledger
//! reads zero; and a quota-capped application is denied (typed, audited,
//! counted) rather than allowed to monopolise the VM.

use std::time::Duration;

use jmp_awt::{DispatchMode, Toolkit};
use jmp_core::MpRuntime;
use jmp_security::Policy;
use jmp_vm::ResourceKind;
use tests_integration::register_app;

fn quota_runtime(extra_grants: &str, gui: bool) -> MpRuntime {
    let text = format!(
        "{}\n{}\n{extra_grants}",
        jmp_shell::default_policy_text(),
        r#"
        grant user "alice" { permission file "/home/alice/-" "read,write,delete"; };
        "#
    );
    let mut builder = MpRuntime::builder()
        .policy(Policy::parse(&text).expect("policy parses"))
        .user("alice", "apw");
    if gui {
        builder = builder.gui(DispatchMode::PerApplication);
    }
    let rt = builder.build().expect("runtime builds");
    jmp_shell::install(&rt).expect("tools install");
    rt
}

/// Threads, pipes, and handles: an application that spawns workers, pushes
/// bytes through a pipe, and drains them again leaves a ledger of exactly
/// zero after its reap.
#[test]
fn ledgers_drain_to_zero_after_threads_and_pipes() {
    let rt = quota_runtime("", false);
    register_app(&rt, "churn", |_| {
        let vm = jmp_vm::Vm::current().unwrap();
        let ctx = jmp_vm::thread::current_app_context().unwrap();
        // Spawn-and-join a few workers: each charges one thread slot while
        // alive.
        let workers: Vec<_> = (0..4)
            .map(|i| {
                vm.thread_builder()
                    .name(format!("w{i}"))
                    .spawn(|_| {
                        let _ = jmp_vm::thread::sleep(Duration::from_millis(10));
                    })
                    .expect("spawns")
            })
            .collect();
        assert!(
            ctx.ledger().get(ResourceKind::Threads) >= 5,
            "main + workers"
        );
        for w in workers {
            w.join_timeout(Duration::from_secs(5));
        }
        // Write through a pipe and drain it: pipe.bytes charges on write,
        // uncharges on read.
        let (out, input) = jmp_core::pipes::make_pipe().expect("pipe");
        out.write(b"0123456789abcdef").expect("write");
        assert_eq!(ctx.ledger().get(ResourceKind::PipeBytes), 16);
        let mut buf = [0u8; 16];
        let mut got = 0;
        while got < 16 {
            got += input.read(&mut buf[got..]).expect("read");
        }
        assert_eq!(ctx.ledger().get(ResourceKind::PipeBytes), 0);
        // Both pipe ends are owned handles until teardown.
        assert_eq!(ctx.ledger().get(ResourceKind::Handles), 2);
        Ok(())
    });
    let app = rt.launch_as("alice", "churn", &[]).unwrap();
    assert_eq!(app.wait_for().unwrap(), 0);
    assert!(rt.await_idle(Duration::from_secs(5)));
    assert!(
        app.context().ledger().is_drained(),
        "post-reap ledger must be zero: {:?}",
        app.context()
    );
    rt.shutdown();
}

/// GUI events: injected bursts charge the owning application's queue slots,
/// coalesced events never leak a charge, and dispatch drains the ledger.
#[test]
fn event_charges_drain_and_coalescing_does_not_leak() {
    let rt = quota_runtime("", true);
    register_app(&rt, "gui", |_| {
        let w = jmp_core::gui::create_window("quota")?;
        w.add_button("b");
        jmp_vm::thread::sleep(Duration::from_secs(600))
    });
    let display = rt.display().unwrap().clone();
    let toolkit = rt.toolkit().unwrap().clone();
    let app = rt.launch_as("alice", "gui", &[]).unwrap();
    assert!(Toolkit::wait_until(Duration::from_secs(5), || toolkit
        .window_count()
        == 1));
    let window = toolkit.windows_of_app(app.id().0)[0];

    // A burst of coalescible mouse moves plus discrete key events: the
    // charge only ever covers *retained* slots (merged moves are free), and
    // once the dispatcher has drained the queue the ledger reads zero.
    for i in 0..64 {
        display.inject_mouse_move(window, i, i).unwrap();
    }
    display.inject_close(window).unwrap();
    let ctx = app.context().clone();
    assert!(
        Toolkit::wait_until(Duration::from_secs(5), || {
            toolkit.queue_of(app.id().0).is_some_and(|q| q.is_empty())
                && ctx.ledger().get(ResourceKind::QueuedEvents) == 0
        }),
        "queued.events must drain to zero, ledger={}",
        ctx.ledger().get(ResourceKind::QueuedEvents),
    );

    app.stop(0).unwrap();
    assert!(rt.await_idle(Duration::from_secs(5)));
    assert!(app.context().ledger().is_drained());
    rt.shutdown();
}

/// A pipe flood against a byte quota: the offending write fails with a
/// typed `QuotaExceeded` (audited and counted) instead of buffering without
/// bound, and the app's victims — the ledgers — still drain at teardown.
#[test]
fn pipe_flood_is_denied_at_the_quota() {
    let rt = quota_runtime(
        r#"grant user "alice" { permission resource "limit.pipe.bytes:1024"; };"#,
        false,
    );
    register_app(&rt, "flood", |_| {
        let (out, _input) = jmp_core::pipes::make_pipe_with_capacity(64 * 1024).expect("pipe");
        let err = out
            .write(&vec![0u8; 8 * 1024])
            .expect_err("flood over quota");
        let vm_err: &jmp_vm::VmError = &err;
        assert!(vm_err.is_quota_exceeded(), "{err}");
        let ctx = jmp_vm::thread::current_app_context().unwrap();
        assert!(ctx.ledger().get(ResourceKind::PipeBytes) <= 1024);
        Ok(())
    });
    let app = rt.launch_as("alice", "flood", &[]).unwrap();
    assert_eq!(app.wait_for().unwrap(), 0);
    assert!(rt.vm().obs().vm_metrics().counter("quota.denied").get() >= 1);
    let audited = rt.vm().obs().audit_query(Some("alice"), None);
    assert!(
        audited.iter().any(|r| r.permission.contains("pipe.bytes")),
        "{audited:?}"
    );
    assert!(rt.await_idle(Duration::from_secs(5)));
    assert!(app.context().ledger().is_drained());
    rt.shutdown();
}

/// Memory: an application that runs the interpreter (arena slabs, string
/// prepay, resident image bytes) is charged while alive, the ledger drains
/// to zero in O(1) at reap, and a second run inside the same application
/// reuses the pooled arena block instead of reallocating.
#[test]
fn memory_ledger_drains_on_reap_and_the_arena_pool_is_reused() {
    let rt = quota_runtime(
        r#"grant user "alice" { permission resource "limit.memory:1048576"; };"#,
        false,
    );
    register_app(&rt, "memchurn", |_| {
        use jmp_vm::interp::{assemble, Interpreter, NoNatives};
        let ctx = jmp_vm::thread::current_app_context().unwrap();
        assert_eq!(
            ctx.limits().get(ResourceKind::Memory),
            1_048_576,
            "the limit.memory grant applies"
        );
        let image = std::sync::Arc::new(
            assemble(
                "class Churn\n\
                 method main/0 locals=2\n\
                 push_int 0\n  store 0\n  push_int 0\n  store 1\n\
                 loop:\n\
                 load 0\n  load 1\n  add\n  store 0\n\
                 load 1\n  push_int 1\n  add\n  store 1\n\
                 load 1\n  push_int 2000\n  lt\n  jump_if_true loop\n\
                 load 0\n  return_value\n",
            )
            .expect("assembles"),
        );
        let first = Interpreter::new(
            std::sync::Arc::clone(&image),
            std::sync::Arc::new(NoNatives),
        )
        .expect("verifies");
        first.run("main", vec![]).expect("first run");
        drop(first);
        assert!(
            ctx.resident_memory() > 0,
            "the freed arena slab stays charged in the application pool"
        );
        let before = ctx.arena_reuses();
        let second = Interpreter::new(
            std::sync::Arc::clone(&image),
            std::sync::Arc::new(NoNatives),
        )
        .expect("verifies");
        second.run("main", vec![]).expect("second run");
        drop(second);
        assert!(
            ctx.arena_reuses() > before,
            "the second run reuses the pooled arena block"
        );
        assert!(ctx.ledger().get(ResourceKind::Memory) > 0);
        Ok(())
    });
    let app = rt.launch_as("alice", "memchurn", &[]).unwrap();
    assert_eq!(app.wait_for().unwrap(), 0);
    assert!(rt.await_idle(Duration::from_secs(5)));
    assert_eq!(
        app.context().ledger().get(ResourceKind::Memory),
        0,
        "resident memory drains to zero at reap"
    );
    assert_eq!(app.context().resident_memory(), 0);
    assert!(app.context().ledger().is_drained());
    rt.shutdown();
}

/// A memory bomb (doubling concat) against a byte quota: the charge that
/// would cross the cap fails with a typed `QuotaExceeded` — audited with
/// the `memory` resource and counted on both the shared `quota.denied` and
/// the dedicated `memory.denied` observatory counters — and the ledger
/// still drains at teardown.
#[test]
fn memory_bomb_is_denied_typed_audited_and_counted() {
    let rt = quota_runtime(
        r#"grant user "alice" { permission resource "limit.memory:32768"; };"#,
        false,
    );
    register_app(&rt, "membomb", |_| {
        use jmp_vm::interp::{assemble, Interpreter, NoNatives};
        let image = assemble(
            "class Bomb\n\
             method main/0 locals=2\n\
             push_str \"aaaaaaaaaaaaaaaa\"\n  store 0\n\
             push_int 0\n  store 1\n\
             loop:\n\
             load 0\n  load 0\n  concat\n  store 0\n\
             load 1\n  push_int 1\n  add\n  store 1\n\
             load 1\n  push_int 24\n  lt\n  jump_if_true loop\n\
             load 0\n  return_value\n",
        )
        .expect("assembles");
        let interp = Interpreter::new(std::sync::Arc::new(image), std::sync::Arc::new(NoNatives))
            .expect("verifies");
        let err = interp
            .run("main", vec![])
            .expect_err("the doubling concat must hit the 32KiB cap");
        assert!(err.is_quota_exceeded(), "typed denial: {err}");
        let ctx = jmp_vm::thread::current_app_context().unwrap();
        assert!(ctx.ledger().get(ResourceKind::Memory) <= 32_768);
        Ok(())
    });
    let app = rt.launch_as("alice", "membomb", &[]).unwrap();
    assert_eq!(app.wait_for().unwrap(), 0);
    let metrics = rt.vm().obs().vm_metrics();
    assert!(metrics.counter("memory.denied").get() >= 1);
    assert!(metrics.counter("memory.charged").get() >= 1);
    assert!(metrics.counter("quota.denied").get() >= 1);
    let audited = rt.vm().obs().audit_query(Some("alice"), None);
    assert!(
        audited.iter().any(|r| r.permission.contains("memory")),
        "quota.denied{{resource=memory}} is audited: {audited:?}"
    );
    assert!(rt.await_idle(Duration::from_secs(5)));
    assert!(app.context().ledger().is_drained());
    rt.shutdown();
}
