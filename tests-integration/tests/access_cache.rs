//! The decision cache under adversarial conditions: mid-workload policy
//! reloads, `doPrivileged`-truncated contexts, concurrent check/reload
//! races, and the audit-exactness invariant (a warm cache must never change
//! what a denial says).

use std::sync::mpsc;
use std::sync::Arc;

use jmp_security::{AccessContext, CodeSource, FileActions, Permission, Policy, ProtectionDomain};
use jmp_vm::{stack, Vm};
use tests_integration::{register_app, runtime};

fn code_domain(vm: &Vm, url: &str) -> Arc<ProtectionDomain> {
    let source = CodeSource::local(url);
    let permissions = vm.policy().permissions_for(&source);
    Arc::new(ProtectionDomain::new(source, permissions))
}

fn exercising_domain(vm: &Vm, url: &str) -> Arc<ProtectionDomain> {
    let source = CodeSource::local(url);
    let mut permissions = vm.policy().permissions_for(&source);
    permissions.add(Permission::exercise_user_permissions());
    Arc::new(ProtectionDomain::new(source, permissions))
}

fn user_policy(user: &str, paths: &[&str]) -> Policy {
    let mut policy = Policy::new();
    policy.grant_user(
        user,
        paths
            .iter()
            .map(|p| Permission::file(*p, FileActions::READ))
            .collect(),
    );
    policy
}

/// A reload mid-workload: grants added by the new policy are honored on the
/// very next check, revoked grants are denied — even though the old
/// decisions were warm in the cache. Driven through the user-grant path,
/// which consults the live policy on every walk.
#[test]
fn reload_honors_new_grants_and_revokes_old_ones() {
    let vm = Vm::builder().policy(user_policy("alice", &["/a"])).build();
    vm.set_user_resolver(Arc::new(|| Some("alice".to_string())))
        .unwrap();
    let editor = exercising_domain(&vm, "file:/apps/editor");
    let read_a = Permission::file("/a", FileActions::READ);
    let read_b = Permission::file("/b", FileActions::READ);

    stack::call_as("Editor", Arc::clone(&editor), || {
        // Warm the /a decision thoroughly.
        for _ in 0..10 {
            vm.access_check(&read_a).unwrap();
        }
        vm.access_check(&read_b).unwrap_err();
    });
    vm.set_policy(user_policy("alice", &["/b"])).unwrap();
    stack::call_as("Editor", editor, || {
        vm.access_check(&read_b).unwrap();
        vm.access_check(&read_a).unwrap_err();
    });
}

/// A `doPrivileged`-truncated context must never alias the full stack it
/// was cut from: a decision granted under truncation (evil frames hidden)
/// must not be served from the cache when the evil frame is visible.
#[test]
fn privileged_truncation_never_aliases_the_full_stack() {
    let mut policy = Policy::new();
    policy.grant_code(
        CodeSource::local("file:/sys/font"),
        vec![Permission::file("/fonts/-", FileActions::READ)],
    );
    let vm = Vm::builder().policy(policy).build();
    let font = code_domain(&vm, "file:/sys/font");
    let evil = Arc::new(ProtectionDomain::untrusted(CodeSource::remote(
        "http://evil/x",
    )));
    let demand = Permission::file("/fonts/arial.ttf", FileActions::READ);

    stack::call_as("Evil", evil, || {
        stack::call_as("Font", Arc::clone(&font), || {
            // Privileged: the evil caller is hidden; granted — and cached
            // under the truncated fingerprint.
            for _ in 0..10 {
                stack::do_privileged(|| vm.access_check(&demand).unwrap());
            }
            // Unprivileged from the same spot: the evil frame is visible, so
            // the cached truncated decision must not apply.
            vm.access_check(&demand).unwrap_err();
        });
    });
    // The truncated grant also must not leak onto a bare font-only stack
    // cache entry and vice versa (they happen to decide the same way here,
    // but the fingerprints must differ when the visible sets differ).
    let ctx_font_only = AccessContext::from_domains(vec![font]);
    assert_eq!(ctx_font_only.fingerprint().unique, 1);
}

/// Hammers the cache from many checker threads while the policy is
/// reloaded concurrently. Invariants: a permission granted by every policy
/// version is never spuriously denied, and after the final reload the
/// flipped permission settles to exactly what the final policy says.
#[test]
fn concurrent_checks_and_reloads_stay_consistent() {
    const CHECKERS: usize = 4;
    const CHECKS_PER_THREAD: usize = 2_000;
    const RELOADS: usize = 200;

    // "/stable" is granted by every policy version; "/flip" alternates.
    let policy_with = user_policy("alice", &["/stable", "/flip"]);
    let policy_without = user_policy("alice", &["/stable"]);

    let vm = Vm::builder().policy(policy_with.clone()).build();
    vm.set_user_resolver(Arc::new(|| Some("alice".to_string())))
        .unwrap();
    let editor = exercising_domain(&vm, "file:/apps/editor");
    let stable = Permission::file("/stable", FileActions::READ);
    let flip = Permission::file("/flip", FileActions::READ);

    let (tx, rx) = mpsc::channel::<String>();
    let mut checkers = Vec::new();
    for i in 0..CHECKERS {
        let vm = vm.clone();
        let editor = Arc::clone(&editor);
        let stable = stable.clone();
        let flip = flip.clone();
        let tx = tx.clone();
        checkers.push(
            std::thread::Builder::new()
                .name(format!("checker-{i}"))
                .spawn(move || {
                    stack::call_as("Editor", editor, || {
                        for _ in 0..CHECKS_PER_THREAD {
                            if vm.access_check(&stable).is_err() {
                                let _ = tx.send("stable grant spuriously denied".into());
                                return;
                            }
                            // Result depends on which policy is live; only
                            // crashes/deadlocks would be bugs here.
                            let _ = vm.access_check(&flip);
                        }
                    });
                })
                .unwrap(),
        );
    }
    drop(tx);
    for i in 0..RELOADS {
        let next = if i % 2 == 0 {
            policy_without.clone()
        } else {
            policy_with.clone()
        };
        vm.set_policy(next).unwrap();
    }
    for checker in checkers {
        checker.join().unwrap();
    }
    if let Ok(failure) = rx.try_recv() {
        panic!("{failure}");
    }
    // Settle on each final policy in turn and verify cached state obeys it.
    vm.set_policy(policy_without).unwrap();
    stack::call_as("Editor", Arc::clone(&editor), || {
        vm.access_check(&stable).unwrap();
        vm.access_check(&flip).unwrap_err();
    });
    vm.set_policy(policy_with).unwrap();
    stack::call_as("Editor", editor, || {
        vm.access_check(&stable).unwrap();
        vm.access_check(&flip).unwrap();
    });
}

/// Audit exactness, warm and cold: the denial record produced after a long
/// warm streak names exactly the same refusing domain as the first (cold)
/// denial, and warm granted checks add no audit records at all.
#[test]
fn warm_cache_never_changes_what_denials_say() {
    let mut policy = Policy::new();
    policy.grant_code(
        CodeSource::local("file:/apps/ok"),
        vec![Permission::file("/data/-", FileActions::READ)],
    );
    let vm = Vm::builder().policy(policy).build();
    let ok = code_domain(&vm, "file:/apps/ok");
    let granted = Permission::file("/data/x", FileActions::READ);
    let denied = Permission::file("/secret/x", FileActions::READ);

    stack::call_as("Ok", ok, || {
        vm.access_check(&denied).unwrap_err(); // cold denial
        for _ in 0..50 {
            vm.access_check(&granted).unwrap(); // warm streak
        }
        vm.access_check(&denied).unwrap_err(); // denial after warm streak
    });
    let records = vm.obs().audit().recent();
    assert_eq!(records.len(), 2, "only the two denials are audited");
    assert_eq!(
        records[0].context, records[1].context,
        "warm cache must not change the refusing-domain message"
    );
    assert!(
        records[0].context.contains("file:/apps/ok"),
        "the refusing domain is named exactly: {}",
        records[0].context
    );
    let metrics = vm.obs().vm_metrics();
    assert_eq!(metrics.counter("access.cache.hits").get(), 49);
    assert_eq!(metrics.counter("access.cache.misses").get(), 1);
    // Both denials bypassed the cache (denials are never cached).
    assert_eq!(metrics.counter("access.cache.bypass").get(), 2);
}

/// The full multi-processing stack still enforces user separation with the
/// cache in the loop: the same warm application code flips decisions when
/// the running user differs (the user is part of the cache key).
#[test]
fn cache_key_separates_users_in_the_real_runtime() {
    let rt = runtime();
    let alice = rt.users().lookup("alice").unwrap();
    rt.vfs()
        .write("/home/alice/a.txt", b"A", alice.id())
        .unwrap();

    register_app(&rt, "rereader", |_| {
        for _ in 0..10 {
            let _ = jmp_core::files::read("/home/alice/a.txt");
        }
        Ok(())
    });
    // Alice warms grants for her context; bob runs the same code and must
    // be denied despite the warm cache.
    rt.launch_as("alice", "rereader", &[])
        .unwrap()
        .wait_for()
        .unwrap();
    rt.launch_as("bob", "rereader", &[])
        .unwrap()
        .wait_for()
        .unwrap();
    let audit = jmp_core::obs::audit_records(&rt, None, None).unwrap();
    assert!(
        audit
            .iter()
            .any(|r| r.user.as_deref() == Some("bob") && r.permission.contains("/home/alice")),
        "bob's denial must be audited even when alice warmed the cache"
    );
    assert!(
        !audit
            .iter()
            .any(|r| r.user.as_deref() == Some("alice") && r.permission.contains("a.txt")),
        "alice was granted; no audit record for her reads"
    );
    rt.shutdown();
}
