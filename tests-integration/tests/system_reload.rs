//! E4 (Fig 5 / §5.5) integration: per-application `System` classes, shared
//! `SystemProperties`, and the state separation they produce.

use std::sync::Arc;

use jmp_core::{jsystem, Application, SYSTEM_CLASS, SYSTEM_PROPERTIES_CLASS};
use parking_lot::Mutex;
use tests_integration::{register_app, runtime};

#[test]
fn ten_apps_ten_system_classes_one_properties_class() {
    let rt = runtime();
    let seen: Arc<Mutex<Vec<(String, String)>>> = Arc::new(Mutex::new(Vec::new()));
    let seen2 = Arc::clone(&seen);
    rt.vm()
        .material()
        .register(
            jmp_vm::ClassDef::builder("collector")
                .main(move |_| {
                    let app = Application::current().unwrap();
                    let sys = app.system_class().id().to_string();
                    let props = app
                        .loader()
                        .load_class(SYSTEM_PROPERTIES_CLASS)?
                        .id()
                        .to_string();
                    seen2.lock().push((sys, props));
                    Ok(())
                })
                .build(),
            jmp_security::CodeSource::local("file:/apps/collector"),
        )
        .unwrap();
    for _ in 0..10 {
        rt.launch_as("alice", "collector", &[])
            .unwrap()
            .wait_for()
            .unwrap();
    }
    let seen = seen.lock();
    let sys: std::collections::HashSet<&String> = seen.iter().map(|(s, _)| s).collect();
    let props: std::collections::HashSet<&String> = seen.iter().map(|(_, p)| p).collect();
    assert_eq!(sys.len(), 10, "one System class per application");
    assert_eq!(props.len(), 1, "one shared SystemProperties class");
    rt.shutdown();
}

#[test]
fn non_reloaded_classes_are_shared_between_apps() {
    // Only the classes on the re-load list get per-app definitions; plain
    // library classes resolve to the parent's single definition.
    let rt = runtime();
    rt.vm()
        .material()
        .register(
            jmp_vm::ClassDef::builder("lib.Helper").build(),
            jmp_security::CodeSource::local("file:/sys/classes"),
        )
        .unwrap();
    let seen: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let seen2 = Arc::clone(&seen);
    rt.vm()
        .material()
        .register(
            jmp_vm::ClassDef::builder("libuser")
                .main(move |_| {
                    let app = Application::current().unwrap();
                    seen2
                        .lock()
                        .push(app.loader().load_class("lib.Helper")?.id().to_string());
                    Ok(())
                })
                .build(),
            jmp_security::CodeSource::local("file:/apps/libuser"),
        )
        .unwrap();
    for _ in 0..3 {
        rt.launch_as("alice", "libuser", &[])
            .unwrap()
            .wait_for()
            .unwrap();
    }
    let ids: std::collections::HashSet<String> = seen.lock().iter().cloned().collect();
    assert_eq!(
        ids.len(),
        1,
        "lib.Helper is shared (delegation, not reload)"
    );
    rt.shutdown();
}

#[test]
fn system_property_writes_are_visible_to_all_apps() {
    let rt = runtime();
    // Writing needs a write grant; extend the policy for one code source.
    let mut policy = (*rt.vm().policy()).clone();
    policy.grant_code(
        jmp_security::CodeSource::local("file:/apps/propwriter"),
        vec![jmp_security::Permission::property(
            "demo.*",
            jmp_security::PropertyActions::ALL,
        )],
    );
    rt.vm().set_policy(policy).unwrap();

    register_app(&rt, "propwriter", |_| {
        jsystem::set_property("demo.flag", "set-by-writer")?;
        Ok(())
    });
    static SAW: parking_lot::Mutex<Option<String>> = parking_lot::Mutex::new(None);
    register_app(&rt, "propreader", |_| {
        *SAW.lock() = jsystem::property("demo.flag")?;
        Ok(())
    });
    rt.launch_as("alice", "propwriter", &[])
        .unwrap()
        .wait_for()
        .unwrap();
    rt.launch_as("bob", "propreader", &[])
        .unwrap()
        .wait_for()
        .unwrap();
    assert_eq!(SAW.lock().as_deref(), Some("set-by-writer"));

    // Without the write grant, setting is denied.
    static DENIED: parking_lot::Mutex<bool> = parking_lot::Mutex::new(false);
    register_app(&rt, "propthief", |_| {
        *DENIED.lock() = jsystem::set_property("demo.flag", "evil").is_err();
        Ok(())
    });
    rt.launch_as("alice", "propthief", &[])
        .unwrap()
        .wait_for()
        .unwrap();
    assert!(*DENIED.lock());
    rt.shutdown();
}

#[test]
fn app_properties_do_not_leak_between_apps() {
    // The per-application property overlay (§5.1 state) is disjoint from
    // the shared SystemProperties.
    let rt = runtime();
    static SECOND_SAW: parking_lot::Mutex<Option<String>> = parking_lot::Mutex::new(None);
    register_app(&rt, "appprops1", |_| {
        Application::current()
            .unwrap()
            .properties()
            .set("private.key", "one");
        Ok(())
    });
    register_app(&rt, "appprops2", |_| {
        *SECOND_SAW.lock() = Application::current()
            .unwrap()
            .properties()
            .get("private.key");
        Ok(())
    });
    rt.launch_as("alice", "appprops1", &[])
        .unwrap()
        .wait_for()
        .unwrap();
    rt.launch_as("alice", "appprops2", &[])
        .unwrap()
        .wait_for()
        .unwrap();
    assert_eq!(*SECOND_SAW.lock(), None);
    rt.shutdown();
}

#[test]
fn system_class_slots_match_paper_figure() {
    // Fig 5 names in/out/err (+ the security-manager slot from §5.6).
    let rt = runtime();
    let def = rt.vm().material().get(SYSTEM_CLASS).unwrap().0;
    let slots: Vec<&str> = def.static_slots().iter().map(String::as_str).collect();
    assert_eq!(slots, vec!["in", "out", "err", "securityManager"]);
    rt.shutdown();
}
