//! GUI applets: interpreted mobile code building windows and handling
//! events — the full §6.3 appletviewer experience. The crucial security
//! property: an `on_action` callback re-enters the interpreter *inside the
//! applet's frame*, so even on the event-dispatcher thread the applet keeps
//! its sandbox.

use std::time::Duration;

use jmp_awt::{ComponentId, DispatchMode, Toolkit};
use jmp_core::MpRuntime;
use jmp_security::Policy;
use jmp_shell::publish_applet;

/// The callback needs the window/field handles; `jbc` has no globals, so the
/// test uses fixed handle values: the first window an applet opens gets the
/// toolkit's next window id. To keep the applet robust, this variant stores
/// state in the text field itself and hard-codes handles 1 (window) and 1
/// (field) — valid because the test uses a fresh runtime where the applet's
/// window is the first ever created.
const COUNTER_APPLET_FIXED: &str = r#"
    class Counter
    method main/0 locals=3
        push_str "Counter"
        native create_window/1
        store 0
        load 0
        native add_text_field/1
        store 1
        load 0
        load 1
        push_int 0
        native set_text/3
        pop
        load 0
        push_str "increment"
        native add_button/2
        store 2
        load 0
        load 2
        push_str "on_click"
        native on_action/3
        pop
        load 0
        return_value

    method on_click/1 locals=2
        ; current = int(text_of(window=1, field=1))  — parse via arithmetic:
        ; text_of returns a string; Concat-based math won't work, so keep a
        ; count by appending one '*' per click instead.
        push_int 1
        push_int 1
        native text_of/2
        push_str "*"
        concat
        store 1
        push_int 1
        push_int 1
        load 1
        native set_text/3
        return_value
"#;

/// An evil GUI applet: the button callback tries to read the user's file.
const EVIL_GUI_APPLET: &str = r#"
    class EvilGui
    method main/0 locals=2
        push_str "Innocent Looking"
        native create_window/1
        store 0
        load 0
        push_str "click me"
        native add_button/2
        store 1
        load 0
        load 1
        push_str "steal"
        native on_action/3
        pop
        return

    method steal/1 locals=0
        push_str "/home/alice/secret.txt"
        native read_file/1
        native println/1
        return
"#;

fn gui_runtime() -> MpRuntime {
    let text = format!(
        "{}\n{}",
        jmp_shell::default_policy_text(),
        r#"grant user "alice" { permission file "/home/alice/-" "read,write,delete"; };"#
    );
    let rt = MpRuntime::builder()
        .policy(Policy::parse(&text).unwrap())
        .user("alice", "apw")
        .gui(DispatchMode::PerApplication)
        .build()
        .unwrap();
    jmp_shell::install(&rt).unwrap();
    rt
}

#[test]
fn applet_builds_a_working_gui() {
    let rt = gui_runtime();
    publish_applet(
        &rt,
        "applets.example.com",
        "/counter.jbc",
        COUNTER_APPLET_FIXED,
    )
    .unwrap();
    let viewer = rt
        .launch_as(
            "alice",
            "appletviewer",
            &["http://applets.example.com/counter.jbc"],
        )
        .unwrap();
    let toolkit = rt.toolkit().unwrap().clone();
    let display = rt.display().unwrap().clone();
    assert!(Toolkit::wait_until(Duration::from_secs(5), || toolkit
        .window_count()
        == 1));
    let window_id = toolkit.windows_of_app(viewer.id().0)[0];
    let window = toolkit.window(window_id).unwrap();
    assert_eq!(window.title(), "Counter");

    // Components: text field = 1, button = 2.
    let field = ComponentId(1);
    let button = ComponentId(2);
    assert_eq!(window.text_of(field).as_deref(), Some("0"));
    for _ in 0..3 {
        display.inject_action(window_id, button).unwrap();
    }
    assert!(
        Toolkit::wait_until(Duration::from_secs(5), || {
            window.text_of(field).as_deref() == Some("0***")
        }),
        "three clicks must append three marks, got {:?}",
        window.text_of(field)
    );

    // Closing the window ends the viewer application (§6.3 semantics).
    display.inject_close(window_id).unwrap();
    assert_eq!(viewer.wait_for().unwrap(), 0);
    assert_eq!(toolkit.window_count(), 0);
    rt.shutdown();
}

#[test]
fn gui_callback_keeps_the_applet_sandbox() {
    let rt = gui_runtime();
    let alice = rt.users().lookup("alice").unwrap();
    rt.vfs()
        .write("/home/alice/secret.txt", b"precious", alice.id())
        .unwrap();
    publish_applet(&rt, "applets.example.com", "/evilgui.jbc", EVIL_GUI_APPLET).unwrap();

    let viewer = rt
        .launch_as(
            "alice",
            "appletviewer",
            &["http://applets.example.com/evilgui.jbc"],
        )
        .unwrap();
    let toolkit = rt.toolkit().unwrap().clone();
    let display = rt.display().unwrap().clone();
    assert!(Toolkit::wait_until(Duration::from_secs(5), || toolkit
        .window_count()
        == 1));
    let window_id = toolkit.windows_of_app(viewer.id().0)[0];

    // Click the bait button: the callback runs on the dispatcher thread but
    // inside the applet's frame — the read must be denied.
    display.inject_action(window_id, ComponentId(1)).unwrap();
    assert!(Toolkit::wait_until(Duration::from_secs(5), || {
        rt.console_output().contains("applet callback failed")
    }));
    let console = rt.console_output();
    assert!(
        console.contains("security exception"),
        "callback denial must be a SecurityException: {console}"
    );
    assert!(!console.contains("precious"));

    display.inject_close(window_id).unwrap();
    viewer.wait_for().unwrap();
    rt.shutdown();
}

#[test]
fn unknown_callback_method_is_rejected_at_registration() {
    let rt = gui_runtime();
    publish_applet(
        &rt,
        "applets.example.com",
        "/badcb.jbc",
        r#"
        class BadCb
        method main/0 locals=2
            push_str "w"
            native create_window/1
            store 0
            load 0
            push_str "b"
            native add_button/2
            store 1
            load 0
            load 1
            push_str "no_such_method"
            native on_action/3
            pop
            return
        "#,
    )
    .unwrap();
    let viewer = rt
        .launch_as(
            "alice",
            "appletviewer",
            &["http://applets.example.com/badcb.jbc"],
        )
        .unwrap();
    // The applet traps during main; the viewer reports and exits... except
    // the dispatcher (created by the window) keeps the app alive. Close it.
    let toolkit = rt.toolkit().unwrap().clone();
    assert!(Toolkit::wait_until(Duration::from_secs(5), || {
        rt.console_output().contains("no_such_method")
    }));
    if let Some(&win) = toolkit.windows_of_app(viewer.id().0).first() {
        rt.display().unwrap().inject_close(win).unwrap();
    }
    viewer.wait_for().unwrap();
    rt.shutdown();
}
