//! E1 (Fig 1) integration: VM and application lifetimes follow non-daemon
//! threads, including the AWT dispatcher case of paper §5.4.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use jmp_awt::{DispatchMode, Toolkit};
use jmp_core::{AppStatus, Application, MpRuntime};
use tests_integration::{policy, register_app, runtime};

#[test]
fn vm_exits_when_main_returns_and_no_nondaemons_remain() {
    let vm = jmp_vm::Vm::new();
    vm.material()
        .register(
            jmp_vm::ClassDef::builder("Quick").main(|_| Ok(())).build(),
            jmp_security::CodeSource::local("file:/sys/classes"),
        )
        .unwrap();
    let start = Instant::now();
    assert_eq!(vm.run("Quick", vec![]).unwrap(), 0);
    assert!(start.elapsed() < Duration::from_secs(5));
}

#[test]
fn app_with_only_daemons_left_is_reaped() {
    let rt = runtime();
    static DAEMON_STARTED: AtomicUsize = AtomicUsize::new(0);
    register_app(&rt, "daemons", |_| {
        let vm = jmp_vm::Vm::current().unwrap();
        vm.thread_builder()
            .name("background")
            .daemon(true)
            .spawn(|_| {
                DAEMON_STARTED.fetch_add(1, Ordering::SeqCst);
                let _ = jmp_vm::thread::sleep(Duration::from_secs(600));
            })?;
        // Give the daemon a moment to start, then return from main.
        jmp_vm::thread::sleep(Duration::from_millis(20))
    });
    let app = rt.launch_as("alice", "daemons", &[]).unwrap();
    let start = Instant::now();
    assert_eq!(app.wait_for().unwrap(), 0);
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "daemon threads must not keep the application alive (Fig 1)"
    );
    assert_eq!(DAEMON_STARTED.load(Ordering::SeqCst), 1);
    rt.shutdown();
}

#[test]
fn awt_application_lives_until_explicit_exit() {
    // Paper §5.4: the per-app dispatcher is non-daemon, so "an application
    // that does use the AWT has to call Application.exit() to finish."
    let rt = MpRuntime::builder()
        .policy(policy())
        .user("alice", "apw")
        .gui(DispatchMode::PerApplication)
        .build()
        .unwrap();
    register_app(&rt, "awtapp", |_| {
        let window = jmp_core::gui::create_window("hold")?;
        let quit = window.add_button("quit");
        window.on_action(quit, |_| {
            let _ = Application::exit(42);
        });
        Ok(()) // main returns; the dispatcher keeps the app alive
    });
    let app = rt.launch_as("alice", "awtapp", &[]).unwrap();
    let toolkit = rt.toolkit().unwrap().clone();
    assert!(Toolkit::wait_until(Duration::from_secs(5), || toolkit
        .window_count()
        == 1));
    // main has long returned, but the app is still running.
    std::thread::sleep(Duration::from_millis(80));
    assert!(matches!(app.status(), AppStatus::Running));

    // Click quit: the callback calls Application::exit(42).
    let win = toolkit.windows_of_app(app.id().0)[0];
    rt.display()
        .unwrap()
        .inject_action(win, jmp_awt::ComponentId(1))
        .unwrap();
    assert_eq!(app.wait_for().unwrap(), 42);
    assert_eq!(toolkit.window_count(), 0, "teardown closed the window");
    rt.shutdown();
}

#[test]
fn reaper_interrupts_blocked_threads() {
    let rt = runtime();
    static UNBLOCKED: AtomicUsize = AtomicUsize::new(0);
    register_app(&rt, "blocked", |_| {
        let vm = jmp_vm::Vm::current().unwrap();
        // A thread blocked forever on a pipe read.
        let (_writer, reader) = jmp_vm::io::pipe(8);
        vm.thread_builder().name("reader").spawn(move |_| {
            let mut buf = [0u8; 1];
            if reader.read(&mut buf).is_err() {
                UNBLOCKED.fetch_add(1, Ordering::SeqCst);
            }
        })?;
        jmp_vm::thread::sleep(Duration::from_millis(20))?;
        Application::exit(0).map_err(jmp_vm::VmError::from)
    });
    let app = rt.launch_as("alice", "blocked", &[]).unwrap();
    assert_eq!(app.wait_for().unwrap(), 0);
    assert_eq!(
        UNBLOCKED.load(Ordering::SeqCst),
        1,
        "teardown must unstick threads blocked in runtime primitives"
    );
    rt.shutdown();
}

#[test]
fn stop_is_idempotent_and_wait_for_is_reentrant() {
    let rt = runtime();
    register_app(&rt, "longrun", |_| {
        jmp_vm::thread::sleep(Duration::from_secs(600))
    });
    let app = rt.launch_as("alice", "longrun", &[]).unwrap();
    app.stop(5).unwrap();
    app.stop(9).unwrap(); // second request is ignored
    assert_eq!(app.wait_for().unwrap(), 5);
    assert_eq!(app.wait_for().unwrap(), 5, "wait_for after finish returns");
    assert!(matches!(app.status(), AppStatus::Finished(5)));
    rt.shutdown();
}
