//! E9 (§6.1/§6.2) integration: session flows beyond the shell crate's own
//! tests — re-login on one terminal, shells launching shells, interactive
//! stdin through pipelines.

use jmp_shell::spawn_login_session;
use tests_integration::runtime;

#[test]
fn one_terminal_serves_successive_users() {
    // §2's multi-user promise: "to switch to a different user, the previous
    // user must be logged off and sometimes the machine has to be rebooted"
    // — not here: log out, log in as someone else, no reboot.
    let rt = runtime();
    let (terminal, session) = spawn_login_session(&rt).unwrap();
    for line in [
        "alice",
        "apw",
        "whoami",
        "echo alice-was-here > trace.txt",
        "logout",
        "bob",
        "bpw",
        "whoami",
        "quit",
    ] {
        terminal.type_line(line).unwrap();
    }
    terminal.type_eof();
    session.wait_for().unwrap();
    let screen = terminal.screen_text();
    assert!(screen.contains("\nalice\n"));
    assert!(screen.contains("logged out"));
    assert!(screen.contains("\nbob\n"));
    // Each user's file ended up in their own home with their ownership.
    let alice = rt.users().lookup("alice").unwrap();
    assert!(rt.vfs().exists("/home/alice/trace.txt", alice.id()));
    rt.shutdown();
}

#[test]
fn shell_can_launch_a_nested_shell() {
    let rt = runtime();
    let (terminal, session) = spawn_login_session(&rt).unwrap();
    for line in [
        "alice",
        "apw",
        "shell",      // nested shell, same streams
        "echo inner", // runs in the nested shell
        "quit",       // ends the nested shell
        "echo outer", // back in the outer shell
        "quit",
    ] {
        terminal.type_line(line).unwrap();
    }
    terminal.type_eof();
    session.wait_for().unwrap();
    let screen = terminal.screen_text();
    assert!(screen.contains("\ninner\n"));
    assert!(screen.contains("\nouter\n"));
    rt.shutdown();
}

#[test]
fn cat_copies_terminal_input_into_a_redirected_file() {
    // `cat > file`: interactive stdin flows through the application into a
    // redirected stream; EOF comes from the terminal.
    let rt = runtime();
    let (terminal, session) = spawn_login_session(&rt).unwrap();
    for line in ["alice", "apw", "cat > dictation.txt"] {
        terminal.type_line(line).unwrap();
    }
    // These lines are consumed by `cat`, not the shell.
    terminal.type_line("first dictated line").unwrap();
    terminal.type_line("second dictated line").unwrap();
    terminal.type_eof(); // EOF: cat finishes, then the shell sees EOF too
    session.wait_for().unwrap();
    let alice = rt.users().lookup("alice").unwrap();
    let contents = rt
        .vfs()
        .read("/home/alice/dictation.txt", alice.id())
        .unwrap();
    let text = String::from_utf8_lossy(&contents);
    assert!(text.contains("first dictated line"));
    assert!(text.contains("second dictated line"));
    rt.shutdown();
}

#[test]
fn concurrent_shells_do_not_share_cwd() {
    // Per-application state: each session has its own current directory
    // (paper §5.1 lists cwd as application state).
    let rt = runtime();
    let (term_a, sess_a) = spawn_login_session(&rt).unwrap();
    let (term_b, sess_b) = spawn_login_session(&rt).unwrap();
    term_a.type_line("alice").unwrap();
    term_a.type_line("apw").unwrap();
    term_b.type_line("bob").unwrap();
    term_b.type_line("bpw").unwrap();
    term_a.type_line("mkdir deep").unwrap();
    term_a.type_line("cd deep").unwrap();
    term_a.type_line("pwd").unwrap();
    term_b.type_line("pwd").unwrap();
    for t in [&term_a, &term_b] {
        t.type_line("quit").unwrap();
        t.type_eof();
    }
    sess_a.wait_for().unwrap();
    sess_b.wait_for().unwrap();
    assert!(term_a.screen_text().contains("/home/alice/deep"));
    assert!(term_b.screen_text().contains("\n/home/bob\n"));
    assert!(!term_b.screen_text().contains("deep"));
    rt.shutdown();
}

#[test]
fn error_in_one_command_does_not_kill_the_session() {
    let rt = runtime();
    let (terminal, session) = spawn_login_session(&rt).unwrap();
    for line in [
        "alice",
        "apw",
        "cat /no/such/file", // error from an app
        "ls | | wc",         // parse error in the shell
        "echo recovered",    // the session goes on
        "quit",
    ] {
        terminal.type_line(line).unwrap();
    }
    terminal.type_eof();
    session.wait_for().unwrap();
    let screen = terminal.screen_text();
    assert!(screen.contains("cat: "));
    assert!(screen.contains("syntax error"));
    assert!(screen.contains("\nrecovered\n"));
    rt.shutdown();
}
