//! Shared helpers for the cross-crate integration tests.

use jmp_core::MpRuntime;
use jmp_security::Policy;

/// The standard two-user policy: the shell defaults plus the paper's §5.3
/// user grants and the backup rule.
pub fn policy() -> Policy {
    let text = format!(
        "{}\n{}",
        jmp_shell::default_policy_text(),
        r#"
        grant codeBase "file:/apps/backup" {
            permission file "<<ALL FILES>>" "read";
        };
        grant user "alice" {
            permission file "/home/alice" "read";
            permission file "/home/alice/-" "read,write,execute,delete";
        };
        grant user "bob" {
            permission file "/home/bob" "read";
            permission file "/home/bob/-" "read,write,execute,delete";
        };
        "#
    );
    Policy::parse(&text).expect("integration policy parses")
}

/// Builds the standard runtime with the §6 tools installed.
pub fn runtime() -> MpRuntime {
    let rt = MpRuntime::builder()
        .policy(policy())
        .user("alice", "apw")
        .user("bob", "bpw")
        .build()
        .expect("runtime builds");
    jmp_shell::install(&rt).expect("tools install");
    rt
}

/// Registers a native application class under `file:/apps/<name>`.
pub fn register_app(
    rt: &MpRuntime,
    name: &str,
    main: impl Fn(Vec<String>) -> jmp_vm::Result<()> + Send + Sync + 'static,
) {
    rt.vm()
        .material()
        .register(
            jmp_vm::ClassDef::builder(name).main(main).build(),
            jmp_security::CodeSource::local(format!("file:/apps/{name}")),
        )
        .expect("class registers");
}
