//! `jmproc` — an interactive multi-user session on the multi-processing
//! runtime, driven from your real terminal.
//!
//! ```sh
//! cargo run --bin jmproc
//! # login: alice        (password: alice)
//! # alice@jmp:/home/alice$ ls | wc
//! ```
//!
//! Users `alice` and `bob` exist with passwords equal to their names; the
//! policy is the shell default plus per-user home grants. The host's stdin
//! is typed into the runtime's terminal; whatever the terminal screen shows
//! is echoed to the host's stdout.

use std::io::{BufRead, Write};
use std::time::Duration;

use jmp_core::MpRuntime;
use jmp_security::Policy;
use jmp_shell::spawn_login_session;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let policy_text = format!(
        "{}\n{}",
        jmp_shell::default_policy_text(),
        r#"
        grant user "alice" { permission file "/home/alice" "read";
                             permission file "/home/alice/-" "read,write,execute,delete"; };
        grant user "bob"   { permission file "/home/bob" "read";
                             permission file "/home/bob/-" "read,write,execute,delete"; };
        "#
    );
    let rt = MpRuntime::builder()
        .policy(Policy::parse(&policy_text)?)
        .user("alice", "alice")
        .user("bob", "bob")
        .build()?;
    jmp_shell::install(&rt)?;

    let (terminal, session) = spawn_login_session(&rt)?;

    // Mirror the runtime terminal's screen to the host stdout as it grows.
    let mirror_terminal = terminal.clone();
    std::thread::spawn(move || {
        let mut shown = 0usize;
        loop {
            let screen = mirror_terminal.screen_text();
            if screen.len() > shown {
                print!("{}", &screen[shown..]);
                let _ = std::io::stdout().flush();
                shown = screen.len();
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    });

    // Feed host stdin lines into the runtime terminal.
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line?;
        terminal.type_line(&line)?;
        // Stop feeding once the session ended (e.g. after `quit` at login).
        if matches!(session.status(), jmp_core::AppStatus::Finished(_)) {
            break;
        }
    }
    terminal.type_eof();
    session.wait_for()?;
    // Give the mirror thread a beat to print the tail (it is detached;
    // process exit reaps it).
    std::thread::sleep(Duration::from_millis(60));
    rt.shutdown();
    Ok(())
}
