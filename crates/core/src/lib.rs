//! # jmp-core
//!
//! The primary contribution of Balfanz & Gong, *Experience with Secure
//! Multi-Processing in Java* (ICDCS 1998), reproduced on the `jmp-vm`
//! substrate: a **multi-processing, multi-user runtime** in which many
//! mutually-suspicious applications, run by different users, share one
//! virtual machine.
//!
//! The paper's nine features map onto this crate as follows:
//!
//! * **F1/F2 — applications**: [`Application`] is a set of threads delimited
//!   by a thread group; [`Application::exec`] launches, the group's
//!   non-daemon accounting ends it, a background reaper cleans it up.
//! * **F3/F4 — users & login**: every application carries a running
//!   [`User`](jmp_security::User) inherited at exec; [`login::login`]
//!   re-binds it with the `setUser` privilege granted to the login
//!   *program's code source*.
//! * **F5 — user-based access control**: the bootstrap installs a user
//!   resolver so the access controller combines code-source grants with
//!   `grant user "alice" { ... }` policy blocks (§5.3).
//! * **F6/F7 — multi-application-aware system code & events**: system helper
//!   threads live in the system group; with a GUI attached, each
//!   application gets its own event queue and dispatcher thread (§5.4).
//! * **F8 — application vs system state**: each application gets its own
//!   re-loaded `System` class (streams, app security manager) while the
//!   shared `SystemProperties` class carries JVM-wide state ([`jsystem`],
//!   §5.5, Fig 5).
//! * **F9 — security managers**: the VM-wide
//!   [`SystemSecurityManager`] implements the §5.6 rules; application
//!   security managers are application-private and never consulted by
//!   system code.
//!
//! # Quickstart
//!
//! ```
//! use jmp_core::{MpRuntime, Application};
//! use jmp_security::CodeSource;
//! use jmp_vm::ClassDef;
//!
//! let rt = MpRuntime::builder().user("alice", "sesame").build()?;
//! rt.vm().material().register(
//!     ClassDef::builder("Hello")
//!         .main(|_args| {
//!             jmp_core::jsystem::println("hello from an application")?;
//!             Ok(())
//!         })
//!         .build(),
//!     CodeSource::local("file:/apps/hello"),
//! )?;
//! let app = rt.launch_as("alice", "Hello", &[])?;
//! assert_eq!(app.wait_for()?, 0);
//! assert!(rt.console_output().contains("hello from an application"));
//! # rt.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod application;
mod error;
pub mod files;
pub mod gui;
pub mod imagerun;
pub mod login;
pub mod obs;
pub mod pipes;
mod policy_store;
mod runtime;
mod shard;
pub mod shared;
pub mod snapshot;
mod sys_sm;
pub mod jsystem {
    //! Facade over the per-application `System` class (see `system_ns`).
    pub use crate::system_ns::*;
}
mod system_ns;

pub use application::{AppId, AppStatus, Application};
pub use error::Error;
pub use imagerun::StdImageHost;
pub use policy_store::{VfsGrantSource, USER_POLICY_DIR};
pub use runtime::{MpRuntime, MpRuntimeBuilder, SYSTEM_CLASS, SYSTEM_PROPERTIES_CLASS};
pub use snapshot::{AppSnapshot, SnapEvent, SnapFile, APP_SNAPSHOT_VERSION};
pub use sys_sm::SystemSecurityManager;

/// Result alias used throughout this crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests;
