//! The on-disk half of the lazy policy store: per-user grant files under
//! [`USER_POLICY_DIR`], loaded on first demand through
//! [`jmp_security::LazyUserStore`].
//!
//! The resident [`jmp_security::Policy`] holds the code-source grants and any
//! user grants written inline in `/etc/java.policy`; everything else — the
//! "million provisioned users" — lives here as one world-unreadable file per
//! user, `/etc/policy.d/<user>.policy`, in ordinary policy syntax:
//!
//! ```text
//! grant user "alice" {
//!     permission file "/home/alice/-" "read,write";
//! };
//! ```
//!
//! A user's file is read and parsed only when an access check first asks
//! about that user; the parsed grants are interned in the store's bounded
//! cache. Provisioning a user therefore costs one file, not resident memory,
//! and [`jmp_vm::Vm::set_policy`] (or
//! [`crate::MpRuntime::provision_user_policy`]) invalidates the cache so
//! edits take effect on the next check.

use std::sync::Arc;

use jmp_security::{GrantSource, UserId};
use jmp_vfs::Vfs;

/// Directory holding one `<user>.policy` file per provisioned user.
pub const USER_POLICY_DIR: &str = "/etc/policy.d";

/// A [`GrantSource`] reading `/etc/policy.d/<user>.policy` from the
/// runtime's virtual filesystem with system authority.
pub struct VfsGrantSource {
    vfs: Arc<Vfs>,
    system: UserId,
}

impl VfsGrantSource {
    /// A source reading from `vfs` as `system` (the bootstrap account —
    /// policy files are system-owned, like `/etc/java.policy`).
    pub fn new(vfs: Arc<Vfs>, system: UserId) -> VfsGrantSource {
        VfsGrantSource { vfs, system }
    }
}

impl GrantSource for VfsGrantSource {
    fn load_user(&self, user: &str) -> Option<String> {
        // User names come from the registry, but the store can be probed
        // with arbitrary strings; refuse anything that would escape the
        // policy directory.
        if user.is_empty() || user.contains(['/', '.']) {
            return None;
        }
        let bytes = self
            .vfs
            .read(&format!("{USER_POLICY_DIR}/{user}.policy"), self.system)
            .ok()?;
        String::from_utf8(bytes).ok()
    }

    fn provisioned_users(&self) -> Option<u64> {
        let entries = self.vfs.list_dir(USER_POLICY_DIR, self.system).ok()?;
        Some(
            entries
                .iter()
                .filter(|entry| entry.name.ends_with(".policy"))
                .count() as u64,
        )
    }
}

impl std::fmt::Debug for VfsGrantSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VfsGrantSource")
            .field("dir", &USER_POLICY_DIR)
            .finish()
    }
}
