//! The application-facing file API — the `java.io.File` analogue.
//!
//! Every operation performs **two** layers of checking, exactly as the
//! paper describes:
//!
//! 1. The runtime security check (paper §3.3's `checkDelete` example): a
//!    `FilePermission` demand through the security manager, which combines
//!    code-source grants with the running user's grants (§5.3). Denial is
//!    [`Error::Security`] — a `SecurityException`.
//! 2. The O/S layer: the virtual filesystem enforces owners and mode bits
//!    against the application's running user. Denial here surfaces as
//!    [`Error::FileNotFound`] — the `FileNotFoundException` the paper notes
//!    the O/S produces for files the user may not see (§4, Feature 3).

use std::sync::Arc;

use jmp_security::{FileActions, Permission, UserId};
use jmp_vfs::{DirEntry, FileInfo, Vfs};
use jmp_vm::io::{InStream, OutStream, ReadDevice, WriteDevice};
use jmp_vm::VmError;
use parking_lot::Mutex;

use crate::application::Application;
use crate::error::Error;
use crate::runtime::MpRuntime;
use crate::Result;

struct FileCtx {
    rt: MpRuntime,
    app: Application,
}

fn ctx() -> Result<FileCtx> {
    let rt = MpRuntime::current().ok_or(Error::NotAnApplication)?;
    let app = rt.app_of_current_thread().ok_or(Error::NotAnApplication)?;
    Ok(FileCtx { rt, app })
}

impl FileCtx {
    fn absolute(&self, path: &str) -> String {
        jmp_vfs::join(&self.app.cwd(), path)
    }

    fn check(&self, path: &str, actions: FileActions) -> Result<()> {
        self.rt
            .vm()
            .check_permission(&Permission::file(path, actions))?;
        Ok(())
    }

    fn uid(&self) -> UserId {
        self.app.user().id()
    }
}

/// Resolves `path` against the current application's working directory.
///
/// # Errors
///
/// [`Error::NotAnApplication`] off-application.
pub fn absolute(path: &str) -> Result<String> {
    Ok(ctx()?.absolute(path))
}

/// Reads a whole file.
///
/// # Errors
///
/// [`Error::Security`] if the policy denies reading;
/// [`Error::FileNotFound`] if absent or O/S-hidden.
pub fn read(path: &str) -> Result<Vec<u8>> {
    let ctx = ctx()?;
    let abs = ctx.absolute(path);
    ctx.check(&abs, FileActions::READ)?;
    Ok(ctx.rt.vfs().read(&abs, ctx.uid())?)
}

/// Reads a whole file as UTF-8 (lossy).
///
/// # Errors
///
/// As [`read`].
pub fn read_string(path: &str) -> Result<String> {
    Ok(String::from_utf8_lossy(&read(path)?).into_owned())
}

/// Writes (creates or truncates) a file.
///
/// # Errors
///
/// [`Error::Security`] if the policy denies writing; O/S-layer errors as
/// [`Error::FileNotFound`].
pub fn write(path: &str, data: &[u8]) -> Result<()> {
    let ctx = ctx()?;
    let abs = ctx.absolute(path);
    ctx.check(&abs, FileActions::WRITE)?;
    Ok(ctx.rt.vfs().write(&abs, data, ctx.uid())?)
}

/// Appends to a file, creating it if absent.
///
/// # Errors
///
/// As [`write()`].
pub fn append(path: &str, data: &[u8]) -> Result<()> {
    let ctx = ctx()?;
    let abs = ctx.absolute(path);
    ctx.check(&abs, FileActions::WRITE)?;
    Ok(ctx.rt.vfs().append(&abs, data, ctx.uid())?)
}

/// Deletes a file — the paper's worked example (§3.3):
/// `securityManager.checkDelete()` guards the real deletion.
///
/// # Errors
///
/// [`Error::Security`] if the policy denies deletion; O/S-layer errors as
/// [`Error::FileNotFound`].
pub fn delete(path: &str) -> Result<()> {
    let ctx = ctx()?;
    let abs = ctx.absolute(path);
    ctx.check(&abs, FileActions::DELETE)?;
    Ok(ctx.rt.vfs().remove(&abs, ctx.uid())?)
}

/// Removes an empty directory.
///
/// # Errors
///
/// As [`delete`].
pub fn rmdir(path: &str) -> Result<()> {
    let ctx = ctx()?;
    let abs = ctx.absolute(path);
    ctx.check(&abs, FileActions::DELETE)?;
    Ok(ctx.rt.vfs().rmdir(&abs, ctx.uid())?)
}

/// Creates a directory.
///
/// # Errors
///
/// As [`write()`].
pub fn mkdir(path: &str) -> Result<()> {
    let ctx = ctx()?;
    let abs = ctx.absolute(path);
    ctx.check(&abs, FileActions::WRITE)?;
    Ok(ctx.rt.vfs().mkdir(&abs, ctx.uid())?)
}

/// Lists a directory, sorted by name.
///
/// # Errors
///
/// As [`read`].
pub fn list_dir(path: &str) -> Result<Vec<DirEntry>> {
    let ctx = ctx()?;
    let abs = ctx.absolute(path);
    ctx.check(&abs, FileActions::READ)?;
    Ok(ctx.rt.vfs().list_dir(&abs, ctx.uid())?)
}

/// Metadata for a path.
///
/// # Errors
///
/// As [`read`].
pub fn stat(path: &str) -> Result<FileInfo> {
    let ctx = ctx()?;
    let abs = ctx.absolute(path);
    ctx.check(&abs, FileActions::READ)?;
    Ok(ctx.rt.vfs().stat(&abs, ctx.uid())?)
}

/// Returns `true` if the path exists and is visible (like `File.exists`,
/// which the O/S answers `false` for hidden files).
///
/// # Errors
///
/// [`Error::Security`] if the policy denies reading the path.
pub fn exists(path: &str) -> Result<bool> {
    match stat(path) {
        Ok(_) => Ok(true),
        Err(Error::FileNotFound { .. }) => Ok(false),
        Err(other) => Err(other),
    }
}

/// Renames `from` to `to`.
///
/// # Errors
///
/// Requires delete on `from` and write on `to`; O/S-layer errors as
/// [`Error::FileNotFound`].
pub fn rename(from: &str, to: &str) -> Result<()> {
    let ctx = ctx()?;
    let from_abs = ctx.absolute(from);
    let to_abs = ctx.absolute(to);
    ctx.check(&from_abs, FileActions::DELETE)?;
    ctx.check(&to_abs, FileActions::WRITE)?;
    Ok(ctx.rt.vfs().rename(&from_abs, &to_abs, ctx.uid())?)
}

// ---------------------------------------------------------------------------
// Streaming file I/O
// ---------------------------------------------------------------------------

struct FileReadDevice {
    vfs: Arc<Vfs>,
    path: String,
    uid: UserId,
    pos: Mutex<u64>,
}

impl ReadDevice for FileReadDevice {
    fn read(&self, buf: &mut [u8]) -> jmp_vm::Result<usize> {
        let mut pos = self.pos.lock();
        let chunk = self
            .vfs
            .read_at(&self.path, *pos, buf.len(), self.uid)
            .map_err(|e| VmError::Io {
                message: e.to_string(),
            })?;
        buf[..chunk.len()].copy_from_slice(&chunk);
        *pos += chunk.len() as u64;
        Ok(chunk.len())
    }
}

struct FileWriteDevice {
    vfs: Arc<Vfs>,
    path: String,
    uid: UserId,
}

impl WriteDevice for FileWriteDevice {
    fn write(&self, data: &[u8]) -> jmp_vm::Result<()> {
        self.vfs
            .append(&self.path, data, self.uid)
            .map_err(|e| VmError::Io {
                message: e.to_string(),
            })
    }
}

/// Opens a file for streaming reads (`FileInputStream`). The stream is
/// *owned* by the current application: it is registered for closing at
/// application teardown, and only this application may close it (§5.1).
///
/// # Errors
///
/// As [`read`]; the open itself verifies the file is readable.
pub fn open_in(path: &str) -> Result<InStream> {
    let ctx = ctx()?;
    let abs = ctx.absolute(path);
    ctx.check(&abs, FileActions::READ)?;
    // Surface FileNotFound at open time, like FileInputStream's constructor.
    ctx.rt.vfs().stat(&abs, ctx.uid())?;
    let device = FileReadDevice {
        vfs: Arc::clone(ctx.rt.vfs()),
        path: abs,
        uid: ctx.uid(),
        pos: Mutex::new(0),
    };
    let stream = InStream::new(Arc::new(device), ctx.app.io_token());
    ctx.app.register_owned_in(stream.clone())?;
    Ok(stream)
}

/// Opens a file for streaming writes (`FileOutputStream`), truncating unless
/// `append_mode`. Owned by the current application, as for [`open_in`].
///
/// # Errors
///
/// As [`write()`].
pub fn open_out(path: &str, append_mode: bool) -> Result<OutStream> {
    let ctx = ctx()?;
    let abs = ctx.absolute(path);
    ctx.check(&abs, FileActions::WRITE)?;
    if append_mode {
        // Create if missing, leave contents alone.
        if ctx.rt.vfs().stat(&abs, ctx.uid()).is_err() {
            ctx.rt.vfs().write(&abs, b"", ctx.uid())?;
        }
    } else {
        ctx.rt.vfs().write(&abs, b"", ctx.uid())?;
    }
    let device = FileWriteDevice {
        vfs: Arc::clone(ctx.rt.vfs()),
        path: abs,
        uid: ctx.uid(),
    };
    let stream = OutStream::new(Arc::new(device), ctx.app.io_token());
    ctx.app.register_owned_out(stream.clone())?;
    Ok(stream)
}
