use std::error::Error as StdError;
use std::fmt;

use jmp_security::SecurityError;
use jmp_vfs::VfsError;
use jmp_vm::VmError;

/// Error type of the multi-processing runtime, mirroring the exception
/// vocabulary a Java application would see.
///
/// The [`Error::FileNotFound`] variant deliberately absorbs *O/S-level*
/// permission denials: the paper observes that "a Java application cannot
/// see files that the UNIX user who runs the JVM is not allowed to access,
/// and an attempt to access those files results in a FileNotFoundException
/// instead of a SecurityException" (paper §4). Runtime-policy denials stay
/// [`Error::Security`], so tests can distinguish the two layers exactly as
/// the paper does.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A security-manager / access-controller denial (`SecurityException`).
    Security(SecurityError),
    /// The file does not exist *or* the O/S layer hides it from the acting
    /// user (`FileNotFoundException`).
    FileNotFound {
        /// The path in question.
        path: String,
    },
    /// Other I/O-level failure (`IOException`).
    Io {
        /// Description.
        message: String,
    },
    /// The calling thread is not part of any application, but the operation
    /// needs one.
    NotAnApplication,
    /// Login failed (bad user or password).
    AuthenticationFailed {
        /// The user name that attempted to log in.
        user: String,
    },
    /// The current thread was interrupted (`InterruptedException`).
    Interrupted,
    /// Any other runtime error.
    Vm(VmError),
}

impl Error {
    /// Returns `true` for security denials.
    pub fn is_security(&self) -> bool {
        matches!(self, Error::Security(_))
    }

    /// Returns `true` for the file-not-found (or O/S-hidden) case.
    pub fn is_file_not_found(&self) -> bool {
        matches!(self, Error::FileNotFound { .. })
    }

    /// Returns `true` for interruption.
    pub fn is_interrupted(&self) -> bool {
        matches!(self, Error::Interrupted)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Security(e) => write!(f, "security exception: {e}"),
            Error::FileNotFound { path } => write!(f, "file not found: {path}"),
            Error::Io { message } => write!(f, "i/o error: {message}"),
            Error::NotAnApplication => {
                write!(f, "the current thread does not belong to an application")
            }
            Error::AuthenticationFailed { user } => write!(f, "login incorrect for {user:?}"),
            Error::Interrupted => write!(f, "interrupted"),
            Error::Vm(e) => write!(f, "{e}"),
        }
    }
}

impl StdError for Error {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            Error::Security(e) => Some(e),
            Error::Vm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<VmError> for Error {
    fn from(err: VmError) -> Error {
        match err {
            VmError::Security(sec) => Error::Security(sec),
            VmError::Interrupted => Error::Interrupted,
            other => Error::Vm(other),
        }
    }
}

impl From<SecurityError> for Error {
    fn from(err: SecurityError) -> Error {
        Error::Security(err)
    }
}

/// Back-conversion so application `main` bodies (which return
/// [`jmp_vm::Result`]) can use `?` on this crate's operations.
impl From<Error> for VmError {
    fn from(err: Error) -> VmError {
        match err {
            Error::Security(sec) => VmError::Security(sec),
            Error::Interrupted => VmError::Interrupted,
            Error::Vm(vm) => vm,
            other => VmError::Io {
                message: other.to_string(),
            },
        }
    }
}

impl From<VfsError> for Error {
    fn from(err: VfsError) -> Error {
        match err {
            // The paper's observation: the O/S hides what it denies.
            VfsError::NotFound { path } | VfsError::PermissionDenied { path, .. } => {
                Error::FileNotFound { path }
            }
            other => Error::Io {
                message: other.to_string(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jmp_security::Permission;

    #[test]
    fn vfs_permission_denied_becomes_file_not_found() {
        // Feature 3 discussion: O/S denial surfaces as FileNotFound, not
        // SecurityException.
        let err: Error = VfsError::PermissionDenied {
            path: "/home/alice/x".into(),
            action: "read",
        }
        .into();
        assert!(err.is_file_not_found());
        assert!(!err.is_security());
    }

    #[test]
    fn security_errors_stay_security() {
        let sec = SecurityError::denied(&Permission::runtime("exitVM"), "d");
        let err: Error = VmError::Security(sec.clone()).into();
        assert!(err.is_security());
        let err: Error = sec.into();
        assert!(err.is_security());
    }

    #[test]
    fn interruption_maps_through() {
        let err: Error = VmError::Interrupted.into();
        assert!(err.is_interrupted());
    }

    #[test]
    fn other_vfs_errors_are_io() {
        let err: Error = VfsError::NotEmpty { path: "/d".into() }.into();
        assert!(matches!(err, Error::Io { .. }));
    }

    #[test]
    fn displays_are_nonempty() {
        for err in [
            Error::NotAnApplication,
            Error::FileNotFound { path: "/x".into() },
            Error::AuthenticationFailed {
                user: "alice".into(),
            },
            Error::Interrupted,
        ] {
            assert!(!err.to_string().is_empty());
        }
    }
}
