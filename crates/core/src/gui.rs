//! Application-facing GUI helpers.
//!
//! The toolkit wiring is done at runtime bootstrap: the tag resolver maps
//! the current thread to its application id, so a window created here is
//! recorded as belonging to the creating application (paper §5.4), its
//! events land on that application's queue, and application teardown closes
//! it (§5.1).

use jmp_awt::{Toolkit, Window};

use crate::error::Error;
use crate::runtime::MpRuntime;
use crate::Result;

/// The runtime's toolkit.
///
/// # Errors
///
/// [`Error::NotAnApplication`] off-VM; [`Error::Io`] if the runtime was
/// built without a GUI.
pub fn toolkit() -> Result<Toolkit> {
    let rt = MpRuntime::current().ok_or(Error::NotAnApplication)?;
    rt.toolkit().cloned().ok_or(Error::Io {
        message: "this runtime has no windowing stack".into(),
    })
}

/// Opens a window owned by the current application. Requires
/// `AWTPermission("showWindow")`.
///
/// # Errors
///
/// [`Error::Security`] without the permission; [`Error::Io`] without a GUI.
pub fn create_window(title: &str) -> Result<Window> {
    Ok(toolkit()?.create_window(title)?)
}
