use jmp_security::Permission;
use jmp_vm::{Class, SecurityManager, ThreadGroup, Vm, VmThread};

/// The **system security manager** (paper §5.6), installed VM-wide at
/// bootstrap, "primarily for the purpose of protecting applications from
/// each other". Its rules, verbatim from the paper:
///
/// * A thread T may access another thread U if T's thread group is an
///   ancestor of U's thread group; otherwise T needs the appropriate
///   permission (`RuntimePermission("modifyThread")`).
/// * A thread T may access a thread group G if T's thread group is an
///   ancestor of G; otherwise T needs `RuntimePermission("modifyThreadGroup")`.
/// * Public members of a class can be accessed normally through reflection;
///   access to non-public members needs
///   `RuntimePermission("accessDeclaredMembers")`.
/// * For all other security-relevant decisions, the `AccessController` is
///   consulted ([`Vm::access_check`]) — which also folds in the paper's
///   user-based grants (§5.3).
///
/// Applications may still install their *own* security managers, but those
/// live in each application's private copy of the `System` class and are
/// never consulted by system code (see `jsystem::set_security_manager`).
#[derive(Debug, Default)]
pub struct SystemSecurityManager(());

impl SystemSecurityManager {
    /// Creates the manager.
    pub fn new() -> SystemSecurityManager {
        SystemSecurityManager(())
    }

    /// The ancestor rule shared by the thread and thread-group checks.
    /// Threads not managed by the VM (host threads) are trusted.
    fn current_group_is_ancestor_of(target: &ThreadGroup) -> Option<bool> {
        jmp_vm::thread::current().map(|current| current.group().is_ancestor_of(target))
    }
}

impl SecurityManager for SystemSecurityManager {
    fn check_permission(&self, vm: &Vm, perm: &Permission) -> jmp_vm::Result<()> {
        vm.access_check(perm)
    }

    fn check_thread_access(&self, vm: &Vm, target: &VmThread) -> jmp_vm::Result<()> {
        match SystemSecurityManager::current_group_is_ancestor_of(target.group()) {
            None | Some(true) => Ok(()),
            Some(false) => vm.access_check(&Permission::runtime("modifyThread")),
        }
    }

    fn check_thread_group_access(&self, vm: &Vm, group: &ThreadGroup) -> jmp_vm::Result<()> {
        match SystemSecurityManager::current_group_is_ancestor_of(group) {
            None | Some(true) => Ok(()),
            Some(false) => vm.access_check(&Permission::runtime("modifyThreadGroup")),
        }
    }

    fn check_member_access(&self, vm: &Vm, _class: &Class) -> jmp_vm::Result<()> {
        // Only called for non-public member access; public members are free
        // (paper §5.6).
        vm.access_check(&Permission::runtime("accessDeclaredMembers"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jmp_security::{CodeSource, Policy, ProtectionDomain};
    use std::sync::Arc;
    use std::time::Duration;

    fn vm_with_sm() -> Vm {
        let vm = Vm::builder().policy(Policy::new()).build();
        vm.set_security_manager(Arc::new(SystemSecurityManager::new()))
            .unwrap();
        vm
    }

    #[test]
    fn threads_may_touch_their_own_subtree_only() {
        let vm = vm_with_sm();
        let group_a = vm.main_group().new_child("a").unwrap();
        let group_b = vm.main_group().new_child("b").unwrap();

        // A long-lived thread in group B to be the target.
        let victim = vm
            .thread_builder()
            .group(group_b)
            .name("victim")
            .daemon(true)
            .spawn(|_| {
                let _ = jmp_vm::thread::sleep(Duration::from_secs(600));
            })
            .unwrap();

        // An untrusted thread in group A must not interrupt it...
        let vm2 = vm.clone();
        let victim2 = victim.clone();
        let attacker = vm
            .thread_builder()
            .group(group_a.clone())
            .name("attacker")
            .spawn(move |_| {
                let untrusted = Arc::new(ProtectionDomain::untrusted(CodeSource::remote(
                    "http://evil/x",
                )));
                let result =
                    jmp_vm::stack::call_as("Evil", untrusted, || vm2.interrupt_thread(&victim2));
                assert!(result.unwrap_err().is_security());
            })
            .unwrap();
        attacker.join().unwrap();
        assert!(!victim.is_interrupted());

        // ...but a thread may interrupt threads in its own subtree.
        let vm3 = vm.clone();
        let self_manager = vm
            .thread_builder()
            .group(group_a)
            .name("self-manager")
            .spawn(move |_| {
                let child = vm3
                    .thread_builder()
                    .name("child")
                    .daemon(true)
                    .spawn(|_| {
                        let _ = jmp_vm::thread::sleep(Duration::from_secs(600));
                    })
                    .unwrap();
                vm3.interrupt_thread(&child).unwrap();
                assert!(child.is_interrupted());
            })
            .unwrap();
        self_manager.join().unwrap();
        // VM shutdown interrupts everything, including the victim.
        vm.exit_unchecked(0);
    }

    #[test]
    fn foreign_group_spawn_needs_permission() {
        let vm = vm_with_sm();
        let group_a = vm.main_group().new_child("a").unwrap();
        let group_b = vm.main_group().new_child("b").unwrap();

        let vm2 = vm.clone();
        let t = vm
            .thread_builder()
            .group(group_a)
            .name("a-main")
            .spawn(move |_| {
                // Spawning into a sibling group: the ancestor rule fails, and
                // with an untrusted frame on the stack the fallback
                // permission check fails too.
                let untrusted = Arc::new(ProtectionDomain::untrusted(CodeSource::remote(
                    "http://evil/x",
                )));
                let result = jmp_vm::stack::call_as("Evil", untrusted, || {
                    vm2.thread_builder().group(group_b.clone()).spawn(|_| {})
                });
                assert!(result.unwrap_err().is_security());

                // With only trusted frames, the fallback permission check
                // passes (empty/trusted stack implies every permission).
                let escapee = vm2
                    .thread_builder()
                    .group(group_b.clone())
                    .spawn(|_| {})
                    .unwrap();
                escapee.join().unwrap();
            })
            .unwrap();
        t.join().unwrap();
        vm.exit_unchecked(0);
    }

    #[test]
    fn host_threads_are_trusted() {
        let vm = vm_with_sm();
        let group = vm.main_group().new_child("g").unwrap();
        // Called from a host (non-VM) thread: allowed.
        let sm = SystemSecurityManager::new();
        sm.check_thread_group_access(&vm, &group).unwrap();
    }

    #[test]
    fn member_access_requires_permission_for_untrusted() {
        let vm = vm_with_sm();
        vm.material()
            .register(
                jmp_vm::ClassDef::builder("Target").build(),
                CodeSource::local("file:/sys/classes"),
            )
            .unwrap();
        let class = vm.system_loader().load_class("Target").unwrap();
        let sm = SystemSecurityManager::new();
        // Host/trusted: fine.
        sm.check_member_access(&vm, &class).unwrap();
        // Untrusted frame: denied.
        let untrusted = Arc::new(ProtectionDomain::untrusted(CodeSource::remote(
            "http://evil/x",
        )));
        jmp_vm::stack::call_as("Evil", untrusted, || {
            assert!(sm
                .check_member_access(&vm, &class)
                .unwrap_err()
                .is_security());
        });
    }
}
