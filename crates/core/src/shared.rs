//! Shared objects between applications — the paper's §8 future work:
//! "in our multi-processing environment, it is very appealing to use shared
//! object as an inter-application communication mechanism. However, such
//! sharing of objects between different applications in different name
//! spaces is still a delicate task and its impact on the correctness of the
//! Java type system needs more research."
//!
//! This module implements the mechanism and addresses the paper's two
//! concerns in the terms of this runtime:
//!
//! * **Access control:** publishing and looking up are checked operations.
//!   A name `n` demands `RuntimePermission("sharedObject.publish.n")` /
//!   `RuntimePermission("sharedObject.lookup.n")`, so the policy governs
//!   which code may export or import which names (dotted wildcards work:
//!   `grant ... { permission runtime "sharedObject.lookup.chat.*"; }`).
//! * **Type safety across name spaces:** in a real JVM, two applications'
//!   loaders may bind the same class *name* to different classes, making
//!   cross-namespace casts unsound (the paper cites Dean's work). Here a
//!   shared object's type is a Rust `TypeId` — global, loader-independent —
//!   so [`lookup`] is a checked downcast that can fail but never confuse
//!   types; and values of the *interpreted* world
//!   ([`Value`](jmp_vm::interp::Value)) are loader-independent data by
//!   construction. This is exactly the "shared class material defines the
//!   shared types" resolution later adopted by Java isolates.
//!
//! Withdrawal is restricted to the publishing application (or trusted
//! code), so one application cannot yank another's exports.

use std::any::Any;
use std::sync::Arc;

use jmp_security::Permission;

use crate::application::AppId;
use crate::error::Error;
use crate::runtime::MpRuntime;
use crate::Result;

/// A value in the shared-object registry.
pub type SharedValue = Arc<dyn Any + Send + Sync>;

#[derive(Clone)]
pub(crate) struct SharedEntry {
    value: SharedValue,
    /// The publishing application, if published from one (`None` when
    /// published by the host/system).
    publisher: Option<AppId>,
}

fn rt() -> Result<MpRuntime> {
    MpRuntime::current().ok_or(Error::NotAnApplication)
}

fn check(rt: &MpRuntime, verb: &str, name: &str) -> Result<()> {
    rt.vm()
        .check_permission(&Permission::runtime(format!("sharedObject.{verb}.{name}")))?;
    Ok(())
}

/// Publishes `value` under `name`, replacing any previous export under that
/// name *by the same publisher*. Requires
/// `RuntimePermission("sharedObject.publish.<name>")`.
///
/// # Errors
///
/// [`Error::Security`] without the permission; [`Error::Io`] if the name is
/// already taken by a different publisher.
pub fn publish(name: &str, value: SharedValue) -> Result<()> {
    let rt = rt()?;
    check(&rt, "publish", name)?;
    let publisher_app = rt.app_of_current_thread();
    let publisher = publisher_app.as_ref().map(|a| a.id());
    // The ownership test and the insert must be atomic *per name*; the
    // sharded table gives us exactly that — one shard's write lock — without
    // serializing publishes of unrelated names.
    rt.inner.shared.with_shard_mut(name, |table| {
        if let Some(existing) = table.get(name) {
            if existing.publisher != publisher {
                return Err(Error::Io {
                    message: format!("shared object {name:?} is owned by another publisher"),
                });
            }
            // Same-publisher replacement: the name keeps its existing charge.
        } else if let Some(app) = &publisher_app {
            app.context().try_charge(jmp_vm::ResourceKind::Handles, 1)?;
        }
        table.insert(name.to_string(), SharedEntry { value, publisher });
        Ok(())
    })
}

/// Looks up the object under `name`, downcast to `T`. Requires
/// `RuntimePermission("sharedObject.lookup.<name>")`.
///
/// Returns `Ok(None)` if nothing is published under the name **or** the
/// published object is not a `T` — the checked-downcast discipline that
/// keeps cross-namespace sharing type-safe.
///
/// # Errors
///
/// [`Error::Security`] without the permission.
pub fn lookup<T: Any + Send + Sync>(name: &str) -> Result<Option<Arc<T>>> {
    let rt = rt()?;
    check(&rt, "lookup", name)?;
    let found = rt.inner.shared.get(name).map(|entry| entry.value);
    Ok(found.and_then(|value| value.downcast::<T>().ok()))
}

/// Removes the export under `name`. Only the publishing application (or a
/// caller holding `RuntimePermission("sharedObject.withdraw.<name>")` on a
/// trusted stack) may withdraw it.
///
/// # Errors
///
/// [`Error::Security`] if the caller is neither the publisher nor
/// privileged; `Ok(false)` if nothing was published.
pub fn withdraw(name: &str) -> Result<bool> {
    let rt = rt()?;
    let caller = rt.app_of_current_thread().map(|a| a.id());
    // Ownership test + removal under the name's shard lock; the uncharge
    // happens after the lock is released, as before.
    let withdrawn = rt.inner.shared.with_shard_mut(name, |table| -> Result<_> {
        match table.get(name) {
            None => Ok(None),
            Some(entry) => {
                if entry.publisher != caller {
                    check(&rt, "withdraw", name)?;
                }
                let publisher = entry.publisher;
                table.remove(name);
                Ok(Some(publisher))
            }
        }
    })?;
    match withdrawn {
        None => Ok(false),
        Some(publisher) => {
            if let Some(id) = publisher {
                if let Some(app) = rt.application(id) {
                    app.context().uncharge(jmp_vm::ResourceKind::Handles, 1);
                }
            }
            Ok(true)
        }
    }
}

/// Names currently published, sorted. Requires
/// `RuntimePermission("sharedObject.list")`.
///
/// # Errors
///
/// [`Error::Security`] without the permission.
pub fn names() -> Result<Vec<String>> {
    let rt = rt()?;
    rt.vm()
        .check_permission(&Permission::runtime("sharedObject.list"))?;
    let mut names = rt.inner.shared.keys();
    names.sort();
    Ok(names)
}

/// Drops all exports of `app` (called by the reaper: an application's
/// exports do not outlive it, just like its windows and owned streams).
pub(crate) fn drop_exports_of(rt: &MpRuntime, app: AppId) {
    let dropped = rt
        .inner
        .shared
        .retain(|_name, entry| entry.publisher != Some(app)) as u64;
    if dropped > 0 {
        if let Some(app) = rt.application(app) {
            app.context()
                .uncharge(jmp_vm::ResourceKind::Handles, dropped);
        }
    }
}

/// Convenience: the publishing side of a shared byte channel — a pipe whose
/// read end is published under `name` so another application can consume it
/// (the paper's inter-application communication use case).
///
/// # Errors
///
/// As [`publish`].
pub fn publish_channel(name: &str) -> Result<jmp_vm::io::OutStream> {
    let (out, input) = crate::pipes::make_pipe()?;
    publish(name, Arc::new(input))?;
    Ok(out)
}
