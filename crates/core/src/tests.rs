//! In-crate tests for the multi-processing runtime. Cross-crate scenario
//! tests (shell sessions, appletviewer, full experiment reproductions) live
//! in `tests-integration`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use jmp_security::{CodeSource, Policy};
use jmp_vm::ClassDef;

use crate::application::{AppStatus, Application};
use crate::error::Error;
use crate::runtime::MpRuntime;
use crate::{files, jsystem, login, pipes};

/// The paper's §5.3 example policy, plus the housekeeping grants local
/// applications need (exec, I/O redirection, property reads, windows).
pub(crate) const TEST_POLICY: &str = r#"
    // Rule 1: all local applications can exercise their running users'
    // permissions, and get the usual local-app conveniences.
    grant codeBase "file:/apps/-" {
        permission user "exerciseUserPermissions";
        permission runtime "execApplication";
        permission runtime "setIO";
        permission property "*" "read";
        permission awt "showWindow";
        permission file "/tmp/-" "read,write,delete";
        permission file "/tmp" "read";
    };

    // Rule 2: the backup application can read all files.
    grant codeBase "file:/apps/backup" {
        permission file "<<ALL FILES>>" "read";
    };

    // The login program may set its application's user (paper section 5.2).
    grant codeBase "file:/apps/login" {
        permission runtime "setUser";
    };

    // Rules 3 and 4: Alice and Bob own their home directories.
    grant user "alice" {
        permission file "/home/alice" "read";
        permission file "/home/alice/-" "read,write,execute,delete";
    };
    grant user "bob" {
        permission file "/home/bob" "read";
        permission file "/home/bob/-" "read,write,execute,delete";
    };
"#;

pub(crate) fn runtime() -> MpRuntime {
    MpRuntime::builder()
        .policy(Policy::parse(TEST_POLICY).expect("test policy parses"))
        .user("alice", "apw")
        .user("bob", "bpw")
        .build()
        .expect("runtime builds")
}

fn register(
    rt: &MpRuntime,
    name: &str,
    source: &str,
    main: impl Fn(Vec<String>) -> jmp_vm::Result<()> + Send + Sync + 'static,
) {
    rt.vm()
        .material()
        .register(
            ClassDef::builder(name).main(main).build(),
            CodeSource::local(source),
        )
        .expect("class registers");
}

#[test]
fn application_runs_and_finishes() {
    let rt = runtime();
    static RAN: AtomicUsize = AtomicUsize::new(0);
    register(&rt, "Hello", "file:/apps/hello", |args| {
        assert_eq!(args, vec!["x".to_string()]);
        RAN.fetch_add(1, Ordering::SeqCst);
        Ok(())
    });
    let app = rt.launch("Hello", &["x"]).unwrap();
    assert_eq!(app.wait_for().unwrap(), 0);
    assert_eq!(RAN.load(Ordering::SeqCst), 1);
    assert!(matches!(app.status(), AppStatus::Finished(0)));
    assert!(rt.await_idle(Duration::from_secs(5)));
    rt.shutdown();
}

#[test]
fn two_instances_are_distinct_applications() {
    // Fig 3: threads distinguish two instances of the same program.
    let rt = runtime();
    register(&rt, "Instance", "file:/apps/instance", |_| {
        let app = Application::current().unwrap();
        jsystem::println(&format!("id={}", app.id().0)).unwrap();
        Ok(())
    });
    let a = rt.launch("Instance", &[]).unwrap();
    let b = rt.launch("Instance", &[]).unwrap();
    assert_ne!(a.id(), b.id());
    assert!(!a.group().same_group(b.group()));
    a.wait_for().unwrap();
    b.wait_for().unwrap();
    let console = rt.console_output();
    assert!(console.contains(&format!("id={}", a.id().0)));
    assert!(console.contains(&format!("id={}", b.id().0)));
    rt.shutdown();
}

#[test]
fn explicit_exit_stops_all_app_threads() {
    let rt = runtime();
    static WORKER_INTERRUPTED: AtomicUsize = AtomicUsize::new(0);
    register(&rt, "Exiter", "file:/apps/exiter", |_| {
        let vm = jmp_vm::Vm::current().unwrap();
        // A worker that would run forever.
        vm.thread_builder()
            .name("worker")
            .spawn(|_| {
                if jmp_vm::thread::sleep(Duration::from_secs(600)).is_err() {
                    WORKER_INTERRUPTED.fetch_add(1, Ordering::SeqCst);
                }
            })
            .unwrap();
        Application::exit(7).expect("exit from an application");
        Ok(())
    });
    let app = rt.launch("Exiter", &[]).unwrap();
    assert_eq!(app.wait_for().unwrap(), 7);
    assert_eq!(WORKER_INTERRUPTED.load(Ordering::SeqCst), 1);
    rt.shutdown();
}

#[test]
fn app_ends_when_last_nondaemon_thread_ends() {
    // Paper §5.1: no explicit exit() needed; the runtime calls it when only
    // daemon threads remain in the application's group.
    let rt = runtime();
    static ORDER: AtomicUsize = AtomicUsize::new(0);
    register(&rt, "Forked", "file:/apps/forked", |_| {
        let vm = jmp_vm::Vm::current().unwrap();
        vm.thread_builder()
            .name("late-worker")
            .spawn(|_| {
                jmp_vm::thread::sleep(Duration::from_millis(80)).unwrap();
                ORDER.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        // main returns immediately; the worker keeps the app alive.
        Ok(())
    });
    let app = rt.launch("Forked", &[]).unwrap();
    app.wait_for().unwrap();
    assert_eq!(
        ORDER.load(Ordering::SeqCst),
        1,
        "application must not finish before its non-daemon worker"
    );
    rt.shutdown();
}

#[test]
fn each_application_gets_its_own_system_class() {
    // Fig 5 / §5.5.
    let rt = runtime();
    let ids = Arc::new(parking_lot::Mutex::new(Vec::new()));
    let ids2 = Arc::clone(&ids);
    rt.vm()
        .material()
        .register(
            ClassDef::builder("SysProbe")
                .main(move |_| {
                    let class = jsystem::system_class().unwrap();
                    let props_class = Application::current()
                        .unwrap()
                        .loader()
                        .load_class(crate::SYSTEM_PROPERTIES_CLASS)
                        .unwrap();
                    ids2.lock()
                        .push((class.id().clone(), props_class.id().clone()));
                    Ok(())
                })
                .build(),
            CodeSource::local("file:/apps/sysprobe"),
        )
        .unwrap();
    let a = rt.launch("SysProbe", &[]).unwrap();
    a.wait_for().unwrap();
    let b = rt.launch("SysProbe", &[]).unwrap();
    b.wait_for().unwrap();

    let ids = ids.lock();
    assert_eq!(ids.len(), 2);
    let (sys_a, props_a) = &ids[0];
    let (sys_b, props_b) = &ids[1];
    assert_eq!(sys_a.name, sys_b.name, "same class name");
    assert_ne!(
        sys_a, sys_b,
        "different defining loaders => different classes"
    );
    assert_eq!(
        props_a, props_b,
        "SystemProperties is shared between all applications (Fig 5)"
    );
    rt.shutdown();
}

#[test]
fn system_properties_are_shared_but_streams_are_not() {
    let rt = runtime();
    static SAW: AtomicUsize = AtomicUsize::new(0);
    register(&rt, "Writer", "file:/apps/writer", |_| {
        jsystem::println("from-writer").unwrap();
        Ok(())
    });
    register(&rt, "Reader", "file:/apps/reader", |_| {
        // Shared property written by the host below is visible here.
        if jsystem::property("shared.flag").unwrap().as_deref() == Some("on") {
            SAW.fetch_add(1, Ordering::SeqCst);
        }
        Ok(())
    });
    rt.vm().properties().set("shared.flag", "on");

    let sink = jmp_vm::io::MemSink::new();
    let out = jmp_vm::io::OutStream::new(Arc::new(sink.clone()), jmp_vm::io::IoToken(999));
    let writer = {
        // Launch Writer with a private stdout.
        let user = rt.system_user();
        let spec = crate::application::ExecSpec {
            class_name: "Writer".into(),
            args: vec![],
            user,
            cwd: "/".into(),
            stdin: jmp_vm::io::InStream::null(jmp_vm::io::IoToken(999)),
            stdout: out.clone(),
            stderr: out,
            properties: rt.vm().properties().overlay(),
            forced_id: None,
        };
        crate::application::spawn_app(&rt, spec).unwrap()
    };
    let reader = rt.launch("Reader", &[]).unwrap();
    writer.wait_for().unwrap();
    reader.wait_for().unwrap();

    assert!(sink.contents_string().contains("from-writer"));
    assert!(
        !rt.console_output().contains("from-writer"),
        "writer's stdout was private: per-app System.out (Fig 5)"
    );
    assert_eq!(SAW.load(Ordering::SeqCst), 1, "shared SystemProperties");
    rt.shutdown();
}

#[test]
fn child_inherits_parent_state() {
    // §5.1: "the current application-wide state of the parent is inherited
    // by the child."
    let rt = runtime();
    static CHECKS: AtomicUsize = AtomicUsize::new(0);
    register(&rt, "Child", "file:/apps/child", |_| {
        let app = Application::current().unwrap();
        assert_eq!(app.user().name(), "alice");
        assert_eq!(app.cwd(), "/tmp");
        assert_eq!(app.properties().get("custom.key").as_deref(), Some("v"));
        CHECKS.fetch_add(1, Ordering::SeqCst);
        Ok(())
    });
    register(&rt, "Parent", "file:/apps/parent", |_| {
        let app = Application::current().unwrap();
        Application::set_cwd("/tmp").unwrap();
        app.properties().set("custom.key", "v");
        let child = Application::exec("Child", &[]).unwrap();
        child.wait_for().unwrap();
        Ok(())
    });
    let parent = rt.launch_as("alice", "Parent", &[]).unwrap();
    parent.wait_for().unwrap();
    assert_eq!(CHECKS.load(Ordering::SeqCst), 1);
    rt.shutdown();
}

#[test]
fn user_based_file_access_matrix() {
    // Experiment E6: the paper's four policy rules in action.
    let rt = runtime();
    rt.vfs()
        .write(
            "/home/alice/notes.txt",
            b"alice's notes",
            rt.users().lookup("alice").unwrap().id(),
        )
        .unwrap();
    rt.vfs()
        .write(
            "/home/bob/secret.txt",
            b"bob's secret",
            rt.users().lookup("bob").unwrap().id(),
        )
        .unwrap();

    static RESULTS: parking_lot::Mutex<Vec<(String, bool, bool)>> =
        parking_lot::Mutex::new(Vec::new());
    register(&rt, "Editor", "file:/apps/editor", |_| {
        let me = Application::current().unwrap().user().name().to_string();
        let alice_ok = files::read("/home/alice/notes.txt").is_ok();
        let bob_ok = files::read("/home/bob/secret.txt").is_ok();
        RESULTS.lock().push((me, alice_ok, bob_ok));
        Ok(())
    });

    for user in ["alice", "bob"] {
        let app = rt.launch_as(user, "Editor", &[]).unwrap();
        app.wait_for().unwrap();
    }
    let results = RESULTS.lock();
    assert_eq!(
        *results,
        vec![
            ("alice".to_string(), true, false),
            ("bob".to_string(), false, true),
        ],
        "the same editor code gets each running user's permissions and no more"
    );
    rt.shutdown();
}

#[test]
fn backup_reads_all_but_writes_nothing() {
    let rt = runtime();
    rt.vfs()
        .write(
            "/home/alice/notes.txt",
            b"data",
            rt.users().lookup("alice").unwrap().id(),
        )
        .unwrap();
    static OK: AtomicUsize = AtomicUsize::new(0);
    register(&rt, "Backup", "file:/apps/backup", |_| {
        // Rule 2: reads everything (code-source grant, no user involved)...
        assert_eq!(files::read("/home/alice/notes.txt").unwrap(), b"data");
        // ...but cannot write.
        assert!(files::write("/home/alice/notes.txt", b"clobber")
            .unwrap_err()
            .is_security());
        OK.fetch_add(1, Ordering::SeqCst);
        Ok(())
    });
    // Run as the system account (like a root backup daemon): the read works
    // through the *code-source* grant, no user grant involved; the write is
    // still denied by the runtime policy even though the O/S would allow it.
    let app = rt.launch("Backup", &[]).unwrap();
    app.wait_for().unwrap();
    assert_eq!(OK.load(Ordering::SeqCst), 1);
    rt.shutdown();
}

#[test]
fn os_denial_is_file_not_found_policy_denial_is_security() {
    // The paper's Feature 3 distinction, end to end.
    let rt = runtime();
    rt.vfs()
        .write(
            "/home/bob/secret.txt",
            b"x",
            rt.users().lookup("bob").unwrap().id(),
        )
        .unwrap();
    static OK: AtomicUsize = AtomicUsize::new(0);
    register(&rt, "Prober", "file:/apps/prober", |_| {
        // Policy denies /etc to this app entirely => SecurityException.
        let err = files::read("/etc/anything").unwrap_err();
        assert!(err.is_security(), "policy layer: {err}");
        // Policy allows alice's user grants only for /home/alice; for
        // /home/bob the *policy* already denies. To reach the O/S layer we
        // probe a path the policy allows but the O/S hides: /tmp is granted
        // to the code source, so make a file the O/S denies.
        OK.fetch_add(1, Ordering::SeqCst);
        Ok(())
    });
    let app = rt.launch_as("alice", "Prober", &[]).unwrap();
    app.wait_for().unwrap();
    assert_eq!(OK.load(Ordering::SeqCst), 1);

    // O/S layer: bob's private /tmp file, policy-granted to the app's code
    // source, still hidden by mode bits => FileNotFound.
    let bob = rt.users().lookup("bob").unwrap();
    rt.vfs().write("/tmp/bobs", b"x", bob.id()).unwrap();
    rt.vfs()
        .chmod("/tmp/bobs", jmp_vfs::Mode::FILE_PRIVATE, bob.id())
        .unwrap();
    static OK2: AtomicUsize = AtomicUsize::new(0);
    register(&rt, "Prober2", "file:/apps/prober2", |_| {
        let err = files::read("/tmp/bobs").unwrap_err();
        assert!(err.is_file_not_found(), "O/S layer: {err}");
        assert!(!err.is_security());
        OK2.fetch_add(1, Ordering::SeqCst);
        Ok(())
    });
    let app = rt.launch_as("alice", "Prober2", &[]).unwrap();
    app.wait_for().unwrap();
    assert_eq!(OK2.load(Ordering::SeqCst), 1);
    rt.shutdown();
}

#[test]
fn remote_code_cannot_exec_applications() {
    let rt = runtime();
    static DENIED: AtomicUsize = AtomicUsize::new(0);
    register(&rt, "Victim", "file:/apps/victim", |_| Ok(()));
    // An "applet": registered from a remote code source with no grants.
    rt.vm()
        .material()
        .register(
            ClassDef::builder("Applet")
                .main(|_| {
                    let err = Application::exec("Victim", &[]).unwrap_err();
                    assert!(err.is_security());
                    DENIED.fetch_add(1, Ordering::SeqCst);
                    Ok(())
                })
                .build(),
            CodeSource::remote("http://applets.example.com/Applet"),
        )
        .unwrap();
    let app = rt.launch_as("alice", "Applet", &[]).unwrap();
    app.wait_for().unwrap();
    assert_eq!(DENIED.load(Ordering::SeqCst), 1);
    rt.shutdown();
}

#[test]
fn login_program_changes_running_user() {
    // §5.2: the privilege belongs to the login *program's code source*.
    let rt = runtime();
    static OK: AtomicUsize = AtomicUsize::new(0);
    register(&rt, "Login", "file:/apps/login", |_| {
        let before = Application::current().unwrap().user().name().to_string();
        assert_eq!(before, "system");
        assert!(matches!(
            login::login("alice", "wrong"),
            Err(Error::AuthenticationFailed { .. })
        ));
        let user = login::login("alice", "apw").unwrap();
        assert_eq!(user.name(), "alice");
        let app = Application::current().unwrap();
        assert_eq!(app.user().name(), "alice");
        assert_eq!(app.cwd(), "/home/alice");
        OK.fetch_add(1, Ordering::SeqCst);
        Ok(())
    });
    let app = rt.launch("Login", &[]).unwrap();
    app.wait_for().unwrap();
    assert_eq!(OK.load(Ordering::SeqCst), 1);

    // The same call from a program without the grant fails.
    static DENIED: AtomicUsize = AtomicUsize::new(0);
    register(&rt, "FakeLogin", "file:/apps/fakelogin", |_| {
        let err = login::login("alice", "apw").unwrap_err();
        assert!(err.is_security(), "{err}");
        DENIED.fetch_add(1, Ordering::SeqCst);
        Ok(())
    });
    let app = rt.launch("FakeLogin", &[]).unwrap();
    app.wait_for().unwrap();
    assert_eq!(DENIED.load(Ordering::SeqCst), 1);
    rt.shutdown();
}

#[test]
fn inherited_streams_cannot_be_closed_by_child() {
    // §5.1 / E10.
    let rt = runtime();
    static OK: AtomicUsize = AtomicUsize::new(0);
    register(&rt, "Closer", "file:/apps/closer", |_| {
        let app = Application::current().unwrap();
        let out = app.stdout();
        let err = out.close(app.io_token()).unwrap_err();
        assert!(matches!(err, jmp_vm::VmError::NotStreamOwner));
        // Still usable afterwards.
        jsystem::println("still alive").unwrap();
        OK.fetch_add(1, Ordering::SeqCst);
        Ok(())
    });
    let app = rt.launch("Closer", &[]).unwrap();
    app.wait_for().unwrap();
    assert_eq!(OK.load(Ordering::SeqCst), 1);
    assert!(rt.console_output().contains("still alive"));
    rt.shutdown();
}

#[test]
fn owned_pipes_are_closed_at_teardown() {
    let rt = runtime();
    let captured: Arc<parking_lot::Mutex<Option<jmp_vm::io::InStream>>> =
        Arc::new(parking_lot::Mutex::new(None));
    let captured2 = Arc::clone(&captured);
    rt.vm()
        .material()
        .register(
            ClassDef::builder("PipeMaker")
                .main(move |_| {
                    let (out, input) = pipes::make_pipe().unwrap();
                    out.println("payload").unwrap();
                    *captured2.lock() = Some(input);
                    Ok(())
                })
                .build(),
            CodeSource::local("file:/apps/pipemaker"),
        )
        .unwrap();
    let app = rt.launch("PipeMaker", &[]).unwrap();
    app.wait_for().unwrap();
    let input = captured.lock().take().unwrap();
    assert!(
        input.is_closed(),
        "application-owned streams are closed by the reaper"
    );
    rt.shutdown();
}

#[test]
fn stop_foreign_application_requires_privilege() {
    let rt = runtime();
    register(&rt, "LongRunner", "file:/apps/longrunner", |_| {
        let _ = jmp_vm::thread::sleep(Duration::from_secs(600));
        Ok(())
    });
    static DENIED: AtomicUsize = AtomicUsize::new(0);
    let target = rt.launch_as("bob", "LongRunner", &[]).unwrap();
    let target2 = target.clone();
    rt.vm()
        .material()
        .register(
            ClassDef::builder("Killer")
                .main(move |_| {
                    let err = target2.stop(1).unwrap_err();
                    assert!(err.is_security());
                    DENIED.fetch_add(1, Ordering::SeqCst);
                    Ok(())
                })
                .build(),
            CodeSource::local("file:/apps/killer"),
        )
        .unwrap();
    let killer = rt.launch_as("alice", "Killer", &[]).unwrap();
    killer.wait_for().unwrap();
    assert_eq!(DENIED.load(Ordering::SeqCst), 1);
    assert!(matches!(target.status(), AppStatus::Running));

    // The host (trusted) can stop it.
    target.stop(9).unwrap();
    assert_eq!(target.wait_for().unwrap(), 9);
    rt.shutdown();
}

#[test]
fn app_security_manager_is_never_consulted_by_system_code() {
    // §5.6: the paper's key observation about multiple security managers.
    let rt = runtime();
    static APP_SM_CALLS: AtomicUsize = AtomicUsize::new(0);
    struct CountingSm;
    impl jmp_vm::SecurityManager for CountingSm {
        fn check_permission(
            &self,
            _vm: &jmp_vm::Vm,
            _perm: &jmp_security::Permission,
        ) -> jmp_vm::Result<()> {
            APP_SM_CALLS.fetch_add(1, Ordering::SeqCst);
            Ok(())
        }
    }
    static OK: AtomicUsize = AtomicUsize::new(0);
    register(&rt, "SmApp", "file:/apps/smapp", |_| {
        jsystem::set_security_manager(Arc::new(CountingSm)).unwrap();
        assert!(jsystem::security_manager().unwrap().is_some());
        // A sensitive operation: the SYSTEM security manager handles it; the
        // application's own manager is not consulted.
        files::write("/tmp/smapp.txt", b"x").unwrap();
        assert_eq!(APP_SM_CALLS.load(Ordering::SeqCst), 0);
        OK.fetch_add(1, Ordering::SeqCst);
        Ok(())
    });
    let app = rt.launch("SmApp", &[]).unwrap();
    app.wait_for().unwrap();
    assert_eq!(OK.load(Ordering::SeqCst), 1);
    rt.shutdown();
}

#[test]
fn ps_style_thread_listing() {
    let rt = runtime();
    register(&rt, "Spawner", "file:/apps/spawner", |_| {
        let vm = jmp_vm::Vm::current().unwrap();
        for i in 0..3 {
            vm.thread_builder()
                .name(format!("w{i}"))
                .spawn(|_| {
                    let _ = jmp_vm::thread::sleep(Duration::from_millis(200));
                })
                .unwrap();
        }
        jmp_vm::thread::sleep(Duration::from_millis(50)).unwrap();
        let app = Application::current().unwrap();
        assert!(app.threads().len() >= 4, "main + 3 workers");
        Ok(())
    });
    let app = rt.launch("Spawner", &[]).unwrap();
    app.wait_for().unwrap();
    rt.shutdown();
}

#[test]
fn cwd_relative_file_operations() {
    let rt = runtime();
    static OK: AtomicUsize = AtomicUsize::new(0);
    register(&rt, "Relative", "file:/apps/relative", |_| {
        Application::set_cwd("/tmp").unwrap();
        files::write("rel.txt", b"hello").unwrap();
        assert_eq!(files::read("/tmp/rel.txt").unwrap(), b"hello");
        assert_eq!(files::read("rel.txt").unwrap(), b"hello");
        assert_eq!(files::absolute("sub/../rel.txt").unwrap(), "/tmp/rel.txt");
        files::delete("rel.txt").unwrap();
        assert!(!files::exists("rel.txt").unwrap());
        OK.fetch_add(1, Ordering::SeqCst);
        Ok(())
    });
    let app = rt.launch_as("alice", "Relative", &[]).unwrap();
    app.wait_for().unwrap();
    assert_eq!(OK.load(Ordering::SeqCst), 1);
    rt.shutdown();
}

#[test]
fn streaming_file_io() {
    let rt = runtime();
    static OK: AtomicUsize = AtomicUsize::new(0);
    register(&rt, "Streamer", "file:/apps/streamer", |_| {
        let out = files::open_out("/tmp/stream.txt", false).unwrap();
        out.println("line one").unwrap();
        out.println("line two").unwrap();
        let input = files::open_in("/tmp/stream.txt").unwrap();
        assert_eq!(input.read_line().unwrap().as_deref(), Some("line one"));
        assert_eq!(input.read_line().unwrap().as_deref(), Some("line two"));
        assert_eq!(input.read_line().unwrap(), None);
        // Appending.
        let out = files::open_out("/tmp/stream.txt", true).unwrap();
        out.println("line three").unwrap();
        assert!(files::read_string("/tmp/stream.txt")
            .unwrap()
            .ends_with("line three\n"));
        OK.fetch_add(1, Ordering::SeqCst);
        Ok(())
    });
    let app = rt.launch_as("alice", "Streamer", &[]).unwrap();
    app.wait_for().unwrap();
    assert_eq!(OK.load(Ordering::SeqCst), 1);
    rt.shutdown();
}

#[test]
fn exec_off_application_is_rejected() {
    let _rt = runtime();
    assert!(matches!(
        Application::exec("X", &[]),
        Err(Error::NotAnApplication)
    ));
    assert!(matches!(Application::exit(0), Err(Error::NotAnApplication)));
}

#[test]
fn policy_file_is_recorded_and_reparseable() {
    let rt = runtime();
    let text = rt
        .vfs()
        .read("/etc/java.policy", jmp_security::UserId(0))
        .unwrap();
    let parsed = Policy::parse(&String::from_utf8_lossy(&text)).unwrap();
    assert_eq!(parsed, *rt.vm().policy());
    // World-readable: any user may inspect the policy.
    let alice = rt.users().lookup("alice").unwrap();
    assert!(rt.vfs().read("/etc/java.policy", alice.id()).is_ok());
    rt.shutdown();
}

#[test]
fn launch_unknown_user_fails() {
    let rt = runtime();
    assert!(rt.launch_as("ghost", "X", &[]).is_err());
    rt.shutdown();
}

#[test]
fn unknown_class_reports_on_stderr() {
    let rt = runtime();
    let app = rt.launch("NoSuchClass", &[]).unwrap();
    app.wait_for().unwrap();
    assert!(rt.console_output().contains("class not found: NoSuchClass"));
    rt.shutdown();
}

#[test]
fn reaper_post_close_send_is_a_counted_noop() {
    // An application exit racing runtime drop must neither enqueue (the
    // reaper is gone) nor vanish silently: it lands on `reaper.dropped`.
    let rt = runtime();
    let queue = Arc::clone(&rt.inner.reap_queue);
    let dropped = rt.vm().obs().vm_metrics().counter("reaper.dropped");
    assert_eq!(dropped.get(), 0);
    queue.close();
    queue.send(crate::AppId(7));
    queue.send(crate::AppId(8));
    assert_eq!(dropped.get(), 2);
    rt.shutdown();
}

#[test]
fn app_context_carries_identity_and_defaults() {
    let rt = MpRuntime::builder()
        .policy(Policy::parse(TEST_POLICY).expect("test policy parses"))
        .user("alice", "apw")
        .resource_limit(jmp_vm::ResourceKind::Threads, 16)
        .build()
        .expect("runtime builds");
    register(&rt, "Ctx", "file:/apps/ctx", |_| {
        let ctx = jmp_vm::thread::current_app_context().expect("main carries the context");
        let app = Application::current().unwrap();
        assert_eq!(ctx.app_id(), app.id().0);
        assert_eq!(ctx.user(), "alice");
        assert_eq!(ctx.limits().get(jmp_vm::ResourceKind::Threads), 16);
        // The main thread itself is on the ledger.
        assert_eq!(ctx.ledger().get(jmp_vm::ResourceKind::Threads), 1);
        Ok(())
    });
    let app = rt.launch_as("alice", "Ctx", &[]).unwrap();
    assert_eq!(app.wait_for().unwrap(), 0);
    // After the reap every charge is back.
    assert!(rt.await_idle(Duration::from_secs(5)));
    assert!(app.context().ledger().is_drained());
    rt.shutdown();
}

#[test]
fn policy_limit_grants_override_defaults() {
    let policy = format!(
        "{TEST_POLICY}\n{}",
        r#"grant user "bob" { permission resource "limit.threads:3"; };"#
    );
    let rt = MpRuntime::builder()
        .policy(Policy::parse(&policy).expect("policy parses"))
        .user("alice", "apw")
        .user("bob", "bpw")
        .resource_limit(jmp_vm::ResourceKind::Threads, 64)
        .build()
        .expect("runtime builds");
    register(&rt, "Idle", "file:/apps/idle", |_| Ok(()));
    let alice = rt.launch_as("alice", "Idle", &[]).unwrap();
    let bob = rt.launch_as("bob", "Idle", &[]).unwrap();
    assert_eq!(
        alice.context().limits().get(jmp_vm::ResourceKind::Threads),
        64
    );
    assert_eq!(bob.context().limits().get(jmp_vm::ResourceKind::Threads), 3);
    alice.wait_for().unwrap();
    bob.wait_for().unwrap();
    rt.shutdown();
}

#[test]
fn thread_quota_denies_spawn_and_counts_the_denial() {
    let policy = format!(
        "{TEST_POLICY}\n{}",
        r#"grant user "bob" { permission resource "limit.threads:2"; };"#
    );
    let rt = MpRuntime::builder()
        .policy(Policy::parse(&policy).expect("policy parses"))
        .user("bob", "bpw")
        .build()
        .expect("runtime builds");
    static DENIED: AtomicUsize = AtomicUsize::new(0);
    register(&rt, "Bomb", "file:/apps/bomb", |_| {
        // Main is 1 of 2; the first extra thread fits, the second must be
        // denied with a typed QuotaExceeded.
        let vm = jmp_vm::Vm::current().unwrap();
        let first = vm
            .thread_builder()
            .name("b1")
            .spawn(|_| {
                let _ = jmp_vm::thread::sleep(Duration::from_millis(500));
            })
            .expect("within quota");
        let err = vm
            .thread_builder()
            .name("b2")
            .spawn(|_| {})
            .expect_err("over quota");
        assert!(err.is_quota_exceeded(), "{err}");
        DENIED.fetch_add(1, Ordering::SeqCst);
        first.join_timeout(Duration::from_secs(5));
        Ok(())
    });
    let app = rt.launch_as("bob", "Bomb", &[]).unwrap();
    assert_eq!(app.wait_for().unwrap(), 0);
    assert_eq!(DENIED.load(Ordering::SeqCst), 1);
    // The denial is counted VM-wide and audited.
    assert!(rt.vm().obs().vm_metrics().counter("quota.denied").get() >= 1);
    let audited = rt.vm().obs().audit_query(Some("bob"), None);
    assert!(
        audited.iter().any(|r| r.permission.contains("threads")),
        "{audited:?}"
    );
    assert!(rt.await_idle(Duration::from_secs(5)));
    assert!(app.context().ledger().is_drained());
    rt.shutdown();
}

#[test]
fn set_limits_is_gated_by_resource_permission() {
    let rt = runtime();
    register(&rt, "Limiter", "file:/apps/limiter", |_| {
        let rt = MpRuntime::current().unwrap();
        let app = Application::current().unwrap();
        // The test policy does not grant ResourcePermission("setLimits").
        let err = rt
            .set_limits(app.id(), jmp_vm::ResourceKind::Handles, 5)
            .expect_err("setLimits must be gated");
        assert!(err.is_security(), "{err}");
        Ok(())
    });
    let app = rt.launch_as("alice", "Limiter", &[]).unwrap();
    assert_eq!(app.wait_for().unwrap(), 0);
    // The host (trusted, off-stack) may set limits directly.
    register(&rt, "Sleepy", "file:/apps/sleepy", |_| {
        jmp_vm::thread::sleep(Duration::from_secs(600))
    });
    let sleepy = rt.launch_as("alice", "Sleepy", &[]).unwrap();
    rt.set_limits(sleepy.id(), jmp_vm::ResourceKind::Handles, 5)
        .expect("host sets limits");
    assert_eq!(
        sleepy.context().limits().get(jmp_vm::ResourceKind::Handles),
        5
    );
    sleepy.stop(0).unwrap();
    rt.shutdown();
}

#[test]
fn handles_quota_bounds_owned_streams() {
    let policy = format!(
        "{TEST_POLICY}\n{}",
        r#"grant user "alice" { permission resource "limit.handles:2"; };"#
    );
    let rt = MpRuntime::builder()
        .policy(Policy::parse(&policy).expect("policy parses"))
        .user("alice", "apw")
        .build()
        .expect("runtime builds");
    register(&rt, "Opener", "file:/apps/opener", |_| {
        // A pipe takes two handles (both ends); a second pipe must be
        // denied over the handles quota.
        let _pipe = pipes::make_pipe().expect("within quota");
        let err = pipes::make_pipe().expect_err("over quota");
        assert!(
            matches!(err, Error::Vm(ref e) if e.is_quota_exceeded()),
            "{err}"
        );
        Ok(())
    });
    let app = rt.launch_as("alice", "Opener", &[]).unwrap();
    assert_eq!(app.wait_for().unwrap(), 0);
    assert!(rt.await_idle(Duration::from_secs(5)));
    assert!(app.context().ledger().is_drained());
    rt.shutdown();
}

#[test]
fn repeated_hard_breaches_terminate_the_app() {
    let policy = format!(
        "{TEST_POLICY}\n{}",
        r#"grant user "bob" { permission resource "limit.threads:1"; };"#
    );
    let rt = MpRuntime::builder()
        .policy(Policy::parse(&policy).expect("policy parses"))
        .user("bob", "bpw")
        .build()
        .expect("runtime builds");
    register(&rt, "Breacher", "file:/apps/breacher", |_| {
        let app = Application::current().unwrap();
        // Tighten the escalation threshold, then breach past it.
        app.context().limits().set_hard_breach_threshold(3);
        let vm = jmp_vm::Vm::current().unwrap();
        for _ in 0..8 {
            let _ = vm.thread_builder().name("x").spawn(|_| {});
        }
        // The hook has scheduled us for the reaper; block until it stops us.
        let _ = jmp_vm::thread::sleep(Duration::from_secs(600));
        Ok(())
    });
    let app = rt.launch_as("bob", "Breacher", &[]).unwrap();
    let code = app.wait_for().unwrap();
    assert_eq!(code, 134, "hard-breach escalation reaps with code 134");
    assert!(rt.await_idle(Duration::from_secs(5)));
    rt.shutdown();
}
