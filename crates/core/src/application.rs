use std::fmt;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Weak};
use std::time::Duration;

use jmp_obs::EventKind;
use jmp_security::{Permission, User};
use jmp_vm::io::{InStream, IoToken, OutStream};
use jmp_vm::stack;
use jmp_vm::thread::BLOCK_POLL;
use jmp_vm::{AppContext, Class, ClassLoader, Properties, ResourceKind, ThreadGroup, VmThread};
use parking_lot::{Condvar, Mutex, RwLock};

use crate::error::Error;
use crate::runtime::{MpRuntime, RtInner, SYSTEM_CLASS};
use crate::Result;

/// Identifier of an application within the runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AppId(pub u64);

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "app:{}", self.0)
    }
}

/// Lifecycle of an application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppStatus {
    /// Threads are running.
    Running,
    /// Exit requested; the reaper is tearing the application down.
    Exiting,
    /// All done; carries the exit code.
    Finished(i32),
}

/// A stream the application opened itself and must therefore close at
/// teardown (the converse of the paper's rule that *inherited* streams must
/// not be closed, §5.1).
pub(crate) enum OwnedStream {
    In(InStream),
    Out(OutStream),
}

pub(crate) struct AppInner {
    id: AppId,
    name: String,
    /// The single ownership record shared with every layer that charges the
    /// application for resources — threads, pipes, event queues, handles.
    context: Arc<AppContext>,
    group: ThreadGroup,
    loader: ClassLoader,
    system_class: Class,
    user: RwLock<User>,
    cwd: RwLock<String>,
    properties: Properties,
    io_token: IoToken,
    owned_streams: Mutex<Vec<OwnedStream>>,
    status: Mutex<AppStatus>,
    status_cv: Condvar,
    /// Exit code requested by the first `exit`/`stop` call; finalized by the
    /// reaper.
    pending_code: std::sync::atomic::AtomicI32,
    rt: Weak<RtInner>,
}

/// An application: "a set of Java threads" (paper §5.1, Fig 3), delimited by
/// a thread group, carrying per-application state — the running user,
/// standard streams, a current working directory, and properties — and its
/// own re-loaded `System` class (Fig 5).
///
/// Cheap handle; clones refer to the same application.
#[derive(Clone)]
pub struct Application {
    inner: Arc<AppInner>,
}

/// Everything needed to start an application (computed from the parent
/// application's state, which the child inherits — paper §5.1).
pub(crate) struct ExecSpec {
    pub class_name: String,
    pub args: Vec<String>,
    pub user: User,
    pub cwd: String,
    pub stdin: InStream,
    pub stdout: OutStream,
    pub stderr: OutStream,
    pub properties: Properties,
    /// Reuse this application id if it is free (checkpoint/restore keeps
    /// the original identity across a migration); `None` allocates fresh.
    pub forced_id: Option<AppId>,
}

impl Application {
    /// The application the current thread belongs to, if any.
    pub fn current() -> Option<Application> {
        MpRuntime::current()?.app_of_current_thread()
    }

    /// Launches `class_name` as a new concurrent application, inheriting the
    /// calling application's user, working directory, streams, and
    /// properties (paper §5.1). The call returns immediately; use
    /// [`Application::wait_for`] to block until it finishes — the paper's
    ///
    /// ```text
    /// Application app = Application.exec("MyClass", args);
    /// app.waitFor();
    /// ```
    ///
    /// Requires `RuntimePermission("execApplication")` — which the example
    /// policies grant to local applications but not to applets.
    ///
    /// # Errors
    ///
    /// [`Error::NotAnApplication`] off-application (hosts use
    /// [`MpRuntime::launch`]); [`Error::Security`] without the permission;
    /// class-resolution errors surface from the new application's `main`
    /// thread, not here (matching `exec` semantics).
    pub fn exec(class_name: &str, args: &[&str]) -> Result<Application> {
        let rt = MpRuntime::current().ok_or(Error::NotAnApplication)?;
        let parent = rt.app_of_current_thread().ok_or(Error::NotAnApplication)?;
        rt.vm()
            .check_permission(&Permission::runtime("execApplication"))?;
        let spec = ExecSpec {
            class_name: class_name.to_string(),
            args: args.iter().map(|s| s.to_string()).collect(),
            user: parent.user(),
            cwd: parent.cwd(),
            stdin: parent.stdin(),
            stdout: parent.stdout(),
            stderr: parent.stderr(),
            properties: parent.properties().overlay(),
            forced_id: None,
        };
        spawn_app(&rt, spec)
    }

    /// Requests termination of the *current* application and blocks until
    /// the reaper stops this thread — the paper's `Application.exit(0)`:
    /// "find the application instance that corresponds to the currently
    /// running thread, schedule that application for destruction, and block
    /// the current thread" (§5.1).
    ///
    /// Returns `Ok(())` once the teardown interruption arrives, so callers
    /// can `Application::exit(0)?; return Ok(())` from `main`.
    ///
    /// # Errors
    ///
    /// [`Error::NotAnApplication`] off-application.
    pub fn exit(code: i32) -> Result<()> {
        let app = Application::current().ok_or(Error::NotAnApplication)?;
        app.request_exit(code);
        // Block until the reaper interrupts us.
        loop {
            if jmp_vm::thread::sleep(Duration::from_millis(50)).is_err() {
                return Ok(());
            }
        }
    }

    /// Requests termination of this application (may target another
    /// application — the `kill` path). Access is governed by the paper's
    /// ancestor rule: a thread may stop an application whose group it is an
    /// ancestor of; otherwise it needs
    /// `RuntimePermission("stopApplication")`.
    ///
    /// # Errors
    ///
    /// [`Error::Security`] when the rule denies.
    pub fn stop(&self, code: i32) -> Result<()> {
        let allowed = match jmp_vm::thread::current() {
            // Host threads are trusted.
            None => true,
            Some(current) => current.group().is_ancestor_of(&self.inner.group),
        };
        if !allowed {
            if let Some(rt) = self.runtime() {
                rt.vm()
                    .check_permission(&Permission::runtime("stopApplication"))?;
            }
        }
        self.request_exit(code);
        Ok(())
    }

    /// Blocks until the application finishes; returns its exit code — the
    /// paper's `app.waitFor()`.
    ///
    /// # Errors
    ///
    /// [`Error::Interrupted`] if the waiting thread is interrupted.
    pub fn wait_for(&self) -> Result<i32> {
        let mut status = self.inner.status.lock();
        loop {
            if let AppStatus::Finished(code) = *status {
                return Ok(code);
            }
            if jmp_vm::thread::current_interrupted() {
                return Err(Error::Interrupted);
            }
            self.inner.status_cv.wait_for(&mut status, BLOCK_POLL);
        }
    }

    /// Non-blocking status.
    pub fn status(&self) -> AppStatus {
        *self.inner.status.lock()
    }

    /// The application id.
    pub fn id(&self) -> AppId {
        self.inner.id
    }

    /// The main class name the application was started with.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// The application's thread group (the set-of-threads identity, Fig 3).
    pub fn group(&self) -> &ThreadGroup {
        &self.inner.group
    }

    /// The application's class loader (with `java.lang.System` on its
    /// re-load list, §5.5).
    pub fn loader(&self) -> &ClassLoader {
        &self.inner.loader
    }

    /// This application's own definition of the `System` class.
    pub fn system_class(&self) -> &Class {
        &self.inner.system_class
    }

    /// The application's ownership record: identity, live resource ledger,
    /// and quotas — what every allocation path charges against.
    pub fn context(&self) -> &Arc<AppContext> {
        &self.inner.context
    }

    /// The user running this application (paper §5.2).
    pub fn user(&self) -> User {
        self.inner.user.read().clone()
    }

    /// Changes the *current* application's running user. "Special
    /// privileges are needed to set the user, and these privileges are not
    /// normally granted to applications" (§5.2): requires
    /// `RuntimePermission("setUser")` — which the policy can grant to the
    /// `login` program's *code source*, so it works regardless of who runs
    /// it.
    ///
    /// # Errors
    ///
    /// [`Error::Security`] without the permission;
    /// [`Error::NotAnApplication`] off-application.
    pub fn set_user(user: User) -> Result<()> {
        let app = Application::current().ok_or(Error::NotAnApplication)?;
        let rt = app.runtime().ok_or(Error::NotAnApplication)?;
        rt.vm().check_permission(&Permission::runtime("setUser"))?;
        // The context mirrors the user (attribution reads it lock-free), and
        // the quota table is re-derived for the new user's policy grants.
        app.inner.context.set_user(user.name());
        rt.apply_user_limits(&app.inner.context, user.name());
        *app.inner.user.write() = user;
        Ok(())
    }

    /// The application's current working directory.
    pub fn cwd(&self) -> String {
        self.inner.cwd.read().clone()
    }

    /// Changes the *current* application's working directory (the shell's
    /// `cd` builtin). The path is normalized against the current directory.
    ///
    /// # Errors
    ///
    /// [`Error::NotAnApplication`] off-application;
    /// [`Error::FileNotFound`] if the target is not a reachable directory.
    pub fn set_cwd(path: &str) -> Result<()> {
        let app = Application::current().ok_or(Error::NotAnApplication)?;
        let rt = app.runtime().ok_or(Error::NotAnApplication)?;
        let absolute = jmp_vfs::join(&app.cwd(), path);
        let info = rt.vfs().stat(&absolute, app.user().id())?;
        if info.kind != jmp_vfs::FileKind::Directory {
            return Err(Error::Io {
                message: format!("not a directory: {absolute}"),
            });
        }
        *app.inner.cwd.write() = absolute;
        Ok(())
    }

    /// The per-application properties (inherited from the parent at exec,
    /// §5.1). Distinct from the JVM-wide *system* properties, which live in
    /// the shared `SystemProperties` class (§5.5).
    pub fn properties(&self) -> &Properties {
        &self.inner.properties
    }

    /// The application's standard input (its own `System.in`).
    pub fn stdin(&self) -> InStream {
        self.inner
            .system_class
            .static_as::<InStream>("in")
            .map(|s| (*s).clone())
            .expect("System.in is installed at exec")
    }

    /// The application's standard output (its own `System.out`).
    pub fn stdout(&self) -> OutStream {
        self.inner
            .system_class
            .static_as::<OutStream>("out")
            .map(|s| (*s).clone())
            .expect("System.out is installed at exec")
    }

    /// The application's standard error (its own `System.err`).
    pub fn stderr(&self) -> OutStream {
        self.inner
            .system_class
            .static_as::<OutStream>("err")
            .map(|s| (*s).clone())
            .expect("System.err is installed at exec")
    }

    /// Replaces the *current* application's standard streams (the shell's
    /// redirection mechanism: it "temporarily changes its own standard input
    /// and output streams before each application is launched", §6.1).
    /// Requires `RuntimePermission("setIO")`.
    ///
    /// # Errors
    ///
    /// [`Error::Security`] without the permission;
    /// [`Error::NotAnApplication`] off-application.
    pub fn set_streams(
        stdin: Option<InStream>,
        stdout: Option<OutStream>,
        stderr: Option<OutStream>,
    ) -> Result<()> {
        let app = Application::current().ok_or(Error::NotAnApplication)?;
        let rt = app.runtime().ok_or(Error::NotAnApplication)?;
        rt.vm().check_permission(&Permission::runtime("setIO"))?;
        if let Some(stdin) = stdin {
            app.inner.system_class.set_static("in", Arc::new(stdin));
        }
        if let Some(stdout) = stdout {
            app.inner.system_class.set_static("out", Arc::new(stdout));
        }
        if let Some(stderr) = stderr {
            app.inner.system_class.set_static("err", Arc::new(stderr));
        }
        Ok(())
    }

    /// The close-ownership token for streams this application opens
    /// (paper §5.1).
    pub fn io_token(&self) -> IoToken {
        self.inner.io_token
    }

    /// Records a stream opened by this application, to be closed at
    /// teardown. Each registration costs one `handles` quota slot, released
    /// when the reaper closes the stream.
    ///
    /// # Errors
    ///
    /// [`jmp_vm::VmError::QuotaExceeded`] over the `handles` quota.
    pub(crate) fn register_owned_in(&self, stream: InStream) -> Result<()> {
        self.inner.context.try_charge(ResourceKind::Handles, 1)?;
        self.inner
            .owned_streams
            .lock()
            .push(OwnedStream::In(stream));
        Ok(())
    }

    /// Records an output stream opened by this application.
    ///
    /// # Errors
    ///
    /// [`jmp_vm::VmError::QuotaExceeded`] over the `handles` quota.
    pub(crate) fn register_owned_out(&self, stream: OutStream) -> Result<()> {
        self.inner.context.try_charge(ResourceKind::Handles, 1)?;
        self.inner
            .owned_streams
            .lock()
            .push(OwnedStream::Out(stream));
        Ok(())
    }

    /// Live threads belonging to this application (for `ps`).
    ///
    /// Walks the application's own group subtree rather than filtering the
    /// VM-wide thread table: the reaper calls this on every teardown, and a
    /// global sweep would make each exit cost O(live threads in the whole
    /// fleet) — the control-plane scaling this module is built to avoid.
    pub fn threads(&self) -> Vec<VmThread> {
        let Some(rt) = self.runtime() else {
            return Vec::new();
        };
        let vm = rt.vm();
        let mut threads = Vec::new();
        let mut groups = vec![self.inner.group.clone()];
        while let Some(group) = groups.pop() {
            for id in group.local_thread_ids() {
                if let Some(thread) = vm.find_thread(id) {
                    threads.push(thread);
                }
            }
            groups.extend(group.children());
        }
        threads.sort_by_key(VmThread::id);
        threads
    }

    pub(crate) fn runtime(&self) -> Option<MpRuntime> {
        self.inner.rt.upgrade().map(|inner| MpRuntime { inner })
    }

    pub(crate) fn request_exit(&self, code: i32) {
        {
            let mut status = self.inner.status.lock();
            if *status != AppStatus::Running {
                return;
            }
            *status = AppStatus::Exiting;
            // Stash the requested code in the pending slot via the condvar
            // round-trip: the reaper finalizes with this code.
            self.inner.pending_code.store(code, Ordering::SeqCst);
        }
        if let Some(rt) = self.runtime() {
            // Begin the cooperative stop here rather than when the reaper
            // dequeues the app: the group stops admitting threads and every
            // live thread gets its interrupt immediately, so a large fleet's
            // teardown latencies overlap instead of serializing behind the
            // reaper (which still interrupts and joins as before — by then
            // the threads are normally already gone).
            self.inner.group.destroy();
            for thread in self.threads() {
                let _ = rt.vm().interrupt_thread(&thread);
            }
            rt.vm().obs().sink().publish(
                EventKind::AppExit,
                Some(self.inner.id.0),
                Some(self.user().name().to_string()),
                code.to_string(),
            );
            rt.inner.reap_queue.send(self.inner.id);
        }
    }

    /// Number of streams this application opened and still owns (closed at
    /// teardown; the `streams.open` gauge in `top`).
    pub fn owned_stream_count(&self) -> usize {
        self.inner.owned_streams.lock().len()
    }
}

impl fmt::Debug for Application {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Application")
            .field("id", &self.inner.id)
            .field("name", &self.inner.name)
            .field("user", &self.user().name().to_string())
            .field("status", &self.status())
            .field("threads", &self.inner.group.thread_count())
            .finish()
    }
}

impl fmt::Display for Application {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.inner.name, self.inner.id.0)
    }
}

/// Creates, registers and starts an application from `spec` — the body of
/// `Application.exec` (paper §5.1): create a thread group, instantiate the
/// application state from the parent's, re-load the `System` class through a
/// fresh loader, then call the class's `main` on a new thread in the new
/// group via reflection.
pub(crate) fn spawn_app(rt: &MpRuntime, spec: ExecSpec) -> Result<Application> {
    let inner_rt = &rt.inner;
    let sys_domain = Arc::clone(&inner_rt.sys_domain);
    // Everything below is runtime-internal work performed with system
    // authority, independent of who asked (the exec permission was already
    // checked against the caller).
    stack::call_as("jmp.Application", sys_domain, || {
        stack::do_privileged(|| {
            let id = match spec.forced_id {
                // A restored application keeps its checkpointed id when it
                // is free here; bump the allocator past it so fresh ids
                // never collide with it later.
                Some(want) if rt.application(want).is_none() => {
                    inner_rt
                        .next_app_id
                        .fetch_max(want.0 + 1, Ordering::Relaxed);
                    want
                }
                _ => AppId(inner_rt.next_app_id.fetch_add(1, Ordering::Relaxed)),
            };
            let group = inner_rt
                .vm
                .main_group()
                .new_child(format!("app-{}:{}", id.0, spec.class_name))?;
            let loader = inner_rt
                .vm
                .create_loader(&format!("app-{}", id.0), inner_rt.vm.system_loader())?;
            loader.add_reload(SYSTEM_CLASS);
            let system_class = loader.load_class(SYSTEM_CLASS)?;
            system_class.set_static("in", Arc::new(spec.stdin));
            system_class.set_static("out", Arc::new(spec.stdout));
            system_class.set_static("err", Arc::new(spec.stderr));

            // The ownership record, interned here once per application:
            // quotas come from the VM defaults overridden by the user's
            // policy grants, and crossing the hard-breach threshold
            // schedules the application for the existing reaper.
            let context = AppContext::new(
                id.0,
                spec.class_name.clone(),
                spec.user.name(),
                group.id(),
                inner_rt.vm.obs().clone(),
            );
            rt.apply_user_limits(&context, spec.user.name());
            let breach_rt: Weak<RtInner> = Arc::downgrade(inner_rt);
            context.set_hard_breach_hook(Box::new(move |ctx| {
                let Some(inner) = breach_rt.upgrade() else {
                    return;
                };
                let rt = MpRuntime { inner };
                if let Some(app) = rt.application(AppId(ctx.app_id())) {
                    app.request_exit(134);
                }
            }));

            let app = Application {
                inner: Arc::new(AppInner {
                    id,
                    name: spec.class_name.clone(),
                    context: Arc::clone(&context),
                    group: group.clone(),
                    loader: loader.clone(),
                    system_class,
                    user: RwLock::new(spec.user),
                    cwd: RwLock::new(spec.cwd),
                    properties: spec.properties,
                    io_token: IoToken(inner_rt.next_io_token.fetch_add(1, Ordering::Relaxed)),
                    owned_streams: Mutex::new(Vec::new()),
                    status: Mutex::new(AppStatus::Running),
                    status_cv: Condvar::new(),
                    pending_code: std::sync::atomic::AtomicI32::new(0),
                    rt: Arc::downgrade(inner_rt),
                }),
            };
            inner_rt.apps_by_group.insert(group.id(), id);
            inner_rt.apps_by_id.insert(id, app.clone());

            // Observability: the application's metrics registry exists from
            // exec to reap; the exec itself goes on the event stream.
            let hub = inner_rt.vm.obs();
            hub.app_registry(id.0, app.name());
            hub.vm_metrics().counter("apps.execed").inc();
            hub.sink().publish(
                EventKind::AppExec,
                Some(id.0),
                Some(app.user().name().to_string()),
                app.name().to_string(),
            );

            // Natural end (paper §5.1): "the JVM will call the exit method as
            // soon as there are only daemon threads left in the application's
            // thread group."
            let hook_app = app.clone();
            group.set_empty_hook(Arc::new(move || {
                hook_app.request_exit(0);
            }));

            // The main thread: runs `main` via "reflection" (dynamic class
            // lookup through the application's loader).
            let main_app = app.clone();
            let args = spec.args;
            let class_name = spec.class_name;
            // Causal root: while this guard lives, the main thread spawned
            // below inherits the exec span's child context, so everything the
            // application goes on to do hangs off this exec.
            let exec_span = hub.recorder().begin(
                jmp_obs::SpanCategory::Exec,
                format!("exec:{class_name}#{}", id.0),
            );
            let spawned = inner_rt
                .vm
                .thread_builder()
                .name(format!("main:{class_name}"))
                .group(group.clone())
                .app_context(Arc::clone(&context))
                .daemon(false)
                .spawn(move |_vm| {
                    let outcome = main_app
                        .loader()
                        .load_class(&class_name)
                        .and_then(|class| class.run_main(args));
                    if let Err(err) = outcome {
                        // Uncaught exceptions go to the application's stderr…
                        let _ = main_app
                            .stderr()
                            .println(&format!("Exception in thread \"main\": {err}"));
                        // …and onto the audit trail with the flight record at
                        // the moment of the fault.
                        if let Some(rt) = main_app.runtime() {
                            let user = main_app.user();
                            rt.vm().obs().record_app_fault(
                                Some(main_app.id().0),
                                Some(user.name()),
                                &err.to_string(),
                            );
                        }
                    }
                });
            drop(exec_span);
            if let Err(err) = spawned {
                // Roll the half-born application back out of the registries.
                inner_rt.apps_by_group.remove(&group.id());
                inner_rt.apps_by_id.remove(&id);
                group.destroy();
                return Err(err.into());
            }
            Ok(app)
        })
    })
}

/// Tears an application down — the reaper body (paper §5.1: "a background
/// thread will eventually clean up the application, stop all threads, and
/// close all windows that are associated with the application").
pub(crate) fn reap(rt: &MpRuntime, id: AppId) {
    let Some(app) = rt.application(id) else {
        return;
    };

    // 1. Close the application's windows and retire its event machinery.
    if let Some(toolkit) = rt.toolkit() {
        toolkit.close_app(id.0);
    }

    // 2. Stop all threads (cooperative interruption; every blocking runtime
    //    primitive is an interruption point).
    app.inner.group.destroy();
    let threads = app.threads();
    for thread in &threads {
        let _ = rt.vm().interrupt_thread(thread);
    }
    for thread in &threads {
        thread.join_timeout(Duration::from_secs(2));
    }

    // 3. Close the streams the application opened — and only those; the
    //    inherited standard streams are shared with other applications and
    //    must survive (§5.1). Each close releases the handle charged at
    //    registration, so the ledger drains with the teardown.
    let token = app.inner.io_token;
    let mut released_handles = 0;
    for owned in app.inner.owned_streams.lock().drain(..) {
        released_handles += 1;
        match owned {
            OwnedStream::In(s) => {
                let _ = s.close(token);
            }
            OwnedStream::Out(s) => {
                let _ = s.close(token);
            }
        }
    }
    app.inner
        .context
        .uncharge(ResourceKind::Handles, released_handles);

    // 4. Drop the application's shared-object exports (§8 extension):
    //    exports do not outlive their publisher.
    crate::shared::drop_exports_of(rt, id);

    // 4b. Reclaim the application's resident memory in O(1): the pooled
    //     interpreter arenas and any charged image footprints are released
    //     in one swap, so the memory ledger provably drains to zero at reap
    //     no matter how the application exited.
    app.inner.context.reclaim_memory();

    // 5. Finalize and deregister.
    let code = app.inner.pending_code.load(Ordering::SeqCst);
    {
        let mut status = app.inner.status.lock();
        *status = AppStatus::Finished(code);
        app.inner.status_cv.notify_all();
    }
    rt.inner.apps_by_group.remove(&app.inner.group.id());
    rt.inner.apps_by_id.remove(&id);

    // 6. Retire the application's metrics registry and record the reap.
    let hub = rt.vm().obs();
    hub.vm_metrics().counter("apps.reaped").inc();
    hub.sink().publish(
        EventKind::AppReap,
        Some(id.0),
        Some(app.user().name().to_string()),
        code.to_string(),
    );
    hub.remove_app(id.0);
}
