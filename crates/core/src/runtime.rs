use std::fmt;
use std::sync::atomic::AtomicU64;
use std::sync::{Arc, OnceLock};

use jmp_awt::{DispatchMode, DisplayServer, Toolkit};
use jmp_security::{Permission, Policy, ProtectionDomain, User, UserRegistry};
use jmp_vfs::{Mode, Vfs};
use jmp_vm::io::{InStream, IoToken, MemSink, OutStream};
use jmp_vm::thread::BLOCK_POLL;
use jmp_vm::{AppContext, ClassDef, GroupId, ResourceKind, Vm};
use parking_lot::{Condvar, Mutex};

use crate::application::{AppId, Application};
use crate::shard::ShardedMap;
use crate::sys_sm::SystemSecurityManager;
use crate::Result;

/// Extension key under which the runtime registers itself with the VM.
pub(crate) const EXTENSION_KEY: &str = "jmp.mpruntime";

/// Name of the per-application re-loaded system class (paper §5.5).
pub const SYSTEM_CLASS: &str = "java.lang.System";

/// Name of the shared system-properties class (paper §5.5, Fig 5).
pub const SYSTEM_PROPERTIES_CLASS: &str = "jmp.SystemProperties";

/// The reaper's work queue: application ids awaiting teardown. A blocking
/// queue in the style of the data-plane primitives — the reaper sleeps for
/// real (no periodic poll) and is woken by a send, a close (runtime drop),
/// or thread interruption (VM shutdown) via the interrupt waker.
pub(crate) struct ReapQueue {
    state: Mutex<(std::collections::VecDeque<AppId>, bool)>,
    cvar: Condvar,
    /// Counts ids enqueued after close — an exit racing the runtime's own
    /// drop must be a *counted* no-op (the reaper analogue of the event
    /// queues' `events.dropped`), not a silent one.
    dropped: OnceLock<Arc<jmp_obs::Counter>>,
}

impl ReapQueue {
    fn new() -> Arc<ReapQueue> {
        Arc::new(ReapQueue {
            state: Mutex::new((std::collections::VecDeque::new(), false)),
            cvar: Condvar::new(),
            dropped: OnceLock::new(),
        })
    }

    fn set_dropped_counter(&self, counter: Arc<jmp_obs::Counter>) {
        let _ = self.dropped.set(counter);
    }

    pub(crate) fn send(&self, id: AppId) {
        let mut state = self.state.lock();
        if state.1 {
            drop(state);
            if let Some(counter) = self.dropped.get() {
                counter.inc();
            }
            return;
        }
        state.0.push_back(id);
        self.cvar.notify_one();
    }

    pub(crate) fn close(&self) {
        self.state.lock().1 = true;
        self.cvar.notify_all();
    }

    /// Blocks for the next id; `None` once closed-and-drained or when the
    /// calling VM thread is interrupted.
    fn recv(self: &Arc<ReapQueue>) -> Option<AppId> {
        let waker = {
            let queue = Arc::clone(self);
            jmp_vm::thread::register_interrupt_waker(Arc::new(move || {
                let _state = queue.state.lock();
                queue.cvar.notify_all();
            }))
        };
        let _waker = waker;
        let mut state = self.state.lock();
        loop {
            if let Some(id) = state.0.pop_front() {
                return Some(id);
            }
            if state.1 || jmp_vm::thread::check_interrupt().is_err() {
                return None;
            }
            self.cvar.wait(&mut state);
        }
    }
}

pub(crate) struct RtInner {
    pub(crate) vm: Vm,
    pub(crate) vfs: Arc<Vfs>,
    pub(crate) users: Arc<UserRegistry>,
    pub(crate) sys_domain: Arc<ProtectionDomain>,
    /// `GroupId → AppId` view onto [`RtInner::apps_by_id`], one entry per
    /// application root group — kept only for the group-walk fallback
    /// ([`MpRuntime::app_of_group`]); the primary record is the id map.
    /// Sharded so registration, lookup and the group walk never queue on a
    /// whole-registry lock.
    pub(crate) apps_by_group: ShardedMap<GroupId, AppId>,
    /// The application registry, sharded by id hash: spawns and reaps on
    /// different shards proceed concurrently, and `ps`-style sweeps
    /// ([`MpRuntime::applications`]) read shard by shard without ever
    /// blocking a spawn behind a whole-map lock.
    pub(crate) apps_by_id: ShardedMap<AppId, Application>,
    /// VM-wide default quotas applied to every application at exec, before
    /// the per-user `resource "limit.<resource>:<n>"` policy overrides.
    pub(crate) default_limits: Vec<(ResourceKind, u64)>,
    pub(crate) next_app_id: AtomicU64,
    pub(crate) next_io_token: AtomicU64,
    pub(crate) reap_queue: Arc<ReapQueue>,
    pub(crate) toolkit: Option<Toolkit>,
    pub(crate) display: Option<DisplayServer>,
    pub(crate) console: MemSink,
    pub(crate) default_stdin: InStream,
    pub(crate) default_stdout: OutStream,
    pub(crate) default_stderr: OutStream,
    /// The shared-object registry (§8 future work; see [`crate::shared`]),
    /// sharded by name hash like the application tables.
    pub(crate) shared: ShardedMap<String, crate::shared::SharedEntry>,
}

impl Drop for RtInner {
    fn drop(&mut self) {
        // Wake the (blocked, parked) reaper so it exits when the runtime is
        // dropped without a VM shutdown — the reaper holds its own Arc to
        // the queue, so close is the only signal it would otherwise miss.
        self.reap_queue.close();
    }
}

/// The multi-processing runtime: the paper's prototype, assembled.
///
/// Owns a [`Vm`], a virtual filesystem, the user registry, optionally a
/// display + toolkit, and the table of running [`Application`]s. Building it
/// performs the bootstrap the paper describes: registering the re-loadable
/// `System` class material, installing the system security manager (§5.6),
/// installing the user resolver that feeds user-based access control (§5.3),
/// and starting the background reaper that cleans up exiting applications
/// (§5.1).
///
/// Cheap handle; clones refer to the same runtime.
#[derive(Clone)]
pub struct MpRuntime {
    pub(crate) inner: Arc<RtInner>,
}

/// Configures and builds an [`MpRuntime`].
pub struct MpRuntimeBuilder {
    policy: Policy,
    users: Vec<(String, String)>,
    gui: Option<(DisplayServer, DispatchMode)>,
    vm_name: String,
    limits: Vec<(ResourceKind, u64)>,
}

impl MpRuntimeBuilder {
    /// Sets the security policy (see [`Policy::parse`] for the format,
    /// including the paper's `grant user` extension).
    pub fn policy(mut self, policy: Policy) -> MpRuntimeBuilder {
        self.policy = policy;
        self
    }

    /// Adds a user account (home directory `/home/<name>` is created and
    /// made private, like `adduser`).
    pub fn user(mut self, name: &str, password: &str) -> MpRuntimeBuilder {
        self.users.push((name.to_string(), password.to_string()));
        self
    }

    /// Names the underlying VM.
    pub fn vm_name(mut self, name: impl Into<String>) -> MpRuntimeBuilder {
        self.vm_name = name.into();
        self
    }

    /// Attaches a windowing stack in the given dispatch mode, creating a
    /// fresh [`DisplayServer`].
    pub fn gui(mut self, mode: DispatchMode) -> MpRuntimeBuilder {
        self.gui = Some((DisplayServer::new(), mode));
        self
    }

    /// Attaches a windowing stack on an existing display.
    pub fn display(mut self, display: DisplayServer, mode: DispatchMode) -> MpRuntimeBuilder {
        self.gui = Some((display, mode));
        self
    }

    /// Sets a VM-wide default quota for `kind`, applied to every application
    /// at exec. Per-user `resource "limit.<resource>:<n>"` policy grants and
    /// [`MpRuntime::set_limits`] both override it.
    pub fn resource_limit(mut self, kind: ResourceKind, limit: u64) -> MpRuntimeBuilder {
        self.limits.push((kind, limit));
        self
    }

    /// Builds and bootstraps the runtime.
    ///
    /// # Errors
    ///
    /// Propagates VM bootstrap failures (duplicate user names, class
    /// registration conflicts).
    pub fn build(self) -> Result<MpRuntime> {
        // -- users and filesystem -------------------------------------------
        let user_pairs: Vec<(&str, &str)> = self
            .users
            .iter()
            .map(|(n, p)| (n.as_str(), p.as_str()))
            .collect();
        let users = UserRegistry::with_users(&user_pairs);
        let system_uid = users.lookup("system").expect("bootstrap account").id();

        let vfs = Arc::new(Vfs::new());
        for dir in ["/home", "/tmp", "/etc", "/apps", "/sys"] {
            vfs.mkdirs(dir, system_uid)?;
        }
        vfs.chmod("/tmp", Mode::WORLD_WRITABLE, system_uid)?;
        // Record the active policy where users can read it (the paper: "a
        // policy that can be specified by the user"; the JDK keeps it in a
        // policy file). World-readable, root-owned.
        vfs.write(
            "/etc/java.policy",
            self.policy.to_string().as_bytes(),
            system_uid,
        )?;
        // The lazy half of the policy: per-user grant files under
        // /etc/policy.d, loaded on first demand and interned in a bounded
        // cache (see `crate::policy_store`). The resident policy stays the
        // root of authority; the store only answers user queries the
        // resident grants don't.
        vfs.mkdirs(crate::policy_store::USER_POLICY_DIR, system_uid)?;
        let user_store = Arc::new(jmp_security::LazyUserStore::new(Arc::new(
            crate::policy_store::VfsGrantSource::new(Arc::clone(&vfs), system_uid),
        )));
        let policy = self.policy.with_user_store(user_store);
        for (name, _) in &self.users {
            let user = users.lookup(name).expect("just registered");
            let home = user.home().to_string();
            vfs.mkdirs(&home, system_uid)?;
            vfs.chown(&home, user.id(), system_uid)?;
            vfs.chmod(&home, Mode::DIR_PRIVATE, system_uid)?;
        }

        // -- VM and class material ------------------------------------------
        let vm = Vm::builder().name(self.vm_name).policy(policy).build();
        vm.material().register(
            ClassDef::builder(SYSTEM_CLASS)
                .static_slot("in")
                .static_slot("out")
                .static_slot("err")
                .static_slot("securityManager")
                .build(),
            jmp_security::CodeSource::local("file:/sys/classes"),
        )?;
        vm.material().register(
            ClassDef::builder(SYSTEM_PROPERTIES_CLASS)
                .static_slot("table")
                .build(),
            jmp_security::CodeSource::local("file:/sys/classes"),
        )?;
        // Define the shared SystemProperties once, in the system loader, and
        // point its statics at the VM-wide property table (Fig 5).
        let sysprops = vm.system_loader().load_class(SYSTEM_PROPERTIES_CLASS)?;
        sysprops.set_static("table", Arc::new(vm.properties().clone()));

        // -- default console -------------------------------------------------
        let console = MemSink::new();
        let default_stdin = InStream::null(IoToken::SYSTEM);
        let default_stdout = OutStream::new(Arc::new(console.clone()), IoToken::SYSTEM);
        let default_stderr = OutStream::new(Arc::new(console.clone()), IoToken::SYSTEM);

        // -- GUI --------------------------------------------------------------
        let (display, toolkit) = match self.gui {
            Some((display, mode)) => {
                let toolkit = Toolkit::connect(vm.clone(), display.clone(), mode);
                (Some(display), Some(toolkit))
            }
            None => (None, None),
        };

        let reap_queue = ReapQueue::new();
        reap_queue.set_dropped_counter(vm.obs().vm_metrics().counter("reaper.dropped"));
        let inner = Arc::new(RtInner {
            vm: vm.clone(),
            vfs,
            users,
            sys_domain: Arc::new(ProtectionDomain::system()),
            apps_by_group: ShardedMap::new(),
            apps_by_id: ShardedMap::new(),
            default_limits: self.limits,
            next_app_id: AtomicU64::new(1),
            next_io_token: AtomicU64::new(1),
            reap_queue: Arc::clone(&reap_queue),
            toolkit,
            display,
            console,
            default_stdin,
            default_stdout,
            default_stderr,
            shared: ShardedMap::new(),
        });
        let rt = MpRuntime {
            inner: Arc::clone(&inner),
        };

        // -- install the multi-processing hooks (host context: fully trusted)
        vm.set_extension(
            EXTENSION_KEY,
            Arc::clone(&inner) as Arc<dyn std::any::Any + Send + Sync>,
        )?;
        // Identity is read straight off the thread's AppContext — installed
        // at spawn and inherited by every thread the application creates —
        // with no runtime handle and no thread→group→app walk.
        vm.set_user_resolver(Arc::new(|| {
            jmp_vm::thread::current_app_context().map(|ctx| ctx.user())
        }))?;
        vm.set_security_manager(Arc::new(SystemSecurityManager::new()))?;
        // Observability: events and metrics are charged to the application
        // whose context the current thread carries.
        vm.obs().set_app_resolver(Arc::new(|| {
            jmp_vm::thread::current_app_context().map(|ctx| ctx.app_id())
        }));
        if let Some(toolkit) = &rt.inner.toolkit {
            toolkit.set_tag_resolver(Arc::new(|| {
                jmp_vm::thread::current_app_context().map_or(0, |ctx| ctx.app_id())
            }));
            // Feed GUI dispatch counts and latencies into the hub, VM-wide
            // and per application (§5.4's per-application queues make the
            // per-app numbers meaningful).
            let hub = vm.obs().clone();
            toolkit.add_dispatch_observer(Arc::new(move |_event, tag, latency| {
                let ns = latency.as_nanos() as u64;
                hub.vm_metrics().counter("gui.dispatched").inc();
                hub.vm_metrics().histogram("gui.dispatch_ns").record(ns);
                if let Some(registry) = hub.existing_app_registry(tag) {
                    registry.counter("gui.dispatched").inc();
                    registry.histogram("gui.dispatch_ns").record(ns);
                }
            }));
        }
        rt.start_reaper(reap_queue)?;
        rt.start_watchdog_checker()?;
        rt.start_profile_sampler()?;
        Ok(rt)
    }
}

impl MpRuntime {
    /// Starts building a runtime.
    pub fn builder() -> MpRuntimeBuilder {
        MpRuntimeBuilder {
            policy: Policy::new(),
            users: Vec::new(),
            gui: None,
            vm_name: "jmp-mp".into(),
            limits: Vec::new(),
        }
    }

    /// The runtime attached to the current VM thread's VM, if any.
    pub fn current() -> Option<MpRuntime> {
        let vm = Vm::current()?;
        MpRuntime::of_vm(&vm)
    }

    /// The runtime attached to `vm`, if one was built on it.
    pub fn of_vm(vm: &Vm) -> Option<MpRuntime> {
        vm.extension::<RtInner>(EXTENSION_KEY)
            .map(|inner| MpRuntime { inner })
    }

    /// The underlying VM.
    pub fn vm(&self) -> &Vm {
        &self.inner.vm
    }

    /// The virtual filesystem.
    pub fn vfs(&self) -> &Arc<Vfs> {
        &self.inner.vfs
    }

    /// The user registry.
    pub fn users(&self) -> &Arc<UserRegistry> {
        &self.inner.users
    }

    /// The windowing toolkit, if the runtime was built with a GUI.
    pub fn toolkit(&self) -> Option<&Toolkit> {
        self.inner.toolkit.as_ref()
    }

    /// The display server, if the runtime was built with a GUI.
    pub fn display(&self) -> Option<&DisplayServer> {
        self.inner.display.as_ref()
    }

    /// Everything written to the default console (applications launched
    /// without stream overrides write here).
    pub fn console_output(&self) -> String {
        self.inner.console.contents_string()
    }

    /// Clears the captured console.
    pub fn clear_console(&self) {
        self.inner.console.clear();
    }

    /// Writes (or replaces) `user`'s lazy policy file under
    /// [`crate::USER_POLICY_DIR`] and invalidates the store's cache, so the
    /// grants take effect on the next access check that asks about the user.
    /// `text` is ordinary policy syntax; only its `grant user "<user>"`
    /// blocks matter. Requires `RuntimePermission("setPolicy")`, the same
    /// privilege as replacing the resident policy.
    ///
    /// # Errors
    ///
    /// [`crate::Error::Security`] without the permission; filesystem errors
    /// propagate from the underlying write.
    pub fn provision_user_policy(&self, user: &str, text: &str) -> Result<()> {
        self.inner
            .vm
            .check_permission(&Permission::runtime("setPolicy"))?;
        let system = self.system_user().id();
        self.inner.vfs.write(
            &format!("{}/{user}.policy", crate::policy_store::USER_POLICY_DIR),
            text.as_bytes(),
            system,
        )?;
        // Same ordering as `Vm::set_policy`: kill the stored grants first,
        // then bump the decision-cache epoch — a check racing this call
        // either re-walks (sees the new file) or serves a decision cached
        // under the old epoch, which the bump below retires.
        self.inner.vm.policy().invalidate_user_store();
        self.inner.vm.flush_access_cache();
        Ok(())
    }

    /// The `system` account.
    pub fn system_user(&self) -> User {
        self.inner
            .users
            .lookup("system")
            .expect("bootstrap account")
    }

    /// Launches `class_name` as a new application owned by the `system`
    /// user, with default streams — the host-level entry point (what the
    /// bootstrap uses to start `login` or a shell).
    ///
    /// # Errors
    ///
    /// [`crate::Error::Vm`] wrapping `ClassNotFound` for unknown classes.
    pub fn launch(&self, class_name: &str, args: &[&str]) -> Result<Application> {
        self.launch_as("system", class_name, args)
    }

    /// Launches `class_name` as a new application running as `user_name`.
    ///
    /// # Errors
    ///
    /// [`crate::Error::Security`] wrapping `UnknownUser` if the account does not
    /// exist; otherwise as [`MpRuntime::launch`].
    pub fn launch_as(
        &self,
        user_name: &str,
        class_name: &str,
        args: &[&str],
    ) -> Result<Application> {
        self.launch_with(user_name, class_name, args, None, None, None)
    }

    /// Launches with explicit standard streams — how a terminal session is
    /// wired up: the login application gets the terminal's streams, and
    /// everything it execs inherits them (paper §6.2).
    ///
    /// # Errors
    ///
    /// As [`MpRuntime::launch_as`].
    pub fn launch_with(
        &self,
        user_name: &str,
        class_name: &str,
        args: &[&str],
        stdin: Option<InStream>,
        stdout: Option<OutStream>,
        stderr: Option<OutStream>,
    ) -> Result<Application> {
        let user = self.inner.users.lookup(user_name)?;
        let spec = crate::application::ExecSpec {
            class_name: class_name.to_string(),
            args: args.iter().map(|s| s.to_string()).collect(),
            user: user.clone(),
            cwd: if user.home().is_empty() {
                "/".to_string()
            } else {
                user.home().to_string()
            },
            stdin: stdin.unwrap_or_else(|| self.inner.default_stdin.clone()),
            stdout: stdout.unwrap_or_else(|| self.inner.default_stdout.clone()),
            stderr: stderr.unwrap_or_else(|| self.inner.default_stderr.clone()),
            properties: self.inner.vm.properties().overlay(),
            forced_id: None,
        };
        crate::application::spawn_app(self, spec)
    }

    /// Resolves the application the current thread belongs to — normally a
    /// direct read of the [`AppContext`] the thread has carried since spawn,
    /// falling back to the thread-group walk (the paper's "threads give us a
    /// convenient way to distinguish two instances of the same program",
    /// §5.1, Fig 3) for threads placed in an application's group without a
    /// context.
    pub fn app_of_current_thread(&self) -> Option<Application> {
        if let Some(ctx) = jmp_vm::thread::current_app_context() {
            return self.application(AppId(ctx.app_id()));
        }
        let thread = jmp_vm::thread::current()?;
        self.app_of_group(thread.group())
    }

    /// Resolves the application owning `group`, if any, by walking the group
    /// tree upward to an application root.
    pub fn app_of_group(&self, group: &jmp_vm::ThreadGroup) -> Option<Application> {
        // Each step is one sharded point lookup — the walk never pins the
        // whole group index, so registrations on other shards proceed.
        let mut cursor = Some(group.clone());
        let id = loop {
            let Some(g) = cursor else { break None };
            if let Some(id) = self.inner.apps_by_group.get(&g.id()) {
                break Some(id);
            }
            cursor = g.parent().cloned();
        };
        self.application(id?)
    }

    /// Applies the runtime's default quotas, then the per-user
    /// `resource "limit.<resource>:<n>"` grants from the policy, to `ctx` —
    /// the limit table consulted at exec and again at `setUser`.
    pub(crate) fn apply_user_limits(&self, ctx: &AppContext, user: &str) {
        for (kind, limit) in &self.inner.default_limits {
            ctx.limits().set(*kind, *limit);
        }
        let policy = self.inner.vm.policy();
        for permission in policy.permissions_for_user(user).iter() {
            let Permission::Resource(target) = permission else {
                continue;
            };
            let Some(spec) = target.strip_prefix("limit.") else {
                continue;
            };
            let Some((resource, value)) = spec.rsplit_once(':') else {
                continue;
            };
            if let (Some(kind), Ok(limit)) = (ResourceKind::parse(resource), value.parse::<u64>()) {
                ctx.limits().set(kind, limit);
            }
        }
    }

    /// Sets one of `app`'s resource quotas. Requires
    /// `ResourcePermission("setLimits")` — the shell's `ulimit` path.
    ///
    /// # Errors
    ///
    /// [`crate::Error::Security`] without the permission; [`crate::Error::Io`]
    /// if no such application is running.
    pub fn set_limits(&self, id: AppId, kind: ResourceKind, limit: u64) -> Result<()> {
        self.inner
            .vm
            .check_permission(&Permission::resource(Permission::SET_LIMITS))?;
        let app = self.application(id).ok_or_else(|| crate::Error::Io {
            message: format!("no such application: {}", id.0),
        })?;
        app.context().limits().set(kind, limit);
        self.inner.vm.obs().vm_metrics().counter("limits.set").inc();
        Ok(())
    }

    /// All running applications, sorted by id. Collected shard by shard —
    /// the sweep behind `ps`/`top`/`vmstat` holds no lock that could block
    /// a concurrent spawn or reap on another shard.
    pub fn applications(&self) -> Vec<Application> {
        let mut apps = self.inner.apps_by_id.values();
        apps.sort_by_key(Application::id);
        apps
    }

    /// Looks up a running application by id (one shard lock, briefly).
    pub fn application(&self, id: AppId) -> Option<Application> {
        self.inner.apps_by_id.get(&id)
    }

    /// Number of running applications.
    pub fn application_count(&self) -> usize {
        self.inner.apps_by_id.len()
    }

    /// Blocks until no applications remain or `timeout` elapses. Returns
    /// `true` when idle.
    pub fn await_idle(&self, timeout: std::time::Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        while std::time::Instant::now() < deadline {
            if self.application_count() == 0 {
                return true;
            }
            std::thread::sleep(BLOCK_POLL);
        }
        self.application_count() == 0
    }

    /// Stops the whole runtime (VM shutdown).
    pub fn shutdown(&self) {
        self.inner.vm.exit_unchecked(0);
    }

    fn start_reaper(&self, queue: Arc<ReapQueue>) -> Result<()> {
        let weak = Arc::downgrade(&self.inner);
        let watchdogs = self.inner.vm.obs().watchdogs().clone();
        self.inner
            .vm
            .thread_builder()
            .name("app-reaper")
            .group(self.inner.vm.system_group().clone())
            .daemon(true)
            .spawn(move |_vm| {
                // The reaper is a system helper: parked while waiting for
                // work (idle ≠ stalled, no periodic wakeups), beating per
                // teardown — so only a reap that wedges shows up as a stall.
                let heartbeat = watchdogs.register("app-reaper", None);
                loop {
                    heartbeat.park();
                    let next = queue.recv();
                    heartbeat.unpark();
                    let Some(app_id) = next else { break };
                    let Some(inner) = weak.upgrade() else { break };
                    crate::application::reap(&MpRuntime { inner }, app_id);
                }
                watchdogs.deregister("app-reaper");
            })?;
        Ok(())
    }

    /// Starts the background thread that polls the watchdog registry and
    /// raises stall events (see [`jmp_obs::ObsHub::check_watchdogs`]).
    fn start_watchdog_checker(&self) -> Result<()> {
        let weak = Arc::downgrade(&self.inner);
        self.inner
            .vm
            .thread_builder()
            .name("vm-watchdog")
            .group(self.inner.vm.system_group().clone())
            .daemon(true)
            .spawn(move |_vm| loop {
                {
                    let Some(inner) = weak.upgrade() else { return };
                    inner.vm.obs().check_watchdogs();
                }
                if jmp_vm::thread::sleep(std::time::Duration::from_millis(50)).is_err() {
                    return;
                }
            })?;
        Ok(())
    }

    /// Starts the VM profiler thread: every
    /// [`jmp_obs::profile::DEFAULT_SAMPLE_INTERVAL_MS`] it snapshots each
    /// registered thread's published call location into weighted collapsed
    /// stacks (see [`jmp_obs::Profiler::sample_once`]). A no-op tick while
    /// sampling is disabled.
    fn start_profile_sampler(&self) -> Result<()> {
        let weak = Arc::downgrade(&self.inner);
        let interval_ms = jmp_obs::profile::DEFAULT_SAMPLE_INTERVAL_MS;
        self.inner
            .vm
            .thread_builder()
            .name("vm-profiler")
            .group(self.inner.vm.system_group().clone())
            .daemon(true)
            .spawn(move |_vm| loop {
                {
                    let Some(inner) = weak.upgrade() else { return };
                    inner.vm.obs().profiler().sample_once(interval_ms * 1_000);
                }
                if jmp_vm::thread::sleep(std::time::Duration::from_millis(interval_ms)).is_err() {
                    return;
                }
            })?;
        Ok(())
    }
}

impl fmt::Debug for MpRuntime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MpRuntime")
            .field("vm", &self.inner.vm.name())
            .field("applications", &self.application_count())
            .field("users", &self.inner.users.len())
            .field("gui", &self.inner.toolkit.is_some())
            .finish()
    }
}
