//! Whole-application checkpoint images: checkpoint, restore, migrate.
//!
//! The interpreter layer parks a run at a safepoint and serializes its
//! continuation as an [`InterpSnapshot`] (see `jmp_vm::snapshot`). This
//! module wraps that continuation with everything the *application* around
//! it owns — identity (id, name, user), working directory, resource
//! limits, the home-directory vfs subtree, and the pending event queue in
//! reduced form — into a versioned [`AppSnapshot`] byte image.
//!
//! [`MpRuntime::checkpoint_app`] quiesces a running application: it raises
//! the checkpoint flag on the application's context, the interpreter parks
//! at its next safepoint (≤ one safepoint interval away), the application
//! exits cleanly and is reaped (its memory ledger drains to zero), and the
//! deposited continuation is collected and packaged.
//! [`MpRuntime::restore_app`] runs the inverse on any runtime — the same
//! VM or a different one — re-creating the vfs subtree, re-registering the
//! embedded image (re-verified on the target), and resuming the
//! interpreter mid-method with the original id, user, limits, and
//! cumulative instruction accounting, so the resumed run's observable
//! output is byte-identical to an uninterrupted one.

use std::sync::Arc;
use std::time::{Duration, Instant};

use jmp_security::{CodeSource, Permission};
use jmp_vm::thread::BLOCK_POLL;
use jmp_vm::{InterpSnapshot, ResourceKind, RESOURCE_KINDS};
use serde::{Deserialize, Serialize};

use crate::application::{AppId, AppStatus, Application, ExecSpec};
use crate::runtime::MpRuntime;
use crate::{Error, Result};

/// Current application-snapshot wire-format version.
pub const APP_SNAPSHOT_VERSION: u32 = 1;

/// Magic prefix on every serialized application snapshot.
pub const APP_SNAPSHOT_MAGIC: &[u8; 8] = b"JMPAPPS\0";

/// How long [`MpRuntime::checkpoint_app`] waits for the target to park and
/// be reaped before giving up. Parks land within one safepoint interval
/// (1024 wire instructions), so this bound is generous — it exists for
/// applications that are not interpreting at all.
pub const CHECKPOINT_TIMEOUT: Duration = Duration::from_secs(10);

/// One captured file of the application's home subtree. Contents and path
/// only; modes are re-derived on restore (owner-written files), which
/// `docs/checkpoint.md` calls out as a non-captured dimension.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapFile {
    /// Absolute vfs path.
    pub path: String,
    /// File contents.
    pub data: Vec<u8>,
}

/// One pending event, in reduced form: enough to audit what was in flight
/// at checkpoint time. Events reference live window handles that do not
/// exist on the restoring VM, so they are recorded, not replayed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapEvent {
    /// The target window's id on the checkpointed VM.
    pub window: u64,
    /// The target component, if any.
    pub component: Option<u64>,
    /// Debug rendering of the event kind.
    pub kind: String,
    /// How many bursts were coalesced into this slot.
    pub coalesced: u64,
}

/// A quiesced application, ready to restore on this VM or another.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppSnapshot {
    /// Wire-format version ([`APP_SNAPSHOT_VERSION`]).
    pub version: u32,
    /// The application id, preserved across restore when free on the
    /// target runtime.
    pub app_id: u64,
    /// The application (class) name.
    pub name: String,
    /// The owning user; must exist on the restoring runtime.
    pub user: String,
    /// Working directory at checkpoint.
    pub cwd: String,
    /// Resource limits by stable resource name (`u64::MAX` = unlimited).
    pub limits: Vec<(String, u64)>,
    /// Captured home-subtree files.
    pub files: Vec<SnapFile>,
    /// Pending events at park, reduced (recorded, not replayed).
    pub events: Vec<SnapEvent>,
    /// The parked interpreter continuation.
    pub interp: InterpSnapshot,
}

impl AppSnapshot {
    /// Serializes to the versioned byte format (magic + version header,
    /// JSON body).
    ///
    /// # Errors
    ///
    /// [`Error::Io`] if encoding fails.
    pub fn to_bytes(&self) -> Result<Vec<u8>> {
        let body = serde_json::to_vec(self).map_err(|e| Error::Io {
            message: format!("app snapshot encode: {e}"),
        })?;
        let mut out = Vec::with_capacity(APP_SNAPSHOT_MAGIC.len() + 4 + body.len());
        out.extend_from_slice(APP_SNAPSHOT_MAGIC);
        out.extend_from_slice(&self.version.to_le_bytes());
        out.extend_from_slice(&body);
        Ok(out)
    }

    /// Decodes a snapshot produced by [`AppSnapshot::to_bytes`], rejecting
    /// bad magic and unknown versions.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] on a malformed image or unsupported version.
    pub fn from_bytes(bytes: &[u8]) -> Result<AppSnapshot> {
        let header = APP_SNAPSHOT_MAGIC.len() + 4;
        if bytes.len() < header || &bytes[..APP_SNAPSHOT_MAGIC.len()] != APP_SNAPSHOT_MAGIC {
            return Err(Error::Io {
                message: "app snapshot decode: bad magic".into(),
            });
        }
        let mut ver = [0u8; 4];
        ver.copy_from_slice(&bytes[APP_SNAPSHOT_MAGIC.len()..header]);
        let version = u32::from_le_bytes(ver);
        if version != APP_SNAPSHOT_VERSION {
            return Err(Error::Io {
                message: format!(
                    "app snapshot decode: version {version} unsupported \
                     (expected {APP_SNAPSHOT_VERSION})"
                ),
            });
        }
        serde_json::from_slice(&bytes[header..]).map_err(|e| Error::Io {
            message: format!("app snapshot decode: {e}"),
        })
    }
}

/// Recursively captures every regular file under `root` (as the system
/// user — checkpoint is a privileged operation).
fn collect_subtree(rt: &MpRuntime, root: &str) -> Result<Vec<SnapFile>> {
    let system = rt.system_user().id();
    let vfs = rt.vfs();
    let mut out = Vec::new();
    let mut stack = vec![root.to_string()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = vfs.list_dir(&dir, system) else {
            continue; // root may not exist (user without a home)
        };
        for entry in entries {
            let path = if dir.ends_with('/') {
                format!("{dir}{}", entry.name)
            } else {
                format!("{dir}/{}", entry.name)
            };
            match entry.info.kind {
                jmp_vfs::FileKind::Directory => stack.push(path),
                jmp_vfs::FileKind::File => out.push(SnapFile {
                    data: vfs.read(&path, system)?,
                    path,
                }),
            }
        }
    }
    out.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(out)
}

impl MpRuntime {
    /// Checkpoints the running application `id`: requests a safepoint park,
    /// waits for the application to quiesce and be reaped (which drains its
    /// memory ledger), and packages the deposited interpreter continuation
    /// with the application's identity, limits, home subtree, and pending
    /// events into a versioned byte image.
    ///
    /// Requires `RuntimePermission("checkpointApplication")` (host threads
    /// are trusted).
    ///
    /// # Errors
    ///
    /// [`Error::Security`] without the permission; [`Error::Io`] if no such
    /// application is running, or if it finishes without parking (it was
    /// not interpreting an image, or completed before the request landed)
    /// within [`CHECKPOINT_TIMEOUT`].
    pub fn checkpoint_app(&self, id: AppId) -> Result<Vec<u8>> {
        self.vm()
            .check_permission(&Permission::runtime("checkpointApplication"))?;
        let app = self.application(id).ok_or_else(|| Error::Io {
            message: format!("no such application: {}", id.0),
        })?;
        let ctx = Arc::clone(app.context());
        let user = app.user();
        let name = app.name().to_string();
        let cwd = app.cwd();
        // Grab the event queue handle *before* teardown drops it, so the
        // pending tail can be captured after the park.
        let queue = self.toolkit().and_then(|t| t.queue_of(id.0));

        ctx.request_checkpoint();
        let deadline = Instant::now() + CHECKPOINT_TIMEOUT;
        while !matches!(app.status(), AppStatus::Finished(_)) {
            if Instant::now() >= deadline {
                return Err(Error::Io {
                    message: format!("application {} did not park for checkpoint", id.0),
                });
            }
            std::thread::sleep(BLOCK_POLL);
        }
        let interp = ctx.take_snapshot().ok_or_else(|| Error::Io {
            message: format!(
                "application {} finished without parking (not an interpreted image?)",
                id.0
            ),
        })?;
        let mut events = Vec::new();
        if let Some(queue) = queue {
            while let Some(event) = queue.try_pop() {
                events.push(SnapEvent {
                    window: event.window.0,
                    component: event.component.map(|c| c.0),
                    kind: format!("{:?}", event.kind),
                    coalesced: u64::from(event.coalesced),
                });
            }
        }
        let limits = RESOURCE_KINDS
            .iter()
            .map(|kind| (kind.as_str().to_string(), ctx.limits().get(*kind)))
            .collect();
        let snap = AppSnapshot {
            version: APP_SNAPSHOT_VERSION,
            app_id: id.0,
            name,
            user: user.name().to_string(),
            cwd,
            limits,
            files: collect_subtree(self, user.home())?,
            events,
            interp,
        };
        self.vm()
            .obs()
            .vm_metrics()
            .counter("apps.checkpointed")
            .inc();
        snap.to_bytes()
    }

    /// Restores a checkpointed application from `bytes` on this runtime —
    /// the receiving half of migration. Re-creates the captured home
    /// subtree (owned by the user), re-registers and re-verifies the
    /// embedded class image, and launches an application that *resumes* the
    /// parked continuation with the original id (when free here), user,
    /// working directory, and resource limits. The resumed run reproduces
    /// the uninterrupted run's observable output and instruction counts
    /// exactly.
    ///
    /// Requires `RuntimePermission("checkpointApplication")`; the snapshot
    /// user must exist on this runtime.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] on a malformed or version-mismatched image;
    /// [`Error::Security`] without the permission or for an unknown user;
    /// [`Error::Vm`] if the embedded image fails verification here.
    pub fn restore_app(&self, bytes: &[u8]) -> Result<Application> {
        self.vm()
            .check_permission(&Permission::runtime("checkpointApplication"))?;
        let snap = AppSnapshot::from_bytes(bytes)?;
        let user = self.users().lookup(&snap.user)?;
        let system = self.system_user().id();
        for file in &snap.files {
            let dir = jmp_vfs::dirname(&file.path);
            if !dir.is_empty() {
                self.vfs().mkdirs(dir, system)?;
            }
            self.vfs().write(&file.path, &file.data, system)?;
            self.vfs().chown(&file.path, user.id(), system)?;
        }
        let limits: Vec<(ResourceKind, u64)> = snap
            .limits
            .iter()
            .filter_map(|(name, limit)| ResourceKind::parse(name).map(|kind| (kind, *limit)))
            .collect();
        let name = snap.name.clone();
        let app_id = snap.app_id;
        let def = crate::imagerun::resume_image_main(snap.interp, limits)?;
        self.vm()
            .material()
            .register_replacing(def, CodeSource::local("file:/apps/images"));
        let spec = ExecSpec {
            class_name: name,
            args: Vec::new(),
            user,
            cwd: snap.cwd,
            stdin: self.inner.default_stdin.clone(),
            stdout: self.inner.default_stdout.clone(),
            stderr: self.inner.default_stderr.clone(),
            properties: self.vm().properties().overlay(),
            forced_id: Some(AppId(app_id)),
        };
        let app = crate::application::spawn_app(self, spec)?;
        self.vm().obs().vm_metrics().counter("apps.restored").inc();
        Ok(app)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap() -> AppSnapshot {
        let image = jmp_vm::interp::assemble(
            "class T\nmethod main/0 locals=1\n  push_int 1\n  return_value\n",
        )
        .unwrap();
        AppSnapshot {
            version: APP_SNAPSHOT_VERSION,
            app_id: 7,
            name: "T".into(),
            user: "alice".into(),
            cwd: "/home/alice".into(),
            limits: vec![("memory".into(), 1 << 20)],
            files: vec![SnapFile {
                path: "/home/alice/notes.txt".into(),
                data: b"hello".to_vec(),
            }],
            events: vec![SnapEvent {
                window: 3,
                component: None,
                kind: "Paint".into(),
                coalesced: 2,
            }],
            interp: InterpSnapshot {
                version: jmp_vm::SNAPSHOT_VERSION,
                image,
                entry: "main".into(),
                frames: Vec::new(),
                method: 0,
                pc: 0,
                base: 0,
                sp: 1,
                arena: vec![jmp_vm::interp::Value::Int(1)],
                fuel: None,
                instructions: 1,
                dispatches: 1,
                method_calls: 1,
                native_calls: 0,
            },
        }
    }

    fn long_sum_image() -> jmp_vm::interp::ClassImage {
        jmp_vm::interp::assemble(
            "class LongSum\n\
             method main/0 locals=2\n\
             ; sum 0..99999 — long enough that an immediate checkpoint\n\
             ; request parks the run mid-loop at an early safepoint\n\
             push_int 0\n  store 0\n  push_int 0\n  store 1\n\
             loop:\n\
             load 0\n  load 1\n  add\n  store 0\n\
             load 1\n  push_int 1\n  add\n  store 1\n\
             load 1\n  push_int 100000\n  lt\n  jump_if_true loop\n\
             load 0\n  return_value\n",
        )
        .expect("assembles")
    }

    #[test]
    fn checkpoint_restore_on_a_second_vm_reproduces_the_plain_run() {
        // The uninterrupted run, for the differential baseline.
        let plain = MpRuntime::builder().user("alice", "pw").build().unwrap();
        let app = plain.launch_image("alice", long_sum_image(), &[]).unwrap();
        assert_eq!(app.wait_for().unwrap(), 0);
        let expected = "=> 4999950000";
        assert!(plain.console_output().contains(expected));
        plain.shutdown();

        // Checkpoint mid-loop on VM one. The request lands before the
        // interpreter reaches its first safepoint, so the park is
        // deterministic and genuinely mid-method.
        let rt1 = MpRuntime::builder().user("alice", "pw").build().unwrap();
        let system = rt1.system_user().id();
        rt1.vfs()
            .write("/home/alice/notes.txt", b"carry me", system)
            .unwrap();
        let app = rt1.launch_image("alice", long_sum_image(), &[]).unwrap();
        let id = app.id();
        let ctx = Arc::clone(app.context());
        ctx.limits().set(ResourceKind::Memory, 64 << 20);
        let bytes = rt1.checkpoint_app(id).unwrap();
        assert!(
            rt1.await_idle(Duration::from_secs(5)),
            "the parked application is reaped"
        );
        assert!(ctx.ledger().is_drained(), "ledger drains after checkpoint");
        assert!(
            !rt1.console_output().contains("=>"),
            "the parked run printed nothing"
        );
        rt1.shutdown();

        // Restore on VM two: identity, limits, files, and output carry.
        let rt2 = MpRuntime::builder().user("alice", "pw").build().unwrap();
        let restored = rt2.restore_app(&bytes).unwrap();
        assert_eq!(restored.id(), id, "the application id migrates");
        assert_eq!(restored.user().name(), "alice");
        assert_eq!(restored.wait_for().unwrap(), 0);
        // Read the limit after exit: the restored main applies it on startup.
        assert_eq!(
            restored.context().limits().get(ResourceKind::Memory),
            64 << 20,
            "checkpointed limits override the target policy"
        );
        assert!(
            rt2.console_output().contains(expected),
            "restored output matches the uninterrupted run; got: {}",
            rt2.console_output()
        );
        assert_eq!(
            rt2.vfs().read("/home/alice/notes.txt", system).unwrap(),
            b"carry me",
            "the home subtree migrates"
        );
        rt2.shutdown();
    }

    #[test]
    fn restore_on_the_same_vm_allocates_a_fresh_id_when_taken() {
        let rt = MpRuntime::builder().user("bob", "pw").build().unwrap();
        let app = rt.launch_image("bob", long_sum_image(), &[]).unwrap();
        let id = app.id();
        let bytes = rt.checkpoint_app(id).unwrap();
        assert!(rt.await_idle(Duration::from_secs(5)));

        // First restore gets the original id back (it is free again);
        // checkpointing it again and double-restoring forces a collision.
        let first = rt.restore_app(&bytes).unwrap();
        assert_eq!(first.id(), id);
        assert_eq!(first.wait_for().unwrap(), 0);
        assert!(rt.await_idle(Duration::from_secs(5)));
        let a = rt.restore_app(&bytes).unwrap();
        let b = rt.restore_app(&bytes).unwrap();
        assert_ne!(a.id(), b.id(), "a taken id falls back to fresh allocation");
        a.wait_for().unwrap();
        b.wait_for().unwrap();
        assert!(
            rt.console_output().matches("=> 4999950000").count() >= 3,
            "every restore completes the sum"
        );
        rt.shutdown();
    }

    #[test]
    fn app_snapshot_bytes_roundtrip() {
        let s = snap();
        let bytes = s.to_bytes().unwrap();
        assert_eq!(&bytes[..APP_SNAPSHOT_MAGIC.len()], APP_SNAPSHOT_MAGIC);
        let back = AppSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn app_snapshot_rejects_bad_magic_and_version() {
        let s = snap();
        let mut bytes = s.to_bytes().unwrap();
        bytes[0] = b'X';
        assert!(AppSnapshot::from_bytes(&bytes).is_err());
        let mut vbytes = s.to_bytes().unwrap();
        vbytes[APP_SNAPSHOT_MAGIC.len()] = 99;
        let err = AppSnapshot::from_bytes(&vbytes).unwrap_err();
        assert!(err.to_string().contains("version"));
    }
}
