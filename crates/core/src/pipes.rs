//! Application-level pipes (paper §5.5: "we were able to easily implement
//! input/output redirection and pipes between applications").
//!
//! A pipe created here is *owned* by the creating application: both ends
//! carry the application's [`IoToken`](jmp_vm::io::IoToken) and are
//! registered for closing at teardown. The shell hands the ends to the
//! applications of a pipeline as their standard streams; per the paper's
//! rule, those applications may not close them — the creating shell does
//! (§5.1/§6.1).

use std::sync::Arc;

use jmp_vm::io::{pipe_owned, InStream, OutStream, DEFAULT_PIPE_CAPACITY};

use crate::application::Application;
use crate::error::Error;
use crate::Result;

/// Creates a pipe owned by the current application; returns the write end
/// and the read end.
///
/// # Errors
///
/// [`Error::NotAnApplication`] off-application.
pub fn make_pipe() -> Result<(OutStream, InStream)> {
    make_pipe_with_capacity(DEFAULT_PIPE_CAPACITY)
}

/// As [`make_pipe`], with an explicit buffer capacity.
///
/// # Errors
///
/// [`Error::NotAnApplication`] off-application; a quota error if charging
/// the ring buffer to the application's `memory` ledger fails.
pub fn make_pipe_with_capacity(capacity: usize) -> Result<(OutStream, InStream)> {
    let app = Application::current().ok_or(Error::NotAnApplication)?;
    let rt = app.runtime();
    // Bytes through the pipe are charged to the creating application's
    // `pipe.bytes` counter (summed VM-wide by the hub rollup), and the
    // VM's flight recorder links write→read spans across the pipe.
    let bytes = rt.as_ref().map(|rt| {
        rt.vm()
            .obs()
            .app_registry(app.id().0, app.name())
            .counter("pipe.bytes")
    });
    let recorder = rt.as_ref().map(|rt| rt.vm().obs().recorder().clone());
    // The pipe is *owned*: every buffered byte is charged against the
    // creating application's `pipe.bytes` quota until the reader drains it,
    // and the ring allocation itself is charged to its `memory` quota.
    let (writer, reader) = pipe_owned(capacity, bytes, recorder, Some(Arc::clone(app.context())))?;
    let out = OutStream::from_pipe(writer, app.io_token());
    let input = InStream::from_pipe(reader, app.io_token());
    app.register_owned_out(out.clone())?;
    app.register_owned_in(input.clone())?;
    Ok((out, input))
}
