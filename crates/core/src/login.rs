//! Logging on to the runtime (paper §5.2, Feature 4).
//!
//! "Log-in now works similar to UNIX's `login` program. It has the
//! necessary privileges and resets its own running user-id to be the one
//! that it has successfully authenticated... it is not necessary to have the
//! login program be executed by an all-powerful superuser. All we need to do
//! is grant the login program the privilege to set its own user. This can be
//! done through code source-based security policies, since it is the
//! *program* that is granted the privilege, not the user that runs it."
//!
//! Accordingly, [`login`] authenticates against the
//! [`UserRegistry`](jmp_security::UserRegistry) and then performs
//! `Application::set_user`, which demands `RuntimePermission("setUser")` —
//! grant that permission to the login program's code source in the policy.

use jmp_security::User;

use crate::application::Application;
use crate::error::Error;
use crate::runtime::MpRuntime;
use crate::Result;

/// Authenticates `name`/`password` and, on success, makes `name` the
/// running user of the **current application**, changing its working
/// directory to the user's home.
///
/// # Errors
///
/// [`Error::AuthenticationFailed`] for a bad name or password (collapsed, so
/// callers cannot probe which) — unless the caller lacks
/// `RuntimePermission("setUser")`, which surfaces as [`Error::Security`]
/// first; [`Error::NotAnApplication`] off-application.
pub fn login(name: &str, password: &str) -> Result<User> {
    let rt = MpRuntime::current().ok_or(Error::NotAnApplication)?;
    let user = rt
        .users()
        .authenticate(name, password)
        .map_err(|_| Error::AuthenticationFailed { user: name.into() })?;
    Application::set_user(user.clone())?;
    // Land in the home directory, like a Unix login shell; tolerate a
    // missing home (the account may be home-less, e.g. `system`).
    let _ = Application::set_cwd(user.home());
    Ok(user)
}

/// Changes `name`'s password after verifying the old one.
///
/// # Errors
///
/// [`Error::AuthenticationFailed`] if the old password is wrong;
/// [`Error::NotAnApplication`] off-application.
pub fn change_password(name: &str, old: &str, new: &str) -> Result<()> {
    let rt = MpRuntime::current().ok_or(Error::NotAnApplication)?;
    rt.users()
        .change_password(name, old, new)
        .map_err(|_| Error::AuthenticationFailed { user: name.into() })
}
