//! Launching interpreted class images as first-class applications.
//!
//! The paper's mobile code is a serialized [`ClassImage`] interpreted under
//! the owning application's authority. This module wires an image into the
//! ordinary application lifecycle: [`MpRuntime::launch_image`] registers
//! the image as runnable class material whose native `main` interprets it
//! on the application's main thread, with three memory-governance hooks the
//! interpreter alone cannot provide:
//!
//! * the pre-decoded image's footprint is charged to the application's
//!   `memory` ledger as *resident* bytes, released only at reap;
//! * the interpreter runs on a thread carrying the application's
//!   [`AppContext`](jmp_vm::AppContext), so its value arenas come from (and
//!   return to) the per-application arena pool and every heap sample bills
//!   the application;
//! * a checkpoint request against the context parks the interpreter at the
//!   next safepoint; the run then ends *cleanly* (the continuation is on
//!   the context, not lost in an error path) and the application exits,
//!   leaving the reaper to reclaim its memory in O(1).
//!
//! Restores re-enter through the same door: [`resume_image_main`] builds a
//! `main` that resumes a deposited
//! [`InterpSnapshot`](jmp_vm::InterpSnapshot) instead of starting fresh.

use std::sync::Arc;

use jmp_security::CodeSource;
use jmp_vm::interp::{ClassImage, CompiledImage, Interpreter, NativeHost, Value};
use jmp_vm::{ClassDef, InterpSnapshot, VmError};

use crate::application::Application;
use crate::runtime::MpRuntime;
use crate::{files, jsystem, Result};

/// Code-source URL under which launched images are registered.
const IMAGE_SOURCE: &str = "file:/apps/images";

/// The native services exposed to interpreted application images: console
/// output through the application's own `System` streams and checked file
/// access — every call performs the ordinary security checks with the
/// image's frame on the stack. Pure stdlib helpers come from
/// [`jmp_vm::interp::invoke_pure`].
pub struct StdImageHost;

impl NativeHost for StdImageHost {
    fn invoke(&self, name: &str, args: Vec<Value>) -> jmp_vm::Result<Value> {
        if let Some(result) = jmp_vm::interp::invoke_pure(name, &args) {
            return result;
        }
        match (name, args.as_slice()) {
            ("print", [value]) => {
                jsystem::print(&value.display_string())?;
                Ok(Value::Null)
            }
            ("println", [value]) => {
                jsystem::println(&value.display_string())?;
                Ok(Value::Null)
            }
            ("read_file", [Value::Str(path)]) => {
                let text = files::read_string(path)?;
                Ok(Value::str(text))
            }
            ("write_file", [Value::Str(path), content]) => {
                files::write(path, content.display_string().as_bytes())?;
                Ok(Value::Null)
            }
            ("delete_file", [Value::Str(path)]) => {
                files::delete(path)?;
                Ok(Value::Null)
            }
            ("get_property", [Value::Str(key)]) => match jsystem::property(key)? {
                Some(v) => Ok(Value::str(v)),
                None => Ok(Value::Null),
            },
            _ => Err(VmError::trap(format!(
                "unknown native {name}/{}",
                args.len()
            ))),
        }
    }
}

/// The shared body of a fresh run and a resumed run: charge the image
/// footprint as resident memory, interpret on the current (application)
/// thread, print the result to the application's stdout, and treat a
/// checkpoint park as a clean exit (the continuation is already deposited
/// on the application's context).
fn interpret(
    compiled: &Arc<CompiledImage>,
    args: &[String],
    resume: Option<&InterpSnapshot>,
) -> jmp_vm::Result<()> {
    if let Some(ctx) = jmp_vm::thread::current_app_context() {
        // Resident for the application's lifetime: released by
        // `reclaim_memory` at reap, not when `main` returns.
        ctx.charge_resident(compiled.footprint_bytes())?;
    }
    let host: Arc<dyn NativeHost> = Arc::new(StdImageHost);
    let interpreter = Interpreter::from_compiled(Arc::clone(compiled), host);
    let outcome = match resume {
        Some(snap) => interpreter.resume(snap),
        None => {
            let values: Vec<Value> = args.iter().map(Value::str).collect();
            interpreter.run("main", values)
        }
    };
    match outcome {
        Ok(value) => {
            // The observable output a restored run must reproduce exactly.
            jsystem::println(&format!("=> {}", value.display_string()))?;
            Ok(())
        }
        // Parked for checkpoint: the snapshot sits on the AppContext; the
        // application exits cleanly and the checkpointer collects it.
        Err(VmError::Checkpointed) => Ok(()),
        Err(err) => Err(err),
    }
}

/// Builds runnable class material for a fresh run of `image`.
///
/// # Errors
///
/// [`VmError::Verification`] if the image is rejected.
pub(crate) fn image_main(image: ClassImage) -> Result<Arc<ClassDef>> {
    let name = image.name.clone();
    let probe = ClassDef::builder(&name).image(image.clone()).build();
    let compiled = probe.compiled().expect("material carries an image")?;
    Ok(ClassDef::builder(&name)
        .image(image)
        .main(move |args| interpret(&compiled, &args, None))
        .build())
}

/// Builds runnable class material that resumes `snap` instead of starting
/// `main` from scratch. The snapshot's embedded image is recompiled here —
/// deterministically, so frame pcs and method indices stay valid — and
/// re-verified on this VM before anything runs. `limits` (the checkpointed
/// application's resource limits) is re-applied to the new application's
/// context before the first charge, overriding whatever the target
/// runtime's policy would grant, so a migrated application keeps its
/// original ceilings.
///
/// # Errors
///
/// [`VmError::Verification`] if the embedded image is rejected.
pub(crate) fn resume_image_main(
    snap: InterpSnapshot,
    limits: Vec<(jmp_vm::ResourceKind, u64)>,
) -> Result<Arc<ClassDef>> {
    let name = snap.image.name.clone();
    let probe = ClassDef::builder(&name).image(snap.image.clone()).build();
    let compiled = probe.compiled().expect("material carries an image")?;
    let image = snap.image.clone();
    Ok(ClassDef::builder(&name)
        .image(image)
        .main(move |_args| {
            if let Some(ctx) = jmp_vm::thread::current_app_context() {
                for (kind, limit) in &limits {
                    ctx.limits().set(*kind, *limit);
                }
            }
            interpret(&compiled, &[], Some(&snap))
        })
        .build())
}

impl MpRuntime {
    /// Launches `image` as a new application owned by `user_name`,
    /// interpreting its `main` with `args` (as string values) under the
    /// application's authority and memory quota. The image's pre-decoded
    /// footprint is charged to the application's `memory` ledger for its
    /// whole lifetime; the final value of `main` is printed to the
    /// application's stdout as `=> <value>`.
    ///
    /// Registers (or replaces) class material named after the image, then
    /// launches it like any other application.
    ///
    /// # Errors
    ///
    /// [`crate::Error::Vm`] wrapping a verification failure for a bad
    /// image; unknown users as [`MpRuntime::launch_as`].
    pub fn launch_image(
        &self,
        user_name: &str,
        image: ClassImage,
        args: &[&str],
    ) -> Result<Application> {
        let def = image_main(image)?;
        let name = def.name().to_string();
        self.vm()
            .material()
            .register_replacing(def, CodeSource::local(IMAGE_SOURCE));
        self.launch_as(user_name, &name, args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jmp_vm::interp::assemble;
    use jmp_vm::ResourceKind;

    fn sum_image() -> ClassImage {
        assemble(
            "class Sum\n\
             method main/0 locals=2\n\
             ; sum 0..99 into local 0, counter in local 1\n\
             push_int 0\n  store 0\n  push_int 0\n  store 1\n\
             loop:\n\
             load 0\n  load 1\n  add\n  store 0\n\
             load 1\n  push_int 1\n  add\n  store 1\n\
             load 1\n  push_int 100\n  lt\n  jump_if_true loop\n\
             load 0\n  return_value\n",
        )
        .expect("assembles")
    }

    #[test]
    fn launch_image_runs_to_completion_and_prints_the_result() {
        let rt = MpRuntime::builder().user("alice", "pw").build().unwrap();
        let app = rt.launch_image("alice", sum_image(), &[]).unwrap();
        assert_eq!(app.wait_for().unwrap(), 0);
        assert!(
            rt.applications().is_empty() || rt.await_idle(std::time::Duration::from_secs(5)),
            "the application is reaped"
        );
        assert!(
            rt.console_output().contains("=> 4950"),
            "got: {}",
            rt.console_output()
        );
        rt.shutdown();
    }

    #[test]
    fn image_footprint_is_charged_resident_and_reclaimed_at_reap() {
        let rt = MpRuntime::builder().user("bob", "pw").build().unwrap();
        let app = rt.launch_image("bob", sum_image(), &[]).unwrap();
        let ctx = Arc::clone(app.context());
        app.wait_for().unwrap();
        assert!(
            rt.await_idle(std::time::Duration::from_secs(5)),
            "the application is reaped"
        );
        assert_eq!(
            ctx.ledger().get(ResourceKind::Memory),
            0,
            "resident image bytes drain at reap"
        );
        assert!(ctx.ledger().is_drained());
        rt.shutdown();
    }
}
