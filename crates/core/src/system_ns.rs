//! `jsystem`: the application-facing facade of the `System` class.
//!
//! In the paper's design (§5.5, Fig 5) every application sees *its own* copy
//! of the `System` class — same material, different defining loader — whose
//! statics hold that application's standard streams and (application-level)
//! security manager, while the truly JVM-wide state lives in a single shared
//! `SystemProperties` class.
//!
//! These functions resolve "the current application's `System` class" and
//! read/write its statics, so application code keeps the familiar API
//! (`System.out`, `System.getProperty`, `System.exit`) while getting
//! per-application behavior.

use std::sync::Arc;

use jmp_security::{Permission, PropertyActions};
use jmp_vm::io::{InStream, OutStream};
use jmp_vm::{Class, Properties, SecurityManager};

use crate::application::Application;
use crate::error::Error;
use crate::runtime::{MpRuntime, SYSTEM_PROPERTIES_CLASS};
use crate::Result;

fn current_app() -> Result<Application> {
    Application::current().ok_or(Error::NotAnApplication)
}

/// The current application's own definition of the `System` class. Two
/// applications get classes with the same name but different identity —
/// compare with [`Class::same_class`].
///
/// # Errors
///
/// [`Error::NotAnApplication`] off-application.
pub fn system_class() -> Result<Class> {
    Ok(current_app()?.system_class().clone())
}

/// The current application's `System.in`.
///
/// # Errors
///
/// [`Error::NotAnApplication`] off-application.
pub fn stdin() -> Result<InStream> {
    Ok(current_app()?.stdin())
}

/// The current application's `System.out`.
///
/// # Errors
///
/// [`Error::NotAnApplication`] off-application.
pub fn stdout() -> Result<OutStream> {
    Ok(current_app()?.stdout())
}

/// The current application's `System.err`.
///
/// # Errors
///
/// [`Error::NotAnApplication`] off-application.
pub fn stderr() -> Result<OutStream> {
    Ok(current_app()?.stderr())
}

/// Prints a line to the current application's `System.out`.
///
/// # Errors
///
/// [`Error::NotAnApplication`] off-application; stream errors otherwise.
pub fn println(text: &str) -> Result<()> {
    stdout()?.println(text).map_err(Error::from)
}

/// Prints to the current application's `System.out` without a newline.
///
/// # Errors
///
/// As [`println()`].
pub fn print(text: &str) -> Result<()> {
    stdout()?.print(text).map_err(Error::from)
}

/// Prints a line to the current application's `System.err`.
///
/// # Errors
///
/// As [`println()`].
pub fn eprintln(text: &str) -> Result<()> {
    stderr()?.println(text).map_err(Error::from)
}

/// The shared JVM-wide system properties — `System.getProperties()`.
///
/// Resolved through the current application's class loader, which *delegates*
/// (no re-load) for `SystemProperties`, so every application reaches the
/// same class and the same table (Fig 5). Requires
/// `PropertyPermission("*", "read")`.
///
/// # Errors
///
/// [`Error::Security`] without the permission;
/// [`Error::NotAnApplication`] off-application.
pub fn properties() -> Result<Properties> {
    let app = current_app()?;
    let rt = MpRuntime::current().ok_or(Error::NotAnApplication)?;
    rt.vm()
        .check_permission(&Permission::property("*", PropertyActions::READ))?;
    shared_table(&app)
}

fn shared_table(app: &Application) -> Result<Properties> {
    let class = app.loader().load_class(SYSTEM_PROPERTIES_CLASS)?;
    class
        .static_as::<Properties>("table")
        .map(|t| (*t).clone())
        .ok_or_else(|| Error::Io {
            message: "SystemProperties table not initialized".into(),
        })
}

/// Reads one system property — `System.getProperty(key)`. Requires
/// `PropertyPermission(key, "read")`.
///
/// # Errors
///
/// [`Error::Security`] without the permission;
/// [`Error::NotAnApplication`] off-application.
pub fn property(key: &str) -> Result<Option<String>> {
    let app = current_app()?;
    let rt = MpRuntime::current().ok_or(Error::NotAnApplication)?;
    rt.vm()
        .check_permission(&Permission::property(key, PropertyActions::READ))?;
    Ok(shared_table(&app)?.get(key))
}

/// Writes one system property — `System.setProperty(key, value)`. This is
/// JVM-wide state (all applications observe it); requires
/// `PropertyPermission(key, "write")`.
///
/// # Errors
///
/// [`Error::Security`] without the permission;
/// [`Error::NotAnApplication`] off-application.
pub fn set_property(key: &str, value: &str) -> Result<Option<String>> {
    let app = current_app()?;
    let rt = MpRuntime::current().ok_or(Error::NotAnApplication)?;
    rt.vm()
        .check_permission(&Permission::property(key, PropertyActions::WRITE))?;
    Ok(shared_table(&app)?.set(key, value))
}

/// Installs an *application* security manager into the current
/// application's `System` copy — `System.setSecurityManager`.
///
/// Per the paper (§5.6): applications can set their own security managers,
/// "however, those security managers will never be consulted by system
/// code, because the system code that performs sensitive operations sees its
/// own version of the `System` class that holds the system security
/// manager." Application SMs are for application-specific checks only; no
/// permission is demanded because the written slot is application-private
/// state.
///
/// # Errors
///
/// [`Error::NotAnApplication`] off-application.
pub fn set_security_manager(sm: Arc<dyn SecurityManager>) -> Result<()> {
    let app = current_app()?;
    app.system_class()
        .set_static("securityManager", Arc::new(sm));
    Ok(())
}

/// The current application's own security manager, if it installed one.
///
/// # Errors
///
/// [`Error::NotAnApplication`] off-application.
pub fn security_manager() -> Result<Option<Arc<dyn SecurityManager>>> {
    let app = current_app()?;
    Ok(app
        .system_class()
        .static_as::<Arc<dyn SecurityManager>>("securityManager")
        .map(|sm| (*sm).clone()))
}

/// `System.exit(code)`, with the multi-processing semantics the paper
/// proposes for §6.3: it exits the **current application**, not the VM.
/// (Stopping the VM itself is [`jmp_vm::Vm::exit`], which demands
/// `RuntimePermission("exitVM")`.)
///
/// # Errors
///
/// [`Error::NotAnApplication`] off-application.
pub fn exit(code: i32) -> Result<()> {
    Application::exit(code)
}
