//! A fixed-shard concurrent map — the control-plane registry substrate.
//!
//! The runtime's three registries (`AppId → Application`, `GroupId → AppId`,
//! shared-object names) used to live in single `RwLock<HashMap>`s: every
//! spawn, reap, lookup and `ps` queued on one lock, so a 10k-application
//! storm serialized the whole control plane. [`ShardedMap`] splits the key
//! space over [`SHARDS`] independent locks chosen by key hash:
//!
//! * point operations (`get`/`insert`/`remove`) touch exactly one shard;
//! * whole-map reads (`values`, `len`) iterate shard by shard, so a `ps`
//!   sweep never holds a lock that blocks a spawn on another shard;
//! * check-then-act sequences on one key ([`ShardedMap::with_shard_mut`])
//!   stay atomic because a key maps to exactly one shard.
//!
//! The trade-off is deliberate and identical to `java.util.concurrent`'s
//! striped maps: cross-shard reads are *not* a consistent snapshot. Every
//! existing caller already tolerated that (the old code released the global
//! lock between collecting and using), and the per-app exactly-once
//! invariants (reap vs `vmstat`) are enforced per shard, where one lock
//! still covers the whole check.

use std::borrow::Borrow;
use std::collections::hash_map::RandomState;
use std::collections::HashMap;
use std::hash::{BuildHasher, Hash};

use parking_lot::RwLock;

/// Shard count. A power of two so the hash folds with a mask; 16 is plenty
/// to make lock collisions rare at the concurrency the VM supports while
/// keeping whole-map sweeps cheap.
pub(crate) const SHARDS: usize = 16;

/// A `HashMap` split over [`SHARDS`] rwlocks, keyed by key hash.
pub(crate) struct ShardedMap<K, V> {
    shards: [RwLock<HashMap<K, V>>; SHARDS],
    hasher: RandomState,
}

impl<K: Hash + Eq, V> ShardedMap<K, V> {
    pub(crate) fn new() -> ShardedMap<K, V> {
        ShardedMap {
            shards: std::array::from_fn(|_| RwLock::new(HashMap::new())),
            hasher: RandomState::new(),
        }
    }

    fn shard<Q>(&self, key: &Q) -> &RwLock<HashMap<K, V>>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let hash = self.hasher.hash_one(key);
        &self.shards[(hash as usize) & (SHARDS - 1)]
    }

    pub(crate) fn insert(&self, key: K, value: V) -> Option<V> {
        self.shard(&key).write().insert(key, value)
    }

    pub(crate) fn remove<Q>(&self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.shard(key).write().remove(key)
    }

    pub(crate) fn get<Q>(&self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
        V: Clone,
    {
        self.shard(key).read().get(key).cloned()
    }

    /// Total entries, summed shard by shard (not a consistent snapshot).
    pub(crate) fn len(&self) -> usize {
        self.shards.iter().map(|shard| shard.read().len()).sum()
    }

    /// Every value, collected shard by shard — the `ps` sweep. No lock is
    /// held across shards, so concurrent inserts on other shards proceed.
    pub(crate) fn values(&self) -> Vec<V>
    where
        V: Clone,
    {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(shard.read().values().cloned());
        }
        out
    }

    /// Every key, collected shard by shard.
    pub(crate) fn keys(&self) -> Vec<K>
    where
        K: Clone,
    {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(shard.read().keys().cloned());
        }
        out
    }

    /// Runs `f` with the write-locked shard holding `key` — for
    /// check-then-act sequences (publish's ownership test + insert) that
    /// must be atomic per key.
    pub(crate) fn with_shard_mut<Q, R>(&self, key: &Q, f: impl FnOnce(&mut HashMap<K, V>) -> R) -> R
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        f(&mut self.shard(key).write())
    }

    /// Keeps only entries satisfying the predicate, one shard at a time;
    /// returns how many entries were removed.
    pub(crate) fn retain(&self, mut keep: impl FnMut(&K, &mut V) -> bool) -> usize {
        let mut removed = 0;
        for shard in &self.shards {
            let mut guard = shard.write();
            let before = guard.len();
            guard.retain(|k, v| keep(k, v));
            removed += before - guard.len();
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_operations_roundtrip() {
        let map: ShardedMap<u64, String> = ShardedMap::new();
        assert_eq!(map.len(), 0);
        for i in 0..100u64 {
            assert!(map.insert(i, format!("v{i}")).is_none());
        }
        assert_eq!(map.len(), 100);
        assert_eq!(map.get(&42), Some("v42".to_string()));
        assert_eq!(map.remove(&42), Some("v42".to_string()));
        assert_eq!(map.get(&42), None);
        assert_eq!(map.len(), 99);
        let mut values = map.values();
        values.sort();
        assert_eq!(values.len(), 99);
    }

    #[test]
    fn borrowed_key_lookups_hit_the_same_shard() {
        let map: ShardedMap<String, u32> = ShardedMap::new();
        map.insert("alpha".to_string(), 1);
        // &str lookups must hash onto the same shard as the owned String.
        assert_eq!(map.get("alpha"), Some(1));
        assert_eq!(map.remove("alpha"), Some(1));
        assert_eq!(map.get("alpha"), None);
    }

    #[test]
    fn with_shard_mut_is_atomic_per_key() {
        let map: ShardedMap<String, u32> = ShardedMap::new();
        let inserted = map.with_shard_mut("n", |table| {
            if table.contains_key("n") {
                false
            } else {
                table.insert("n".to_string(), 7);
                true
            }
        });
        assert!(inserted);
        assert!(!map.with_shard_mut("n", |table| {
            if table.contains_key("n") {
                false
            } else {
                table.insert("n".to_string(), 8);
                true
            }
        }));
        assert_eq!(map.get("n"), Some(7));
    }

    #[test]
    fn retain_counts_removals_across_shards() {
        let map: ShardedMap<u64, u64> = ShardedMap::new();
        for i in 0..64u64 {
            map.insert(i, i);
        }
        let removed = map.retain(|_, v| *v % 2 == 0);
        assert_eq!(removed, 32);
        assert_eq!(map.len(), 32);
        let mut keys = map.keys();
        keys.sort_unstable();
        assert!(keys.iter().all(|k| k % 2 == 0));
    }

    #[test]
    fn concurrent_inserts_and_sweeps_do_not_lose_entries() {
        let map = std::sync::Arc::new(ShardedMap::<u64, u64>::new());
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let map = std::sync::Arc::clone(&map);
            handles.push(std::thread::spawn(move || {
                for i in 0..500u64 {
                    map.insert(t * 1_000 + i, i);
                    if i % 64 == 0 {
                        // Sweeps interleave with inserts without blocking them.
                        let _ = map.values().len();
                    }
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(map.len(), 4_000);
    }
}
