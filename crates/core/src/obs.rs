//! Permission-gated read-out of the VM's observability hub.
//!
//! Writing into the hub is free — the runtime instruments itself everywhere.
//! Reading it back *out* is an information flow between mutually-suspicious
//! applications (what Alice's editor is doing is none of Bob's business),
//! so every function here first passes a permission check through the same
//! stack-inspecting access controller the hub observes:
//!
//! * `RuntimePermission("readMetrics")` — [`top_rows`], [`vm_snapshot`],
//!   [`vm_rollup`], [`watchdog_rows`];
//! * `RuntimePermission("readAuditLog")` — [`audit_records`];
//! * `RuntimePermission("traceVm")` — [`set_tracing`], [`tracing_enabled`],
//!   [`chrome_trace`] (the flight recorder sees *every* application's spans,
//!   so both steering it and exporting it are privileged);
//! * `RuntimePermission("readProfile")` — [`set_profiling`],
//!   [`profiling_enabled`], [`profile_report`], [`profile_flame`],
//!   [`reset_profile`] (opcode mixes and sampled stacks reveal what another
//!   application is computing, so the profiler read-out is privileged too);
//! * `RuntimePermission("readDemands")` — [`demand_rows`] (the demand ledger
//!   names every permission every application exercised: a capability map of
//!   the whole VM);
//! * `RuntimePermission("inferPolicy")` — [`inferred_policy`],
//!   [`policy_diff`], [`reset_demands`], [`set_demand_recording`] (deriving
//!   or clearing policy evidence shapes future policy decisions, a step
//!   beyond merely reading it).
//!
//! All are typically granted per *user* (`grant user "admin" { permission
//! runtime readMetrics; }`), exercised through the §5.3 mechanism by any
//! program whose code source holds `exerciseUserPermissions`. A denied
//! read-out is itself a denial: it lands in the audit trail like any other.

use jmp_obs::{AuditRecord, DemandRow, HubSnapshot, ProfileReport, RegistrySnapshot, WatchdogRow};
use jmp_security::{ObservedDemand, Permission, Policy, PolicyDiffRow};
use jmp_vm::{ResourceKind, RESOURCE_KINDS};

use crate::runtime::MpRuntime;
use crate::Result;

/// One application's row in the `top` table: identity, point-in-time
/// resource gauges, and cumulative activity counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopRow {
    /// Application id.
    pub id: u64,
    /// Main class name.
    pub name: String,
    /// Running user.
    pub user: String,
    /// Live threads in the application's group.
    pub threads: i64,
    /// Open windows owned by the application.
    pub windows: i64,
    /// Streams the application opened and still owns.
    pub streams: i64,
    /// Events waiting in the application's AWT queue.
    pub queue_depth: i64,
    /// Permission checks charged to the application.
    pub checks: u64,
    /// Denied permission checks.
    pub denied: u64,
    /// GUI events dispatched to the application's listeners.
    pub dispatched: u64,
    /// Classes the application's loader defined (including re-loads).
    pub classes: u64,
    /// Bytes written through pipes the application created.
    pub pipe_bytes: u64,
}

/// One application's row in the resource-ledger table (the shell's `ps -l`
/// and the `vmstat` ledger section): live usage against quota for every
/// [`ResourceKind`], read straight off the application's
/// [`jmp_vm::AppContext`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LedgerRow {
    /// Application id.
    pub id: u64,
    /// Main class name.
    pub name: String,
    /// Running user.
    pub user: String,
    /// `(resource, used, limit)` in [`RESOURCE_KINDS`] order; a limit of
    /// `u64::MAX` means unlimited.
    pub resources: Vec<(ResourceKind, u64, u64)>,
    /// Charges denied so far (quota breaches).
    pub breaches: u64,
}

/// The per-application resource ledgers, one row per running application,
/// sorted by id.
///
/// # Errors
///
/// [`crate::Error::Security`] unless the caller holds
/// `RuntimePermission("readMetrics")` — another application's resource
/// footprint is as private as its metrics.
pub fn ledger_rows(rt: &MpRuntime) -> Result<Vec<LedgerRow>> {
    rt.vm()
        .check_permission(&Permission::runtime("readMetrics"))?;
    Ok(rt
        .applications()
        .iter()
        .map(|app| {
            let ctx = app.context();
            LedgerRow {
                id: app.id().0,
                name: app.name().to_string(),
                user: app.user().name().to_string(),
                resources: RESOURCE_KINDS
                    .iter()
                    .map(|&kind| (kind, ctx.ledger().get(kind), ctx.limits().get(kind)))
                    .collect(),
                breaches: ctx.breaches(),
            }
        })
        .collect())
}

/// Re-computes the point-in-time gauges the hub cannot maintain eventfully
/// (thread counts, open windows, queue depths) from the live runtime tables.
fn refresh_gauges(rt: &MpRuntime) {
    let hub = rt.vm().obs();
    let vm_metrics = hub.vm_metrics();
    vm_metrics
        .gauge("threads.live")
        .set(rt.vm().thread_count() as i64);
    vm_metrics
        .gauge("apps.running")
        .set(rt.application_count() as i64);
    if let Some(toolkit) = rt.toolkit() {
        vm_metrics
            .gauge("windows.open")
            .set(toolkit.window_count() as i64);
    }
    for app in rt.applications() {
        // `existing_app_registry`, not the get-or-create variant: an
        // application reaped between the sweep above and this point has had
        // its registry retired; re-creating it would resurrect a drained
        // ledger and double-count the app in the rollup (live *and* retired).
        let Some(registry) = hub.existing_app_registry(app.id().0) else {
            continue;
        };
        registry
            .gauge("threads.live")
            .set(app.threads().len() as i64);
        registry
            .gauge("streams.open")
            .set(app.owned_stream_count() as i64);
        if let Some(toolkit) = rt.toolkit() {
            registry
                .gauge("windows.open")
                .set(toolkit.windows_of_app(app.id().0).len() as i64);
            registry.gauge("gui.queue_depth").set(
                toolkit
                    .queue_of(app.id().0)
                    .map_or(0, |queue| queue.len() as i64),
            );
        }
    }
}

/// The live per-application metric table behind the shell's `top` builtin,
/// one row per running application, sorted by id.
///
/// # Errors
///
/// [`crate::Error::Security`] unless the caller holds
/// `RuntimePermission("readMetrics")`.
pub fn top_rows(rt: &MpRuntime) -> Result<Vec<TopRow>> {
    rt.vm()
        .check_permission(&Permission::runtime("readMetrics"))?;
    refresh_gauges(rt);
    let hub = rt.vm().obs();
    let gauge = |snap: &RegistrySnapshot, name: &str| snap.gauges.get(name).copied().unwrap_or(0);
    let counter =
        |snap: &RegistrySnapshot, name: &str| snap.counters.get(name).copied().unwrap_or(0);
    Ok(rt
        .applications()
        .iter()
        .filter_map(|app| {
            // Skip applications reaped since the sweep: their registries are
            // retired, and get-or-create here would resurrect them (see
            // `refresh_gauges`).
            let snap = hub.existing_app_registry(app.id().0)?.snapshot();
            Some(TopRow {
                id: app.id().0,
                name: app.name().to_string(),
                user: app.user().name().to_string(),
                threads: gauge(&snap, "threads.live"),
                windows: gauge(&snap, "windows.open"),
                streams: gauge(&snap, "streams.open"),
                queue_depth: gauge(&snap, "gui.queue_depth"),
                checks: counter(&snap, "security.checks"),
                denied: counter(&snap, "security.denied"),
                dispatched: counter(&snap, "gui.dispatched"),
                classes: counter(&snap, "classes.defined"),
                pipe_bytes: counter(&snap, "pipe.bytes"),
            })
        })
        .collect())
}

/// A full serializable snapshot of the hub (gauges refreshed first) — what
/// `experiments --json` embeds and `vmstat` prints from.
///
/// # Errors
///
/// [`crate::Error::Security`] unless the caller holds
/// `RuntimePermission("readMetrics")`.
pub fn vm_snapshot(rt: &MpRuntime) -> Result<HubSnapshot> {
    rt.vm()
        .check_permission(&Permission::runtime("readMetrics"))?;
    refresh_gauges(rt);
    Ok(rt.vm().obs().snapshot())
}

/// The VM-wide rollup: the VM registry merged with every live application
/// registry (counters sum, histograms merge).
///
/// # Errors
///
/// [`crate::Error::Security`] unless the caller holds
/// `RuntimePermission("readMetrics")`.
pub fn vm_rollup(rt: &MpRuntime) -> Result<RegistrySnapshot> {
    rt.vm()
        .check_permission(&Permission::runtime("readMetrics"))?;
    refresh_gauges(rt);
    Ok(rt.vm().obs().rollup())
}

/// Recent permission denials, optionally filtered by user and/or
/// application id — the shell's `audit` builtin.
///
/// # Errors
///
/// [`crate::Error::Security`] unless the caller holds
/// `RuntimePermission("readAuditLog")`.
pub fn audit_records(
    rt: &MpRuntime,
    user: Option<&str>,
    app: Option<u64>,
) -> Result<Vec<AuditRecord>> {
    rt.vm()
        .check_permission(&Permission::runtime("readAuditLog"))?;
    Ok(rt.vm().obs().audit_query(user, app))
}

/// Turns the VM-wide flight recorder on or off — the shell's
/// `trace on|off`. The recorder is on by default; turning it off reduces
/// every span site to a single atomic load.
///
/// # Errors
///
/// [`crate::Error::Security`] unless the caller holds
/// `RuntimePermission("traceVm")` — the refusal is audited like any other.
pub fn set_tracing(rt: &MpRuntime, enabled: bool) -> Result<()> {
    rt.vm().check_permission(&Permission::runtime("traceVm"))?;
    rt.vm().obs().recorder().set_enabled(enabled);
    Ok(())
}

/// Whether the flight recorder is currently recording.
///
/// # Errors
///
/// [`crate::Error::Security`] unless the caller holds
/// `RuntimePermission("traceVm")`.
pub fn tracing_enabled(rt: &MpRuntime) -> Result<bool> {
    rt.vm().check_permission(&Permission::runtime("traceVm"))?;
    Ok(rt.vm().obs().recorder().is_enabled())
}

/// Exports the flight recorder's current ring as Chrome `trace_event` JSON
/// (load in `chrome://tracing` or Perfetto) — the shell's `trace dump`.
///
/// # Errors
///
/// [`crate::Error::Security`] unless the caller holds
/// `RuntimePermission("traceVm")`: the ring holds spans from *every*
/// application, so exporting it is a cross-application information flow.
pub fn chrome_trace(rt: &MpRuntime) -> Result<String> {
    rt.vm().check_permission(&Permission::runtime("traceVm"))?;
    Ok(rt.vm().obs().export_chrome_trace())
}

/// Turns the profiler (opcode accounting *and* stack sampling) on or off —
/// the shell's `profile on|off`. Both are on by default; off reduces the
/// interpreter's accounting to a safepoint-cadence atomic load and frame
/// publication to one atomic load per call.
///
/// # Errors
///
/// [`crate::Error::Security`] unless the caller holds
/// `RuntimePermission("readProfile")` — the refusal is audited like any
/// other.
pub fn set_profiling(rt: &MpRuntime, enabled: bool) -> Result<()> {
    rt.vm()
        .check_permission(&Permission::runtime("readProfile"))?;
    rt.vm().obs().profiler().set_enabled(enabled);
    Ok(())
}

/// Whether the profiler is currently collecting (either mode).
///
/// # Errors
///
/// [`crate::Error::Security`] unless the caller holds
/// `RuntimePermission("readProfile")`.
pub fn profiling_enabled(rt: &MpRuntime) -> Result<bool> {
    rt.vm()
        .check_permission(&Permission::runtime("readProfile"))?;
    Ok(rt.vm().obs().profiler().is_enabled())
}

/// A point-in-time [`ProfileReport`]: per-opcode counts, apportioned cost
/// quantiles, and weighted collapsed stacks, VM-wide and per application —
/// the shell's `profile report` and the `vmstat` top-opcodes section.
///
/// # Errors
///
/// [`crate::Error::Security`] unless the caller holds
/// `RuntimePermission("readProfile")`: the report covers *every*
/// application, so reading it is a cross-application information flow.
pub fn profile_report(rt: &MpRuntime) -> Result<ProfileReport> {
    rt.vm()
        .check_permission(&Permission::runtime("readProfile"))?;
    Ok(rt.vm().obs().profiler().report())
}

/// Renders the sampled stacks as flamegraph.pl collapsed-stack text
/// (`stack;frames weight` per line), VM-wide or for one application — the
/// shell's `profile flame [--app <id>]`.
///
/// # Errors
///
/// [`crate::Error::Security`] unless the caller holds
/// `RuntimePermission("readProfile")`.
pub fn profile_flame(rt: &MpRuntime, app: Option<u64>) -> Result<String> {
    rt.vm()
        .check_permission(&Permission::runtime("readProfile"))?;
    Ok(rt.vm().obs().profiler().report().flamegraph(app))
}

/// Discards accumulated profile tallies, stacks, and sample events,
/// starting a fresh observation window (enable switches and the installed
/// opcode model survive) — the shell's `profile reset`.
///
/// # Errors
///
/// [`crate::Error::Security`] unless the caller holds
/// `RuntimePermission("readProfile")`.
pub fn reset_profile(rt: &MpRuntime) -> Result<()> {
    rt.vm()
        .check_permission(&Permission::runtime("readProfile"))?;
    rt.vm().obs().profiler().reset();
    Ok(())
}

/// The watchdog table — one row per registered dispatcher/system-helper
/// heartbeat — behind the `vmstat` watchdog section.
///
/// # Errors
///
/// [`crate::Error::Security`] unless the caller holds
/// `RuntimePermission("readMetrics")`.
pub fn watchdog_rows(rt: &MpRuntime) -> Result<Vec<WatchdogRow>> {
    rt.vm()
        .check_permission(&Permission::runtime("readMetrics"))?;
    Ok(rt.vm().obs().watchdogs().rows())
}

/// The demand ledger's rows, optionally filtered by application id and/or
/// user — the shell's `policyinfer report` and the `vmstat` demands
/// section.
///
/// # Errors
///
/// [`crate::Error::Security`] unless the caller holds
/// `RuntimePermission("readDemands")`: the ledger names every permission
/// every application exercised, a capability map of the whole VM.
pub fn demand_rows(rt: &MpRuntime, app: Option<u64>, user: Option<&str>) -> Result<Vec<DemandRow>> {
    rt.vm()
        .check_permission(&Permission::runtime("readDemands"))?;
    Ok(rt
        .vm()
        .obs()
        .demands()
        .rows()
        .into_iter()
        .filter(|row| app.is_none_or(|id| row.app == Some(id)))
        .filter(|row| user.is_none_or(|u| row.user.as_deref() == Some(u)))
        .collect())
}

/// Parses ledger rows back into typed demands for the inference engine.
/// Rows whose permission text fails to parse (impossible for rows the VM
/// wrote, possible for a truncated import) are skipped.
fn observed_demands(rows: &[DemandRow]) -> Vec<ObservedDemand> {
    rows.iter()
        .filter_map(|row| {
            let permission = Policy::parse_permission_entry(&row.permission).ok()?;
            Some(ObservedDemand {
                source: row.source.clone(),
                user: row.user.clone(),
                permission,
                granted: row.granted,
                denied: row.denied,
                via_user: row.via_user,
            })
        })
        .collect()
}

/// Runs least-privilege inference over the current demand ledger: the
/// minimal policy covering every granted demand observed so far, with
/// `resource "limit.*"` user grants carried from the installed policy —
/// the shell's `policyinfer emit`.
///
/// # Errors
///
/// [`crate::Error::Security`] unless the caller holds
/// `RuntimePermission("inferPolicy")`.
pub fn inferred_policy(rt: &MpRuntime) -> Result<Policy> {
    rt.vm()
        .check_permission(&Permission::runtime("inferPolicy"))?;
    let rows = rt.vm().obs().demands().rows();
    Ok(jmp_security::infer_policy(
        &observed_demands(&rows),
        &rt.vm().policy(),
    ))
}

/// The over-grant report: every installed grant entry, flagged with whether
/// any observed demand exercised it — the shell's `policyinfer diff`.
///
/// # Errors
///
/// [`crate::Error::Security`] unless the caller holds
/// `RuntimePermission("inferPolicy")`.
pub fn policy_diff(rt: &MpRuntime) -> Result<Vec<PolicyDiffRow>> {
    rt.vm()
        .check_permission(&Permission::runtime("inferPolicy"))?;
    let rows = rt.vm().obs().demands().rows();
    Ok(jmp_security::diff_policy(
        &rt.vm().policy(),
        &observed_demands(&rows),
    ))
}

/// Clears the demand ledger (and the decision cache holding its cells),
/// starting a fresh observation window — the shell's `policyinfer reset`.
///
/// # Errors
///
/// [`crate::Error::Security`] unless the caller holds
/// `RuntimePermission("inferPolicy")`.
pub fn reset_demands(rt: &MpRuntime) -> Result<()> {
    rt.vm()
        .check_permission(&Permission::runtime("inferPolicy"))?;
    rt.vm().reset_demands();
    Ok(())
}

/// Turns demand recording on or off (it is on — "always-on" — by default;
/// off reduces the ledger's warm-path cost to one relaxed load).
///
/// # Errors
///
/// [`crate::Error::Security`] unless the caller holds
/// `RuntimePermission("inferPolicy")`.
pub fn set_demand_recording(rt: &MpRuntime, enabled: bool) -> Result<()> {
    rt.vm()
        .check_permission(&Permission::runtime("inferPolicy"))?;
    rt.vm().obs().demands().set_enabled(enabled);
    Ok(())
}
