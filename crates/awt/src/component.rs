use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::event::{ComponentId, Event, WindowId};

/// A listener invoked on the dispatcher thread when an event reaches a
/// component (AWT `ActionListener` & co., paper §3.2).
pub type Listener = Arc<dyn Fn(&Event) + Send + Sync>;

/// The kinds of widgets the toolkit offers — the set the paper's tools need
/// (text editor with a menu, appletviewer, dialogs).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ComponentKind {
    /// A push button.
    Button {
        /// The button label.
        label: String,
    },
    /// A non-interactive text label.
    Label {
        /// The displayed text.
        text: String,
    },
    /// An editable text field; typed characters accumulate in its content.
    TextField,
    /// A menu item (activates like a button).
    MenuItem {
        /// The item label.
        label: String,
    },
}

pub(crate) struct ComponentRecord {
    pub(crate) id: ComponentId,
    pub(crate) kind: ComponentKind,
    pub(crate) text: Mutex<String>,
    pub(crate) listeners: RwLock<Vec<Listener>>,
}

pub(crate) struct WindowInner {
    pub(crate) id: WindowId,
    pub(crate) title: String,
    /// The application tag the window belongs to — "when an application
    /// opens a window, the system makes note about which application the
    /// window belongs to" (paper §5.4).
    pub(crate) tag: u64,
    pub(crate) components: RwLock<Vec<Arc<ComponentRecord>>>,
    pub(crate) closing_listeners: RwLock<Vec<Listener>>,
    pub(crate) closed: AtomicBool,
    next_component: AtomicU64,
}

impl WindowInner {
    pub(crate) fn new(id: WindowId, title: String, tag: u64) -> Arc<WindowInner> {
        Arc::new(WindowInner {
            id,
            title,
            tag,
            components: RwLock::new(Vec::new()),
            closing_listeners: RwLock::new(Vec::new()),
            closed: AtomicBool::new(false),
            next_component: AtomicU64::new(1),
        })
    }

    pub(crate) fn add_component(&self, kind: ComponentKind) -> ComponentId {
        let id = ComponentId(self.next_component.fetch_add(1, Ordering::Relaxed));
        self.components.write().push(Arc::new(ComponentRecord {
            id,
            kind,
            text: Mutex::new(String::new()),
            listeners: RwLock::new(Vec::new()),
        }));
        id
    }

    pub(crate) fn component(&self, id: ComponentId) -> Option<Arc<ComponentRecord>> {
        self.components.read().iter().find(|c| c.id == id).cloned()
    }
}

/// A window handle given to applications.
///
/// Created through [`Toolkit::create_window`](crate::Toolkit::create_window);
/// closing goes back through the toolkit so the display registration and the
/// application's window bookkeeping stay consistent.
#[derive(Clone)]
pub struct Window {
    pub(crate) inner: Arc<WindowInner>,
    pub(crate) toolkit: crate::toolkit::Toolkit,
}

impl Window {
    /// The window id.
    pub fn id(&self) -> WindowId {
        self.inner.id
    }

    /// The window title.
    pub fn title(&self) -> &str {
        &self.inner.title
    }

    /// The application tag recorded at creation (paper §5.4).
    pub fn app_tag(&self) -> u64 {
        self.inner.tag
    }

    /// Returns `true` once the window is closed.
    pub fn is_closed(&self) -> bool {
        self.inner.closed.load(Ordering::SeqCst)
    }

    /// Adds a push button; returns its id.
    pub fn add_button(&self, label: &str) -> ComponentId {
        self.inner.add_component(ComponentKind::Button {
            label: label.to_string(),
        })
    }

    /// Adds a menu item; returns its id.
    pub fn add_menu_item(&self, label: &str) -> ComponentId {
        self.inner.add_component(ComponentKind::MenuItem {
            label: label.to_string(),
        })
    }

    /// Adds a label.
    pub fn add_label(&self, text: &str) -> ComponentId {
        self.inner.add_component(ComponentKind::Label {
            text: text.to_string(),
        })
    }

    /// Adds an editable text field; returns its id.
    pub fn add_text_field(&self) -> ComponentId {
        self.inner.add_component(ComponentKind::TextField)
    }

    /// Registers `listener` for activation events on `component`. The
    /// listener runs on the event-dispatcher thread (whose identity is the
    /// crux of Fig 2 vs Fig 4).
    pub fn on_action(
        &self,
        component: ComponentId,
        listener: impl Fn(&Event) + Send + Sync + 'static,
    ) {
        if let Some(record) = self.inner.component(component) {
            record.listeners.write().push(Arc::new(listener));
        }
    }

    /// Registers `listener` for the window's close request.
    pub fn on_closing(&self, listener: impl Fn(&Event) + Send + Sync + 'static) {
        self.inner
            .closing_listeners
            .write()
            .push(Arc::new(listener));
    }

    /// Current content of a text field (typed characters accumulate).
    pub fn text_of(&self, component: ComponentId) -> Option<String> {
        self.inner
            .component(component)
            .map(|record| record.text.lock().clone())
    }

    /// Sets a text field's content programmatically.
    pub fn set_text(&self, component: ComponentId, text: &str) {
        if let Some(record) = self.inner.component(component) {
            *record.text.lock() = text.to_string();
        }
    }

    /// The label of a button/menu-item/label component.
    pub fn label_of(&self, component: ComponentId) -> Option<String> {
        self.inner
            .component(component)
            .map(|record| match &record.kind {
                ComponentKind::Button { label } | ComponentKind::MenuItem { label } => {
                    label.clone()
                }
                ComponentKind::Label { text } => text.clone(),
                ComponentKind::TextField => record.text.lock().clone(),
            })
    }

    /// Closes the window: deregisters it from the display and the toolkit.
    pub fn close(&self) {
        self.toolkit.close_window(self.inner.id);
    }
}

impl fmt::Debug for Window {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Window")
            .field("id", &self.inner.id)
            .field("title", &self.inner.title)
            .field("tag", &self.inner.tag)
            .field("components", &self.inner.components.read().len())
            .field("closed", &self.is_closed())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_records_have_unique_ids() {
        let w = WindowInner::new(WindowId(1), "t".into(), 0);
        let a = w.add_component(ComponentKind::Button { label: "a".into() });
        let b = w.add_component(ComponentKind::TextField);
        assert_ne!(a, b);
        assert!(w.component(a).is_some());
        assert!(w.component(ComponentId(999)).is_none());
    }
}
