use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

use jmp_obs::Counter;
use jmp_vm::context::{AppContext, ResourceKind};
use jmp_vm::thread::{check_interrupt, register_interrupt_waker, InterruptWakerGuard};
use jmp_vm::Result;
use parking_lot::{Condvar, Mutex};

use crate::event::Event;

/// Ledger bytes charged per occupied queue slot: the in-memory size of one
/// [`Event`]. Charged to the owner's `memory` quota alongside the slot's
/// `queued.events` charge, so an event storm shows up in the heap ledger
/// too, not only in the slot count.
const EVENT_BYTES: u64 = std::mem::size_of::<Event>() as u64;

#[derive(Default)]
struct QueueState {
    events: VecDeque<Event>,
    closed: bool,
    /// Total events ever accepted (merged events count individually).
    enqueued: u64,
    /// Total events ever handed to a consumer.
    dequeued: u64,
    /// Events absorbed into a predecessor by coalescing.
    coalesced: u64,
    /// Events posted after close and discarded.
    dropped: u64,
    /// Condvar wakeups that found no work — on an idle queue this stays
    /// flat, which is exactly what experiment E14 asserts (the legacy
    /// 5 ms poll bumped an equivalent every tick).
    idle_wakeups: u64,
}

impl QueueState {
    /// Whether [`QueueState::accept`] would merge `event` into the current
    /// tail rather than append it. Kept in lockstep with the merge branch
    /// of `accept`: quota charging asks this first, because a merged event
    /// occupies no new queue slot and must not be charged (or denied) one.
    fn would_coalesce(&self, event: &Event) -> bool {
        if !event.kind.is_coalescible() {
            return false;
        }
        match self.events.back() {
            Some(tail) => {
                tail.window == event.window
                    && tail.component == event.component
                    && tail.kind.same_coalescing_class(&event.kind)
            }
            None => false,
        }
    }

    /// Appends `event`, merging it into the tail when the AWT coalescing
    /// rule allows (same window, same component, same coalescible kind
    /// class). Returns `true` if the event merged rather than appended.
    fn accept(&mut self, event: Event) -> bool {
        self.enqueued += 1;
        if event.kind.is_coalescible() {
            if let Some(tail) = self.events.back_mut() {
                if tail.window == event.window
                    && tail.component == event.component
                    && tail.kind.same_coalescing_class(&event.kind)
                {
                    // Newest kind/payload wins; the oldest injection stamp is
                    // kept so delivery latency covers the whole burst.
                    tail.coalesced += event.coalesced + 1;
                    tail.kind = event.kind;
                    if event.trace.is_some() {
                        tail.trace = event.trace;
                    }
                    self.coalesced += 1;
                    return true;
                }
            }
        }
        self.events.push_back(event);
        false
    }
}

#[derive(Default)]
struct Inner {
    state: Mutex<QueueState>,
    cvar: Condvar,
    /// VM-wide `events.coalesced` counter, when the queue is observed.
    coalesced: Option<Arc<Counter>>,
    /// VM-wide `events.dropped` counter (post-close and over-quota pushes),
    /// when observed.
    dropped: Option<Arc<Counter>>,
    /// The owning application: each *appended* event is charged one
    /// `queued.events` ledger slot plus [`EVENT_BYTES`] of `memory`,
    /// released on dequeue (or queue drop). Coalesced-away events never
    /// occupy a slot and are never charged.
    owner: Option<Arc<AppContext>>,
}

impl Drop for Inner {
    fn drop(&mut self) {
        // Last handle gone with events still queued (e.g. the dispatcher
        // died before draining a closed queue): release their charges.
        if let Some(owner) = &self.owner {
            let residual = self.state.get_mut().events.len();
            if residual > 0 {
                owner.uncharge(ResourceKind::QueuedEvents, residual as u64);
                owner.uncharge(ResourceKind::Memory, residual as u64 * EVENT_BYTES);
            }
        }
    }
}

impl Inner {
    /// The interrupt waker for a consumer blocked on this queue: take the
    /// state lock (so the notify cannot race the consumer between its
    /// interrupt check and its wait) and wake everyone.
    fn waker(self: &Arc<Inner>) -> jmp_vm::thread::InterruptWaker {
        let inner = Arc::clone(self);
        Arc::new(move || {
            let _state = inner.state.lock();
            inner.cvar.notify_all();
        })
    }
}

/// A blocking FIFO of [`Event`]s — the AWT event queue of paper §3.2.
///
/// In the legacy architecture (Fig 2) there is exactly one; in the
/// multi-processing redesign (Fig 4) "every application has its own event
/// queue and a thread in the application's thread group delivers the
/// events."
///
/// Throughput-oriented: producers [`push_batch`](EventQueue::push_batch)
/// under one lock acquisition, consumers [`drain`](EventQueue::drain) up to
/// N events per wakeup, consecutive paint/mouse-move events for the same
/// target coalesce AWT-style, and a blocked consumer performs **no**
/// periodic wakeups — it sleeps until a push, a close, or an interrupt.
///
/// Cheap handle; clones share the queue.
#[derive(Clone, Default)]
pub struct EventQueue {
    inner: Arc<Inner>,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> EventQueue {
        EventQueue::default()
    }

    /// Creates an empty queue wired to VM-wide counters: `coalesced` is
    /// bumped per event absorbed by coalescing, `dropped` per event
    /// discarded because the queue was already closed.
    pub fn with_counters(
        coalesced: Option<Arc<Counter>>,
        dropped: Option<Arc<Counter>>,
    ) -> EventQueue {
        EventQueue::with_owner(coalesced, dropped, None)
    }

    /// [`EventQueue::with_counters`], plus an optional owning
    /// [`AppContext`]. Each event that occupies a queue slot is charged
    /// against the owner's `queued.events` quota *and* `EVENT_BYTES` of its
    /// `memory` quota; an over-quota push (either ledger) is dropped and
    /// counted exactly like a post-close push (the storm is the attacker's
    /// problem, not the dispatcher's), with the denial audited by the
    /// context. Dequeued and dropped-at-teardown events release both
    /// charges; coalesced-away events never held any.
    pub fn with_owner(
        coalesced: Option<Arc<Counter>>,
        dropped: Option<Arc<Counter>>,
        owner: Option<Arc<AppContext>>,
    ) -> EventQueue {
        EventQueue {
            inner: Arc::new(Inner {
                state: Mutex::new(QueueState::default()),
                cvar: Condvar::new(),
                coalesced,
                dropped,
                owner,
            }),
        }
    }

    /// Enqueues an event, coalescing it into the queue tail when the AWT
    /// rule allows. Events posted to a closed queue are dropped (the
    /// application is being torn down; nothing can deliver them) and
    /// counted in [`EventQueue::total_dropped`].
    pub fn push(&self, event: Event) {
        self.push_batch(std::iter::once(event));
    }

    /// Enqueues a batch of events under a single lock acquisition, applying
    /// the same per-event coalescing as [`EventQueue::push`]. This is the
    /// producer half of batched dispatch: the input thread forwards each
    /// burst of display traffic as one batch instead of one lock+notify
    /// round-trip per event.
    pub fn push_batch(&self, events: impl IntoIterator<Item = Event>) {
        let mut state = self.inner.state.lock();
        let mut pushed = 0u64;
        let mut merged = 0u64;
        let mut discarded = 0u64;
        for event in events {
            if state.closed {
                state.dropped += 1;
                discarded += 1;
                continue;
            }
            // Only an event about to occupy a new slot is charged; a merge
            // reuses the tail's slot (and its existing charges). A slot
            // costs one `queued.events` unit and `EVENT_BYTES` of `memory`;
            // if the memory charge is refused the slot charge is rolled
            // back so both ledgers stay consistent.
            if !state.would_coalesce(&event) {
                if let Some(owner) = &self.inner.owner {
                    if owner.try_charge(ResourceKind::QueuedEvents, 1).is_err() {
                        state.dropped += 1;
                        discarded += 1;
                        continue;
                    }
                    if owner.try_charge(ResourceKind::Memory, EVENT_BYTES).is_err() {
                        owner.uncharge(ResourceKind::QueuedEvents, 1);
                        state.dropped += 1;
                        discarded += 1;
                        continue;
                    }
                }
            }
            if state.accept(event) {
                merged += 1;
            } else {
                pushed += 1;
            }
        }
        if pushed > 0 {
            self.inner.cvar.notify_one();
        }
        drop(state);
        if merged > 0 {
            if let Some(counter) = &self.inner.coalesced {
                counter.add(merged);
            }
        }
        if discarded > 0 {
            if let Some(counter) = &self.inner.dropped {
                counter.add(discarded);
            }
        }
    }

    /// Dequeues the next event, blocking while the queue is empty. Returns
    /// `Ok(None)` once the queue is closed and drained.
    ///
    /// # Errors
    ///
    /// [`jmp_vm::VmError::Interrupted`] if the calling VM thread is interrupted —
    /// how a dispatcher thread gets unstuck at application teardown.
    pub fn pop(&self) -> Result<Option<Event>> {
        Ok(self.drain(1)?.pop())
    }

    /// Dequeues up to `max` events under one lock acquisition, blocking
    /// while the queue is empty. Returns an empty vec once the queue is
    /// closed and drained.
    ///
    /// # Errors
    ///
    /// As [`EventQueue::pop`].
    pub fn drain(&self, max: usize) -> Result<Vec<Event>> {
        self.drain_observed(max, |_| {})
    }

    /// [`EventQueue::drain`], invoking `idle(true)` just before the
    /// consumer blocks and `idle(false)` when it wakes to work (or to
    /// close). Dispatcher threads hang their watchdog heartbeat's
    /// park/unpark here, so an idle dispatcher reads as *parked* — not
    /// stalled — without any periodic heartbeat traffic.
    ///
    /// # Errors
    ///
    /// As [`EventQueue::pop`].
    pub fn drain_observed(&self, max: usize, idle: impl Fn(bool)) -> Result<Vec<Event>> {
        let max = max.max(1);
        let mut waker: Option<InterruptWakerGuard> = None;
        let mut parked = false;
        let mut state = self.inner.state.lock();
        loop {
            if !state.events.is_empty() {
                if parked {
                    idle(false);
                }
                let take = max.min(state.events.len());
                let batch: Vec<Event> = state.events.drain(..take).collect();
                state.dequeued += batch.len() as u64;
                if let Some(owner) = &self.inner.owner {
                    owner.uncharge(ResourceKind::QueuedEvents, batch.len() as u64);
                    owner.uncharge(ResourceKind::Memory, batch.len() as u64 * EVENT_BYTES);
                }
                if state.events.is_empty() {
                    // Other blocked consumers (multi-consumer queues exist in
                    // tests) would now sleep forever on a notify_one that we
                    // consumed; nothing to do — push notifies again.
                } else {
                    self.inner.cvar.notify_one();
                }
                return Ok(batch);
            }
            if state.closed {
                if parked {
                    idle(false);
                }
                return Ok(Vec::new());
            }
            // Block for real: register the interrupt waker (once) before the
            // final interrupt check so an interrupt between check and wait is
            // delivered as a notify under our lock, never lost.
            if waker.is_none() {
                waker = Some(register_interrupt_waker(self.inner.waker()));
            }
            if let Err(err) = check_interrupt() {
                if parked {
                    idle(false);
                }
                return Err(err);
            }
            if !parked {
                idle(true);
                parked = true;
            } else {
                // A wakeup that found no work. Idle queues never take this
                // branch — there is no periodic timer to wake them.
                state.idle_wakeups += 1;
            }
            self.inner.cvar.wait(&mut state);
        }
    }

    /// Dequeues the next event without blocking; `None` if the queue is
    /// empty (regardless of closed state).
    pub fn try_pop(&self) -> Option<Event> {
        let mut state = self.inner.state.lock();
        let event = state.events.pop_front();
        if event.is_some() {
            state.dequeued += 1;
            if let Some(owner) = &self.inner.owner {
                owner.uncharge(ResourceKind::QueuedEvents, 1);
                owner.uncharge(ResourceKind::Memory, EVENT_BYTES);
            }
        }
        event
    }

    /// Closes the queue: pending events remain poppable, new pushes are
    /// dropped (and counted), and blocked poppers see `None`/empty after
    /// draining.
    pub fn close(&self) {
        let mut state = self.inner.state.lock();
        state.closed = true;
        self.inner.cvar.notify_all();
    }

    /// Returns `true` once closed.
    pub fn is_closed(&self) -> bool {
        self.inner.state.lock().closed
    }

    /// Events currently waiting.
    pub fn len(&self) -> usize {
        self.inner.state.lock().events.len()
    }

    /// Returns `true` if no events are waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever accepted (coalesced-away events included).
    pub fn total_enqueued(&self) -> u64 {
        self.inner.state.lock().enqueued
    }

    /// Total events ever handed to a consumer.
    pub fn total_dequeued(&self) -> u64 {
        self.inner.state.lock().dequeued
    }

    /// Total events absorbed into a predecessor by coalescing.
    pub fn total_coalesced(&self) -> u64 {
        self.inner.state.lock().coalesced
    }

    /// Total post-close pushes discarded.
    pub fn total_dropped(&self) -> u64 {
        self.inner.state.lock().dropped
    }

    /// Condvar wakeups that found no work. An idle queue accumulates zero —
    /// the figure experiment E14c reports against the legacy 5 ms poll.
    pub fn idle_wakeups(&self) -> u64 {
        self.inner.state.lock().idle_wakeups
    }

    /// Returns `true` if `other` is a handle to the same queue.
    pub fn same_queue(&self, other: &EventQueue) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl fmt::Debug for EventQueue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = self.inner.state.lock();
        f.debug_struct("EventQueue")
            .field("pending", &state.events.len())
            .field("closed", &state.closed)
            .field("enqueued", &state.enqueued)
            .field("coalesced", &state.coalesced)
            .field("dropped", &state.dropped)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ComponentId, EventKind, WindowId};
    use std::time::Duration;

    fn ev(n: u64) -> Event {
        Event::new(WindowId(n), None, EventKind::Action)
    }

    fn paint(n: u64) -> Event {
        Event::new(WindowId(n), None, EventKind::Paint)
    }

    #[test]
    fn fifo_order() {
        let q = EventQueue::new();
        q.push(ev(1));
        q.push(ev(2));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap().unwrap().window, WindowId(1));
        assert_eq!(q.pop().unwrap().unwrap().window, WindowId(2));
        assert!(q.is_empty());
    }

    #[test]
    fn close_drains_then_none() {
        let q = EventQueue::new();
        q.push(ev(1));
        q.close();
        q.push(ev(2)); // dropped
        assert_eq!(q.pop().unwrap().unwrap().window, WindowId(1));
        assert!(q.pop().unwrap().is_none());
        assert!(q.is_closed());
        assert_eq!(q.total_enqueued(), 1);
        assert_eq!(q.total_dropped(), 1, "the post-close push is counted");
    }

    #[test]
    fn pop_blocks_until_push() {
        let q = EventQueue::new();
        let q2 = q.clone();
        let handle = std::thread::spawn(move || q2.pop().unwrap().unwrap().window);
        std::thread::sleep(Duration::from_millis(20));
        q.push(ev(9));
        assert_eq!(handle.join().unwrap(), WindowId(9));
        assert_eq!(q.total_dequeued(), 1);
    }

    #[test]
    fn clones_share_state() {
        let q = EventQueue::new();
        let q2 = q.clone();
        assert!(q.same_queue(&q2));
        q2.push(ev(1));
        assert_eq!(q.len(), 1);
        let other = EventQueue::new();
        assert!(!q.same_queue(&other));
    }

    #[test]
    fn drain_takes_up_to_max_in_one_call() {
        let q = EventQueue::new();
        q.push_batch((1..=5).map(ev));
        let batch = q.drain(3).unwrap();
        assert_eq!(batch.len(), 3);
        assert_eq!(batch[0].window, WindowId(1));
        assert_eq!(batch[2].window, WindowId(3));
        assert_eq!(q.drain(10).unwrap().len(), 2);
    }

    #[test]
    fn consecutive_paints_for_same_window_coalesce() {
        let q = EventQueue::new();
        q.push(paint(1));
        q.push(paint(1));
        q.push(paint(1));
        assert_eq!(q.len(), 1, "three paints collapse into one");
        assert_eq!(q.total_enqueued(), 3, "all three were accepted");
        assert_eq!(q.total_coalesced(), 2);
        let merged = q.pop().unwrap().unwrap();
        assert_eq!(merged.coalesced, 2, "merged count rides on the event");
        assert!(merged.to_string().contains("(x3)"));
    }

    #[test]
    fn mouse_moves_keep_newest_position_and_oldest_stamp() {
        let q = EventQueue::new();
        let first = Event::new(WindowId(1), None, EventKind::MouseMoved { x: 1, y: 1 });
        let oldest = first.injected_at;
        q.push(first);
        std::thread::sleep(Duration::from_millis(2));
        q.push(Event::new(
            WindowId(1),
            None,
            EventKind::MouseMoved { x: 7, y: 8 },
        ));
        let merged = q.pop().unwrap().unwrap();
        assert_eq!(merged.kind, EventKind::MouseMoved { x: 7, y: 8 });
        assert_eq!(merged.injected_at, oldest, "latency spans the burst");
    }

    #[test]
    fn non_adjacent_events_never_merge() {
        let q = EventQueue::new();
        q.push(paint(1));
        q.push(ev(1)); // an Action in between blocks the merge
        q.push(paint(1));
        assert_eq!(q.len(), 3);
        assert_eq!(q.total_coalesced(), 0);
    }

    #[test]
    fn cross_window_and_cross_component_paints_do_not_merge() {
        let q = EventQueue::new();
        q.push(paint(1));
        q.push(paint(2)); // different window
        q.push(Event::new(
            WindowId(2),
            Some(ComponentId(1)),
            EventKind::Paint,
        ));
        q.push(Event::new(
            WindowId(2),
            Some(ComponentId(2)),
            EventKind::Paint,
        ));
        assert_eq!(q.len(), 4);
        // Ordering across windows is preserved verbatim.
        let batch = q.drain(4).unwrap();
        assert_eq!(batch[0].window, WindowId(1));
        assert_eq!(batch[1].window, WindowId(2));
        assert_eq!(q.total_coalesced(), 0);
    }

    #[test]
    fn paint_and_mouse_move_are_different_classes() {
        let q = EventQueue::new();
        q.push(paint(1));
        q.push(Event::new(
            WindowId(1),
            None,
            EventKind::MouseMoved { x: 0, y: 0 },
        ));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn push_batch_coalesces_within_the_batch() {
        let q = EventQueue::new();
        q.push_batch(vec![paint(1), paint(1), ev(2), paint(3), paint(3)]);
        assert_eq!(q.len(), 3);
        assert_eq!(q.total_coalesced(), 2);
    }

    #[test]
    fn counters_observe_coalesced_and_dropped() {
        let coalesced = Arc::new(Counter::new());
        let dropped = Arc::new(Counter::new());
        let q = EventQueue::with_counters(Some(Arc::clone(&coalesced)), Some(Arc::clone(&dropped)));
        q.push(paint(1));
        q.push(paint(1));
        assert_eq!(coalesced.get(), 1);
        q.close();
        q.push(ev(2));
        q.push_batch(vec![ev(3), ev(4)]);
        assert_eq!(dropped.get(), 3);
        assert_eq!(q.total_dropped(), 3);
    }

    #[test]
    fn idle_queue_accumulates_no_wakeups() {
        let q = EventQueue::new();
        let q2 = q.clone();
        let consumer = std::thread::spawn(move || q2.drain(8).unwrap());
        // Long enough that the legacy 5 ms poll would have woken ~20 times.
        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(q.idle_wakeups(), 0, "a blocked consumer sleeps for real");
        q.push(ev(1));
        assert_eq!(consumer.join().unwrap().len(), 1);
        assert_eq!(q.idle_wakeups(), 0);
    }

    #[test]
    fn drain_observed_parks_and_unparks_around_the_wait() {
        use std::sync::atomic::{AtomicI32, Ordering};
        let q = EventQueue::new();
        let q2 = q.clone();
        let consumer = std::thread::spawn(move || {
            let depth = AtomicI32::new(0);
            let batch = q2
                .drain_observed(4, |parked| {
                    depth.fetch_add(if parked { 1 } else { -1 }, Ordering::SeqCst);
                })
                .unwrap();
            (batch.len(), depth.load(Ordering::SeqCst))
        });
        std::thread::sleep(Duration::from_millis(20));
        q.push(ev(1));
        let (n, depth) = consumer.join().unwrap();
        assert_eq!(n, 1);
        assert_eq!(depth, 0, "every park is matched by an unpark");
    }

    fn owner(id: u64) -> Arc<AppContext> {
        AppContext::new(
            id,
            "App",
            "alice",
            jmp_vm::GroupId(id),
            jmp_obs::ObsHub::new(),
        )
    }

    #[test]
    fn owned_queue_charges_slots_and_drains_to_zero() {
        let app = owner(1);
        let q = EventQueue::with_owner(None, None, Some(Arc::clone(&app)));
        q.push_batch((1..=4).map(ev));
        assert_eq!(app.ledger().get(ResourceKind::QueuedEvents), 4);
        assert_eq!(q.drain(2).unwrap().len(), 2);
        assert_eq!(app.ledger().get(ResourceKind::QueuedEvents), 2);
        q.try_pop().unwrap();
        q.try_pop().unwrap();
        assert!(app.ledger().is_drained());
    }

    #[test]
    fn coalesced_events_do_not_leak_charges() {
        let app = owner(2);
        let q = EventQueue::with_owner(None, None, Some(Arc::clone(&app)));
        q.push_batch(vec![paint(1), paint(1), paint(1)]);
        assert_eq!(q.len(), 1);
        assert_eq!(
            app.ledger().get(ResourceKind::QueuedEvents),
            1,
            "three coalesced paints hold one slot and one charge"
        );
        q.drain(8).unwrap();
        assert!(app.ledger().is_drained());
    }

    #[test]
    fn over_quota_pushes_are_dropped_and_counted() {
        let app = owner(3);
        app.limits().set(ResourceKind::QueuedEvents, 2);
        let dropped = Arc::new(Counter::new());
        let q = EventQueue::with_owner(None, Some(Arc::clone(&dropped)), Some(Arc::clone(&app)));
        q.push_batch((1..=5).map(ev));
        assert_eq!(q.len(), 2, "the queue holds exactly the quota");
        assert_eq!(q.total_dropped(), 3);
        assert_eq!(dropped.get(), 3);
        assert_eq!(app.breaches(), 3, "each refused push is a recorded breach");
        // Coalescible traffic onto the full queue still merges for free.
        let app2 = owner(4);
        app2.limits().set(ResourceKind::QueuedEvents, 1);
        let q2 = EventQueue::with_owner(None, None, Some(Arc::clone(&app2)));
        q2.push(paint(1));
        q2.push(paint(1));
        assert_eq!(q2.len(), 1);
        assert_eq!(app2.breaches(), 0, "a merge needs no new slot");
        q.drain(8).unwrap();
        q2.drain(8).unwrap();
        assert!(app.ledger().is_drained());
        assert!(app2.ledger().is_drained());
    }

    #[test]
    fn queue_slots_charge_event_bytes_to_the_memory_ledger() {
        let app = owner(6);
        let q = EventQueue::with_owner(None, None, Some(Arc::clone(&app)));
        q.push_batch((1..=3).map(ev));
        assert_eq!(app.ledger().get(ResourceKind::Memory), 3 * EVENT_BYTES);
        q.drain(8).unwrap();
        assert!(app.ledger().is_drained());
    }

    #[test]
    fn memory_quota_denial_rolls_back_the_slot_charge() {
        let app = owner(7);
        // Room for exactly two events' worth of bytes.
        app.limits().set(ResourceKind::Memory, 2 * EVENT_BYTES);
        let dropped = Arc::new(Counter::new());
        let q = EventQueue::with_owner(None, Some(Arc::clone(&dropped)), Some(Arc::clone(&app)));
        q.push_batch((1..=5).map(ev));
        assert_eq!(q.len(), 2, "the queue holds exactly the memory quota");
        assert_eq!(dropped.get(), 3);
        assert_eq!(
            app.ledger().get(ResourceKind::QueuedEvents),
            2,
            "refused pushes rolled their slot charge back"
        );
        q.drain(8).unwrap();
        assert!(app.ledger().is_drained());
    }

    #[test]
    fn dropping_an_undrained_queue_releases_charges() {
        let app = owner(5);
        let q = EventQueue::with_owner(None, None, Some(Arc::clone(&app)));
        q.push_batch((1..=3).map(ev));
        q.close();
        drop(q);
        assert!(app.ledger().is_drained());
    }

    #[test]
    fn interrupt_unblocks_a_drained_consumer_without_polling() {
        // Run inside a VM thread so interruption applies; the consumer must
        // wake promptly via the interrupt waker, not a poll interval.
        let vm = jmp_vm::Vm::new();
        let q = EventQueue::new();
        let q2 = q.clone();
        let (tx, rx) = std::sync::mpsc::channel();
        let handle = vm
            .thread_builder()
            .name("consumer")
            .spawn(move |_vm| {
                tx.send(q2.drain(4)).unwrap();
            })
            .unwrap();
        std::thread::sleep(Duration::from_millis(20));
        vm.interrupt_thread(&handle).unwrap();
        let result = rx.recv_timeout(Duration::from_secs(2)).unwrap();
        assert!(result.unwrap_err().is_interrupted());
        handle.join().unwrap();
    }
}
