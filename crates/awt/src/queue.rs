use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

use jmp_vm::thread::{check_interrupt, BLOCK_POLL};
use jmp_vm::Result;
use parking_lot::{Condvar, Mutex};

use crate::event::Event;

#[derive(Default)]
struct QueueState {
    events: VecDeque<Event>,
    closed: bool,
    /// Total events ever enqueued (diagnostics/benches).
    enqueued: u64,
    /// Total events ever dequeued.
    dequeued: u64,
}

/// A blocking FIFO of [`Event`]s — the AWT event queue of paper §3.2.
///
/// In the legacy architecture (Fig 2) there is exactly one; in the
/// multi-processing redesign (Fig 4) "every application has its own event
/// queue and a thread in the application's thread group delivers the
/// events."
///
/// Cheap handle; clones share the queue.
#[derive(Clone, Default)]
pub struct EventQueue {
    state: Arc<(Mutex<QueueState>, Condvar)>,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> EventQueue {
        EventQueue::default()
    }

    /// Enqueues an event. Events posted to a closed queue are dropped (the
    /// application is being torn down; nothing can deliver them).
    pub fn push(&self, event: Event) {
        let (lock, cvar) = &*self.state;
        let mut state = lock.lock();
        if state.closed {
            return;
        }
        state.events.push_back(event);
        state.enqueued += 1;
        cvar.notify_one();
    }

    /// Dequeues the next event, blocking while the queue is empty. Returns
    /// `Ok(None)` once the queue is closed and drained.
    ///
    /// # Errors
    ///
    /// [`jmp_vm::VmError::Interrupted`] if the calling VM thread is interrupted —
    /// how a dispatcher thread gets unstuck at application teardown.
    pub fn pop(&self) -> Result<Option<Event>> {
        self.pop_observed(|| {})
    }

    /// [`EventQueue::pop`], invoking `beat` on every wait iteration
    /// (roughly every `BLOCK_POLL`). Dispatcher threads pass their watchdog
    /// heartbeat here, so a dispatcher *waiting for work* keeps beating and
    /// only one stuck inside a listener callback goes silent.
    ///
    /// # Errors
    ///
    /// As [`EventQueue::pop`].
    pub fn pop_observed(&self, beat: impl Fn()) -> Result<Option<Event>> {
        let (lock, cvar) = &*self.state;
        let mut state = lock.lock();
        loop {
            if let Some(event) = state.events.pop_front() {
                state.dequeued += 1;
                return Ok(Some(event));
            }
            if state.closed {
                return Ok(None);
            }
            check_interrupt()?;
            beat();
            cvar.wait_for(&mut state, BLOCK_POLL);
        }
    }

    /// Closes the queue: pending events remain poppable, new pushes are
    /// dropped, and blocked poppers see `None` after draining.
    pub fn close(&self) {
        let (lock, cvar) = &*self.state;
        lock.lock().closed = true;
        cvar.notify_all();
    }

    /// Returns `true` once closed.
    pub fn is_closed(&self) -> bool {
        self.state.0.lock().closed
    }

    /// Events currently waiting.
    pub fn len(&self) -> usize {
        self.state.0.lock().events.len()
    }

    /// Returns `true` if no events are waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever enqueued.
    pub fn total_enqueued(&self) -> u64 {
        self.state.0.lock().enqueued
    }

    /// Total events ever dequeued.
    pub fn total_dequeued(&self) -> u64 {
        self.state.0.lock().dequeued
    }

    /// Returns `true` if `other` is a handle to the same queue.
    pub fn same_queue(&self, other: &EventQueue) -> bool {
        Arc::ptr_eq(&self.state, &other.state)
    }
}

impl fmt::Debug for EventQueue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = self.state.0.lock();
        f.debug_struct("EventQueue")
            .field("pending", &state.events.len())
            .field("closed", &state.closed)
            .field("enqueued", &state.enqueued)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, WindowId};
    use std::time::Duration;

    fn ev(n: u64) -> Event {
        Event::new(WindowId(n), None, EventKind::Action)
    }

    #[test]
    fn fifo_order() {
        let q = EventQueue::new();
        q.push(ev(1));
        q.push(ev(2));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap().unwrap().window, WindowId(1));
        assert_eq!(q.pop().unwrap().unwrap().window, WindowId(2));
        assert!(q.is_empty());
    }

    #[test]
    fn close_drains_then_none() {
        let q = EventQueue::new();
        q.push(ev(1));
        q.close();
        q.push(ev(2)); // dropped
        assert_eq!(q.pop().unwrap().unwrap().window, WindowId(1));
        assert!(q.pop().unwrap().is_none());
        assert!(q.is_closed());
        assert_eq!(q.total_enqueued(), 1);
    }

    #[test]
    fn pop_blocks_until_push() {
        let q = EventQueue::new();
        let q2 = q.clone();
        let handle = std::thread::spawn(move || q2.pop().unwrap().unwrap().window);
        std::thread::sleep(Duration::from_millis(20));
        q.push(ev(9));
        assert_eq!(handle.join().unwrap(), WindowId(9));
        assert_eq!(q.total_dequeued(), 1);
    }

    #[test]
    fn clones_share_state() {
        let q = EventQueue::new();
        let q2 = q.clone();
        assert!(q.same_queue(&q2));
        q2.push(ev(1));
        assert_eq!(q.len(), 1);
        let other = EventQueue::new();
        assert!(!q.same_queue(&other));
    }
}
