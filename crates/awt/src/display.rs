use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use jmp_vm::VmError;
use parking_lot::RwLock;

use crate::event::{ComponentId, Event, EventKind, WindowId};
use crate::queue::EventQueue;

/// Identifier of a display client (one per connected toolkit — one per VM,
/// matching Fig 2 where each process holds one connection to the X server).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClientId(pub u64);

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dpy-client:{}", self.0)
    }
}

#[derive(Debug, Clone)]
struct WindowMeta {
    client: ClientId,
    title: String,
}

struct DisplayState {
    clients: HashMap<ClientId, EventQueue>,
    windows: HashMap<WindowId, WindowMeta>,
}

/// The simulated display server — the paper's X server (Fig 2): "a special
/// process \[that\] has exclusive control over the high-resolution display...
/// When some input from the keyboard or mouse occurs, the X server will
/// figure out which GUI component was the target of that input and notify
/// the appropriate process."
///
/// Toolkits [`connect`](DisplayServer::connect) and register windows; tests
/// and benches *inject* synthetic input, which the server routes to the
/// connection owning the target window. Injection stands in for hardware
/// input and is therefore not subject to runtime security checks (the
/// checks guard what *applications* may do, e.g. open windows).
#[derive(Clone)]
pub struct DisplayServer {
    state: Arc<RwLock<DisplayState>>,
    next_client: Arc<AtomicU64>,
    next_window: Arc<AtomicU64>,
}

impl Default for DisplayServer {
    fn default() -> DisplayServer {
        DisplayServer::new()
    }
}

impl DisplayServer {
    /// Starts a display server with no clients.
    pub fn new() -> DisplayServer {
        DisplayServer {
            state: Arc::new(RwLock::new(DisplayState {
                clients: HashMap::new(),
                windows: HashMap::new(),
            })),
            next_client: Arc::new(AtomicU64::new(1)),
            next_window: Arc::new(AtomicU64::new(1)),
        }
    }

    /// Opens a client connection; the returned queue is the client's event
    /// wire (what the AWT's X-connection thread drains, paper §5.4). The
    /// wire is an [`EventQueue`], so burst injection coalesces paint/move
    /// events at the display boundary already, and a blocked reader costs
    /// zero wakeups.
    pub fn connect(&self) -> (ClientId, EventQueue) {
        let inbox = EventQueue::new();
        let id = self.connect_with(inbox.clone());
        (id, inbox)
    }

    /// [`DisplayServer::connect`] with a caller-supplied inbox — the toolkit
    /// passes a queue wired to the VM's coalescing/drop counters.
    pub fn connect_with(&self, inbox: EventQueue) -> ClientId {
        let id = ClientId(self.next_client.fetch_add(1, Ordering::Relaxed));
        self.state.write().clients.insert(id, inbox);
        id
    }

    /// Disconnects a client, dropping its windows and closing its wire (a
    /// blocked reader drains and sees end-of-events).
    pub fn disconnect(&self, client: ClientId) {
        let mut state = self.state.write();
        if let Some(inbox) = state.clients.remove(&client) {
            inbox.close();
        }
        state.windows.retain(|_, meta| meta.client != client);
    }

    /// Registers a window owned by `client`.
    pub fn create_window(&self, client: ClientId, title: &str) -> WindowId {
        let id = WindowId(self.next_window.fetch_add(1, Ordering::Relaxed));
        self.state.write().windows.insert(
            id,
            WindowMeta {
                client,
                title: title.to_string(),
            },
        );
        id
    }

    /// Removes a window.
    pub fn destroy_window(&self, window: WindowId) {
        self.state.write().windows.remove(&window);
    }

    /// Injects an event, routing it to the owning client's wire.
    ///
    /// # Errors
    ///
    /// [`VmError::IllegalState`] if the window does not exist or its client
    /// is gone.
    pub fn inject(
        &self,
        window: WindowId,
        component: Option<ComponentId>,
        kind: EventKind,
    ) -> jmp_vm::Result<()> {
        let state = self.state.read();
        let meta = state
            .windows
            .get(&window)
            .ok_or_else(|| VmError::illegal_state(format!("no such window {window}")))?;
        let inbox = state
            .clients
            .get(&meta.client)
            .ok_or_else(|| VmError::illegal_state(format!("client {} gone", meta.client)))?;
        if inbox.is_closed() {
            return Err(VmError::illegal_state("client connection closed"));
        }
        inbox.push(Event::new(window, component, kind));
        Ok(())
    }

    /// Injects a button/menu activation.
    ///
    /// # Errors
    ///
    /// As [`DisplayServer::inject`].
    pub fn inject_action(&self, window: WindowId, component: ComponentId) -> jmp_vm::Result<()> {
        self.inject(window, Some(component), EventKind::Action)
    }

    /// Injects a typed character.
    ///
    /// # Errors
    ///
    /// As [`DisplayServer::inject`].
    pub fn inject_key(
        &self,
        window: WindowId,
        component: ComponentId,
        c: char,
    ) -> jmp_vm::Result<()> {
        self.inject(window, Some(component), EventKind::KeyTyped(c))
    }

    /// Injects a whole string as successive key events.
    ///
    /// # Errors
    ///
    /// As [`DisplayServer::inject`].
    pub fn inject_text(
        &self,
        window: WindowId,
        component: ComponentId,
        text: &str,
    ) -> jmp_vm::Result<()> {
        for c in text.chars() {
            self.inject_key(window, component, c)?;
        }
        Ok(())
    }

    /// Injects a window-close request.
    ///
    /// # Errors
    ///
    /// As [`DisplayServer::inject`].
    pub fn inject_close(&self, window: WindowId) -> jmp_vm::Result<()> {
        self.inject(window, None, EventKind::WindowClosing)
    }

    /// Injects a repaint request for a window (or one of its components).
    /// Bursts of paints for the same target coalesce in the event queue.
    ///
    /// # Errors
    ///
    /// As [`DisplayServer::inject`].
    pub fn inject_paint(
        &self,
        window: WindowId,
        component: Option<ComponentId>,
    ) -> jmp_vm::Result<()> {
        self.inject(window, component, EventKind::Paint)
    }

    /// Injects a pointer move. Bursts of moves for the same window coalesce
    /// in the event queue, keeping only the newest position.
    ///
    /// # Errors
    ///
    /// As [`DisplayServer::inject`].
    pub fn inject_mouse_move(&self, window: WindowId, x: i32, y: i32) -> jmp_vm::Result<()> {
        self.inject(window, None, EventKind::MouseMoved { x, y })
    }

    /// Number of registered windows.
    pub fn window_count(&self) -> usize {
        self.state.read().windows.len()
    }

    /// Titles of all windows, sorted (tests).
    pub fn window_titles(&self) -> Vec<String> {
        let mut titles: Vec<String> = self
            .state
            .read()
            .windows
            .values()
            .map(|m| m.title.clone())
            .collect();
        titles.sort();
        titles
    }

    /// The windows owned by `client`, sorted by id.
    pub fn windows_of(&self, client: ClientId) -> Vec<WindowId> {
        let mut ids: Vec<WindowId> = self
            .state
            .read()
            .windows
            .iter()
            .filter(|(_, m)| m.client == client)
            .map(|(id, _)| *id)
            .collect();
        ids.sort();
        ids
    }
}

impl fmt::Debug for DisplayServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = self.state.read();
        f.debug_struct("DisplayServer")
            .field("clients", &state.clients.len())
            .field("windows", &state.windows.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_events_to_owning_client() {
        let display = DisplayServer::new();
        let (client_a, rx_a) = display.connect();
        let (client_b, rx_b) = display.connect();
        let win_a = display.create_window(client_a, "A");
        let win_b = display.create_window(client_b, "B");

        display.inject_action(win_a, ComponentId(1)).unwrap();
        display.inject_action(win_b, ComponentId(2)).unwrap();

        let ev = rx_a.try_pop().unwrap();
        assert_eq!(ev.window, win_a);
        assert!(rx_a.try_pop().is_none(), "A must not see B's events");
        assert_eq!(rx_b.try_pop().unwrap().window, win_b);
    }

    #[test]
    fn unknown_window_is_an_error() {
        let display = DisplayServer::new();
        assert!(display.inject_action(WindowId(99), ComponentId(1)).is_err());
    }

    #[test]
    fn destroy_window_stops_routing() {
        let display = DisplayServer::new();
        let (client, _rx) = display.connect();
        let win = display.create_window(client, "T");
        assert_eq!(display.window_count(), 1);
        display.destroy_window(win);
        assert_eq!(display.window_count(), 0);
        assert!(display.inject_close(win).is_err());
    }

    #[test]
    fn disconnect_drops_client_windows() {
        let display = DisplayServer::new();
        let (client, _rx) = display.connect();
        display.create_window(client, "X");
        display.create_window(client, "Y");
        assert_eq!(display.windows_of(client).len(), 2);
        display.disconnect(client);
        assert_eq!(display.window_count(), 0);
    }

    #[test]
    fn inject_text_sends_one_event_per_char() {
        let display = DisplayServer::new();
        let (client, rx) = display.connect();
        let win = display.create_window(client, "T");
        display.inject_text(win, ComponentId(1), "hi").unwrap();
        let chars: Vec<char> = (0..2)
            .map(|_| match rx.try_pop().unwrap().kind {
                EventKind::KeyTyped(c) => c,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(chars, vec!['h', 'i']);
    }

    #[test]
    fn paint_bursts_coalesce_on_the_wire() {
        let display = DisplayServer::new();
        let (client, rx) = display.connect();
        let win = display.create_window(client, "T");
        for _ in 0..5 {
            display.inject_paint(win, None).unwrap();
        }
        assert_eq!(rx.len(), 1, "five paints arrive as one");
        assert_eq!(rx.try_pop().unwrap().coalesced, 4);
    }

    #[test]
    fn inject_after_disconnect_is_rejected() {
        let display = DisplayServer::new();
        let (client, _rx) = display.connect();
        let win = display.create_window(client, "T");
        display.disconnect(client);
        assert!(display.inject_close(win).is_err());
    }

    #[test]
    fn titles_are_listed_sorted() {
        let display = DisplayServer::new();
        let (client, _rx) = display.connect();
        display.create_window(client, "zeta");
        display.create_window(client, "alpha");
        assert_eq!(display.window_titles(), vec!["alpha", "zeta"]);
    }
}
