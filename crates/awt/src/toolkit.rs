use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use jmp_security::Permission;
use jmp_vm::{Result, ThreadGroup, Vm, VmThread};
use parking_lot::{Mutex, RwLock};

use crate::component::{ComponentKind, Window, WindowInner};
use crate::display::{ClientId, DisplayServer};
use crate::event::{Event, EventKind, WindowId};
use crate::queue::EventQueue;

/// How events are dispatched to listeners.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchMode {
    /// The original JDK architecture (paper §3.2, Fig 2): **one** event
    /// queue and **one** dispatcher thread execute *all* callbacks of *all*
    /// applications. The dispatcher (and the X-connection thread) start on
    /// demand, in whatever thread group happens to be current at the first
    /// window — reproducing the problem the paper's Feature 6 names.
    Legacy,
    /// The paper's redesign (§5.4, Fig 4): per-application event queues;
    /// each application's events are dispatched by a non-daemon thread in
    /// *that application's* thread group, and the X-connection thread lives
    /// in the system group.
    PerApplication,
}

/// Resolves the *application tag* of the current thread — installed by the
/// multi-processing layer (current thread → application id). The default
/// resolver tags everything 0 (single-application VM).
pub type AppTagResolver = Arc<dyn Fn() -> u64 + Send + Sync>;

/// Observer invoked after each delivered event with the owning window's
/// application tag and the queue-to-listener latency (the measurement behind
/// experiment E2, and the feed for the per-application GUI metrics).
pub type DispatchObserver = Arc<dyn Fn(&Event, u64, Duration) + Send + Sync>;

/// The tag used for the shared queue in [`DispatchMode::Legacy`].
const LEGACY_TAG: u64 = 0;

/// Most events moved per lock acquisition by the input forwarder and per
/// queue drain by a dispatcher. Large enough to amortise the lock under
/// load, small enough that a burst cannot monopolise a dispatcher between
/// heartbeats.
const DISPATCH_BATCH: usize = 64;

pub(crate) struct ToolkitInner {
    vm: Vm,
    display: DisplayServer,
    client: ClientId,
    mode: DispatchMode,
    tag_resolver: RwLock<AppTagResolver>,
    windows: RwLock<HashMap<WindowId, Arc<WindowInner>>>,
    queues: Mutex<HashMap<u64, EventQueue>>,
    dispatchers: Mutex<HashMap<u64, VmThread>>,
    input_thread: Mutex<Option<VmThread>>,
    inbox: Mutex<Option<EventQueue>>,
    observers: RwLock<Vec<DispatchObserver>>,
}

/// The windowing toolkit: the AWT of this runtime.
///
/// One toolkit connects one VM to a [`DisplayServer`]. Applications create
/// [`Window`]s through it (requiring `AWTPermission("showWindow")`); input
/// injected at the display flows through the toolkit's X-connection thread
/// into an [`EventQueue`] and is delivered to listeners by a dispatcher
/// thread. *Which* queue and *whose* dispatcher depend on the
/// [`DispatchMode`] — the difference between the paper's Fig 2 and Fig 4.
#[derive(Clone)]
pub struct Toolkit {
    inner: Arc<ToolkitInner>,
}

impl Toolkit {
    /// Connects a toolkit for `vm` to `display`.
    pub fn connect(vm: Vm, display: DisplayServer, mode: DispatchMode) -> Toolkit {
        // The display wire is an EventQueue wired to the VM-wide counters,
        // so paint/move bursts coalescing at the display boundary (before
        // any per-application queue sees them) are still accounted for.
        let metrics = vm.obs().vm_metrics();
        let inbox = EventQueue::with_counters(
            Some(metrics.counter("events.coalesced")),
            Some(metrics.counter("events.dropped")),
        );
        let client = display.connect_with(inbox.clone());
        Toolkit {
            inner: Arc::new(ToolkitInner {
                vm,
                display,
                client,
                mode,
                tag_resolver: RwLock::new(Arc::new(|| 0)),
                windows: RwLock::new(HashMap::new()),
                queues: Mutex::new(HashMap::new()),
                dispatchers: Mutex::new(HashMap::new()),
                input_thread: Mutex::new(None),
                inbox: Mutex::new(Some(inbox)),
                observers: RwLock::new(Vec::new()),
            }),
        }
    }

    /// The dispatch mode.
    pub fn mode(&self) -> DispatchMode {
        self.inner.mode
    }

    /// The VM this toolkit serves.
    pub fn vm(&self) -> &Vm {
        &self.inner.vm
    }

    /// The display this toolkit renders to.
    pub fn display(&self) -> &DisplayServer {
        &self.inner.display
    }

    /// Installs the application-tag resolver (multi-processing layer).
    pub fn set_tag_resolver(&self, resolver: AppTagResolver) {
        *self.inner.tag_resolver.write() = resolver;
    }

    /// Replaces all dispatch-latency observers with `observer` (benches,
    /// which want exclusive readings).
    pub fn set_dispatch_observer(&self, observer: DispatchObserver) {
        let mut observers = self.inner.observers.write();
        observers.clear();
        observers.push(observer);
    }

    /// Adds a dispatch-latency observer alongside any already installed —
    /// the multi-processing runtime uses this so its metrics feed coexists
    /// with bench observers.
    pub fn add_dispatch_observer(&self, observer: DispatchObserver) {
        self.inner.observers.write().push(observer);
    }

    fn current_tag(&self) -> u64 {
        (self.inner.tag_resolver.read())()
    }

    fn queue_tag_for(&self, window_tag: u64) -> u64 {
        match self.inner.mode {
            DispatchMode::Legacy => LEGACY_TAG,
            DispatchMode::PerApplication => window_tag,
        }
    }

    /// Creates a window owned by the current application. Requires
    /// `AWTPermission("showWindow")`. Starts the X-connection thread and the
    /// appropriate dispatcher on first use (see [`DispatchMode`]).
    ///
    /// # Errors
    ///
    /// [`jmp_vm::VmError::Security`] if the permission is denied; spawn
    /// errors if the VM is shutting down.
    pub fn create_window(&self, title: &str) -> Result<Window> {
        self.inner
            .vm
            .check_permission(&Permission::awt("showWindow"))?;
        let tag = self.current_tag();
        self.ensure_input_thread()?;
        self.ensure_dispatcher(self.queue_tag_for(tag))?;
        let id = self.inner.display.create_window(self.inner.client, title);
        let window = WindowInner::new(id, title.to_string(), tag);
        self.inner.windows.write().insert(id, Arc::clone(&window));
        Ok(Window {
            inner: window,
            toolkit: self.clone(),
        })
    }

    /// Re-obtains a handle to an open window by id.
    pub fn window(&self, id: WindowId) -> Option<Window> {
        self.inner.windows.read().get(&id).map(|inner| Window {
            inner: Arc::clone(inner),
            toolkit: self.clone(),
        })
    }

    /// Ids of open windows belonging to application `tag`, sorted.
    pub fn windows_of_app(&self, tag: u64) -> Vec<WindowId> {
        let mut ids: Vec<WindowId> = self
            .inner
            .windows
            .read()
            .values()
            .filter(|w| w.tag == tag)
            .map(|w| w.id)
            .collect();
        ids.sort();
        ids
    }

    /// Total open windows.
    pub fn window_count(&self) -> usize {
        self.inner.windows.read().len()
    }

    pub(crate) fn close_window(&self, id: WindowId) {
        if let Some(window) = self.inner.windows.write().remove(&id) {
            window
                .closed
                .store(true, std::sync::atomic::Ordering::SeqCst);
            self.inner.display.destroy_window(id);
        }
    }

    /// Closes every window of application `tag` and (in
    /// [`DispatchMode::PerApplication`]) retires its queue and dispatcher —
    /// the toolkit half of application teardown ("close all windows that are
    /// associated with the application", paper §5.1).
    pub fn close_app(&self, tag: u64) {
        for id in self.windows_of_app(tag) {
            self.close_window(id);
        }
        if self.inner.mode == DispatchMode::PerApplication {
            if let Some(queue) = self.inner.queues.lock().remove(&tag) {
                queue.close();
            }
            self.inner.dispatchers.lock().remove(&tag);
        }
    }

    /// The event queue serving application `tag`, if one exists yet.
    pub fn queue_of(&self, tag: u64) -> Option<EventQueue> {
        self.inner
            .queues
            .lock()
            .get(&self.queue_tag_for(tag))
            .cloned()
    }

    /// The dispatcher thread serving application `tag`, if started.
    pub fn dispatcher_of(&self, tag: u64) -> Option<VmThread> {
        self.inner
            .dispatchers
            .lock()
            .get(&self.queue_tag_for(tag))
            .cloned()
    }

    /// The X-connection thread, if started.
    pub fn input_thread(&self) -> Option<VmThread> {
        self.inner.input_thread.lock().clone()
    }

    /// Runs `f` with the toolkit's (system-code) authority: the toolkit is
    /// part of the runtime, so its internal thread management must not be
    /// limited by whichever application happens to call into it — the same
    /// privilege-assertion pattern as the paper's Font example (§5.6).
    fn as_system<R>(f: impl FnOnce() -> R) -> R {
        let domain = Arc::new(jmp_security::ProtectionDomain::system());
        jmp_vm::stack::call_as("jmp.awt.Toolkit", domain, || {
            jmp_vm::stack::do_privileged(f)
        })
    }

    fn ensure_input_thread(&self) -> Result<()> {
        let mut slot = self.inner.input_thread.lock();
        if slot.is_some() {
            return Ok(());
        }
        let inbox = {
            let mut guard = self.inner.inbox.lock();
            guard.take().ok_or_else(|| {
                jmp_vm::VmError::illegal_state("toolkit input thread previously failed to start")
            })?
        };
        let toolkit = self.clone();
        // PerApplication (the paper's fix, §5.4): the thread that talks to
        // the display server is a *system* thread, in the system group.
        // Legacy (the paper's complaint, Feature 6): it starts in whatever
        // group is current — i.e. the first application to open a window.
        let builder = self
            .inner
            .vm
            .thread_builder()
            .name("awt-input")
            .daemon(true)
            // The X-connection thread serves the whole VM for its lifetime;
            // charging it to whichever application opened the first window
            // would leak a thread slot that application can never drain.
            .detached();
        let builder = match self.inner.mode {
            DispatchMode::PerApplication => builder.group(self.input_group()),
            DispatchMode::Legacy => builder,
        };
        let thread = Toolkit::as_system(|| builder.spawn(move |_vm| toolkit.input_loop(&inbox)))?;
        *slot = Some(thread);
        Ok(())
    }

    fn input_group(&self) -> ThreadGroup {
        self.inner.vm.system_group().clone()
    }

    fn input_loop(&self, inbox: &EventQueue) {
        // The X-connection thread is a system helper: watchdogged so a hang
        // in routing is as visible as a hung dispatcher. While the display
        // is quiet it parks and blocks for real — zero periodic wakeups —
        // waking only on input, disconnect, or interruption, and forwarding
        // each burst as one batch.
        let watchdogs = self.inner.vm.obs().watchdogs().clone();
        let heartbeat = watchdogs.register("awt-input", None);
        loop {
            let drained = inbox.drain_observed(DISPATCH_BATCH, |parked| {
                if parked {
                    heartbeat.park();
                } else {
                    heartbeat.unpark();
                }
            });
            match drained {
                Ok(batch) if batch.is_empty() => break, // display hung up
                Ok(mut batch) => {
                    heartbeat.beat();
                    self.route_batch(&mut batch);
                }
                Err(_) => break, // interrupted: teardown
            }
        }
        watchdogs.deregister("awt-input");
    }

    /// Routes a burst of display events to their queues: "when an event
    /// occurs in a GUI element, the enclosing window and its application are
    /// found; then the AWT event is put on the particular event queue of
    /// that application" (paper §5.4). Consecutive events bound for the same
    /// queue are published with one [`EventQueue::push_batch`] — one lock
    /// acquisition and at most one dispatcher wakeup per run, with
    /// cross-queue ordering preserved. Drains `events`.
    fn route_batch(&self, events: &mut Vec<Event>) {
        let mut run: Vec<Event> = Vec::new();
        let mut run_queue: Option<(u64, EventQueue)> = None;
        for event in events.drain(..) {
            let Some(window) = self.inner.windows.read().get(&event.window).cloned() else {
                continue; // window closed while the event was in flight
            };
            let queue_tag = self.queue_tag_for(window.tag);
            match &run_queue {
                Some((tag, _)) if *tag == queue_tag => run.push(event),
                _ => {
                    if let Some((_, queue)) = run_queue.take() {
                        queue.push_batch(run.drain(..));
                    }
                    let queue = self.inner.queues.lock().get(&queue_tag).cloned();
                    if let Some(queue) = queue {
                        run.push(event);
                        run_queue = Some((queue_tag, queue));
                    }
                }
            }
        }
        if let Some((_, queue)) = run_queue {
            queue.push_batch(run.drain(..));
        }
    }

    fn ensure_dispatcher(&self, queue_tag: u64) -> Result<()> {
        {
            let queues = self.inner.queues.lock();
            if queues.contains_key(&queue_tag) {
                return Ok(());
            }
        }
        // Queues feed the VM-wide coalescing/drop counters so `vmstat`
        // accounts for every event that was merged away or lost post-close.
        // In PerApplication mode the queue is owned by the application
        // opening its first window: every buffered slot is charged against
        // that application's ledger (quota `queued.events`). The legacy
        // shared queue has no single owner and stays unaccounted.
        let metrics = self.inner.vm.obs().vm_metrics();
        let owner = match self.inner.mode {
            DispatchMode::PerApplication => jmp_vm::thread::current_app_context(),
            DispatchMode::Legacy => None,
        };
        let queue = EventQueue::with_owner(
            Some(metrics.counter("events.coalesced")),
            Some(metrics.counter("events.dropped")),
            owner,
        );
        self.inner.queues.lock().insert(queue_tag, queue.clone());
        // The dispatcher spawns in the *current* thread's group: for
        // PerApplication this is the application opening its first window
        // (paper §5.4: a non-daemon thread in the application's group); for
        // Legacy it is whichever application got here first (Fig 2).
        let toolkit = self.clone();
        let name = match self.inner.mode {
            DispatchMode::Legacy => "awt-dispatch".to_string(),
            DispatchMode::PerApplication => format!("awt-dispatch-{queue_tag}"),
        };
        let watchdog_name = name.clone();
        let thread = self
            .inner
            .vm
            .thread_builder()
            .name(name)
            .daemon(false)
            .spawn(move |_vm| toolkit.dispatch_loop(&queue, &watchdog_name, queue_tag))?;
        self.inner.dispatchers.lock().insert(queue_tag, thread);
        Ok(())
    }

    fn dispatch_loop(&self, queue: &EventQueue, watchdog_name: &str, queue_tag: u64) {
        // Heartbeat discipline: *parked* while blocked on an empty queue
        // (idle ≠ stalled, and an idle dispatcher costs zero wakeups),
        // beating once per delivered event — so only a dispatcher stuck
        // *inside a listener* goes silent past the stall threshold.
        let watchdogs = self.inner.vm.obs().watchdogs().clone();
        let app = (queue_tag != LEGACY_TAG).then_some(queue_tag);
        let heartbeat = watchdogs.register(watchdog_name, app);
        loop {
            let drained = queue.drain_observed(DISPATCH_BATCH, |parked| {
                if parked {
                    heartbeat.park();
                } else {
                    heartbeat.unpark();
                }
            });
            match drained {
                Ok(batch) if batch.is_empty() => break, // closed and drained
                Ok(batch) => {
                    for event in batch {
                        heartbeat.beat();
                        self.dispatch(event);
                    }
                }
                Err(_) => break, // interrupted: application teardown
            }
        }
        watchdogs.deregister(watchdog_name);
    }

    /// Delivers one event to its listeners (on the calling dispatcher
    /// thread — the thread identity applications observe in callbacks).
    fn dispatch(&self, event: Event) {
        let Some(window) = self.inner.windows.read().get(&event.window).cloned() else {
            return;
        };
        // Dispatch runs under the event's trace context when it carries one
        // (the thread that posted the event), else under the dispatcher's
        // own inherited context; the span makes the enqueue→dispatch hop
        // visible either way.
        let prev_trace = match event.trace {
            Some(ctx) => jmp_obs::trace::swap(Some(ctx)),
            None => jmp_obs::trace::current(),
        };
        let span = self
            .inner
            .vm
            .obs()
            .recorder()
            .begin(jmp_obs::SpanCategory::Dispatch, format!("dispatch:{event}"));
        match (&event.kind, event.component) {
            (EventKind::WindowClosing, _) => {
                let listeners = window.closing_listeners.read().clone();
                for listener in listeners {
                    listener(&event);
                }
            }
            (EventKind::KeyTyped(c), Some(component_id)) => {
                if let Some(record) = window.component(component_id) {
                    if record.kind == ComponentKind::TextField {
                        record.text.lock().push(*c);
                    }
                    let listeners = record.listeners.read().clone();
                    for listener in listeners {
                        listener(&event);
                    }
                }
            }
            (_, Some(component_id)) => {
                if let Some(record) = window.component(component_id) {
                    let listeners = record.listeners.read().clone();
                    for listener in listeners {
                        listener(&event);
                    }
                }
            }
            (_, None) => {}
        }
        let observers = self.inner.observers.read().clone();
        if !observers.is_empty() {
            let latency = event.injected_at.elapsed();
            for observer in &observers {
                observer(&event, window.tag, latency);
            }
        }
        drop(span);
        jmp_obs::trace::install(prev_trace);
    }

    /// Waits until `predicate` is true or `timeout` elapses, polling — a
    /// test/bench helper for asserting on asynchronous dispatch.
    pub fn wait_until(timeout: Duration, predicate: impl Fn() -> bool) -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if predicate() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        predicate()
    }
}

impl fmt::Debug for Toolkit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Toolkit")
            .field("mode", &self.inner.mode)
            .field("client", &self.inner.client)
            .field("windows", &self.window_count())
            .field("queues", &self.inner.queues.lock().len())
            .finish()
    }
}
