//! # jmp-awt
//!
//! A simulated windowing stack for the jmproc runtime: a [`DisplayServer`]
//! standing in for the X server, and a [`Toolkit`] standing in for the AWT.
//!
//! Its purpose is to reproduce the event-dispatching story of Balfanz &
//! Gong (ICDCS 1998): the original single-dispatcher architecture (paper
//! §3.2, Fig 2 — [`DispatchMode::Legacy`]) and the multi-processing redesign
//! with per-application event queues and dispatcher threads (paper §5.4,
//! Fig 4 — [`DispatchMode::PerApplication`]). Tests and benches inject
//! synthetic input at the display and observe *which thread, in which thread
//! group,* executes the callbacks, and with what latency.
//!
//! # Example
//!
//! ```
//! use jmp_awt::{DispatchMode, DisplayServer, Toolkit};
//! use jmp_vm::Vm;
//! use std::sync::atomic::{AtomicUsize, Ordering};
//! use std::sync::Arc;
//! use std::time::Duration;
//!
//! let vm = Vm::new();
//! let display = DisplayServer::new();
//! let toolkit = Toolkit::connect(vm.clone(), display.clone(), DispatchMode::PerApplication);
//!
//! let window = toolkit.create_window("demo")?;
//! let button = window.add_button("Save");
//! let clicks = Arc::new(AtomicUsize::new(0));
//! let counter = Arc::clone(&clicks);
//! window.on_action(button, move |_event| {
//!     counter.fetch_add(1, Ordering::SeqCst);
//! });
//!
//! display.inject_action(window.id(), button)?;
//! assert!(Toolkit::wait_until(Duration::from_secs(2), || {
//!     clicks.load(Ordering::SeqCst) == 1
//! }));
//! # vm.exit_unchecked(0);
//! # Ok::<(), jmp_vm::VmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod component;
mod display;
mod event;
mod queue;
mod toolkit;

pub use component::{ComponentKind, Listener, Window};
pub use display::{ClientId, DisplayServer};
pub use event::{ComponentId, Event, EventKind, WindowId};
pub use queue::EventQueue;
pub use toolkit::{AppTagResolver, DispatchMode, DispatchObserver, Toolkit};

#[cfg(test)]
mod tests {
    use super::*;
    use jmp_vm::{thread, Vm};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    fn setup(mode: DispatchMode) -> (Vm, DisplayServer, Toolkit) {
        let vm = Vm::new();
        let display = DisplayServer::new();
        let toolkit = Toolkit::connect(vm.clone(), display.clone(), mode);
        (vm, display, toolkit)
    }

    #[test]
    fn button_click_reaches_listener() {
        let (vm, display, toolkit) = setup(DispatchMode::PerApplication);
        let window = toolkit.create_window("app").unwrap();
        let button = window.add_button("Go");
        let hits = Arc::new(AtomicUsize::new(0));
        let hits2 = Arc::clone(&hits);
        window.on_action(button, move |_| {
            hits2.fetch_add(1, Ordering::SeqCst);
        });
        display.inject_action(window.id(), button).unwrap();
        display.inject_action(window.id(), button).unwrap();
        assert!(Toolkit::wait_until(Duration::from_secs(2), || hits
            .load(Ordering::SeqCst)
            == 2));
        vm.exit_unchecked(0);
    }

    #[test]
    fn typed_keys_accumulate_in_text_field() {
        let (vm, display, toolkit) = setup(DispatchMode::PerApplication);
        let window = toolkit.create_window("editor").unwrap();
        let field = window.add_text_field();
        display.inject_text(window.id(), field, "hello").unwrap();
        assert!(Toolkit::wait_until(Duration::from_secs(2), || window
            .text_of(field)
            .as_deref()
            == Some("hello")));
        vm.exit_unchecked(0);
    }

    #[test]
    fn callbacks_run_on_dispatcher_thread_in_app_group() {
        // Fig 4: the dispatching thread belongs to the application's group.
        let (vm, display, toolkit) = setup(DispatchMode::PerApplication);
        let app_group = vm.main_group().new_child("app-7").unwrap();
        let toolkit2 = toolkit.clone();
        let display2 = display.clone();
        let observed = Arc::new(parking_lot::Mutex::new(None));
        let observed2 = Arc::clone(&observed);
        let t = vm
            .thread_builder()
            .group(app_group.clone())
            .name("app-main")
            .spawn(move |_| {
                let window = toolkit2.create_window("w").unwrap();
                let button = window.add_button("b");
                window.on_action(button, move |_| {
                    *observed2.lock() = thread::current().map(|t| t.group().clone());
                });
                display2.inject_action(window.id(), button).unwrap();
            })
            .unwrap();
        t.join().unwrap();
        assert!(Toolkit::wait_until(Duration::from_secs(2), || observed
            .lock()
            .is_some()));
        let group = observed.lock().clone().unwrap();
        assert!(
            app_group.same_group(&group),
            "dispatcher must run in the app's group, got {}",
            group.name()
        );
        // And the X-connection thread lives in the system group (§5.4).
        let input = toolkit.input_thread().unwrap();
        assert!(vm.system_group().same_group(input.group()));
        vm.exit_unchecked(0);
    }

    #[test]
    fn legacy_mode_shares_one_dispatcher() {
        // Fig 2: both apps' callbacks run on the same thread, and that
        // thread sits in the first app's group.
        let (vm, display, toolkit) = setup(DispatchMode::Legacy);
        let group_a = vm.main_group().new_child("app-a").unwrap();
        let group_b = vm.main_group().new_child("app-b").unwrap();

        let seen: Arc<parking_lot::Mutex<Vec<jmp_vm::ThreadId>>> =
            Arc::new(parking_lot::Mutex::new(Vec::new()));

        let make_app = |group: jmp_vm::ThreadGroup, title: &'static str| {
            let toolkit = toolkit.clone();
            let display = display.clone();
            let seen = Arc::clone(&seen);
            vm.thread_builder()
                .group(group)
                .name(title)
                .spawn(move |_| {
                    let window = toolkit.create_window(title).unwrap();
                    let button = window.add_button("b");
                    let seen2 = Arc::clone(&seen);
                    window.on_action(button, move |_| {
                        seen2.lock().push(thread::current().unwrap().id());
                    });
                    display.inject_action(window.id(), button).unwrap();
                })
                .unwrap()
        };
        make_app(group_a.clone(), "first").join().unwrap();
        make_app(group_b, "second").join().unwrap();

        assert!(Toolkit::wait_until(Duration::from_secs(2), || seen
            .lock()
            .len()
            == 2));
        let ids = seen.lock().clone();
        assert_eq!(ids[0], ids[1], "legacy mode: a single dispatcher thread");

        let dispatcher = toolkit.dispatcher_of(0).unwrap();
        assert!(
            group_a.same_group(dispatcher.group()),
            "legacy dispatcher lands in the first app's group (the paper's complaint)"
        );
        vm.exit_unchecked(0);
    }

    #[test]
    fn per_app_mode_uses_distinct_dispatchers_and_queues() {
        let (vm, display, toolkit) = setup(DispatchMode::PerApplication);
        let tag = Arc::new(AtomicUsize::new(1));
        let tag2 = Arc::clone(&tag);
        toolkit.set_tag_resolver(Arc::new(move || tag2.load(Ordering::SeqCst) as u64));

        let w1 = toolkit.create_window("one").unwrap();
        tag.store(2, Ordering::SeqCst);
        let w2 = toolkit.create_window("two").unwrap();
        assert_eq!(w1.app_tag(), 1);
        assert_eq!(w2.app_tag(), 2);

        let q1 = toolkit.queue_of(1).unwrap();
        let q2 = toolkit.queue_of(2).unwrap();
        assert!(!q1.same_queue(&q2));
        let d1 = toolkit.dispatcher_of(1).unwrap();
        let d2 = toolkit.dispatcher_of(2).unwrap();
        assert_ne!(d1.id(), d2.id());

        // Events for app 2 flow through q2 only.
        let b2 = w2.add_button("x");
        display.inject_action(w2.id(), b2).unwrap();
        assert!(Toolkit::wait_until(Duration::from_secs(2), || q2
            .total_dequeued()
            == 1));
        assert_eq!(q1.total_enqueued(), 0);
        vm.exit_unchecked(0);
    }

    #[test]
    fn close_app_retires_windows_and_queue() {
        let (vm, display, toolkit) = setup(DispatchMode::PerApplication);
        toolkit.set_tag_resolver(Arc::new(|| 5));
        let window = toolkit.create_window("to-close").unwrap();
        assert_eq!(toolkit.window_count(), 1);
        assert_eq!(display.window_count(), 1);
        let queue = toolkit.queue_of(5).unwrap();

        toolkit.close_app(5);
        assert!(window.is_closed());
        assert_eq!(toolkit.window_count(), 0);
        assert_eq!(display.window_count(), 0);
        assert!(queue.is_closed());
        // The dispatcher drains and exits.
        let dispatcher = toolkit.dispatcher_of(5);
        assert!(dispatcher.is_none());
        vm.exit_unchecked(0);
    }

    #[test]
    fn window_closing_listener_fires() {
        let (vm, display, toolkit) = setup(DispatchMode::PerApplication);
        let window = toolkit.create_window("closable").unwrap();
        let fired = Arc::new(AtomicUsize::new(0));
        let fired2 = Arc::clone(&fired);
        window.on_closing(move |_| {
            fired2.fetch_add(1, Ordering::SeqCst);
        });
        display.inject_close(window.id()).unwrap();
        assert!(Toolkit::wait_until(Duration::from_secs(2), || fired
            .load(Ordering::SeqCst)
            == 1));
        vm.exit_unchecked(0);
    }

    #[test]
    fn show_window_requires_awt_permission() {
        use jmp_security::{CodeSource, ProtectionDomain};
        let (vm, _display, toolkit) = setup(DispatchMode::PerApplication);
        let untrusted = Arc::new(ProtectionDomain::untrusted(CodeSource::remote(
            "http://evil/x",
        )));
        let denied = jmp_vm::stack::call_as("Evil", untrusted, || toolkit.create_window("nope"));
        assert!(denied.unwrap_err().is_security());
        assert_eq!(toolkit.window_count(), 0);
        vm.exit_unchecked(0);
    }

    #[test]
    fn labels_and_menu_items() {
        let (vm, _display, toolkit) = setup(DispatchMode::PerApplication);
        let window = toolkit.create_window("menus").unwrap();
        let save = window.add_menu_item("Save File");
        let label = window.add_label("status: ok");
        assert_eq!(window.label_of(save).as_deref(), Some("Save File"));
        assert_eq!(window.label_of(label).as_deref(), Some("status: ok"));
        window.set_text(window.add_text_field(), "preset");
        vm.exit_unchecked(0);
    }

    #[test]
    fn dispatch_observer_sees_latency() {
        let (vm, display, toolkit) = setup(DispatchMode::PerApplication);
        let samples = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let samples2 = Arc::clone(&samples);
        toolkit.set_dispatch_observer(Arc::new(move |_event, _tag, latency| {
            samples2.lock().push(latency);
        }));
        let window = toolkit.create_window("timed").unwrap();
        let button = window.add_button("b");
        display.inject_action(window.id(), button).unwrap();
        assert!(Toolkit::wait_until(Duration::from_secs(2), || !samples
            .lock()
            .is_empty()));
        vm.exit_unchecked(0);
    }
}
