use std::fmt;
use std::time::Instant;

/// Identifier of a window, issued by the [`DisplayServer`](crate::DisplayServer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WindowId(pub u64);

impl fmt::Display for WindowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w:{}", self.0)
    }
}

/// Identifier of a component within a window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ComponentId(pub u64);

impl fmt::Display for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c:{}", self.0)
    }
}

/// What happened (a reduced AWT event vocabulary — enough for the paper's
/// scenarios: button/menu activation, typing into fields, window close).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EventKind {
    /// A button or menu item was activated (AWT `ActionEvent`).
    Action,
    /// A mouse click at window coordinates.
    Click {
        /// X coordinate.
        x: i32,
        /// Y coordinate.
        y: i32,
    },
    /// A character was typed into a component.
    KeyTyped(char),
    /// The user asked to close the window.
    WindowClosing,
}

/// An event as delivered to listeners: where it happened plus what happened.
///
/// Carries the injection timestamp so dispatch latency — the quantity
/// experiment E2 (Fig 2 vs Fig 4) measures — can be observed at delivery,
/// and the creating thread's trace context so dispatch stays causally
/// attached to whatever posted the event.
#[derive(Debug, Clone)]
pub struct Event {
    /// The window the event targets.
    pub window: WindowId,
    /// The component within the window, if the event is component-directed.
    pub component: Option<ComponentId>,
    /// What happened.
    pub kind: EventKind,
    /// When the display server accepted the input.
    pub injected_at: Instant,
    /// The trace context of the thread that created the event, if it was
    /// inside a traced request (an application posting to its own queue).
    /// Raw display input starts untraced.
    pub trace: Option<jmp_obs::TraceCtx>,
}

impl Event {
    /// Creates an event stamped now, carrying the creating thread's trace
    /// context.
    pub fn new(window: WindowId, component: Option<ComponentId>, kind: EventKind) -> Event {
        Event {
            window,
            component,
            kind,
            injected_at: Instant::now(),
            trace: jmp_obs::trace::current(),
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.component {
            Some(c) => write!(f, "{:?}@{}/{}", self.kind, self.window, c),
            None => write!(f, "{:?}@{}", self.kind, self.window),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_is_stamped_at_creation() {
        let before = Instant::now();
        let ev = Event::new(WindowId(1), None, EventKind::WindowClosing);
        assert!(ev.injected_at >= before);
        assert!(ev.injected_at <= Instant::now());
    }

    #[test]
    fn display_formats() {
        let ev = Event::new(WindowId(1), Some(ComponentId(2)), EventKind::Action);
        let text = ev.to_string();
        assert!(text.contains("w:1") && text.contains("c:2"));
        assert_eq!(WindowId(3).to_string(), "w:3");
    }
}
