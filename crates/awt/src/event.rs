use std::fmt;
use std::time::Instant;

/// Identifier of a window, issued by the [`DisplayServer`](crate::DisplayServer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WindowId(pub u64);

impl fmt::Display for WindowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w:{}", self.0)
    }
}

/// Identifier of a component within a window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ComponentId(pub u64);

impl fmt::Display for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c:{}", self.0)
    }
}

/// What happened (a reduced AWT event vocabulary — enough for the paper's
/// scenarios: button/menu activation, typing into fields, window close).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EventKind {
    /// A button or menu item was activated (AWT `ActionEvent`).
    Action,
    /// A mouse click at window coordinates.
    Click {
        /// X coordinate.
        x: i32,
        /// Y coordinate.
        y: i32,
    },
    /// A character was typed into a component.
    KeyTyped(char),
    /// The user asked to close the window.
    WindowClosing,
    /// A region needs repainting (AWT `PaintEvent`). Paints are
    /// *coalescible*: consecutive paints for the same target collapse into
    /// one — repainting once covers every merged request.
    Paint,
    /// The pointer moved to window coordinates (AWT `MouseEvent.MOUSE_MOVED`).
    /// Move events are coalescible: only the newest position matters.
    MouseMoved {
        /// X coordinate.
        x: i32,
        /// Y coordinate.
        y: i32,
    },
}

impl EventKind {
    /// Returns `true` if consecutive events of this kind for the same
    /// target may collapse into one (the AWT coalescing rule: paints and
    /// mouse moves are idempotent-or-superseded, everything else is not).
    pub fn is_coalescible(&self) -> bool {
        matches!(self, EventKind::Paint | EventKind::MouseMoved { .. })
    }

    /// Returns `true` if `other` is the same coalescing class as `self`
    /// (Paint merges with Paint, MouseMoved with MouseMoved — never across).
    pub fn same_coalescing_class(&self, other: &EventKind) -> bool {
        matches!(
            (self, other),
            (EventKind::Paint, EventKind::Paint)
                | (EventKind::MouseMoved { .. }, EventKind::MouseMoved { .. })
        )
    }
}

/// An event as delivered to listeners: where it happened plus what happened.
///
/// Carries the injection timestamp so dispatch latency — the quantity
/// experiment E2 (Fig 2 vs Fig 4) measures — can be observed at delivery,
/// and the creating thread's trace context so dispatch stays causally
/// attached to whatever posted the event.
#[derive(Debug, Clone)]
pub struct Event {
    /// The window the event targets.
    pub window: WindowId,
    /// The component within the window, if the event is component-directed.
    pub component: Option<ComponentId>,
    /// What happened.
    pub kind: EventKind,
    /// When the display server accepted the input.
    pub injected_at: Instant,
    /// The trace context of the thread that created the event, if it was
    /// inside a traced request (an application posting to its own queue).
    /// Raw display input starts untraced.
    pub trace: Option<jmp_obs::TraceCtx>,
    /// How many earlier events this one absorbed by coalescing (0 for an
    /// event delivered as injected). A merged event keeps the *newest* kind
    /// and the *oldest* `injected_at`, so latency measurements still span
    /// the whole burst.
    pub coalesced: u32,
}

impl Event {
    /// Creates an event stamped now, carrying the creating thread's trace
    /// context.
    pub fn new(window: WindowId, component: Option<ComponentId>, kind: EventKind) -> Event {
        Event {
            window,
            component,
            kind,
            injected_at: Instant::now(),
            trace: jmp_obs::trace::current(),
            coalesced: 0,
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.component {
            Some(c) => write!(f, "{:?}@{}/{}", self.kind, self.window, c)?,
            None => write!(f, "{:?}@{}", self.kind, self.window)?,
        }
        if self.coalesced > 0 {
            // The merged-count attribute: dispatch spans are named from this
            // Display impl, so a coalesced delivery is visible in traces.
            write!(f, " (x{})", self.coalesced + 1)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_is_stamped_at_creation() {
        let before = Instant::now();
        let ev = Event::new(WindowId(1), None, EventKind::WindowClosing);
        assert!(ev.injected_at >= before);
        assert!(ev.injected_at <= Instant::now());
    }

    #[test]
    fn display_formats() {
        let ev = Event::new(WindowId(1), Some(ComponentId(2)), EventKind::Action);
        let text = ev.to_string();
        assert!(text.contains("w:1") && text.contains("c:2"));
        assert_eq!(WindowId(3).to_string(), "w:3");
    }

    #[test]
    fn display_shows_merged_count() {
        let mut ev = Event::new(WindowId(1), None, EventKind::Paint);
        assert!(!ev.to_string().contains("(x"));
        ev.coalesced = 3;
        let text = ev.to_string();
        assert!(text.ends_with("(x4)"), "got {text}");
    }

    #[test]
    fn coalescing_classes() {
        let paint = EventKind::Paint;
        let mv = EventKind::MouseMoved { x: 1, y: 2 };
        assert!(paint.is_coalescible() && mv.is_coalescible());
        assert!(!EventKind::Action.is_coalescible());
        assert!(paint.same_coalescing_class(&EventKind::Paint));
        assert!(mv.same_coalescing_class(&EventKind::MouseMoved { x: 9, y: 9 }));
        assert!(!paint.same_coalescing_class(&mv));
        assert!(!EventKind::Action.same_coalescing_class(&EventKind::Action));
    }
}
