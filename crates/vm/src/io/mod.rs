//! Streams: the runtime's standard-I/O abstraction, with the paper's
//! ownership-restricted close semantics.
//!
//! The paper observes that in a multi-processing runtime "multiple
//! applications have their standard streams point to the same device"; if
//! one closes such a stream, the others lose it. Its rule: "applications may
//! only close streams that they opened. Streams that are passed to them like
//! the standard input and output streams must not be closed" (§5.1).
//!
//! We enforce this structurally: every [`InStream`]/[`OutStream`] records the
//! [`IoToken`] of the holder that opened it, and [`InStream::close`] /
//! [`OutStream::close`] demand the matching token. The application layer
//! assigns one token per application and closes only owned streams at
//! teardown.

/// In-memory blocking pipes (the shell's pipeline primitive).
pub mod pipe;

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::VmError;
use crate::Result;

pub use pipe::{
    pipe, pipe_observed, pipe_owned, pipe_traced, PipeReader, PipeWriter, DEFAULT_PIPE_CAPACITY,
};

/// Identifies the holder (application, shell, terminal, the system) that
/// opened a stream and is therefore entitled to close it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IoToken(pub u64);

impl IoToken {
    /// The runtime-internal owner used for the bootstrap streams.
    pub const SYSTEM: IoToken = IoToken(0);
}

/// A blocking byte source backing an [`InStream`]. Implementations must be
/// internally synchronized. Blocking reads should poll
/// [`crate::thread::check_interrupt`] so application teardown can unstick
/// them.
pub trait ReadDevice: Send + Sync {
    /// Reads up to `buf.len()` bytes; `Ok(0)` means end-of-file.
    ///
    /// # Errors
    ///
    /// [`VmError::Interrupted`] on interruption, [`VmError::StreamClosed`] if
    /// the device is gone, [`VmError::Io`] for device-specific failures.
    fn read(&self, buf: &mut [u8]) -> Result<usize>;

    /// Releases the underlying resource. Called at most once, by the stream
    /// that owns the device.
    fn close_device(&self) {}

    /// Optional downcasting hook: devices with a richer identity (e.g. a
    /// terminal, paper §6.2: "applications can retrieve a reference to the
    /// terminal object itself") return `Some(self)`.
    fn as_any(&self) -> Option<&(dyn std::any::Any + Send + Sync)> {
        None
    }
}

/// A blocking byte sink backing an [`OutStream`]. Same synchronization and
/// interruption expectations as [`ReadDevice`].
pub trait WriteDevice: Send + Sync {
    /// Writes all of `data`.
    ///
    /// # Errors
    ///
    /// As [`ReadDevice::read`].
    fn write(&self, data: &[u8]) -> Result<()>;

    /// Flushes buffered data, if the device buffers.
    ///
    /// # Errors
    ///
    /// As [`ReadDevice::read`].
    fn flush(&self) -> Result<()> {
        Ok(())
    }

    /// Releases the underlying resource. Called at most once.
    fn close_device(&self) {}
}

/// An input stream handle: a shared [`ReadDevice`] plus close-ownership.
///
/// Clones share the device *and* the closed flag (they are the same stream).
#[derive(Clone)]
pub struct InStream {
    device: Arc<dyn ReadDevice>,
    owner: IoToken,
    closed: Arc<AtomicBool>,
}

impl InStream {
    /// Wraps `device` in a stream owned by `owner`.
    pub fn new(device: Arc<dyn ReadDevice>, owner: IoToken) -> InStream {
        InStream {
            device,
            owner,
            closed: Arc::new(AtomicBool::new(false)),
        }
    }

    /// An always-empty stream (immediate end-of-file).
    pub fn null(owner: IoToken) -> InStream {
        InStream::new(Arc::new(NullDevice), owner)
    }

    /// A stream over the read end of a pipe.
    pub fn from_pipe(reader: PipeReader, owner: IoToken) -> InStream {
        InStream::new(Arc::new(PipeReadDevice(reader)), owner)
    }

    /// A stream over an in-memory byte buffer.
    pub fn from_bytes(bytes: impl Into<Vec<u8>>, owner: IoToken) -> InStream {
        InStream::new(Arc::new(MemSource::new(bytes.into())), owner)
    }

    /// The token of the holder that opened this stream.
    pub fn owner(&self) -> IoToken {
        self.owner
    }

    /// Returns `true` once the stream has been closed.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }

    /// Reads up to `buf.len()` bytes. `Ok(0)` is end-of-file.
    ///
    /// # Errors
    ///
    /// [`VmError::StreamClosed`] after close; device errors otherwise.
    pub fn read(&self, buf: &mut [u8]) -> Result<usize> {
        if self.is_closed() {
            return Err(VmError::StreamClosed);
        }
        self.device.read(buf)
    }

    /// Reads until end-of-file, returning all bytes.
    ///
    /// # Errors
    ///
    /// As [`InStream::read`].
    pub fn read_to_end(&self) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        let mut buf = [0u8; 4096];
        loop {
            let n = self.read(&mut buf)?;
            if n == 0 {
                return Ok(out);
            }
            out.extend_from_slice(&buf[..n]);
        }
    }

    /// Reads one line (up to and excluding `\n`). Returns `None` at
    /// end-of-file with no buffered bytes.
    ///
    /// # Errors
    ///
    /// As [`InStream::read`].
    pub fn read_line(&self) -> Result<Option<String>> {
        let mut line = Vec::new();
        let mut byte = [0u8; 1];
        loop {
            let n = self.read(&mut byte)?;
            if n == 0 {
                if line.is_empty() {
                    return Ok(None);
                }
                return Ok(Some(String::from_utf8_lossy(&line).into_owned()));
            }
            if byte[0] == b'\n' {
                return Ok(Some(String::from_utf8_lossy(&line).into_owned()));
            }
            line.push(byte[0]);
        }
    }

    /// Closes the stream. Only the holder that opened it may close it
    /// (paper §5.1).
    ///
    /// # Errors
    ///
    /// [`VmError::NotStreamOwner`] if `by` is not the opening token.
    pub fn close(&self, by: IoToken) -> Result<()> {
        if by != self.owner {
            return Err(VmError::NotStreamOwner);
        }
        if !self.closed.swap(true, Ordering::SeqCst) {
            self.device.close_device();
        }
        Ok(())
    }

    /// Returns `true` if `other` is a handle to the same stream.
    pub fn same_stream(&self, other: &InStream) -> bool {
        Arc::ptr_eq(&self.closed, &other.closed)
    }

    /// The backing device's [`ReadDevice::as_any`] hook, for retrieving
    /// richer device identities (e.g. the terminal).
    pub fn device_any(&self) -> Option<&(dyn std::any::Any + Send + Sync)> {
        self.device.as_any()
    }
}

impl fmt::Debug for InStream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("InStream")
            .field("owner", &self.owner)
            .field("closed", &self.is_closed())
            .finish()
    }
}

/// An output stream handle: a shared [`WriteDevice`] plus close-ownership.
#[derive(Clone)]
pub struct OutStream {
    device: Arc<dyn WriteDevice>,
    owner: IoToken,
    closed: Arc<AtomicBool>,
}

impl OutStream {
    /// Wraps `device` in a stream owned by `owner`.
    pub fn new(device: Arc<dyn WriteDevice>, owner: IoToken) -> OutStream {
        OutStream {
            device,
            owner,
            closed: Arc::new(AtomicBool::new(false)),
        }
    }

    /// A stream that discards everything.
    pub fn null(owner: IoToken) -> OutStream {
        OutStream::new(Arc::new(NullDevice), owner)
    }

    /// A stream over the write end of a pipe.
    pub fn from_pipe(writer: PipeWriter, owner: IoToken) -> OutStream {
        OutStream::new(Arc::new(PipeWriteDevice(writer)), owner)
    }

    /// The token of the holder that opened this stream.
    pub fn owner(&self) -> IoToken {
        self.owner
    }

    /// Returns `true` once the stream has been closed.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }

    /// Writes all of `data`.
    ///
    /// # Errors
    ///
    /// [`VmError::StreamClosed`] after close; device errors otherwise.
    pub fn write(&self, data: &[u8]) -> Result<()> {
        if self.is_closed() {
            return Err(VmError::StreamClosed);
        }
        self.device.write(data)
    }

    /// Writes a string.
    ///
    /// # Errors
    ///
    /// As [`OutStream::write`].
    pub fn print(&self, text: &str) -> Result<()> {
        self.write(text.as_bytes())
    }

    /// Writes a string followed by a newline.
    ///
    /// # Errors
    ///
    /// As [`OutStream::write`].
    pub fn println(&self, text: &str) -> Result<()> {
        self.write(text.as_bytes())?;
        self.write(b"\n")
    }

    /// Flushes the device.
    ///
    /// # Errors
    ///
    /// As [`OutStream::write`].
    pub fn flush(&self) -> Result<()> {
        if self.is_closed() {
            return Err(VmError::StreamClosed);
        }
        self.device.flush()
    }

    /// Closes the stream; owner-only, as for [`InStream::close`].
    ///
    /// # Errors
    ///
    /// [`VmError::NotStreamOwner`] if `by` is not the opening token.
    pub fn close(&self, by: IoToken) -> Result<()> {
        if by != self.owner {
            return Err(VmError::NotStreamOwner);
        }
        if !self.closed.swap(true, Ordering::SeqCst) {
            self.device.close_device();
        }
        Ok(())
    }

    /// Returns `true` if `other` is a handle to the same stream.
    pub fn same_stream(&self, other: &OutStream) -> bool {
        Arc::ptr_eq(&self.closed, &other.closed)
    }
}

impl fmt::Debug for OutStream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OutStream")
            .field("owner", &self.owner)
            .field("closed", &self.is_closed())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Devices
// ---------------------------------------------------------------------------

/// `/dev/null`: reads end immediately, writes vanish.
#[derive(Debug, Default)]
pub struct NullDevice;

impl ReadDevice for NullDevice {
    fn read(&self, _buf: &mut [u8]) -> Result<usize> {
        Ok(0)
    }
}

impl WriteDevice for NullDevice {
    fn write(&self, _data: &[u8]) -> Result<()> {
        Ok(())
    }
}

/// An in-memory byte source with a cursor (for canned stdin in tests and
/// for here-strings in the shell).
#[derive(Debug)]
pub struct MemSource {
    state: Mutex<(Vec<u8>, usize)>,
}

impl MemSource {
    /// Creates a source over `bytes`.
    pub fn new(bytes: Vec<u8>) -> MemSource {
        MemSource {
            state: Mutex::new((bytes, 0)),
        }
    }
}

impl ReadDevice for MemSource {
    fn read(&self, buf: &mut [u8]) -> Result<usize> {
        let mut state = self.state.lock();
        let (data, pos) = &mut *state;
        let n = buf.len().min(data.len() - *pos);
        buf[..n].copy_from_slice(&data[*pos..*pos + n]);
        *pos += n;
        Ok(n)
    }
}

/// An in-memory byte sink that accumulates everything written (for capturing
/// application output in tests and benches).
#[derive(Debug, Default, Clone)]
pub struct MemSink {
    buf: Arc<Mutex<Vec<u8>>>,
}

impl MemSink {
    /// Creates an empty sink.
    pub fn new() -> MemSink {
        MemSink::default()
    }

    /// Everything written so far.
    pub fn contents(&self) -> Vec<u8> {
        self.buf.lock().clone()
    }

    /// Everything written so far, lossily decoded as UTF-8.
    pub fn contents_string(&self) -> String {
        String::from_utf8_lossy(&self.buf.lock()).into_owned()
    }

    /// Discards accumulated contents.
    pub fn clear(&self) {
        self.buf.lock().clear();
    }
}

impl WriteDevice for MemSink {
    fn write(&self, data: &[u8]) -> Result<()> {
        self.buf.lock().extend_from_slice(data);
        Ok(())
    }
}

struct PipeReadDevice(PipeReader);

impl ReadDevice for PipeReadDevice {
    fn read(&self, buf: &mut [u8]) -> Result<usize> {
        self.0.read(buf)
    }

    fn close_device(&self) {
        self.0.close();
    }
}

struct PipeWriteDevice(PipeWriter);

impl WriteDevice for PipeWriteDevice {
    fn write(&self, data: &[u8]) -> Result<()> {
        self.0.write_all(data)
    }

    fn close_device(&self) {
        self.0.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const APP_A: IoToken = IoToken(10);
    const APP_B: IoToken = IoToken(20);

    #[test]
    fn mem_source_reads_in_chunks() {
        let input = InStream::from_bytes(b"hello world".to_vec(), APP_A);
        let mut buf = [0u8; 5];
        assert_eq!(input.read(&mut buf).unwrap(), 5);
        assert_eq!(&buf, b"hello");
        assert_eq!(input.read_to_end().unwrap(), b" world");
        assert_eq!(input.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn read_line_splits_and_signals_eof() {
        let input = InStream::from_bytes(b"one\ntwo\nthree".to_vec(), APP_A);
        assert_eq!(input.read_line().unwrap().as_deref(), Some("one"));
        assert_eq!(input.read_line().unwrap().as_deref(), Some("two"));
        assert_eq!(input.read_line().unwrap().as_deref(), Some("three"));
        assert_eq!(input.read_line().unwrap(), None);
    }

    #[test]
    fn mem_sink_captures_output() {
        let sink = MemSink::new();
        let out = OutStream::new(Arc::new(sink.clone()), APP_A);
        out.println("hello").unwrap();
        out.print("bye").unwrap();
        assert_eq!(sink.contents_string(), "hello\nbye");
        sink.clear();
        assert!(sink.contents().is_empty());
    }

    #[test]
    fn only_owner_may_close() {
        // Paper §5.1: an inherited stream must not be closable by the
        // application it was passed to.
        let sink = MemSink::new();
        let out = OutStream::new(Arc::new(sink), APP_A);
        let inherited = out.clone(); // handed to app B
        assert!(matches!(
            inherited.close(APP_B).unwrap_err(),
            VmError::NotStreamOwner
        ));
        assert!(!out.is_closed(), "foreign close attempt must not close");
        out.close(APP_A).unwrap();
        assert!(inherited.is_closed(), "clones share the closed flag");
        assert!(matches!(out.print("x").unwrap_err(), VmError::StreamClosed));
    }

    #[test]
    fn in_stream_owner_close_rules() {
        let input = InStream::from_bytes(b"data".to_vec(), APP_A);
        assert!(matches!(
            input.close(APP_B).unwrap_err(),
            VmError::NotStreamOwner
        ));
        input.close(APP_A).unwrap();
        let mut buf = [0u8; 1];
        assert!(matches!(
            input.read(&mut buf).unwrap_err(),
            VmError::StreamClosed
        ));
    }

    #[test]
    fn double_close_is_idempotent() {
        let out = OutStream::null(APP_A);
        out.close(APP_A).unwrap();
        out.close(APP_A).unwrap();
    }

    #[test]
    fn pipe_streams_connect() {
        let (w, r) = pipe(64);
        let out = OutStream::from_pipe(w, APP_A);
        let input = InStream::from_pipe(r, APP_B);
        out.println("through the pipe").unwrap();
        out.close(APP_A).unwrap(); // closes the write end -> EOF for reader
        assert_eq!(
            input.read_line().unwrap().as_deref(),
            Some("through the pipe")
        );
        assert_eq!(input.read_line().unwrap(), None);
    }

    #[test]
    fn null_streams() {
        let input = InStream::null(APP_A);
        let mut buf = [0u8; 8];
        assert_eq!(input.read(&mut buf).unwrap(), 0);
        let out = OutStream::null(APP_A);
        out.println("vanishes").unwrap();
        out.flush().unwrap();
    }

    #[test]
    fn same_stream_identity() {
        let a = OutStream::null(APP_A);
        let b = a.clone();
        let c = OutStream::null(APP_A);
        assert!(a.same_stream(&b));
        assert!(!a.same_stream(&c));
    }
}
