use std::collections::VecDeque;
use std::sync::Arc;

use jmp_obs::Counter;
use parking_lot::{Condvar, Mutex};

use crate::error::VmError;
use crate::thread::{check_interrupt, BLOCK_POLL};
use crate::Result;

/// Default pipe capacity, matching the conventional Unix pipe buffer.
pub const DEFAULT_PIPE_CAPACITY: usize = 65536;

#[derive(Debug)]
struct PipeState {
    buf: VecDeque<u8>,
    capacity: usize,
    write_closed: bool,
    read_closed: bool,
}

#[derive(Debug)]
struct Shared {
    state: Mutex<PipeState>,
    readable: Condvar,
    writable: Condvar,
    /// Counts bytes accepted by the write end (see [`pipe_observed`]).
    bytes: Option<Arc<Counter>>,
}

/// Creates an in-memory pipe with the given buffer capacity.
///
/// This is the single-address-space IPC primitive the paper's shell builds
/// pipelines from (§6.1), and the in-VM side of experiment E5b (in-VM pipe
/// vs cross-process pipe). Reads and writes block, waking on data/space or
/// on interruption of the calling VM thread.
pub fn pipe(capacity: usize) -> (PipeWriter, PipeReader) {
    pipe_observed(capacity, None)
}

/// [`pipe`], plus an optional byte counter incremented by the number of
/// bytes each write accepts. The multi-processing layer passes the
/// VM-wide `pipe.bytes` counter here so shell pipelines show up in
/// `vmstat` without the pipe knowing anything about metrics naming.
pub fn pipe_observed(capacity: usize, bytes: Option<Arc<Counter>>) -> (PipeWriter, PipeReader) {
    let shared = Arc::new(Shared {
        state: Mutex::new(PipeState {
            buf: VecDeque::with_capacity(capacity.min(DEFAULT_PIPE_CAPACITY)),
            capacity: capacity.max(1),
            write_closed: false,
            read_closed: false,
        }),
        readable: Condvar::new(),
        writable: Condvar::new(),
        bytes,
    });
    (
        PipeWriter {
            shared: Arc::clone(&shared),
        },
        PipeReader { shared },
    )
}

/// The read end of a [`pipe`]. Cloning shares the same channel.
#[derive(Debug, Clone)]
pub struct PipeReader {
    shared: Arc<Shared>,
}

/// The write end of a [`pipe`]. Cloning shares the same channel.
#[derive(Debug, Clone)]
pub struct PipeWriter {
    shared: Arc<Shared>,
}

impl PipeReader {
    /// Reads up to `buf.len()` bytes, blocking while the pipe is empty and
    /// the write end is open. Returns `Ok(0)` at end-of-file (write end
    /// closed and buffer drained).
    ///
    /// # Errors
    ///
    /// [`VmError::Interrupted`] if the calling VM thread is interrupted;
    /// [`VmError::StreamClosed`] if this read end was closed.
    pub fn read(&self, buf: &mut [u8]) -> Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let mut state = self.shared.state.lock();
        loop {
            if state.read_closed {
                return Err(VmError::StreamClosed);
            }
            if !state.buf.is_empty() {
                let n = buf.len().min(state.buf.len());
                for slot in buf.iter_mut().take(n) {
                    *slot = state.buf.pop_front().expect("length checked");
                }
                self.shared.writable.notify_all();
                return Ok(n);
            }
            if state.write_closed {
                return Ok(0);
            }
            check_interrupt()?;
            self.shared.readable.wait_for(&mut state, BLOCK_POLL);
        }
    }

    /// Closes the read end. Subsequent writes to the other end fail with
    /// [`VmError::StreamClosed`] (the analogue of `EPIPE`).
    pub fn close(&self) {
        let mut state = self.shared.state.lock();
        state.read_closed = true;
        self.shared.writable.notify_all();
        self.shared.readable.notify_all();
    }

    /// Bytes currently buffered.
    pub fn available(&self) -> usize {
        self.shared.state.lock().buf.len()
    }
}

impl PipeWriter {
    /// Writes as much of `data` as fits, blocking while the buffer is full.
    /// Returns the number of bytes accepted (at least 1 for non-empty
    /// input on success).
    ///
    /// # Errors
    ///
    /// [`VmError::StreamClosed`] if either end is closed;
    /// [`VmError::Interrupted`] on interruption.
    pub fn write(&self, data: &[u8]) -> Result<usize> {
        if data.is_empty() {
            return Ok(0);
        }
        let mut state = self.shared.state.lock();
        loop {
            if state.write_closed || state.read_closed {
                return Err(VmError::StreamClosed);
            }
            let space = state.capacity.saturating_sub(state.buf.len());
            if space > 0 {
                let n = space.min(data.len());
                state.buf.extend(&data[..n]);
                if let Some(bytes) = &self.shared.bytes {
                    bytes.add(n as u64);
                }
                self.shared.readable.notify_all();
                return Ok(n);
            }
            check_interrupt()?;
            self.shared.writable.wait_for(&mut state, BLOCK_POLL);
        }
    }

    /// Writes all of `data`, blocking as needed.
    ///
    /// # Errors
    ///
    /// As [`PipeWriter::write`].
    pub fn write_all(&self, mut data: &[u8]) -> Result<()> {
        while !data.is_empty() {
            let n = self.write(data)?;
            data = &data[n..];
        }
        Ok(())
    }

    /// Closes the write end. Readers drain the buffer, then see end-of-file.
    pub fn close(&self) {
        let mut state = self.shared.state.lock();
        state.write_closed = true;
        self.shared.readable.notify_all();
        self.shared.writable.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn roundtrip_small() {
        let (w, r) = pipe(16);
        w.write_all(b"hello").unwrap();
        let mut buf = [0u8; 16];
        let n = r.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"hello");
    }

    #[test]
    fn eof_after_writer_close() {
        let (w, r) = pipe(16);
        w.write_all(b"xy").unwrap();
        w.close();
        let mut buf = [0u8; 16];
        assert_eq!(r.read(&mut buf).unwrap(), 2);
        assert_eq!(r.read(&mut buf).unwrap(), 0, "eof");
        assert_eq!(r.read(&mut buf).unwrap(), 0, "eof is sticky");
    }

    #[test]
    fn write_to_closed_reader_is_epipe() {
        let (w, r) = pipe(16);
        r.close();
        assert!(matches!(w.write(b"x").unwrap_err(), VmError::StreamClosed));
    }

    #[test]
    fn read_after_close_fails() {
        let (_w, r) = pipe(16);
        r.close();
        let mut buf = [0u8; 4];
        assert!(matches!(
            r.read(&mut buf).unwrap_err(),
            VmError::StreamClosed
        ));
    }

    #[test]
    fn observed_pipe_counts_accepted_bytes() {
        let bytes = Arc::new(Counter::new());
        let (w, r) = pipe_observed(16, Some(Arc::clone(&bytes)));
        w.write_all(b"hello").unwrap();
        w.write_all(b" world").unwrap();
        assert_eq!(bytes.get(), 11);
        let mut buf = [0u8; 16];
        r.read(&mut buf).unwrap();
        assert_eq!(bytes.get(), 11, "reads do not double-count");
    }

    #[test]
    fn backpressure_blocks_and_releases() {
        let (w, r) = pipe(4);
        w.write_all(b"1234").unwrap();
        let writer = std::thread::spawn(move || w.write_all(b"5678"));
        std::thread::sleep(Duration::from_millis(10));
        let mut buf = [0u8; 8];
        let n = r.read(&mut buf).unwrap();
        assert!(n > 0);
        // Drain the rest so the writer finishes.
        let mut total = n;
        while total < 8 {
            total += r.read(&mut buf).unwrap();
        }
        writer.join().unwrap().unwrap();
        assert_eq!(total, 8);
    }

    #[test]
    fn large_transfer_through_small_buffer() {
        let (w, r) = pipe(7);
        let payload: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        let expected = payload.clone();
        let writer = std::thread::spawn(move || {
            w.write_all(&payload).unwrap();
            w.close();
        });
        let mut got = Vec::new();
        let mut buf = [0u8; 64];
        loop {
            let n = r.read(&mut buf).unwrap();
            if n == 0 {
                break;
            }
            got.extend_from_slice(&buf[..n]);
        }
        writer.join().unwrap();
        assert_eq!(got, expected);
    }

    #[test]
    fn empty_rw_are_noops() {
        let (w, r) = pipe(4);
        assert_eq!(w.write(b"").unwrap(), 0);
        let mut empty: [u8; 0] = [];
        assert_eq!(r.read(&mut empty).unwrap(), 0);
    }

    #[test]
    fn available_reports_buffered_bytes() {
        let (w, r) = pipe(16);
        assert_eq!(r.available(), 0);
        w.write_all(b"abc").unwrap();
        assert_eq!(r.available(), 3);
    }
}
