use std::collections::VecDeque;
use std::sync::Arc;

use jmp_obs::{trace, Counter, FlightRecorder, SpanCategory, TraceCtx};
use parking_lot::{Condvar, Mutex};

use crate::error::VmError;
use crate::thread::{check_interrupt, BLOCK_POLL};
use crate::Result;

/// Default pipe capacity, matching the conventional Unix pipe buffer.
pub const DEFAULT_PIPE_CAPACITY: usize = 65536;

#[derive(Debug)]
struct PipeState {
    buf: VecDeque<u8>,
    capacity: usize,
    write_closed: bool,
    read_closed: bool,
    /// The trace context of the most recent traced writer. A pipe is a
    /// causal boundary: the reader's `pipe.read` span is charged to the
    /// *writer's* trace, because that is the request whose data it is.
    trace: Option<TraceCtx>,
}

#[derive(Debug)]
struct Shared {
    state: Mutex<PipeState>,
    readable: Condvar,
    writable: Condvar,
    /// Counts bytes accepted by the write end (see [`pipe_observed`]).
    bytes: Option<Arc<Counter>>,
    /// Records write/read spans when tracing (see [`pipe_traced`]).
    recorder: Option<FlightRecorder>,
}

/// Creates an in-memory pipe with the given buffer capacity.
///
/// This is the single-address-space IPC primitive the paper's shell builds
/// pipelines from (§6.1), and the in-VM side of experiment E5b (in-VM pipe
/// vs cross-process pipe). Reads and writes block, waking on data/space or
/// on interruption of the calling VM thread.
pub fn pipe(capacity: usize) -> (PipeWriter, PipeReader) {
    pipe_observed(capacity, None)
}

/// [`pipe`], plus an optional byte counter incremented by the number of
/// bytes each write accepts. The multi-processing layer passes the
/// VM-wide `pipe.bytes` counter here so shell pipelines show up in
/// `vmstat` without the pipe knowing anything about metrics naming.
pub fn pipe_observed(capacity: usize, bytes: Option<Arc<Counter>>) -> (PipeWriter, PipeReader) {
    pipe_traced(capacity, bytes, None)
}

/// [`pipe_observed`], plus an optional flight recorder. A traced writer
/// leaves a `pipe.write` span and stamps the pipe with its [`TraceCtx`];
/// the next read leaves a `pipe.read` span *under the writer's context* —
/// the cross-boundary link — and a reader thread that has no trace of its
/// own adopts the writer's, so causality survives the handoff.
pub fn pipe_traced(
    capacity: usize,
    bytes: Option<Arc<Counter>>,
    recorder: Option<FlightRecorder>,
) -> (PipeWriter, PipeReader) {
    let shared = Arc::new(Shared {
        state: Mutex::new(PipeState {
            buf: VecDeque::with_capacity(capacity.min(DEFAULT_PIPE_CAPACITY)),
            capacity: capacity.max(1),
            write_closed: false,
            read_closed: false,
            trace: None,
        }),
        readable: Condvar::new(),
        writable: Condvar::new(),
        bytes,
        recorder,
    });
    (
        PipeWriter {
            shared: Arc::clone(&shared),
        },
        PipeReader { shared },
    )
}

/// The read end of a [`pipe`]. Cloning shares the same channel.
#[derive(Debug, Clone)]
pub struct PipeReader {
    shared: Arc<Shared>,
}

/// The write end of a [`pipe`]. Cloning shares the same channel.
#[derive(Debug, Clone)]
pub struct PipeWriter {
    shared: Arc<Shared>,
}

impl PipeReader {
    /// Reads up to `buf.len()` bytes, blocking while the pipe is empty and
    /// the write end is open. Returns `Ok(0)` at end-of-file (write end
    /// closed and buffer drained).
    ///
    /// # Errors
    ///
    /// [`VmError::Interrupted`] if the calling VM thread is interrupted;
    /// [`VmError::StreamClosed`] if this read end was closed.
    pub fn read(&self, buf: &mut [u8]) -> Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let timer = self.shared.recorder.as_ref().and_then(|r| r.timer());
        let mut state = self.shared.state.lock();
        loop {
            if state.read_closed {
                return Err(VmError::StreamClosed);
            }
            if !state.buf.is_empty() {
                let n = buf.len().min(state.buf.len());
                for slot in buf.iter_mut().take(n) {
                    *slot = state.buf.pop_front().expect("length checked");
                }
                self.shared.writable.notify_all();
                if let (Some(recorder), Some(ctx)) = (&self.shared.recorder, state.trace) {
                    // Charge the read to the writer's trace; an untraced
                    // reader thread adopts that context outright, so the
                    // trace follows the data to whatever the reader does
                    // next.
                    if trace::current().is_none() {
                        trace::install(Some(ctx));
                    }
                    let latency = timer.map_or(0, |t| t.elapsed().as_nanos() as u64);
                    recorder.record_with_ctx(SpanCategory::Pipe, "pipe.read", ctx, None, latency);
                }
                return Ok(n);
            }
            if state.write_closed {
                return Ok(0);
            }
            check_interrupt()?;
            self.shared.readable.wait_for(&mut state, BLOCK_POLL);
        }
    }

    /// Closes the read end. Subsequent writes to the other end fail with
    /// [`VmError::StreamClosed`] (the analogue of `EPIPE`).
    pub fn close(&self) {
        let mut state = self.shared.state.lock();
        state.read_closed = true;
        self.shared.writable.notify_all();
        self.shared.readable.notify_all();
    }

    /// Bytes currently buffered.
    pub fn available(&self) -> usize {
        self.shared.state.lock().buf.len()
    }
}

impl PipeWriter {
    /// Writes as much of `data` as fits, blocking while the buffer is full.
    /// Returns the number of bytes accepted (at least 1 for non-empty
    /// input on success).
    ///
    /// # Errors
    ///
    /// [`VmError::StreamClosed`] if either end is closed;
    /// [`VmError::Interrupted`] on interruption.
    pub fn write(&self, data: &[u8]) -> Result<usize> {
        if data.is_empty() {
            return Ok(0);
        }
        let timer = self.shared.recorder.as_ref().and_then(|r| r.timer());
        let mut state = self.shared.state.lock();
        loop {
            if state.write_closed || state.read_closed {
                return Err(VmError::StreamClosed);
            }
            let space = state.capacity.saturating_sub(state.buf.len());
            if space > 0 {
                let n = space.min(data.len());
                state.buf.extend(&data[..n]);
                if let Some(bytes) = &self.shared.bytes {
                    bytes.add(n as u64);
                }
                if let Some(recorder) = &self.shared.recorder {
                    // Stamp the pipe with the writer's context (kept until a
                    // later traced write replaces it) and leave the write span.
                    if let Some(ctx) = trace::current() {
                        state.trace = Some(ctx);
                    }
                    let latency = timer.map_or(0, |t| t.elapsed().as_nanos() as u64);
                    recorder.record_latency(SpanCategory::Pipe, "pipe.write", None, latency);
                }
                self.shared.readable.notify_all();
                return Ok(n);
            }
            check_interrupt()?;
            self.shared.writable.wait_for(&mut state, BLOCK_POLL);
        }
    }

    /// Writes all of `data`, blocking as needed.
    ///
    /// # Errors
    ///
    /// As [`PipeWriter::write`].
    pub fn write_all(&self, mut data: &[u8]) -> Result<()> {
        while !data.is_empty() {
            let n = self.write(data)?;
            data = &data[n..];
        }
        Ok(())
    }

    /// Closes the write end. Readers drain the buffer, then see end-of-file.
    pub fn close(&self) {
        let mut state = self.shared.state.lock();
        state.write_closed = true;
        self.shared.readable.notify_all();
        self.shared.writable.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn roundtrip_small() {
        let (w, r) = pipe(16);
        w.write_all(b"hello").unwrap();
        let mut buf = [0u8; 16];
        let n = r.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"hello");
    }

    #[test]
    fn eof_after_writer_close() {
        let (w, r) = pipe(16);
        w.write_all(b"xy").unwrap();
        w.close();
        let mut buf = [0u8; 16];
        assert_eq!(r.read(&mut buf).unwrap(), 2);
        assert_eq!(r.read(&mut buf).unwrap(), 0, "eof");
        assert_eq!(r.read(&mut buf).unwrap(), 0, "eof is sticky");
    }

    #[test]
    fn write_to_closed_reader_is_epipe() {
        let (w, r) = pipe(16);
        r.close();
        assert!(matches!(w.write(b"x").unwrap_err(), VmError::StreamClosed));
    }

    #[test]
    fn read_after_close_fails() {
        let (_w, r) = pipe(16);
        r.close();
        let mut buf = [0u8; 4];
        assert!(matches!(
            r.read(&mut buf).unwrap_err(),
            VmError::StreamClosed
        ));
    }

    #[test]
    fn observed_pipe_counts_accepted_bytes() {
        let bytes = Arc::new(Counter::new());
        let (w, r) = pipe_observed(16, Some(Arc::clone(&bytes)));
        w.write_all(b"hello").unwrap();
        w.write_all(b" world").unwrap();
        assert_eq!(bytes.get(), 11);
        let mut buf = [0u8; 16];
        r.read(&mut buf).unwrap();
        assert_eq!(bytes.get(), 11, "reads do not double-count");
    }

    #[test]
    fn traced_pipe_carries_the_writer_context_to_the_reader() {
        let recorder = FlightRecorder::new(32);
        let (w, r) = pipe_traced(16, None, Some(recorder.clone()));
        trace::clear();
        let exec = recorder.begin(SpanCategory::Exec, "exec:writer").unwrap();
        let trace_id = exec.trace_id();
        w.write_all(b"payload").unwrap();
        drop(exec);
        trace::clear();

        // Read from a fresh, untraced thread: the writer's context crosses.
        let reader = std::thread::spawn(move || {
            let mut buf = [0u8; 16];
            let n = r.read(&mut buf).unwrap();
            (n, trace::current())
        });
        let (n, adopted) = reader.join().unwrap();
        assert_eq!(n, 7);
        assert_eq!(
            adopted.map(|c| c.trace_id),
            Some(trace_id),
            "the untraced reader adopts the writer's trace"
        );
        let spans = recorder.spans();
        let write = spans.iter().find(|s| s.name == "pipe.write").unwrap();
        let read = spans.iter().find(|s| s.name == "pipe.read").unwrap();
        assert_eq!(write.trace_id, trace_id);
        assert_eq!(read.trace_id, trace_id, "one trace across the boundary");
        assert_eq!(
            read.parent, write.parent,
            "both spans hang off the writer's span"
        );
    }

    #[test]
    fn untraced_pipes_record_nothing() {
        let recorder = FlightRecorder::new(8);
        let (w, r) = pipe_traced(16, None, Some(recorder.clone()));
        trace::clear();
        w.write_all(b"x").unwrap();
        let mut buf = [0u8; 4];
        r.read(&mut buf).unwrap();
        assert_eq!(recorder.recorded(), 0, "no context, no spans");
        assert_eq!(trace::current(), None, "nothing to adopt");
    }

    #[test]
    fn backpressure_blocks_and_releases() {
        let (w, r) = pipe(4);
        w.write_all(b"1234").unwrap();
        let writer = std::thread::spawn(move || w.write_all(b"5678"));
        std::thread::sleep(Duration::from_millis(10));
        let mut buf = [0u8; 8];
        let n = r.read(&mut buf).unwrap();
        assert!(n > 0);
        // Drain the rest so the writer finishes.
        let mut total = n;
        while total < 8 {
            total += r.read(&mut buf).unwrap();
        }
        writer.join().unwrap().unwrap();
        assert_eq!(total, 8);
    }

    #[test]
    fn large_transfer_through_small_buffer() {
        let (w, r) = pipe(7);
        let payload: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        let expected = payload.clone();
        let writer = std::thread::spawn(move || {
            w.write_all(&payload).unwrap();
            w.close();
        });
        let mut got = Vec::new();
        let mut buf = [0u8; 64];
        loop {
            let n = r.read(&mut buf).unwrap();
            if n == 0 {
                break;
            }
            got.extend_from_slice(&buf[..n]);
        }
        writer.join().unwrap();
        assert_eq!(got, expected);
    }

    #[test]
    fn empty_rw_are_noops() {
        let (w, r) = pipe(4);
        assert_eq!(w.write(b"").unwrap(), 0);
        let mut empty: [u8; 0] = [];
        assert_eq!(r.read(&mut empty).unwrap(), 0);
    }

    #[test]
    fn available_reports_buffered_bytes() {
        let (w, r) = pipe(16);
        assert_eq!(r.available(), 0);
        w.write_all(b"abc").unwrap();
        assert_eq!(r.available(), 3);
    }
}
