use std::sync::Arc;

use jmp_obs::{trace, Counter, FlightRecorder, SpanCategory, TraceCtx};
use parking_lot::{Condvar, Mutex};

use crate::context::{AppContext, ResourceKind};
use crate::error::VmError;
use crate::thread::{check_interrupt, register_interrupt_waker, InterruptWakerGuard};
use crate::Result;

/// Default pipe capacity, matching the conventional Unix pipe buffer.
pub const DEFAULT_PIPE_CAPACITY: usize = 65536;

/// A fixed-capacity contiguous ring buffer of bytes. Every transfer in or
/// out is at most two `copy_from_slice` segments (the seam wrap), so moving
/// a 64 KiB chunk costs two memcpys instead of 65536 `VecDeque` pops.
#[derive(Debug)]
struct Ring {
    buf: Box<[u8]>,
    /// Index of the next byte to read.
    head: usize,
    /// Bytes currently buffered.
    len: usize,
}

impl Ring {
    fn with_capacity(capacity: usize) -> Ring {
        Ring {
            buf: vec![0u8; capacity].into_boxed_slice(),
            head: 0,
            len: 0,
        }
    }

    fn capacity(&self) -> usize {
        self.buf.len()
    }

    fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Copies as much of `data` as fits; returns the byte count accepted.
    fn write_from(&mut self, data: &[u8]) -> usize {
        let n = data.len().min(self.capacity() - self.len);
        if n == 0 {
            return 0;
        }
        let tail = (self.head + self.len) % self.capacity();
        let first = n.min(self.capacity() - tail);
        self.buf[tail..tail + first].copy_from_slice(&data[..first]);
        if n > first {
            self.buf[..n - first].copy_from_slice(&data[first..n]);
        }
        self.len += n;
        n
    }

    /// Copies up to `out.len()` buffered bytes into `out`; returns the count.
    fn read_into(&mut self, out: &mut [u8]) -> usize {
        let n = out.len().min(self.len);
        if n == 0 {
            return 0;
        }
        let first = n.min(self.capacity() - self.head);
        out[..first].copy_from_slice(&self.buf[self.head..self.head + first]);
        if n > first {
            out[first..n].copy_from_slice(&self.buf[..n - first]);
        }
        self.head = (self.head + n) % self.capacity();
        self.len -= n;
        n
    }
}

#[derive(Debug)]
struct PipeState {
    ring: Ring,
    write_closed: bool,
    read_closed: bool,
    /// The trace context of the most recent traced writer. A pipe is a
    /// causal boundary: the reader's `pipe.read` span is charged to the
    /// *writer's* trace, because that is the request whose data it is.
    trace: Option<TraceCtx>,
}

#[derive(Debug)]
struct Shared {
    state: Mutex<PipeState>,
    readable: Condvar,
    writable: Condvar,
    /// Counts bytes accepted by the write end (see [`pipe_observed`]).
    /// Bumped once per write call with the whole accepted count, not per
    /// retry iteration.
    bytes: Option<Arc<Counter>>,
    /// Records write/read spans when tracing (see [`pipe_traced`]).
    recorder: Option<FlightRecorder>,
    /// The owning application (see [`pipe_owned`]): buffered bytes are
    /// charged to its `pipe.bytes` ledger slot on acceptance and released
    /// on drain, reader close, or pipe drop. The ring allocation itself is
    /// charged to the owner's `memory` slot for the pipe's whole lifetime.
    owner: Option<Arc<AppContext>>,
}

impl Drop for Shared {
    fn drop(&mut self) {
        // Both ends are gone; whatever is still buffered can never be
        // drained, so release its ledger charge here. The reader-close path
        // clears the ring as it uncharges, so this cannot double-release.
        if let Some(owner) = &self.owner {
            let residual = self.state.get_mut().ring.len;
            if residual > 0 {
                owner.uncharge(ResourceKind::PipeBytes, residual as u64);
            }
            // The ring buffer itself is freed with the pipe: release the
            // capacity bytes charged at creation.
            let capacity = self.state.get_mut().ring.capacity();
            owner.uncharge(ResourceKind::Memory, capacity as u64);
        }
    }
}

impl Shared {
    /// The interrupt waker for a thread blocked on this pipe: take the state
    /// lock (so a notify can never be lost between the blocked thread's
    /// interrupt check and its wait) and wake both sides.
    fn waker(self: &Arc<Shared>) -> crate::thread::InterruptWaker {
        let shared = Arc::clone(self);
        Arc::new(move || {
            let _state = shared.state.lock();
            shared.readable.notify_all();
            shared.writable.notify_all();
        })
    }
}

/// Creates an in-memory pipe with the given buffer capacity.
///
/// This is the single-address-space IPC primitive the paper's shell builds
/// pipelines from (§6.1), and the in-VM side of experiment E5b (in-VM pipe
/// vs cross-process pipe). Reads and writes block, waking on data/space, on
/// close of the other end, or on interruption of the calling VM thread —
/// a blocked thread performs **no** periodic wakeups.
pub fn pipe(capacity: usize) -> (PipeWriter, PipeReader) {
    pipe_observed(capacity, None)
}

/// [`pipe`], plus an optional byte counter incremented by the number of
/// bytes each write accepts. The multi-processing layer passes the
/// VM-wide `pipe.bytes` counter here so shell pipelines show up in
/// `vmstat` without the pipe knowing anything about metrics naming.
pub fn pipe_observed(capacity: usize, bytes: Option<Arc<Counter>>) -> (PipeWriter, PipeReader) {
    pipe_traced(capacity, bytes, None)
}

/// [`pipe_observed`], plus an optional flight recorder. A traced writer
/// leaves a `pipe.write` span and stamps the pipe with its [`TraceCtx`];
/// the next read leaves a `pipe.read` span *under the writer's context* —
/// the cross-boundary link — and a reader thread that has no trace of its
/// own adopts the writer's, so causality survives the handoff. One span is
/// recorded per read/write *call*, covering however many blocking rounds
/// the call needed.
pub fn pipe_traced(
    capacity: usize,
    bytes: Option<Arc<Counter>>,
    recorder: Option<FlightRecorder>,
) -> (PipeWriter, PipeReader) {
    pipe_owned(capacity, bytes, recorder, None).expect("an ownerless pipe charges no quota")
}

/// [`pipe_traced`], plus an optional owning [`AppContext`]. Bytes buffered
/// in the pipe are charged against the owner's `pipe.bytes` quota at
/// charge time: a write that would push the application past its limit
/// fails with [`VmError::QuotaExceeded`] instead of buffering (a partial
/// `write_all` surfaces it as a [`VmError::ShortWrite`] cause). Drained,
/// discarded (reader close), and dropped bytes release their charge, so a
/// quiescent application's `pipe.bytes` ledger reads zero.
///
/// The ring buffer allocation itself — `capacity` bytes, live for the
/// pipe's whole lifetime — is charged against the owner's `memory` quota
/// up front and released when the last end drops, so an application at its
/// heap cap cannot mint fresh kernel-side buffers either.
///
/// # Errors
///
/// [`VmError::QuotaExceeded`] if charging the ring capacity to the owner's
/// `memory` quota fails; the pipe is not created.
pub fn pipe_owned(
    capacity: usize,
    bytes: Option<Arc<Counter>>,
    recorder: Option<FlightRecorder>,
    owner: Option<Arc<AppContext>>,
) -> Result<(PipeWriter, PipeReader)> {
    let capacity = capacity.max(1);
    if let Some(owner) = &owner {
        owner.try_charge(ResourceKind::Memory, capacity as u64)?;
    }
    let shared = Arc::new(Shared {
        state: Mutex::new(PipeState {
            ring: Ring::with_capacity(capacity),
            write_closed: false,
            read_closed: false,
            trace: None,
        }),
        readable: Condvar::new(),
        writable: Condvar::new(),
        bytes,
        recorder,
        owner,
    });
    Ok((
        PipeWriter {
            shared: Arc::clone(&shared),
        },
        PipeReader { shared },
    ))
}

/// The read end of a [`pipe`]. Cloning shares the same channel.
#[derive(Debug, Clone)]
pub struct PipeReader {
    shared: Arc<Shared>,
}

/// The write end of a [`pipe`]. Cloning shares the same channel.
#[derive(Debug, Clone)]
pub struct PipeWriter {
    shared: Arc<Shared>,
}

impl PipeReader {
    /// Reads up to `buf.len()` bytes, blocking while the pipe is empty and
    /// the write end is open. Returns `Ok(0)` at end-of-file (write end
    /// closed and buffer drained).
    ///
    /// # Errors
    ///
    /// [`VmError::Interrupted`] if the calling VM thread is interrupted;
    /// [`VmError::StreamClosed`] if this read end was closed.
    pub fn read(&self, buf: &mut [u8]) -> Result<usize> {
        self.read_vectored(&mut [buf])
    }

    /// Vectored read: drains buffered bytes across `bufs` in order under a
    /// single lock acquisition, blocking (like [`PipeReader::read`]) only
    /// while nothing at all is buffered. Used by bulk consumers (shell
    /// pipelines, `read_to_end`) to take everything available per wakeup
    /// instead of one slice per lock round-trip.
    ///
    /// # Errors
    ///
    /// As [`PipeReader::read`].
    pub fn read_vectored(&self, bufs: &mut [&mut [u8]]) -> Result<usize> {
        let wanted: usize = bufs.iter().map(|b| b.len()).sum();
        if wanted == 0 {
            return Ok(0);
        }
        let timer = self.shared.recorder.as_ref().and_then(|r| r.timer());
        let mut waker: Option<InterruptWakerGuard> = None;
        let mut state = self.shared.state.lock();
        loop {
            if state.read_closed {
                return Err(VmError::StreamClosed);
            }
            if !state.ring.is_empty() {
                let mut total = 0;
                for buf in bufs.iter_mut() {
                    let n = state.ring.read_into(buf);
                    total += n;
                    if n < buf.len() {
                        break;
                    }
                }
                self.shared.writable.notify_all();
                if let Some(owner) = &self.shared.owner {
                    owner.uncharge(ResourceKind::PipeBytes, total as u64);
                }
                if let (Some(recorder), Some(ctx)) = (&self.shared.recorder, state.trace) {
                    // Charge the read to the writer's trace; an untraced
                    // reader thread adopts that context outright, so the
                    // trace follows the data to whatever the reader does
                    // next.
                    if trace::current().is_none() {
                        trace::install(Some(ctx));
                    }
                    let latency = timer.map_or(0, |t| recorder.elapsed_ns(t));
                    recorder.record_with_ctx(SpanCategory::Pipe, "pipe.read", ctx, None, latency);
                }
                return Ok(total);
            }
            if state.write_closed {
                return Ok(0);
            }
            // Block for real: register the interrupt waker (once) before the
            // final interrupt check so an interrupt between check and wait is
            // delivered as a notify under our lock, never lost.
            if waker.is_none() {
                waker = Some(register_interrupt_waker(self.shared.waker()));
            }
            check_interrupt()?;
            self.shared.readable.wait(&mut state);
        }
    }

    /// Closes the read end. Subsequent writes to the other end fail with
    /// [`VmError::StreamClosed`] (the analogue of `EPIPE`).
    pub fn close(&self) {
        let mut state = self.shared.state.lock();
        state.read_closed = true;
        // Buffered bytes can never be drained now; discard them and release
        // their ledger charge so the owner is not billed for dead data.
        let residual = state.ring.len;
        if residual > 0 {
            state.ring.head = 0;
            state.ring.len = 0;
            if let Some(owner) = &self.shared.owner {
                owner.uncharge(ResourceKind::PipeBytes, residual as u64);
            }
        }
        self.shared.writable.notify_all();
        self.shared.readable.notify_all();
    }

    /// Bytes currently buffered.
    pub fn available(&self) -> usize {
        self.shared.state.lock().ring.len
    }
}

impl PipeWriter {
    /// Writes as much of `data` as fits, blocking while the buffer is full.
    /// Returns the number of bytes accepted (at least 1 for non-empty
    /// input on success).
    ///
    /// # Errors
    ///
    /// [`VmError::StreamClosed`] if either end is closed;
    /// [`VmError::Interrupted`] on interruption.
    pub fn write(&self, data: &[u8]) -> Result<usize> {
        if data.is_empty() {
            return Ok(0);
        }
        match self.write_internal(data, false) {
            (n, _) if n > 0 => Ok(n),
            (_, Some(err)) => Err(err),
            (_, None) => unreachable!("write_internal returns bytes or an error"),
        }
    }

    /// Writes all of `data`, blocking as needed. The byte counter and the
    /// `pipe.write` span are recorded **once for the whole call** — one
    /// syscall-equivalent — no matter how many buffer-full rounds it took.
    ///
    /// # Errors
    ///
    /// [`VmError::StreamClosed`] / [`VmError::Interrupted`] if the failure
    /// struck before any byte was accepted; [`VmError::ShortWrite`] (carrying
    /// the accepted count and the underlying cause) if the reader closed or
    /// the writer was interrupted part-way through.
    pub fn write_all(&self, data: &[u8]) -> Result<()> {
        match self.write_internal(data, true) {
            (_, None) => Ok(()),
            (0, Some(err)) => Err(err),
            (accepted, Some(err)) => Err(VmError::ShortWrite {
                accepted,
                cause: Box::new(err),
            }),
        }
    }

    /// The single write loop behind [`PipeWriter::write`] and
    /// [`PipeWriter::write_all`]: pushes chunks into the ring under one span
    /// and one counter update per call. Returns the accepted byte count and
    /// the terminating error, if any.
    fn write_internal(&self, data: &[u8], all: bool) -> (usize, Option<VmError>) {
        if data.is_empty() {
            return (0, None);
        }
        let timer = self.shared.recorder.as_ref().and_then(|r| r.timer());
        let mut accepted = 0usize;
        let mut waker: Option<InterruptWakerGuard> = None;
        let mut state = self.shared.state.lock();
        let error = loop {
            if state.write_closed || state.read_closed {
                break Some(VmError::StreamClosed);
            }
            // Size the chunk to the free ring space first so a quota charge
            // covers exactly the bytes about to be accepted.
            let space = state.ring.capacity() - state.ring.len;
            let want = (data.len() - accepted).min(space);
            if want > 0 {
                if let Some(owner) = &self.shared.owner {
                    if let Err(err) = owner.try_charge(ResourceKind::PipeBytes, want as u64) {
                        break Some(err);
                    }
                }
                let n = state.ring.write_from(&data[accepted..accepted + want]);
                debug_assert_eq!(n, want, "a sized chunk is accepted whole");
                accepted += n;
                self.shared.readable.notify_all();
                if accepted == data.len() || !all {
                    break None;
                }
                continue;
            }
            if waker.is_none() {
                waker = Some(register_interrupt_waker(self.shared.waker()));
            }
            if let Err(err) = check_interrupt() {
                break Some(err);
            }
            self.shared.writable.wait(&mut state);
        };
        if accepted > 0 {
            if let Some(bytes) = &self.shared.bytes {
                bytes.add(accepted as u64);
            }
            if let Some(recorder) = &self.shared.recorder {
                // Stamp the pipe with the writer's context (kept until a
                // later traced write replaces it) and leave one write span
                // for the whole call.
                if let Some(ctx) = trace::current() {
                    state.trace = Some(ctx);
                }
                let latency = timer.map_or(0, |t| recorder.elapsed_ns(t));
                recorder.record_latency(SpanCategory::Pipe, "pipe.write", None, latency);
            }
        }
        (accepted, error)
    }

    /// Closes the write end. Readers drain the buffer, then see end-of-file.
    pub fn close(&self) {
        let mut state = self.shared.state.lock();
        state.write_closed = true;
        self.shared.readable.notify_all();
        self.shared.writable.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn roundtrip_small() {
        let (w, r) = pipe(16);
        w.write_all(b"hello").unwrap();
        let mut buf = [0u8; 16];
        let n = r.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"hello");
    }

    #[test]
    fn eof_after_writer_close() {
        let (w, r) = pipe(16);
        w.write_all(b"xy").unwrap();
        w.close();
        let mut buf = [0u8; 16];
        assert_eq!(r.read(&mut buf).unwrap(), 2);
        assert_eq!(r.read(&mut buf).unwrap(), 0, "eof");
        assert_eq!(r.read(&mut buf).unwrap(), 0, "eof is sticky");
    }

    #[test]
    fn write_to_closed_reader_is_epipe() {
        let (w, r) = pipe(16);
        r.close();
        assert!(matches!(w.write(b"x").unwrap_err(), VmError::StreamClosed));
    }

    #[test]
    fn read_after_close_fails() {
        let (_w, r) = pipe(16);
        r.close();
        let mut buf = [0u8; 4];
        assert!(matches!(
            r.read(&mut buf).unwrap_err(),
            VmError::StreamClosed
        ));
    }

    #[test]
    fn observed_pipe_counts_accepted_bytes() {
        let bytes = Arc::new(Counter::new());
        let (w, r) = pipe_observed(16, Some(Arc::clone(&bytes)));
        w.write_all(b"hello").unwrap();
        w.write_all(b" world").unwrap();
        assert_eq!(bytes.get(), 11);
        let mut buf = [0u8; 16];
        r.read(&mut buf).unwrap();
        assert_eq!(bytes.get(), 11, "reads do not double-count");
    }

    #[test]
    fn write_all_counts_bytes_once_even_when_it_blocks() {
        let bytes = Arc::new(Counter::new());
        let (w, r) = pipe_observed(4, Some(Arc::clone(&bytes)));
        let writer = std::thread::spawn(move || w.write_all(b"0123456789"));
        std::thread::sleep(Duration::from_millis(10));
        let mut got = Vec::new();
        let mut buf = [0u8; 3];
        while got.len() < 10 {
            let n = r.read(&mut buf).unwrap();
            got.extend_from_slice(&buf[..n]);
        }
        writer.join().unwrap().unwrap();
        assert_eq!(bytes.get(), 10, "one counter update for the whole call");
    }

    #[test]
    fn write_all_reports_accepted_bytes_on_epipe() {
        // Partial-write-then-close: capacity 4 accepts 4 of 10 bytes, then
        // the reader closes; the short-write error carries the count.
        let (w, r) = pipe(4);
        let writer = std::thread::spawn(move || w.write_all(b"0123456789"));
        std::thread::sleep(Duration::from_millis(20));
        r.close();
        let err = writer.join().unwrap().unwrap_err();
        match err {
            VmError::ShortWrite { accepted, cause } => {
                assert_eq!(accepted, 4, "the buffered prefix was accepted");
                assert!(matches!(*cause, VmError::StreamClosed));
            }
            other => panic!("expected ShortWrite, got {other:?}"),
        }
    }

    #[test]
    fn write_all_to_closed_reader_with_nothing_accepted_is_plain_epipe() {
        let (w, r) = pipe(4);
        r.close();
        assert!(matches!(
            w.write_all(b"x").unwrap_err(),
            VmError::StreamClosed
        ));
    }

    #[test]
    fn traced_pipe_carries_the_writer_context_to_the_reader() {
        let recorder = FlightRecorder::new(32);
        let (w, r) = pipe_traced(16, None, Some(recorder.clone()));
        trace::clear();
        let exec = recorder.begin(SpanCategory::Exec, "exec:writer").unwrap();
        let trace_id = exec.trace_id();
        w.write_all(b"payload").unwrap();
        drop(exec);
        trace::clear();

        // Read from a fresh, untraced thread: the writer's context crosses.
        let reader = std::thread::spawn(move || {
            let mut buf = [0u8; 16];
            let n = r.read(&mut buf).unwrap();
            (n, trace::current())
        });
        let (n, adopted) = reader.join().unwrap();
        assert_eq!(n, 7);
        assert_eq!(
            adopted.map(|c| c.trace_id),
            Some(trace_id),
            "the untraced reader adopts the writer's trace"
        );
        let spans = recorder.spans();
        let write = spans.iter().find(|s| s.name == "pipe.write").unwrap();
        let read = spans.iter().find(|s| s.name == "pipe.read").unwrap();
        assert_eq!(write.trace_id, trace_id);
        assert_eq!(read.trace_id, trace_id, "one trace across the boundary");
        assert_eq!(
            read.parent, write.parent,
            "both spans hang off the writer's span"
        );
    }

    #[test]
    fn blocking_write_all_records_exactly_one_span() {
        let recorder = FlightRecorder::new(64);
        let (w, r) = pipe_traced(4, None, Some(recorder.clone()));
        // 12 bytes through a 4-byte ring: three buffer-full rounds, one span.
        // The trace context is thread-local, so the writer roots it itself.
        let writer_recorder = recorder.clone();
        let writer = std::thread::spawn(move || {
            let exec = writer_recorder
                .begin(SpanCategory::Exec, "exec:writer")
                .unwrap();
            w.write_all(b"0123456789ab").unwrap();
            drop(exec);
            trace::clear();
        });
        std::thread::sleep(Duration::from_millis(10));
        let mut got = Vec::new();
        let mut buf = [0u8; 4];
        while got.len() < 12 {
            let n = r.read(&mut buf).unwrap();
            got.extend_from_slice(&buf[..n]);
        }
        writer.join().unwrap();
        trace::clear();
        let spans = recorder.spans();
        let writes = spans.iter().filter(|s| s.name == "pipe.write").count();
        assert_eq!(writes, 1, "one span per write_all call, not per retry");
    }

    #[test]
    fn untraced_pipes_record_nothing() {
        let recorder = FlightRecorder::new(8);
        let (w, r) = pipe_traced(16, None, Some(recorder.clone()));
        trace::clear();
        w.write_all(b"x").unwrap();
        let mut buf = [0u8; 4];
        r.read(&mut buf).unwrap();
        assert_eq!(recorder.recorded(), 0, "no context, no spans");
        assert_eq!(trace::current(), None, "nothing to adopt");
    }

    #[test]
    fn backpressure_blocks_and_releases() {
        let (w, r) = pipe(4);
        w.write_all(b"1234").unwrap();
        let writer = std::thread::spawn(move || w.write_all(b"5678"));
        std::thread::sleep(Duration::from_millis(10));
        let mut buf = [0u8; 8];
        let n = r.read(&mut buf).unwrap();
        assert!(n > 0);
        // Drain the rest so the writer finishes.
        let mut total = n;
        while total < 8 {
            total += r.read(&mut buf).unwrap();
        }
        writer.join().unwrap().unwrap();
        assert_eq!(total, 8);
    }

    #[test]
    fn large_transfer_through_small_buffer() {
        let (w, r) = pipe(7);
        let payload: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        let expected = payload.clone();
        let writer = std::thread::spawn(move || {
            w.write_all(&payload).unwrap();
            w.close();
        });
        let mut got = Vec::new();
        let mut buf = [0u8; 64];
        loop {
            let n = r.read(&mut buf).unwrap();
            if n == 0 {
                break;
            }
            got.extend_from_slice(&buf[..n]);
        }
        writer.join().unwrap();
        assert_eq!(got, expected);
    }

    #[test]
    fn wraparound_straddles_the_seam() {
        // Fill, half-drain, refill: the second write must wrap around the
        // seam and read back intact.
        let (w, r) = pipe(8);
        w.write_all(b"abcdefgh").unwrap();
        let mut buf = [0u8; 5];
        assert_eq!(r.read(&mut buf).unwrap(), 5);
        assert_eq!(&buf, b"abcde");
        w.write_all(b"12345").unwrap(); // 3 fit before the seam, 2 after
        let mut rest = [0u8; 8];
        let n = r.read(&mut rest).unwrap();
        assert_eq!(&rest[..n], b"fgh12345");
    }

    #[test]
    fn capacity_one_pipe_moves_every_byte() {
        let (w, r) = pipe(1);
        let writer = std::thread::spawn(move || {
            w.write_all(b"tiny ring").unwrap();
            w.close();
        });
        let mut got = Vec::new();
        let mut buf = [0u8; 4];
        loop {
            let n = r.read(&mut buf).unwrap();
            if n == 0 {
                break;
            }
            got.extend_from_slice(&buf[..n]);
        }
        writer.join().unwrap();
        assert_eq!(got, b"tiny ring");
    }

    #[test]
    fn read_vectored_drains_across_buffers_in_one_call() {
        let (w, r) = pipe(32);
        w.write_all(b"hello world!").unwrap();
        let mut a = [0u8; 5];
        let mut b = [0u8; 5];
        let mut c = [0u8; 5];
        let n = r.read_vectored(&mut [&mut a, &mut b, &mut c]).unwrap();
        assert_eq!(n, 12);
        assert_eq!(&a, b"hello");
        assert_eq!(&b, b" worl");
        assert_eq!(&c[..2], b"d!");
    }

    #[test]
    fn empty_rw_are_noops() {
        let (w, r) = pipe(4);
        assert_eq!(w.write(b"").unwrap(), 0);
        let mut empty: [u8; 0] = [];
        assert_eq!(r.read(&mut empty).unwrap(), 0);
        assert_eq!(r.read_vectored(&mut []).unwrap(), 0);
    }

    #[test]
    fn available_reports_buffered_bytes() {
        let (w, r) = pipe(16);
        assert_eq!(r.available(), 0);
        w.write_all(b"abc").unwrap();
        assert_eq!(r.available(), 3);
    }

    #[test]
    fn ring_unit_wraparound() {
        let mut ring = Ring::with_capacity(4);
        assert_eq!(ring.write_from(b"abc"), 3);
        let mut out = [0u8; 2];
        assert_eq!(ring.read_into(&mut out), 2);
        assert_eq!(&out, b"ab");
        // head=2, len=1; writing 3 more straddles the seam.
        assert_eq!(ring.write_from(b"xyz"), 3);
        let mut all = [0u8; 4];
        assert_eq!(ring.read_into(&mut all), 4);
        assert_eq!(&all, b"cxyz");
        assert!(ring.is_empty());
    }

    #[test]
    fn owned_pipe_charges_and_drains_the_ledger() {
        let owner = AppContext::new(1, "A", "alice", crate::GroupId(1), jmp_obs::ObsHub::new());
        let (w, r) = pipe_owned(16, None, None, Some(Arc::clone(&owner))).unwrap();
        assert_eq!(
            owner.ledger().get(ResourceKind::Memory),
            16,
            "the ring allocation is charged at creation"
        );
        w.write_all(b"hello").unwrap();
        assert_eq!(owner.ledger().get(ResourceKind::PipeBytes), 5);
        let mut buf = [0u8; 16];
        r.read(&mut buf).unwrap();
        assert_eq!(owner.ledger().get(ResourceKind::PipeBytes), 0);
        drop((w, r));
        assert!(owner.ledger().is_drained(), "ring memory released on drop");
    }

    #[test]
    fn owned_pipe_creation_respects_the_memory_quota() {
        let owner = AppContext::new(9, "I", "ivan", crate::GroupId(9), jmp_obs::ObsHub::new());
        owner.limits().set(ResourceKind::Memory, 8);
        let err = pipe_owned(16, None, None, Some(Arc::clone(&owner))).unwrap_err();
        assert!(err.is_quota_exceeded(), "got {err:?}");
        assert!(
            owner.ledger().is_drained(),
            "the refused charge rolled back"
        );
        let (w, r) = pipe_owned(8, None, None, Some(Arc::clone(&owner))).unwrap();
        drop((w, r));
        assert!(owner.ledger().is_drained());
    }

    #[test]
    fn owned_pipe_over_quota_write_fails_without_buffering() {
        let owner = AppContext::new(2, "B", "bob", crate::GroupId(2), jmp_obs::ObsHub::new());
        owner.limits().set(ResourceKind::PipeBytes, 4);
        let (w, r) = pipe_owned(16, None, None, Some(Arc::clone(&owner))).unwrap();
        w.write_all(b"1234").unwrap();
        let err = w.write_all(b"5").unwrap_err();
        assert!(err.is_quota_exceeded(), "got {err:?}");
        assert_eq!(r.available(), 4, "the refused byte was not buffered");
        assert_eq!(owner.ledger().get(ResourceKind::PipeBytes), 4);
        // Draining frees quota for further writes.
        let mut buf = [0u8; 8];
        r.read(&mut buf).unwrap();
        w.write_all(b"5678").unwrap();
        assert_eq!(owner.ledger().get(ResourceKind::PipeBytes), 4);
    }

    #[test]
    fn reader_close_releases_residual_charges() {
        let owner = AppContext::new(3, "C", "carol", crate::GroupId(3), jmp_obs::ObsHub::new());
        let (w, r) = pipe_owned(16, None, None, Some(Arc::clone(&owner))).unwrap();
        w.write_all(b"stranded").unwrap();
        r.close();
        assert_eq!(
            owner.ledger().get(ResourceKind::PipeBytes),
            0,
            "discarded bytes release their charge"
        );
        drop((w, r));
        assert!(owner.ledger().is_drained(), "drop does not double-release");
    }

    #[test]
    fn dropping_an_undrained_pipe_releases_charges() {
        let owner = AppContext::new(4, "D", "dave", crate::GroupId(4), jmp_obs::ObsHub::new());
        let (w, r) = pipe_owned(16, None, None, Some(Arc::clone(&owner))).unwrap();
        w.write_all(b"leftover").unwrap();
        drop((w, r));
        assert!(owner.ledger().is_drained());
    }

    #[test]
    fn concurrent_stress_small_ring() {
        // Concurrent writer/reader through a seam-heavy 13-byte ring with
        // mismatched chunk sizes; every byte must arrive in order.
        let (w, r) = pipe(13);
        let payload: Vec<u8> = (0..50_000u32).map(|i| (i % 253) as u8).collect();
        let expected = payload.clone();
        let writer = std::thread::spawn(move || {
            let mut off = 0;
            let mut step = 1;
            while off < payload.len() {
                let end = (off + step).min(payload.len());
                w.write_all(&payload[off..end]).unwrap();
                off = end;
                step = step % 31 + 1;
            }
            w.close();
        });
        let mut got = Vec::new();
        let mut buf = [0u8; 17];
        loop {
            let n = r.read(&mut buf).unwrap();
            if n == 0 {
                break;
            }
            got.extend_from_slice(&buf[..n]);
        }
        writer.join().unwrap();
        assert_eq!(got, expected);
    }
}
