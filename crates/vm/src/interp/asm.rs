//! A tiny text assembler for `jbc` class images.
//!
//! Applets in the examples and tests are written in this syntax, assembled,
//! and shipped as [`ClassImage`]s over the simulated network — keeping
//! mobile code data, never compiled-in Rust. Example:
//!
//! ```text
//! class Countdown
//! method main/0 locals=1
//!     push_int 3
//!     store 0
//! loop:
//!     load 0
//!     push_int 0
//!     gt
//!     jump_if_false done
//!     load 0
//!     native print/1
//!     pop
//!     load 0
//!     push_int 1
//!     sub
//!     store 0
//!     jump loop
//! done:
//!     return
//! ```
//!
//! Comments start with `;` or `#`. Labels are `name:` on their own line.
//! `call m/2` calls method `m` with two arguments; `native print/1` invokes
//! a host native.

use std::collections::HashMap;

use super::image::{ClassImage, Insn, MethodImage};
use crate::error::VmError;
use crate::Result;

/// Assembles `source` into a class image (unverified; run
/// [`verify`](super::verify) or construct an
/// [`Interpreter`](super::Interpreter), which verifies).
///
/// # Errors
///
/// [`VmError::Verification`] with a line-numbered message on any syntax
/// error.
pub fn assemble(source: &str) -> Result<ClassImage> {
    Assembler::default().assemble(source)
}

#[derive(Default)]
struct Assembler {
    class_name: Option<String>,
    methods: Vec<MethodImage>,
    current: Option<PendingMethod>,
}

struct PendingMethod {
    name: String,
    params: u8,
    locals: u8,
    /// Instructions with unresolved label operands.
    code: Vec<PendingInsn>,
    labels: HashMap<String, u16>,
}

enum PendingInsn {
    Ready(Insn),
    Jump {
        kind: JumpKind,
        label: String,
        line: usize,
    },
}

#[derive(Clone, Copy)]
enum JumpKind {
    Always,
    IfFalse,
    IfTrue,
}

impl Assembler {
    fn err(&self, line: usize, message: impl Into<String>) -> VmError {
        VmError::Verification {
            class: self.class_name.clone().unwrap_or_else(|| "<asm>".into()),
            message: format!("line {line}: {}", message.into()),
        }
    }

    fn assemble(mut self, source: &str) -> Result<ClassImage> {
        for (idx, raw) in source.lines().enumerate() {
            let line_no = idx + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("class ") {
                if self.class_name.is_some() {
                    return Err(self.err(line_no, "duplicate class directive"));
                }
                self.class_name = Some(rest.trim().to_string());
            } else if let Some(rest) = line.strip_prefix("method ") {
                self.finish_method(line_no)?;
                self.current = Some(self.parse_method_header(rest, line_no)?);
            } else if let Some(label) = line.strip_suffix(':') {
                let method = self
                    .current
                    .as_mut()
                    .ok_or_else(|| err_no_method(&self.class_name, line_no))?;
                let target = method.code.len() as u16;
                if method
                    .labels
                    .insert(label.trim().to_string(), target)
                    .is_some()
                {
                    return Err(self.err(line_no, format!("duplicate label {label:?}")));
                }
            } else {
                let insn = self.parse_insn(line, line_no)?;
                let method = self
                    .current
                    .as_mut()
                    .ok_or_else(|| err_no_method(&self.class_name, line_no))?;
                method.code.push(insn);
            }
        }
        self.finish_method(source.lines().count() + 1)?;
        let name = self.class_name.ok_or_else(|| VmError::Verification {
            class: "<asm>".into(),
            message: "missing `class` directive".into(),
        })?;
        Ok(ClassImage {
            name,
            methods: self.methods,
        })
    }

    fn parse_method_header(&self, rest: &str, line: usize) -> Result<PendingMethod> {
        // `name/params locals=N`
        let mut parts = rest.split_whitespace();
        let sig = parts
            .next()
            .ok_or_else(|| self.err(line, "missing method signature"))?;
        let (name, params) = sig
            .split_once('/')
            .ok_or_else(|| self.err(line, "method signature must be name/params"))?;
        let params: u8 = params
            .parse()
            .map_err(|_| self.err(line, "bad parameter count"))?;
        let mut locals = params;
        for opt in parts {
            if let Some(n) = opt.strip_prefix("locals=") {
                locals = n.parse().map_err(|_| self.err(line, "bad locals count"))?;
            } else {
                return Err(self.err(line, format!("unknown method option {opt:?}")));
            }
        }
        Ok(PendingMethod {
            name: name.to_string(),
            params,
            locals: locals.max(params),
            code: Vec::new(),
            labels: HashMap::new(),
        })
    }

    fn parse_insn(&self, line: &str, line_no: usize) -> Result<PendingInsn> {
        let (op, rest) = match line.split_once(char::is_whitespace) {
            Some((op, rest)) => (op, rest.trim()),
            None => (line, ""),
        };
        let ready = |insn| Ok(PendingInsn::Ready(insn));
        match op {
            "push_int" => ready(Insn::PushInt(
                rest.parse()
                    .map_err(|_| self.err(line_no, "bad integer literal"))?,
            )),
            "push_str" => {
                let s = rest
                    .strip_prefix('"')
                    .and_then(|s| s.strip_suffix('"'))
                    .ok_or_else(|| self.err(line_no, "string literal must be double-quoted"))?;
                ready(Insn::PushStr(s.replace("\\n", "\n")))
            }
            "push_bool" => match rest {
                "true" => ready(Insn::PushBool(true)),
                "false" => ready(Insn::PushBool(false)),
                _ => Err(self.err(line_no, "push_bool takes true or false")),
            },
            "push_null" => ready(Insn::PushNull),
            "load" => ready(Insn::Load(
                rest.parse().map_err(|_| self.err(line_no, "bad slot"))?,
            )),
            "store" => ready(Insn::Store(
                rest.parse().map_err(|_| self.err(line_no, "bad slot"))?,
            )),
            "pop" => ready(Insn::Pop),
            "dup" => ready(Insn::Dup),
            "swap" => ready(Insn::Swap),
            "add" => ready(Insn::Add),
            "sub" => ready(Insn::Sub),
            "mul" => ready(Insn::Mul),
            "div" => ready(Insn::Div),
            "rem" => ready(Insn::Rem),
            "neg" => ready(Insn::Neg),
            "concat" => ready(Insn::Concat),
            "eq" => ready(Insn::Eq),
            "ne" => ready(Insn::Ne),
            "lt" => ready(Insn::Lt),
            "le" => ready(Insn::Le),
            "gt" => ready(Insn::Gt),
            "ge" => ready(Insn::Ge),
            "and" => ready(Insn::And),
            "or" => ready(Insn::Or),
            "not" => ready(Insn::Not),
            "jump" | "jump_if_false" | "jump_if_true" => {
                if rest.is_empty() {
                    return Err(self.err(line_no, "jump needs a label"));
                }
                Ok(PendingInsn::Jump {
                    kind: match op {
                        "jump" => JumpKind::Always,
                        "jump_if_false" => JumpKind::IfFalse,
                        _ => JumpKind::IfTrue,
                    },
                    label: rest.to_string(),
                    line: line_no,
                })
            }
            "call" | "native" => {
                let (name, argc) = rest
                    .split_once('/')
                    .ok_or_else(|| self.err(line_no, "expected name/argc"))?;
                let argc: u8 = argc
                    .parse()
                    .map_err(|_| self.err(line_no, "bad arg count"))?;
                if op == "call" {
                    ready(Insn::Call {
                        method: name.to_string(),
                        argc,
                    })
                } else {
                    ready(Insn::CallNative {
                        name: name.to_string(),
                        argc,
                    })
                }
            }
            "return" => ready(Insn::Return),
            "return_value" => ready(Insn::ReturnValue),
            other => Err(self.err(line_no, format!("unknown instruction {other:?}"))),
        }
    }

    fn finish_method(&mut self, line_no: usize) -> Result<()> {
        let Some(pending) = self.current.take() else {
            return Ok(());
        };
        let mut code = Vec::with_capacity(pending.code.len());
        for insn in pending.code {
            match insn {
                PendingInsn::Ready(i) => code.push(i),
                PendingInsn::Jump { kind, label, line } => {
                    let target = *pending
                        .labels
                        .get(&label)
                        .ok_or_else(|| self.err(line, format!("unknown label {label:?}")))?;
                    code.push(match kind {
                        JumpKind::Always => Insn::Jump(target),
                        JumpKind::IfFalse => Insn::JumpIfFalse(target),
                        JumpKind::IfTrue => Insn::JumpIfTrue(target),
                    });
                }
            }
        }
        if code.is_empty() {
            return Err(self.err(line_no, format!("method {:?} has no code", pending.name)));
        }
        self.methods.push(MethodImage {
            name: pending.name,
            params: pending.params,
            locals: pending.locals,
            code,
        });
        Ok(())
    }
}

fn err_no_method(class: &Option<String>, line: usize) -> VmError {
    VmError::Verification {
        class: class.clone().unwrap_or_else(|| "<asm>".into()),
        message: format!("line {line}: instruction outside of a method"),
    }
}

fn strip_comment(line: &str) -> &str {
    // Strings may not contain `;` or `#` in this toy syntax; document scope.
    match line.find([';', '#']) {
        Some(i) => &line[..i],
        None => line,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{Interpreter, NoNatives, Value};
    use std::sync::Arc;

    #[test]
    fn assembles_and_runs_countdown_sum() {
        let image = assemble(
            r#"
            class Sum
            ; computes 1 + 2 + ... + n for n passed as arg 0
            method main/1 locals=2
                push_int 0
                store 1
            loop:
                load 0
                push_int 0
                gt
                jump_if_false done
                load 1
                load 0
                add
                store 1
                load 0
                push_int 1
                sub
                store 0
                jump loop
            done:
                load 1
                return_value
            "#,
        )
        .unwrap();
        assert_eq!(image.name, "Sum");
        let i = Interpreter::new(Arc::new(image), Arc::new(NoNatives)).unwrap();
        assert_eq!(i.run("main", vec![Value::Int(10)]).unwrap(), Value::Int(55));
    }

    #[test]
    fn multiple_methods_and_calls() {
        let image = assemble(
            r#"
            class Fib
            method main/1 locals=1
                load 0
                call fib/1
                return_value
            method fib/1 locals=1
                load 0
                push_int 2
                lt
                jump_if_false recurse
                load 0
                return_value
            recurse:
                load 0
                push_int 1
                sub
                call fib/1
                load 0
                push_int 2
                sub
                call fib/1
                add
                return_value
            "#,
        )
        .unwrap();
        let i = Interpreter::new(Arc::new(image), Arc::new(NoNatives)).unwrap();
        assert_eq!(
            i.run("main", vec![Value::Int(12)]).unwrap(),
            Value::Int(144)
        );
    }

    #[test]
    fn strings_and_escapes() {
        let image = assemble(
            r#"
            class S
            method main/0
                push_str "a\nb"
                return_value
            "#,
        )
        .unwrap();
        let i = Interpreter::new(Arc::new(image), Arc::new(NoNatives)).unwrap();
        assert_eq!(i.run("main", vec![]).unwrap(), Value::str("a\nb"));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = assemble("class X\nmethod main/0\n  frobnicate\n").unwrap_err();
        assert!(err.to_string().contains("line 3"), "{err}");
        assert!(err.to_string().contains("frobnicate"));
    }

    #[test]
    fn unknown_label_is_reported() {
        let err = assemble("class X\nmethod main/0\n  jump nowhere\n").unwrap_err();
        assert!(err.to_string().contains("nowhere"));
    }

    #[test]
    fn duplicate_label_is_reported() {
        let err = assemble("class X\nmethod main/0\nl:\nl:\n  return\n").unwrap_err();
        assert!(err.to_string().contains("duplicate label"));
    }

    #[test]
    fn instruction_outside_method_is_rejected() {
        let err = assemble("class X\n  push_int 1\n").unwrap_err();
        assert!(err.to_string().contains("outside"));
    }

    #[test]
    fn missing_class_directive_is_rejected() {
        let err = assemble("method main/0\n  return\n").unwrap_err();
        assert!(err.to_string().contains("class"));
    }

    #[test]
    fn locals_default_to_params() {
        let image = assemble("class X\nmethod main/2\n  load 1\n  return_value\n").unwrap();
        assert_eq!(image.methods[0].locals, 2);
    }

    #[test]
    fn native_mnemonic() {
        let image =
            assemble("class X\nmethod main/0\n  push_int 1\n  native print/1\n  return_value\n")
                .unwrap();
        assert_eq!(
            image.methods[0].code[1],
            Insn::CallNative {
                name: "print".into(),
                argc: 1
            }
        );
    }
}
