//! Pure natives available to every interpreted class: string and number
//! helpers with no authority (they touch nothing outside their arguments),
//! so hosts can expose them without security considerations.
//!
//! Hosts opt in by consulting [`invoke_pure`] before their own dispatch —
//! [`NoNatives`](super::NoNatives) does, and so does the appletviewer's
//! host, so applets can e.g. parse the text of a field into a number.

use super::image::Value;
use crate::error::VmError;
use crate::Result;

/// Attempts to handle `name` as a pure stdlib native. Returns `None` if the
/// name is not part of the stdlib (the host should then try its own table).
///
/// Provided natives:
///
/// | name | args | result |
/// |---|---|---|
/// | `str_len` | (s) | length in characters |
/// | `substr` | (s, start, len) | substring (char indices, clamped) |
/// | `char_at` | (s, i) | one-character string, `""` out of range |
/// | `index_of` | (s, needle) | first char index or −1 |
/// | `to_upper` / `to_lower` | (s) | case-mapped string |
/// | `trim` | (s) | whitespace-trimmed string |
/// | `parse_int` | (s) | integer value, or `null` if unparseable |
/// | `to_str` | (v) | display form |
/// | `abs` / `min` / `max` | ints | arithmetic helpers |
pub fn invoke_pure(name: &str, args: &[Value]) -> Option<Result<Value>> {
    let result = match (name, args) {
        ("str_len", [v]) => Ok(Value::Int(v.display_string().chars().count() as i64)),
        ("substr", [s, Value::Int(start), Value::Int(len)]) => {
            let chars: Vec<char> = s.display_string().chars().collect();
            let start = (*start).clamp(0, chars.len() as i64) as usize;
            let end = start
                .saturating_add((*len).max(0) as usize)
                .min(chars.len());
            Ok(Value::str(chars[start..end].iter().collect::<String>()))
        }
        ("char_at", [s, Value::Int(i)]) => {
            let text = s.display_string();
            let c = if *i >= 0 {
                text.chars().nth(*i as usize)
            } else {
                None
            };
            Ok(Value::str(c.map(String::from).unwrap_or_default()))
        }
        ("index_of", [s, needle]) => {
            let text = s.display_string();
            let needle = needle.display_string();
            match text.find(&needle) {
                // Byte offset -> char offset for consistency with substr.
                Some(byte_idx) => Ok(Value::Int(text[..byte_idx].chars().count() as i64)),
                None => Ok(Value::Int(-1)),
            }
        }
        ("to_upper", [s]) => Ok(Value::str(s.display_string().to_uppercase())),
        ("to_lower", [s]) => Ok(Value::str(s.display_string().to_lowercase())),
        ("trim", [s]) => Ok(Value::str(s.display_string().trim())),
        ("parse_int", [s]) => Ok(s
            .display_string()
            .trim()
            .parse::<i64>()
            .map_or(Value::Null, Value::Int)),
        ("to_str", [v]) => Ok(Value::str(v.display_string())),
        ("abs", [Value::Int(v)]) => Ok(Value::Int(v.wrapping_abs())),
        ("min", [Value::Int(a), Value::Int(b)]) => Ok(Value::Int(*a.min(b))),
        ("max", [Value::Int(a), Value::Int(b)]) => Ok(Value::Int(*a.max(b))),
        // Known names with wrong arities/types trap rather than fall through.
        (
            "str_len" | "substr" | "char_at" | "index_of" | "to_upper" | "to_lower" | "trim"
            | "parse_int" | "to_str" | "abs" | "min" | "max",
            _,
        ) => Err(VmError::trap(format!(
            "stdlib native {name} called with bad arguments"
        ))),
        _ => return None,
    };
    Some(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(name: &str, args: &[Value]) -> Value {
        invoke_pure(name, args)
            .expect("stdlib name")
            .expect("no trap")
    }

    #[test]
    fn string_helpers() {
        assert_eq!(run("str_len", &[Value::str("héllo")]), Value::Int(5));
        assert_eq!(
            run(
                "substr",
                &[Value::str("héllo"), Value::Int(1), Value::Int(3)]
            ),
            Value::str("éll")
        );
        assert_eq!(
            run("substr", &[Value::str("ab"), Value::Int(5), Value::Int(3)]),
            Value::str("")
        );
        assert_eq!(
            run("char_at", &[Value::str("abc"), Value::Int(1)]),
            Value::str("b")
        );
        assert_eq!(
            run("char_at", &[Value::str("abc"), Value::Int(9)]),
            Value::str("")
        );
        assert_eq!(
            run("char_at", &[Value::str("abc"), Value::Int(-1)]),
            Value::str("")
        );
        assert_eq!(
            run("index_of", &[Value::str("héllo"), Value::str("llo")]),
            Value::Int(2)
        );
        assert_eq!(
            run("index_of", &[Value::str("abc"), Value::str("z")]),
            Value::Int(-1)
        );
        assert_eq!(run("to_upper", &[Value::str("aBc")]), Value::str("ABC"));
        assert_eq!(run("to_lower", &[Value::str("aBc")]), Value::str("abc"));
        assert_eq!(run("trim", &[Value::str("  x ")]), Value::str("x"));
    }

    #[test]
    fn number_helpers() {
        assert_eq!(run("parse_int", &[Value::str(" 42 ")]), Value::Int(42));
        assert_eq!(run("parse_int", &[Value::str("nope")]), Value::Null);
        assert_eq!(run("to_str", &[Value::Int(7)]), Value::str("7"));
        assert_eq!(run("abs", &[Value::Int(-3)]), Value::Int(3));
        assert_eq!(run("min", &[Value::Int(2), Value::Int(5)]), Value::Int(2));
        assert_eq!(run("max", &[Value::Int(2), Value::Int(5)]), Value::Int(5));
    }

    #[test]
    fn unknown_names_fall_through() {
        assert!(invoke_pure("not_a_native", &[]).is_none());
    }

    #[test]
    fn bad_arity_traps_instead_of_falling_through() {
        let result = invoke_pure("str_len", &[]).expect("known name");
        assert!(result.is_err());
    }
}
