//! The differential corpus: runs every case on both interpreter engines —
//! the fast dispatch loop ([`Interpreter::run`]) and the seed reference
//! loop ([`Interpreter::run_seed`]) — and reports any observable
//! divergence.
//!
//! The fast loop is an aggressive rework (pre-decoding, superinstruction
//! fusion, frame reuse, batched accounting), so "same semantics" is not
//! obvious from the code; this corpus makes it checked. A case diverges if
//! the two engines differ in *any* of: the result value, the error (trap
//! message, security denial, interruption), or the shared execution
//! counters (`instructions`, `method_calls`, `native_calls` — `dispatches`
//! is engine-specific by design). The corpus deliberately concentrates on
//! the rework's risk areas: traps raised *inside* fused superinstructions,
//! fuel exhaustion at and around safepoint boundaries, call-depth limits,
//! and native dispatch.
//!
//! Used three ways: `cargo test` runs the whole corpus
//! (`tests::corpus_has_zero_divergence`), experiment E18 re-runs it in the
//! bench binary and reports the case/divergence counts in its JSON (CI
//! gates on zero), and new fusion patterns get corpus cases alongside
//! their decoder.

use std::sync::Arc;

use super::image::{ClassImage, Insn, MethodImage, Value};
use super::machine::{Interpreter, NoNatives};
use crate::error::VmError;

/// One differential case: a program plus the entry call to make.
pub struct DiffCase {
    /// Case label, used in divergence reports.
    pub name: String,
    /// The image both engines execute.
    pub image: ClassImage,
    /// Entry method name.
    pub method: String,
    /// Entry arguments.
    pub args: Vec<Value>,
    /// Optional fuel bound applied to both engines.
    pub fuel: Option<u64>,
}

/// One observable difference between the engines on a case.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// The diverging case's name.
    pub case: String,
    /// What differed.
    pub detail: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.case, self.detail)
    }
}

fn single(name: &str, code: Vec<Insn>, params: u8, locals: u8) -> ClassImage {
    ClassImage {
        name: name.into(),
        methods: vec![MethodImage {
            name: "main".into(),
            params,
            locals,
            code,
        }],
    }
}

fn case(name: &str, image: ClassImage, args: Vec<Value>) -> DiffCase {
    DiffCase {
        name: name.into(),
        image,
        method: "main".into(),
        args,
        fuel: None,
    }
}

/// The canonical counting loop: `sum = 1 + 2 + ... + n`. Its body fuses
/// into `lei_jf; add2_store; addi_store; jump`, making it the densest
/// superinstruction exercise in the corpus.
fn sum_loop(n: i64) -> Vec<Insn> {
    vec![
        Insn::PushInt(1),
        Insn::Store(0),
        Insn::PushInt(0),
        Insn::Store(1),
        Insn::Load(0), // 4: loop head
        Insn::PushInt(n),
        Insn::Le,
        Insn::JumpIfFalse(17),
        Insn::Load(1),
        Insn::Load(0),
        Insn::Add,
        Insn::Store(1),
        Insn::Load(0),
        Insn::PushInt(1),
        Insn::Add,
        Insn::Store(0),
        Insn::Jump(4),
        Insn::Load(1), // 17
        Insn::ReturnValue,
    ]
}

fn fib_image() -> ClassImage {
    ClassImage {
        name: "Fib".into(),
        methods: vec![MethodImage {
            name: "main".into(),
            params: 1,
            locals: 1,
            code: vec![
                Insn::Load(0),
                Insn::PushInt(2),
                Insn::Lt,
                Insn::JumpIfFalse(6),
                Insn::Load(0),
                Insn::ReturnValue,
                Insn::Load(0), // 6
                Insn::PushInt(1),
                Insn::Sub,
                Insn::Call {
                    method: "main".into(),
                    argc: 1,
                },
                Insn::Load(0),
                Insn::PushInt(2),
                Insn::Sub,
                Insn::Call {
                    method: "main".into(),
                    argc: 1,
                },
                Insn::Add,
                Insn::ReturnValue,
            ],
        }],
    }
}

/// Builds the full corpus. Deterministic: the same cases in the same order
/// every call.
#[allow(clippy::too_many_lines, clippy::vec_init_then_push)]
pub fn corpus() -> Vec<DiffCase> {
    let mut cases = Vec::new();

    cases.push(case(
        "arith_mix",
        single(
            "Arith",
            vec![
                Insn::PushInt(7),
                Insn::PushInt(3),
                Insn::Mul, // 21
                Insn::PushInt(5),
                Insn::Swap, // 5, 21
                Insn::Rem,  // 5 % 21 = 5
                Insn::Neg,  // -5
                Insn::Dup,
                Insn::Sub, // 0
                Insn::PushInt(9),
                Insn::Add, // 9
                Insn::PushInt(2),
                Insn::Div, // 4
                Insn::ReturnValue,
            ],
            0,
            0,
        ),
        vec![],
    ));

    cases.push(case(
        "sum_loop_500",
        single("Sum", sum_loop(500), 0, 2),
        vec![],
    ));

    cases.push(DiffCase {
        name: "fib_12".into(),
        image: fib_image(),
        method: "main".into(),
        args: vec![Value::Int(12)],
        fuel: None,
    });

    // String building: interning (repeated literal) + concat in a loop.
    cases.push(case(
        "string_build",
        single(
            "Str",
            vec![
                Insn::PushStr("".into()),
                Insn::Store(1),
                Insn::PushInt(0),
                Insn::Store(0),
                Insn::Load(0), // 4: loop head
                Insn::PushInt(20),
                Insn::Lt,
                Insn::JumpIfFalse(19),
                Insn::Load(1),
                Insn::PushStr("ab".into()),
                Insn::Concat,
                Insn::Load(0),
                Insn::Concat,
                Insn::Store(1),
                Insn::Load(0),
                Insn::PushInt(1),
                Insn::Add,
                Insn::Store(0),
                Insn::Jump(4),
                Insn::Load(1), // 19
                Insn::ReturnValue,
            ],
            0,
            2,
        ),
        vec![],
    ));

    // Truthiness, mixed-type eq/ne, and jump_if_true.
    cases.push(case(
        "bools_and_eq",
        single(
            "Bools",
            vec![
                Insn::PushStr("x".into()),
                Insn::PushInt(1),
                Insn::Eq, // false: kinds differ
                Insn::JumpIfTrue(8),
                Insn::PushNull,
                Insn::PushBool(false),
                Insn::Ne, // true
                Insn::ReturnValue,
                Insn::PushInt(99), // 8: only reached if Eq were true
                Insn::ReturnValue,
            ],
            0,
            0,
        ),
        vec![],
    ));

    // Trap: division and remainder by zero (unfused ops).
    for (name, op) in [("div_by_zero", Insn::Div), ("rem_by_zero", Insn::Rem)] {
        cases.push(case(
            name,
            single(
                "Div0",
                vec![Insn::PushInt(1), Insn::PushInt(0), op, Insn::ReturnValue],
                0,
                0,
            ),
            vec![],
        ));
    }

    // Trap: type mismatch on an unfused Add (operand order in the message).
    cases.push(case(
        "type_mismatch_unfused",
        single(
            "TypeU",
            vec![
                Insn::PushStr("s".into()),
                Insn::PushInt(1),
                Insn::Add,
                Insn::ReturnValue,
            ],
            0,
            0,
        ),
        vec![],
    ));

    // Traps *inside* fused superinstructions: the engine must report the
    // same message and have charged the same instruction count as the seed
    // loop trapping mid-pattern. A string argument poisons local 0.
    let poison = vec![Value::str("poison")];
    cases.push(case(
        "fused_addi_store_mismatch",
        single(
            "FA",
            vec![
                Insn::Load(0),
                Insn::PushInt(1),
                Insn::Add,
                Insn::Store(0),
                Insn::Return,
            ],
            1,
            1,
        ),
        poison.clone(),
    ));
    cases.push(case(
        "fused_lti_jf_mismatch",
        single(
            "FL",
            vec![
                Insn::Load(0),
                Insn::PushInt(10),
                Insn::Lt,
                Insn::JumpIfFalse(5),
                Insn::Return,
                Insn::Return, // 5
            ],
            1,
            1,
        ),
        poison.clone(),
    ));
    cases.push(case(
        "fused_add2_store_mismatch",
        single(
            "F2",
            vec![
                Insn::Load(0),
                Insn::Load(1),
                Insn::Add,
                Insn::Store(1),
                Insn::Return,
            ],
            1,
            2,
        ),
        poison.clone(),
    ));
    cases.push(case(
        "fused_load2_mul_mismatch",
        single(
            "FM",
            vec![Insn::Load(1), Insn::Load(0), Insn::Mul, Insn::ReturnValue],
            1,
            2,
        ),
        poison.clone(),
    ));
    cases.push(case(
        "fused_lt_jf_pair_mismatch",
        single(
            "FP",
            vec![
                Insn::PushInt(1),
                Insn::Load(0),
                Insn::Lt,
                Insn::JumpIfFalse(5),
                Insn::Return,
                Insn::Return, // 5
            ],
            1,
            1,
        ),
        poison.clone(),
    ));
    // The loop-tail quint: poison traps at the Sub (3rd component); the
    // Store and the fused back edge must never be charged.
    cases.push(case(
        "fused_subi_store_jump_mismatch",
        single(
            "FJ",
            vec![
                Insn::Load(0),
                Insn::PushInt(1),
                Insn::Sub,
                Insn::Store(0),
                Insn::Jump(0),
                Insn::Return, // 5: unreachable
            ],
            1,
            1,
        ),
        poison.clone(),
    ));
    // eqi_jf / nei_jf never trap on type mismatch — they must *branch*
    // identically when the local is not an int.
    cases.push(case(
        "fused_eqi_jf_non_int",
        single(
            "FE",
            vec![
                Insn::Load(0),
                Insn::PushInt(7),
                Insn::Eq,
                Insn::JumpIfFalse(6),
                Insn::PushInt(1),
                Insn::ReturnValue,
                Insn::PushInt(2), // 6
                Insn::ReturnValue,
            ],
            1,
            1,
        ),
        poison,
    ));

    // Trap: call depth (infinite self-recursion).
    cases.push(case(
        "call_depth_overflow",
        single(
            "Deep",
            vec![
                Insn::Call {
                    method: "main".into(),
                    argc: 0,
                },
                Insn::ReturnValue,
            ],
            0,
            0,
        ),
        vec![],
    ));

    // Depth exactly at the limit minus one: must *succeed* on both.
    cases.push(DiffCase {
        name: "call_depth_at_limit".into(),
        image: ClassImage {
            name: "Depth".into(),
            methods: vec![MethodImage {
                name: "main".into(),
                params: 1,
                locals: 1,
                code: vec![
                    Insn::Load(0),
                    Insn::PushInt(0),
                    Insn::Le,
                    Insn::JumpIfFalse(6),
                    Insn::Load(0),
                    Insn::ReturnValue,
                    Insn::Load(0), // 6
                    Insn::PushInt(1),
                    Insn::Sub,
                    Insn::Call {
                        method: "main".into(),
                        argc: 1,
                    },
                    Insn::ReturnValue,
                ],
            }],
        },
        method: "main".into(),
        args: vec![Value::Int(62)],
        fuel: None,
    });

    // Natives: the pure stdlib through NoNatives, and an unknown one.
    cases.push(case(
        "stdlib_natives",
        single(
            "Std",
            vec![
                Insn::PushStr(" Mixed Case ".into()),
                Insn::CallNative {
                    name: "trim".into(),
                    argc: 1,
                },
                Insn::CallNative {
                    name: "to_upper".into(),
                    argc: 1,
                },
                Insn::CallNative {
                    name: "str_len".into(),
                    argc: 1,
                },
                Insn::PushStr("42".into()),
                Insn::CallNative {
                    name: "parse_int".into(),
                    argc: 1,
                },
                Insn::CallNative {
                    name: "min".into(),
                    argc: 2,
                },
                Insn::ReturnValue,
            ],
            0,
            0,
        ),
        vec![],
    ));
    cases.push(case(
        "unknown_native",
        single(
            "NoNat",
            vec![
                Insn::CallNative {
                    name: "launch_missiles".into(),
                    argc: 0,
                },
                Insn::ReturnValue,
            ],
            0,
            0,
        ),
        vec![],
    ));

    // Entry errors: unknown method and arity mismatch.
    cases.push(DiffCase {
        name: "entry_unknown_method".into(),
        image: single("E1", vec![Insn::Return], 0, 0),
        method: "absent".into(),
        args: vec![],
        fuel: None,
    });
    cases.push(DiffCase {
        name: "entry_arity_mismatch".into(),
        image: single("E2", vec![Insn::Return], 2, 2),
        method: "main".into(),
        args: vec![Value::Int(1)],
        fuel: None,
    });

    // Fuel sweep over the fused loop: exhaustion must hit the same wire
    // instruction on both engines, including exactly at and around the
    // 1024-instruction safepoint boundary and mid-superinstruction.
    for fuel in [
        0u64, 1, 2, 3, 5, 7, 11, 13, 50, 100, 1023, 1024, 1025, 2048, 4000,
    ] {
        cases.push(DiffCase {
            name: format!("fuel_{fuel}_sum_loop"),
            image: single("Fuel", sum_loop(500), 0, 2),
            method: "main".into(),
            args: vec![],
            fuel: Some(fuel),
        });
    }
    // Fine sweep across one loop iteration's worth of instructions, so every
    // component position inside every fused op gets hit at least once.
    for fuel in 30..60u64 {
        cases.push(DiffCase {
            name: format!("fuel_{fuel}_fine"),
            image: single("Fuel", sum_loop(500), 0, 2),
            method: "main".into(),
            args: vec![],
            fuel: Some(fuel),
        });
    }
    // Fuel through recursion: charging must agree across call frames.
    for fuel in [64u64, 200, 500] {
        cases.push(DiffCase {
            name: format!("fuel_{fuel}_fib"),
            image: fib_image(),
            method: "main".into(),
            args: vec![Value::Int(10)],
            fuel: Some(fuel),
        });
    }

    cases
}

fn outcome_label(result: &crate::Result<Value>) -> String {
    match result {
        Ok(v) => format!("ok: {v:?}"),
        Err(VmError::Interrupted) => "interrupted".to_string(),
        Err(e) => format!("err: {e}"),
    }
}

/// Runs one case on both engines (each on a fresh interpreter, so counters
/// start equal) and returns the divergences it produced.
pub fn run_case(case: &DiffCase) -> Vec<Divergence> {
    let build = |image: &ClassImage| {
        let i = Interpreter::new(Arc::new(image.clone()), Arc::new(NoNatives))
            .expect("corpus images verify");
        match case.fuel {
            Some(f) => i.with_fuel(f),
            None => i,
        }
    };
    let fast = build(&case.image);
    let seed = build(&case.image);
    let fast_result = fast.run(&case.method, case.args.clone());
    let seed_result = seed.run_seed(&case.method, case.args.clone());

    let mut divergences = Vec::new();
    let mut diverge = |detail: String| {
        divergences.push(Divergence {
            case: case.name.clone(),
            detail,
        });
    };

    let (fast_label, seed_label) = (outcome_label(&fast_result), outcome_label(&seed_result));
    if fast_label != seed_label {
        diverge(format!(
            "outcome: fast [{fast_label}] vs seed [{seed_label}]"
        ));
    }
    let pairs = [
        (
            "instructions",
            fast.stats().instructions(),
            seed.stats().instructions(),
        ),
        (
            "method_calls",
            fast.stats().method_calls(),
            seed.stats().method_calls(),
        ),
        (
            "native_calls",
            fast.stats().native_calls(),
            seed.stats().native_calls(),
        ),
    ];
    for (what, f, s) in pairs {
        if f != s {
            diverge(format!("{what}: fast {f} vs seed {s}"));
        }
    }
    if fast.stats().dispatches() > fast.stats().instructions() {
        diverge(format!(
            "dispatches {} exceed instructions {}",
            fast.stats().dispatches(),
            fast.stats().instructions()
        ));
    }
    divergences
}

/// Runs the whole corpus; returns `(cases_run, divergences)`.
pub fn run_all() -> (usize, Vec<Divergence>) {
    let cases = corpus();
    let mut divergences = Vec::new();
    for case in &cases {
        divergences.extend(run_case(case));
    }
    (cases.len(), divergences)
}

/// Runs one case twice — plain, and split into a checkpoint at cumulative
/// wire instruction `at` plus a restore on a *fresh* interpreter — and
/// returns any observable divergence: result value, trap message, or the
/// cumulative execution counters (`instructions`, `method_calls`,
/// `native_calls`), which the resume pre-seeds so a split run must land on
/// exactly the plain run's totals.
///
/// A checkpoint past the end of the run (or a case that errors before the
/// first safepoint-aligned op boundary) never fires; the split run then
/// degenerates to a plain run and is compared as such.
pub fn run_case_checkpointed(case: &DiffCase, at: u64) -> Vec<Divergence> {
    let build = |image: &ClassImage| {
        let i = Interpreter::new(Arc::new(image.clone()), Arc::new(NoNatives))
            .expect("corpus images verify");
        match case.fuel {
            Some(f) => i.with_fuel(f),
            None => i,
        }
    };
    let plain = build(&case.image);
    let plain_result = plain.run(&case.method, case.args.clone());

    let first = build(&case.image).with_checkpoint_at(at);
    let first_result = first.run(&case.method, case.args.clone());
    // The interpreter whose outcome and counters stand for the split run:
    // the restoring one if the park fired, the first one otherwise.
    let (split_result, split_stats_of) = match first_result {
        Err(VmError::Checkpointed) => {
            let snap = first
                .take_snapshot()
                .expect("a checkpointed run deposits its continuation");
            // Restore on a fresh interpreter, as a migration would; fuel
            // and cumulative counters travel inside the snapshot.
            let second = Interpreter::new(Arc::new(case.image.clone()), Arc::new(NoNatives))
                .expect("corpus images verify");
            let result = second.resume(&snap);
            (result, second)
        }
        other => (other, first),
    };

    let mut divergences = Vec::new();
    let mut diverge = |detail: String| {
        divergences.push(Divergence {
            case: format!("{}@ckpt{at}", case.name),
            detail,
        });
    };
    let (plain_label, split_label) = (outcome_label(&plain_result), outcome_label(&split_result));
    if plain_label != split_label {
        diverge(format!(
            "outcome: plain [{plain_label}] vs split [{split_label}]"
        ));
    }
    let pairs = [
        (
            "instructions",
            plain.stats().instructions(),
            split_stats_of.stats().instructions(),
        ),
        (
            "method_calls",
            plain.stats().method_calls(),
            split_stats_of.stats().method_calls(),
        ),
        (
            "native_calls",
            plain.stats().native_calls(),
            split_stats_of.stats().native_calls(),
        ),
    ];
    for (what, p, s) in pairs {
        if p != s {
            diverge(format!("{what}: plain {p} vs split {s}"));
        }
    }
    divergences
}

/// Runs the whole corpus through [`run_case_checkpointed`] at every split
/// point in `ats`; returns `(comparisons_run, divergences)`.
pub fn run_all_checkpointed(ats: &[u64]) -> (usize, Vec<Divergence>) {
    let cases = corpus();
    let mut divergences = Vec::new();
    let mut comparisons = 0;
    for case in &cases {
        for &at in ats {
            comparisons += 1;
            divergences.extend(run_case_checkpointed(case, at));
        }
    }
    (comparisons, divergences)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_zero_divergence() {
        let (cases, divergences) = run_all();
        assert!(cases >= 40, "corpus stays substantial: {cases} cases");
        assert!(
            divergences.is_empty(),
            "engines diverged:\n{}",
            divergences
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    #[test]
    fn corpus_covers_every_superinstruction_trap_family() {
        let names: Vec<String> = corpus().into_iter().map(|c| c.name).collect();
        for required in [
            "fused_addi_store_mismatch",
            "fused_lti_jf_mismatch",
            "fused_add2_store_mismatch",
            "fused_load2_mul_mismatch",
            "fused_lt_jf_pair_mismatch",
            "fused_subi_store_jump_mismatch",
            "fused_eqi_jf_non_int",
            "call_depth_overflow",
            "div_by_zero",
            "fuel_1024_sum_loop",
        ] {
            assert!(
                names.iter().any(|n| n == required),
                "corpus lost case {required}"
            );
        }
    }

    #[test]
    fn checkpoint_restore_matches_plain_across_the_corpus() {
        // Split points cover: before the first op, early, mid-loop, both
        // sides of the 1024-instruction safepoint boundary, and past the
        // end of most cases (where the park never fires and the split run
        // degenerates to a plain one).
        let ats = [0u64, 1, 7, 33, 100, 1023, 1024, 1025, 5000];
        let (comparisons, divergences) = run_all_checkpointed(&ats);
        assert!(
            comparisons >= 400,
            "the sweep stays substantial: {comparisons} comparisons"
        );
        assert!(
            divergences.is_empty(),
            "checkpoint/restore diverged from plain runs:\n{}",
            divergences
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    #[test]
    fn a_mid_loop_checkpoint_actually_fires_and_parks() {
        // Guard against the sweep silently degenerating: at split 100 the
        // canonical sum loop must really park, deposit a continuation, and
        // resume to the exact plain result.
        let case = corpus()
            .into_iter()
            .find(|c| c.name == "sum_loop_500")
            .unwrap();
        let interp = Interpreter::new(Arc::new(case.image.clone()), Arc::new(NoNatives))
            .unwrap()
            .with_checkpoint_at(100);
        let result = interp.run(&case.method, case.args.clone());
        assert!(matches!(result, Err(VmError::Checkpointed)));
        let snap = interp.take_snapshot().expect("continuation deposited");
        // The park lands at the op boundary just before the split point
        // (the op that would cross it stays uncharged), so the snapshot
        // sits within one fused op's width below 100.
        assert!(
            snap.instructions >= 90 && snap.instructions <= 100,
            "parked mid-run at {}",
            snap.instructions
        );
        let second = Interpreter::new(Arc::new(case.image.clone()), Arc::new(NoNatives)).unwrap();
        assert_eq!(second.resume(&snap).unwrap(), Value::Int(125_250));
    }

    #[test]
    fn fuel_sweep_traps_at_identical_points() {
        // Spot-check one boundary case end to end: fuel 1024 must trap
        // with "fuel exhausted" on both engines at instruction 1025
        // (1024 charged + the one that found the tank empty).
        let case = corpus()
            .into_iter()
            .find(|c| c.name == "fuel_1024_sum_loop")
            .unwrap();
        assert!(run_case(&case).is_empty());
    }
}
