//! The `jbc` pre-decoder: compiles a verified [`ClassImage`] into the flat
//! form the fast dispatch loop executes.
//!
//! Compilation happens once, at class-define time, and does four things the
//! seed `match`-loop paid for on every executed instruction:
//!
//! * **String interning** — every `PushStr` literal becomes one `Arc<str>`
//!   in a per-image constant pool; execution clones the `Arc` instead of
//!   re-allocating `Arc::from(&str)` each time.
//! * **Reference resolution** — jump targets are rewritten from wire
//!   instruction indices to compiled-op indices, and `Call` sites from
//!   string-keyed `image.method(name)` scans to method indices. Each
//!   `CallNative` site gets its own [`NativeSiteCache`] inline cache wired
//!   to the decision cache.
//! * **Superinstruction fusion** — common adjacent pairs/triples/quads/
//!   quints (`Load+Load+<intop>`, `<cmp>+JumpIfFalse`, `Load+PushInt+Add`,
//!   `Load+Store`, their `...+Store` / `...+JumpIfFalse` extensions, and
//!   the `Load+PushInt+Add/Sub+Store+Jump` loop tail)
//!   fuse into one [`Op`], cutting dispatches per loop iteration by ~4x.
//!   Fusion never crosses a jump-target boundary: an op only swallows
//!   successors no branch can land on, so control flow is preserved
//!   exactly.
//! * **Frame sizing** — each method records `locals + max_stack` (from the
//!   verifier's abstract interpretation), so the interpreter can run every
//!   frame inside one contiguous reusable arena with no per-push bounds
//!   growth.
//!
//! The compiled form is a cache of the wire image: semantics (including
//! trap messages, instruction accounting, fuel, and safepoint cadence) are
//! defined by the seed loop and checked against it by the differential
//! corpus in [`super::difftest`].

use std::collections::HashMap;
use std::sync::Arc;

use super::image::{ClassImage, Insn};
use super::verify::verify_facts;
use crate::decision_cache::NativeSiteCache;
use crate::error::VmError;
use crate::Result;

/// Compiled opcode bytes. `0..BASE_OPCODE_COUNT` mirror [`Insn::opcode`]
/// exactly; the rest are superinstructions, in `OPCODE_NAMES` order.
pub(crate) mod op {
    pub const PUSH_INT: u8 = 0;
    pub const PUSH_STR: u8 = 1;
    pub const PUSH_BOOL: u8 = 2;
    pub const PUSH_NULL: u8 = 3;
    pub const LOAD: u8 = 4;
    pub const STORE: u8 = 5;
    pub const POP: u8 = 6;
    pub const DUP: u8 = 7;
    pub const SWAP: u8 = 8;
    pub const ADD: u8 = 9;
    pub const SUB: u8 = 10;
    pub const MUL: u8 = 11;
    pub const DIV: u8 = 12;
    pub const REM: u8 = 13;
    pub const NEG: u8 = 14;
    pub const CONCAT: u8 = 15;
    pub const EQ: u8 = 16;
    pub const NE: u8 = 17;
    pub const LT: u8 = 18;
    pub const LE: u8 = 19;
    pub const GT: u8 = 20;
    pub const GE: u8 = 21;
    pub const AND: u8 = 22;
    pub const OR: u8 = 23;
    pub const NOT: u8 = 24;
    pub const JUMP: u8 = 25;
    pub const JUMP_IF_FALSE: u8 = 26;
    pub const JUMP_IF_TRUE: u8 = 27;
    pub const CALL: u8 = 28;
    pub const CALL_NATIVE: u8 = 29;
    pub const RETURN: u8 = 30;
    pub const RETURN_VALUE: u8 = 31;
    // Superinstructions. Operand conventions: `a`/`b` are local slots,
    // `k` an integer constant, `t` a branch target, third slot, or index.
    pub const LOAD2_ADD: u8 = 32; // push locals[a] + locals[b]
    pub const LOAD2_SUB: u8 = 33;
    pub const LOAD2_MUL: u8 = 34;
    pub const LT_JF: u8 = 35; // pop b, pop a; if !(a < b) jump t
    pub const LE_JF: u8 = 36;
    pub const GT_JF: u8 = 37;
    pub const GE_JF: u8 = 38;
    pub const EQ_JF: u8 = 39;
    pub const NE_JF: u8 = 40;
    pub const LOAD_ADDI: u8 = 41; // push locals[a] + k
    pub const LOAD_SUBI: u8 = 42;
    pub const LOAD_STORE: u8 = 43; // locals[b] = locals[a]
    pub const ADDI_STORE: u8 = 44; // locals[b] = locals[a] + k
    pub const SUBI_STORE: u8 = 45;
    pub const ADD2_STORE: u8 = 46; // locals[t] = locals[a] + locals[b]
    pub const LTI_JF: u8 = 47; // if !(locals[a] < k) jump t
    pub const LEI_JF: u8 = 48;
    pub const GTI_JF: u8 = 49;
    pub const GEI_JF: u8 = 50;
    pub const EQI_JF: u8 = 51;
    pub const NEI_JF: u8 = 52;
    pub const ADDI_STORE_JUMP: u8 = 53; // locals[b] = locals[a] + k; jump t
    pub const SUBI_STORE_JUMP: u8 = 54;
}

/// One pre-decoded instruction: a fixed 16-byte cell the dispatch loop
/// reads with one load and no pointer chasing.
///
/// Field use varies by opcode: `a`/`b` hold local slots or an argc, `t` a
/// resolved branch target / method index / pool index / native-site index /
/// third local slot, `k` an integer constant. `cost` is how many wire
/// instructions this op stands for — the unit in which fuel, instruction
/// accounting, and the 1024-instruction safepoint cadence are charged, so
/// fusion is invisible to all three.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Op {
    pub code: u8,
    pub a: u8,
    pub b: u8,
    pub cost: u8,
    pub t: u16,
    pub k: i64,
}

impl Op {
    fn plain(code: u8) -> Op {
        Op {
            code,
            a: 0,
            b: 0,
            cost: 1,
            t: 0,
            k: 0,
        }
    }
}

/// `true` for ops whose `t` is a branch target (needing pc remapping).
fn is_branch(code: u8) -> bool {
    matches!(code, op::JUMP | op::JUMP_IF_FALSE | op::JUMP_IF_TRUE)
        || (op::LT_JF..=op::NE_JF).contains(&code)
        || (op::LTI_JF..=op::NEI_JF).contains(&code)
        || matches!(code, op::ADDI_STORE_JUMP | op::SUBI_STORE_JUMP)
}

/// One compiled method: flat ops plus the frame geometry the arena
/// interpreter needs.
#[derive(Debug)]
pub(crate) struct CompiledMethod {
    /// `"Class.method"`, precomputed so publishing a profloc frame costs an
    /// `Arc` clone instead of a `format!` per call.
    pub qualified: Arc<str>,
    /// Declared parameter count.
    pub params: u8,
    /// Declared local-slot count.
    pub locals: u16,
    /// `locals + max_stack` (the verifier's proven operand-stack bound):
    /// the arena cells one frame of this method needs.
    pub frame_size: u32,
    /// The pre-decoded code.
    pub code: Vec<Op>,
}

/// One `CallNative` site: the resolved name plus the site's inline cache
/// into the permission decision cache.
#[derive(Debug)]
pub(crate) struct NativeSite {
    /// The native operation name.
    pub name: Arc<str>,
    /// The per-site monomorphic grant cache.
    pub cache: Arc<NativeSiteCache>,
}

/// A verified, pre-decoded class image — the unit the fast dispatch loop
/// executes and what [`ClassDef`](crate::classes::ClassDef) caches per
/// defined class.
///
/// Compiling implies verifying: a `CompiledImage` exists only for images
/// that passed the [`verify`](super::verify) checks, and the compiled form
/// preserves wire semantics exactly (checked by [`super::difftest`]).
pub struct CompiledImage {
    image: Arc<ClassImage>,
    methods: Vec<CompiledMethod>,
    by_name: HashMap<String, usize>,
    pool: Vec<Arc<str>>,
    sites: Vec<NativeSite>,
}

impl std::fmt::Debug for CompiledImage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledImage")
            .field("class", &self.image.name)
            .field("methods", &self.methods.len())
            .field("pool", &self.pool.len())
            .field("sites", &self.sites.len())
            .finish()
    }
}

impl CompiledImage {
    /// Verifies and pre-decodes `image`.
    ///
    /// # Errors
    ///
    /// [`VmError::Verification`] if the image fails verification or exceeds
    /// compiled-form limits (methods, string constants, or native sites
    /// beyond `u16::MAX`).
    pub fn compile(image: Arc<ClassImage>) -> Result<CompiledImage> {
        let facts = verify_facts(&image)?;
        let limit = |what: &str| VmError::Verification {
            class: image.name.clone(),
            message: format!("too many {what} for the compiled form (max {})", u16::MAX),
        };
        if image.methods.len() > usize::from(u16::MAX) {
            return Err(limit("methods"));
        }
        let mut ctx = Cx {
            image: &image,
            pool: Vec::new(),
            pool_index: HashMap::new(),
            sites: Vec::new(),
        };
        let mut methods = Vec::with_capacity(image.methods.len());
        let mut by_name: HashMap<String, usize> = HashMap::new();
        for (index, (m, fact)) in image.methods.iter().zip(&facts).enumerate() {
            let code = compile_code(&m.code, &mut ctx)?;
            let locals = u16::from(m.locals);
            methods.push(CompiledMethod {
                qualified: Arc::from(format!("{}.{}", image.name, m.name).as_str()),
                params: m.params,
                locals,
                frame_size: u32::from(locals) + fact.max_stack as u32,
                code,
            });
            // First definition wins, matching `ClassImage::method`'s
            // first-match scan.
            by_name.entry(m.name.clone()).or_insert(index);
        }
        if ctx.pool.len() > usize::from(u16::MAX) {
            return Err(limit("string constants"));
        }
        if ctx.sites.len() > usize::from(u16::MAX) {
            return Err(limit("native call sites"));
        }
        let (pool, sites) = (ctx.pool, ctx.sites);
        Ok(CompiledImage {
            image,
            methods,
            by_name,
            pool,
            sites,
        })
    }

    /// The wire image this was compiled from.
    pub fn image(&self) -> &Arc<ClassImage> {
        &self.image
    }

    /// Approximate resident bytes of the pre-decoded form: ops, interned
    /// pool strings, native-site names, and method labels. Charged against
    /// the defining application's `Memory` quota (and released in bulk at
    /// reap), so hostile code cannot balloon the VM by defining classes.
    pub fn footprint_bytes(&self) -> u64 {
        let ops: usize = self
            .methods
            .iter()
            .map(|m| m.code.len() * std::mem::size_of::<Op>() + m.qualified.len())
            .sum();
        let pool: usize = self.pool.iter().map(|s| s.len()).sum();
        let sites: usize = self.sites.iter().map(|s| s.name.len()).sum();
        (ops + pool + sites) as u64
    }

    pub(crate) fn methods(&self) -> &[CompiledMethod] {
        &self.methods
    }

    pub(crate) fn method_index(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).copied()
    }

    pub(crate) fn pool_str(&self, index: u16) -> &Arc<str> {
        &self.pool[usize::from(index)]
    }

    pub(crate) fn site(&self, index: u16) -> &NativeSite {
        &self.sites[usize::from(index)]
    }

    #[cfg(test)]
    pub(crate) fn pool_len(&self) -> usize {
        self.pool.len()
    }
}

/// Shared per-image compile state: the string pool and native-site table.
struct Cx<'a> {
    image: &'a ClassImage,
    pool: Vec<Arc<str>>,
    pool_index: HashMap<String, u16>,
    sites: Vec<NativeSite>,
}

impl Cx<'_> {
    fn intern(&mut self, s: &str) -> u16 {
        if let Some(&idx) = self.pool_index.get(s) {
            return idx;
        }
        // Over-length pools are rejected after compilation; saturate here.
        let idx = self.pool.len().min(usize::from(u16::MAX)) as u16;
        self.pool.push(Arc::from(s));
        self.pool_index.insert(s.to_string(), idx);
        idx
    }

    fn site(&mut self, name: &str) -> u16 {
        let idx = self.sites.len().min(usize::from(u16::MAX)) as u16;
        self.sites.push(NativeSite {
            name: Arc::from(name),
            cache: Arc::new(NativeSiteCache::new()),
        });
        idx
    }

    fn method_index(&self, name: &str) -> u16 {
        // The verifier proved the callee exists; first match, like
        // `ClassImage::method`.
        self.image
            .methods
            .iter()
            .position(|m| m.name == name)
            .expect("verified call target exists") as u16
    }
}

/// For comparison opcodes, the distance from the base compare to its fused
/// `<cmp>+JumpIfFalse` / `Load+PushInt+<cmp>+JumpIfFalse` forms: the six
/// compares `Eq..Ge` occupy opcodes 16..=21 and both fused families keep
/// the same relative order (`lt,le,gt,ge,eq,ne` after reordering below).
fn cmp_jf_opcode(cmp: &Insn) -> Option<u8> {
    Some(match cmp {
        Insn::Lt => op::LT_JF,
        Insn::Le => op::LE_JF,
        Insn::Gt => op::GT_JF,
        Insn::Ge => op::GE_JF,
        Insn::Eq => op::EQ_JF,
        Insn::Ne => op::NE_JF,
        _ => return None,
    })
}

fn cmpi_jf_opcode(cmp: &Insn) -> Option<u8> {
    Some(match cmp {
        Insn::Lt => op::LTI_JF,
        Insn::Le => op::LEI_JF,
        Insn::Gt => op::GTI_JF,
        Insn::Ge => op::GEI_JF,
        Insn::Eq => op::EQI_JF,
        Insn::Ne => op::NEI_JF,
        _ => return None,
    })
}

fn compile_code(code: &[Insn], ctx: &mut Cx<'_>) -> Result<Vec<Op>> {
    let len = code.len();
    // The fusion boundary rule: a fused op may only swallow wire pcs no
    // branch can land on. (The verifier already proved all targets are
    // in-bounds.)
    let mut is_target = vec![false; len];
    for insn in code {
        if let Insn::Jump(t) | Insn::JumpIfFalse(t) | Insn::JumpIfTrue(t) = insn {
            is_target[usize::from(*t)] = true;
        }
    }

    let mut ops: Vec<Op> = Vec::with_capacity(len);
    // Wire pc -> compiled index, for branch retargeting. Interior pcs of a
    // fused op map to the op itself; the boundary rule guarantees no branch
    // ever uses those entries.
    let mut pc_map = vec![0u16; len];
    let mut pc = 0;
    while pc < len {
        let here = ops.len() as u16;
        let (op, consumed) = fuse(code, pc, &is_target, ctx);
        for entry in &mut pc_map[pc..pc + consumed] {
            *entry = here;
        }
        ops.push(op);
        pc += consumed;
    }
    if ops.len() > usize::from(u16::MAX) {
        return Err(VmError::Verification {
            class: ctx.image.name.clone(),
            message: format!("method too long for the compiled form (max {})", u16::MAX),
        });
    }
    // Second pass: retarget branches from wire pcs to compiled indices.
    for op in &mut ops {
        if is_branch(op.code) {
            op.t = pc_map[usize::from(op.t)];
        }
    }
    Ok(ops)
}

/// Decodes (and greedily fuses, longest pattern first) the instruction(s)
/// at `pc`, returning the op and how many wire instructions it consumed.
fn fuse(code: &[Insn], pc: usize, is_target: &[bool], ctx: &mut Cx<'_>) -> (Op, usize) {
    // `pc + i` may be swallowed only if it exists and no branch lands on it.
    let free = |i: usize| pc + i < code.len() && !is_target[pc + i];

    // Quints: the canonical counting-loop tail — bump a local by a
    // constant, then take the back edge — collapses to one dispatch.
    if free(1) && free(2) && free(3) && free(4) {
        if let (
            Insn::Load(a),
            Insn::PushInt(k),
            addsub @ (Insn::Add | Insn::Sub),
            Insn::Store(b),
            Insn::Jump(t),
        ) = (
            &code[pc],
            &code[pc + 1],
            &code[pc + 2],
            &code[pc + 3],
            &code[pc + 4],
        ) {
            let fused = if matches!(addsub, Insn::Add) {
                op::ADDI_STORE_JUMP
            } else {
                op::SUBI_STORE_JUMP
            };
            return (
                Op {
                    code: fused,
                    a: *a,
                    b: *b,
                    cost: 5,
                    t: *t,
                    k: *k,
                },
                5,
            );
        }
    }

    // Quads.
    if free(1) && free(2) && free(3) {
        match (&code[pc], &code[pc + 1], &code[pc + 2], &code[pc + 3]) {
            (Insn::Load(a), Insn::PushInt(k), Insn::Add, Insn::Store(b)) => {
                return (
                    Op {
                        code: op::ADDI_STORE,
                        a: *a,
                        b: *b,
                        cost: 4,
                        t: 0,
                        k: *k,
                    },
                    4,
                );
            }
            (Insn::Load(a), Insn::PushInt(k), Insn::Sub, Insn::Store(b)) => {
                return (
                    Op {
                        code: op::SUBI_STORE,
                        a: *a,
                        b: *b,
                        cost: 4,
                        t: 0,
                        k: *k,
                    },
                    4,
                );
            }
            (Insn::Load(a), Insn::Load(b), Insn::Add, Insn::Store(c)) => {
                return (
                    Op {
                        code: op::ADD2_STORE,
                        a: *a,
                        b: *b,
                        cost: 4,
                        t: u16::from(*c),
                        k: 0,
                    },
                    4,
                );
            }
            (Insn::Load(a), Insn::PushInt(k), cmp, Insn::JumpIfFalse(t)) => {
                if let Some(fused) = cmpi_jf_opcode(cmp) {
                    return (
                        Op {
                            code: fused,
                            a: *a,
                            b: 0,
                            cost: 4,
                            t: *t,
                            k: *k,
                        },
                        4,
                    );
                }
            }
            _ => {}
        }
    }

    // Triples.
    if free(1) && free(2) {
        match (&code[pc], &code[pc + 1], &code[pc + 2]) {
            (Insn::Load(a), Insn::Load(b), intop @ (Insn::Add | Insn::Sub | Insn::Mul)) => {
                let fused = match intop {
                    Insn::Add => op::LOAD2_ADD,
                    Insn::Sub => op::LOAD2_SUB,
                    _ => op::LOAD2_MUL,
                };
                return (
                    Op {
                        code: fused,
                        a: *a,
                        b: *b,
                        cost: 3,
                        t: 0,
                        k: 0,
                    },
                    3,
                );
            }
            (Insn::Load(a), Insn::PushInt(k), addsub @ (Insn::Add | Insn::Sub)) => {
                let fused = if matches!(addsub, Insn::Add) {
                    op::LOAD_ADDI
                } else {
                    op::LOAD_SUBI
                };
                return (
                    Op {
                        code: fused,
                        a: *a,
                        b: 0,
                        cost: 3,
                        t: 0,
                        k: *k,
                    },
                    3,
                );
            }
            _ => {}
        }
    }

    // Pairs.
    if free(1) {
        if let (cmp, Insn::JumpIfFalse(t)) = (&code[pc], &code[pc + 1]) {
            if let Some(fused) = cmp_jf_opcode(cmp) {
                return (
                    Op {
                        code: fused,
                        a: 0,
                        b: 0,
                        cost: 2,
                        t: *t,
                        k: 0,
                    },
                    2,
                );
            }
        }
        if let (Insn::Load(a), Insn::Store(b)) = (&code[pc], &code[pc + 1]) {
            return (
                Op {
                    code: op::LOAD_STORE,
                    a: *a,
                    b: *b,
                    cost: 2,
                    t: 0,
                    k: 0,
                },
                2,
            );
        }
    }

    // Singles: a direct transcription of the wire instruction.
    let op = match &code[pc] {
        Insn::PushInt(v) => Op {
            k: *v,
            ..Op::plain(op::PUSH_INT)
        },
        Insn::PushStr(s) => Op {
            t: ctx.intern(s),
            ..Op::plain(op::PUSH_STR)
        },
        Insn::PushBool(b) => Op {
            a: u8::from(*b),
            ..Op::plain(op::PUSH_BOOL)
        },
        Insn::PushNull => Op::plain(op::PUSH_NULL),
        Insn::Load(slot) => Op {
            a: *slot,
            ..Op::plain(op::LOAD)
        },
        Insn::Store(slot) => Op {
            a: *slot,
            ..Op::plain(op::STORE)
        },
        Insn::Pop => Op::plain(op::POP),
        Insn::Dup => Op::plain(op::DUP),
        Insn::Swap => Op::plain(op::SWAP),
        Insn::Add => Op::plain(op::ADD),
        Insn::Sub => Op::plain(op::SUB),
        Insn::Mul => Op::plain(op::MUL),
        Insn::Div => Op::plain(op::DIV),
        Insn::Rem => Op::plain(op::REM),
        Insn::Neg => Op::plain(op::NEG),
        Insn::Concat => Op::plain(op::CONCAT),
        Insn::Eq => Op::plain(op::EQ),
        Insn::Ne => Op::plain(op::NE),
        Insn::Lt => Op::plain(op::LT),
        Insn::Le => Op::plain(op::LE),
        Insn::Gt => Op::plain(op::GT),
        Insn::Ge => Op::plain(op::GE),
        Insn::And => Op::plain(op::AND),
        Insn::Or => Op::plain(op::OR),
        Insn::Not => Op::plain(op::NOT),
        Insn::Jump(t) => Op {
            t: *t,
            ..Op::plain(op::JUMP)
        },
        Insn::JumpIfFalse(t) => Op {
            t: *t,
            ..Op::plain(op::JUMP_IF_FALSE)
        },
        Insn::JumpIfTrue(t) => Op {
            t: *t,
            ..Op::plain(op::JUMP_IF_TRUE)
        },
        Insn::Call { method, argc } => Op {
            a: *argc,
            t: ctx.method_index(method),
            ..Op::plain(op::CALL)
        },
        Insn::CallNative { name, argc } => Op {
            a: *argc,
            t: ctx.site(name),
            ..Op::plain(op::CALL_NATIVE)
        },
        Insn::Return => Op::plain(op::RETURN),
        Insn::ReturnValue => Op::plain(op::RETURN_VALUE),
    };
    (op, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::image::MethodImage;

    fn compile_single(code: Vec<Insn>, params: u8, locals: u8) -> CompiledImage {
        CompiledImage::compile(Arc::new(ClassImage {
            name: "T".into(),
            methods: vec![MethodImage {
                name: "main".into(),
                params,
                locals,
                code,
            }],
        }))
        .unwrap()
    }

    fn sum_loop() -> Vec<Insn> {
        vec![
            Insn::PushInt(1),
            Insn::Store(0),
            Insn::PushInt(0),
            Insn::Store(1),
            Insn::Load(0), // 4: loop head
            Insn::PushInt(500),
            Insn::Le,
            Insn::JumpIfFalse(17),
            Insn::Load(1),
            Insn::Load(0),
            Insn::Add,
            Insn::Store(1),
            Insn::Load(0),
            Insn::PushInt(1),
            Insn::Add,
            Insn::Store(0),
            Insn::Jump(4),
            Insn::Load(1), // 17
            Insn::ReturnValue,
        ]
    }

    #[test]
    fn sum_loop_fuses_to_three_ops_per_iteration() {
        let ci = compile_single(sum_loop(), 0, 2);
        let codes: Vec<u8> = ci.methods()[0].code.iter().map(|o| o.code).collect();
        // Loop head (4) is a jump target, so fusion starts fresh there:
        // [Load 0; PushInt 500; Le; JumpIfFalse]   -> lei_jf,
        // [Load 1; Load 0; Add; Store 1]           -> add2_store,
        // [Load 0; PushInt 1; Add; Store 0; Jump]  -> addi_store_jump.
        assert_eq!(
            codes,
            vec![
                op::PUSH_INT,
                op::STORE,
                op::PUSH_INT,
                op::STORE,
                op::LEI_JF,
                op::ADD2_STORE,
                op::ADDI_STORE_JUMP,
                op::LOAD,
                op::RETURN_VALUE,
            ]
        );
        // Costs must sum to the wire instruction count: fusion is invisible
        // to fuel, accounting, and safepoints.
        let total: u32 = ci.methods()[0].code.iter().map(|o| u32::from(o.cost)).sum();
        assert_eq!(total, sum_loop().len() as u32);
    }

    #[test]
    fn branch_targets_are_retargeted_to_compiled_indices() {
        let ci = compile_single(sum_loop(), 0, 2);
        let code = &ci.methods()[0].code;
        // The back edge (wire Jump(4), fused into the loop tail) must land
        // on the lei_jf at compiled index 4, and the exit branch on the
        // Load at compiled index 7.
        assert_eq!(code[6].code, op::ADDI_STORE_JUMP);
        assert_eq!(code[6].t, 4);
        assert_eq!(code[4].code, op::LEI_JF);
        assert_eq!(code[4].t, 7);
        assert_eq!(code[7].code, op::LOAD);
    }

    #[test]
    fn targeted_back_edge_blocks_the_loop_tail_quint() {
        // A `continue`-style branch lands directly on the back-edge Jump:
        // the quint may not swallow it, so the tail stays a quad + Jump.
        let code = vec![
            Insn::PushInt(3),
            Insn::Store(0),
            Insn::Load(0), // 2: loop head
            Insn::PushInt(0),
            Insn::Gt,
            Insn::JumpIfFalse(12),
            Insn::Load(0),
            Insn::PushInt(1),
            Insn::Sub,
            Insn::Store(0),
            Insn::Jump(2), // 10: also a branch target
            Insn::Jump(10),
            Insn::Return, // 12
        ];
        let ci = compile_single(code, 0, 1);
        let codes: Vec<u8> = ci.methods()[0].code.iter().map(|o| o.code).collect();
        assert!(!codes.contains(&op::SUBI_STORE_JUMP), "{codes:?}");
        assert!(codes.contains(&op::SUBI_STORE), "{codes:?}");
    }

    #[test]
    fn fusion_never_crosses_a_jump_target_boundary() {
        // A branch lands *between* Load and Store — the pair must not fuse.
        let code = vec![
            Insn::PushInt(7),
            Insn::Jump(3),  // target: the Store below, entered at depth 1
            Insn::Load(0),  // unreachable fall-path producer
            Insn::Store(1), // 3: jump target
            Insn::Load(1),
            Insn::ReturnValue,
        ];
        let ci = compile_single(code, 0, 2);
        let codes: Vec<u8> = ci.methods()[0].code.iter().map(|o| o.code).collect();
        assert!(
            !codes.contains(&op::LOAD_STORE),
            "Load at pc 2 must not swallow the branch-target Store at pc 3: {codes:?}"
        );
        assert_eq!(
            codes,
            vec![
                op::PUSH_INT,
                op::JUMP,
                op::LOAD,
                op::STORE,
                op::LOAD,
                op::RETURN_VALUE
            ]
        );
    }

    #[test]
    fn mid_quad_target_blocks_only_the_long_fusion() {
        // A branch lands on the Add of [Load; PushInt; Add; Store]: the quad
        // and triple are illegal, but [Load; PushInt] has no pair pattern,
        // so everything decodes unfused except the legal tail.
        let code = vec![
            Insn::PushInt(5),
            Insn::Store(0),
            Insn::Load(0),
            Insn::PushInt(1),
            Insn::Jump(7), // joins the Add below at depth 2
            Insn::Load(0), // unreachable fall-path copy of the operands
            Insn::PushInt(1),
            Insn::Add, // 7: jump target
            Insn::Store(0),
            Insn::Load(0),
            Insn::ReturnValue,
        ];
        let ci = compile_single(code, 0, 1);
        let codes: Vec<u8> = ci.methods()[0].code.iter().map(|o| o.code).collect();
        assert!(!codes.contains(&op::ADDI_STORE), "{codes:?}");
        assert!(!codes.contains(&op::LOAD_ADDI), "{codes:?}");
        assert!(codes.contains(&op::LOAD), "{codes:?}");
    }

    #[test]
    fn string_literals_intern_into_one_pool_entry() {
        let ci = compile_single(
            vec![
                Insn::PushStr("hello".into()),
                Insn::Pop,
                Insn::PushStr("hello".into()),
                Insn::Pop,
                Insn::PushStr("world".into()),
                Insn::Pop,
                Insn::Return,
            ],
            0,
            0,
        );
        assert_eq!(ci.pool_len(), 2);
        let code = &ci.methods()[0].code;
        assert_eq!(code[0].t, code[2].t, "same literal, same pool slot");
        assert_ne!(code[0].t, code[4].t);
    }

    #[test]
    fn calls_resolve_to_method_indices_and_natives_get_sites() {
        let ci = CompiledImage::compile(Arc::new(ClassImage {
            name: "T".into(),
            methods: vec![
                MethodImage {
                    name: "main".into(),
                    params: 0,
                    locals: 0,
                    code: vec![
                        Insn::Call {
                            method: "leaf".into(),
                            argc: 0,
                        },
                        Insn::Pop,
                        Insn::CallNative {
                            name: "print".into(),
                            argc: 0,
                        },
                        Insn::Pop,
                        Insn::CallNative {
                            name: "print".into(),
                            argc: 0,
                        },
                        Insn::ReturnValue,
                    ],
                },
                MethodImage {
                    name: "leaf".into(),
                    params: 0,
                    locals: 0,
                    code: vec![Insn::PushNull, Insn::ReturnValue],
                },
            ],
        }))
        .unwrap();
        let code = &ci.methods()[0].code;
        assert_eq!(code[0].code, op::CALL);
        assert_eq!(usize::from(code[0].t), 1, "resolved to leaf's index");
        // Each CallNative occurrence is its own site (per-site inline
        // caches), even for the same native name.
        assert_eq!(code[2].code, op::CALL_NATIVE);
        assert_eq!(code[4].code, op::CALL_NATIVE);
        assert_ne!(code[2].t, code[4].t);
        assert_eq!(&*ci.site(code[2].t).name, "print");
        assert!(!Arc::ptr_eq(
            &ci.site(code[2].t).cache,
            &ci.site(code[4].t).cache
        ));
    }

    #[test]
    fn frame_size_combines_locals_and_proven_stack_depth() {
        let ci = compile_single(
            vec![
                Insn::PushInt(1),
                Insn::PushInt(2),
                Insn::PushInt(3),
                Insn::Add,
                Insn::Add,
                Insn::ReturnValue,
            ],
            0,
            2,
        );
        let m = &ci.methods()[0];
        assert_eq!(m.locals, 2);
        assert_eq!(m.frame_size, 5, "2 locals + proven max stack depth 3");
        assert_eq!(&*m.qualified, "T.main");
    }

    #[test]
    fn first_method_definition_wins_name_lookup() {
        let ci = CompiledImage::compile(Arc::new(ClassImage {
            name: "T".into(),
            methods: vec![
                MethodImage {
                    name: "dup".into(),
                    params: 0,
                    locals: 0,
                    code: vec![Insn::PushInt(1), Insn::ReturnValue],
                },
                MethodImage {
                    name: "dup".into(),
                    params: 0,
                    locals: 0,
                    code: vec![Insn::PushInt(2), Insn::ReturnValue],
                },
            ],
        }))
        .unwrap();
        assert_eq!(ci.method_index("dup"), Some(0));
        assert_eq!(ci.method_index("missing"), None);
    }

    #[test]
    fn compile_rejects_unverifiable_images() {
        let err = CompiledImage::compile(Arc::new(ClassImage {
            name: "T".into(),
            methods: vec![MethodImage {
                name: "main".into(),
                params: 0,
                locals: 0,
                code: vec![Insn::Add, Insn::Return],
            }],
        }))
        .unwrap_err();
        assert!(matches!(err, VmError::Verification { .. }));
    }
}
