//! The `jbc` verifier: static checks that make interpreting untrusted
//! images safe.
//!
//! Mirrors the role of the JVM bytecode verifier in the Java security
//! story — memory safety of mobile code must not depend on the code being
//! honest (paper §5.1: Java "relies on the type system to provide basic
//! memory protection"). The verifier rejects an image unless, for every
//! method:
//!
//! * every jump target is a valid instruction index;
//! * every `Load`/`Store` slot index is within the declared locals;
//! * `params ≤ locals`;
//! * every intra-class `Call` names an existing method with matching arity;
//! * the operand-stack depth is consistent: by abstract interpretation over
//!   all paths, each instruction sees one well-defined entry depth, never
//!   pops an empty stack, and never exceeds [`MAX_STACK`];
//! * execution cannot fall off the end of the code.

use std::collections::VecDeque;

use super::image::{ClassImage, Insn, MethodImage};
use crate::error::VmError;
use crate::Result;

/// Maximum operand-stack depth a verified method may need.
pub const MAX_STACK: usize = 256;

/// Per-method facts the verifier proves, consumed by the pre-decoder
/// ([`super::CompiledImage`]) to size call frames exactly.
#[derive(Debug, Clone, Copy)]
pub(crate) struct MethodFacts {
    /// The maximum operand-stack depth any reachable path needs
    /// (≤ [`MAX_STACK`]).
    pub max_stack: usize,
}

/// Verifies every method of `image`.
///
/// # Errors
///
/// [`VmError::Verification`] describing the first offending method and
/// instruction.
pub fn verify(image: &ClassImage) -> Result<()> {
    verify_facts(image).map(|_| ())
}

/// Verifies every method and returns the proven [`MethodFacts`], in method
/// order.
///
/// # Errors
///
/// [`VmError::Verification`] describing the first offending method and
/// instruction.
pub(crate) fn verify_facts(image: &ClassImage) -> Result<Vec<MethodFacts>> {
    let mut facts = Vec::with_capacity(image.methods.len());
    for method in &image.methods {
        let fact = verify_method(image, method).map_err(|message| VmError::Verification {
            class: image.name.clone(),
            message: format!("method {:?}: {message}", method.name),
        })?;
        facts.push(fact);
    }
    Ok(facts)
}

fn verify_method(
    image: &ClassImage,
    method: &MethodImage,
) -> std::result::Result<MethodFacts, String> {
    if method.params > method.locals {
        return Err(format!(
            "declares {} params but only {} locals",
            method.params, method.locals
        ));
    }
    if method.code.is_empty() {
        return Err("empty code".to_string());
    }
    let len = method.code.len();

    // Static per-instruction checks.
    for (pc, insn) in method.code.iter().enumerate() {
        match insn {
            Insn::Jump(t) | Insn::JumpIfFalse(t) | Insn::JumpIfTrue(t)
                if usize::from(*t) >= len =>
            {
                return Err(format!(
                    "pc {pc}: jump target {t} out of bounds (len {len})"
                ));
            }
            Insn::Load(slot) | Insn::Store(slot) if *slot >= method.locals => {
                return Err(format!(
                    "pc {pc}: local slot {slot} out of bounds (locals {})",
                    method.locals
                ));
            }
            Insn::Call { method: name, argc } => {
                let callee = image
                    .method(name)
                    .ok_or_else(|| format!("pc {pc}: call to unknown method {name:?}"))?;
                if callee.params != *argc {
                    return Err(format!(
                        "pc {pc}: call to {name:?} with {argc} args but it takes {}",
                        callee.params
                    ));
                }
            }
            _ => {}
        }
    }

    // Abstract interpretation of stack depth over all reachable paths.
    let mut depth_at: Vec<Option<i32>> = vec![None; len];
    let mut max_stack: i32 = 0;
    let mut work: VecDeque<(usize, i32)> = VecDeque::new();
    work.push_back((0, 0));
    while let Some((pc, depth)) = work.pop_front() {
        if pc >= len {
            return Err("execution can fall off the end of the code".to_string());
        }
        match depth_at[pc] {
            Some(existing) if existing == depth => continue,
            Some(existing) => {
                return Err(format!(
                    "pc {pc}: inconsistent stack depth ({existing} vs {depth})"
                ))
            }
            None => depth_at[pc] = Some(depth),
        }
        let insn = &method.code[pc];
        let pops = insn.pops() as i32;
        if depth < pops {
            return Err(format!(
                "pc {pc}: {insn:?} pops {pops} but stack depth is {depth}"
            ));
        }
        let next_depth = depth + insn.stack_delta();
        if next_depth as usize > MAX_STACK {
            return Err(format!("pc {pc}: stack depth exceeds {MAX_STACK}"));
        }
        // Pops precede pushes in every instruction, so the transient peak
        // inside one instruction never exceeds its entry or exit depth.
        max_stack = max_stack.max(depth).max(next_depth);
        match insn {
            Insn::Return | Insn::ReturnValue => {}
            Insn::Jump(t) => work.push_back((usize::from(*t), next_depth)),
            Insn::JumpIfFalse(t) | Insn::JumpIfTrue(t) => {
                work.push_back((usize::from(*t), next_depth));
                work.push_back((pc + 1, next_depth));
            }
            _ => work.push_back((pc + 1, next_depth)),
        }
    }
    Ok(MethodFacts {
        max_stack: max_stack.max(0) as usize,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image_with(code: Vec<Insn>, params: u8, locals: u8) -> ClassImage {
        ClassImage {
            name: "T".into(),
            methods: vec![MethodImage {
                name: "main".into(),
                params,
                locals,
                code,
            }],
        }
    }

    #[test]
    fn accepts_simple_program() {
        let image = image_with(
            vec![
                Insn::PushInt(1),
                Insn::PushInt(2),
                Insn::Add,
                Insn::ReturnValue,
            ],
            0,
            0,
        );
        verify(&image).unwrap();
    }

    #[test]
    fn rejects_stack_underflow() {
        let image = image_with(vec![Insn::Add, Insn::Return], 0, 0);
        let err = verify(&image).unwrap_err();
        assert!(err.to_string().contains("pops"), "{err}");
    }

    #[test]
    fn rejects_out_of_bounds_jump() {
        let image = image_with(vec![Insn::Jump(99)], 0, 0);
        assert!(verify(&image)
            .unwrap_err()
            .to_string()
            .contains("out of bounds"));
    }

    #[test]
    fn rejects_bad_local_slot() {
        let image = image_with(vec![Insn::Load(3), Insn::Return], 0, 2);
        assert!(verify(&image).unwrap_err().to_string().contains("slot 3"));
    }

    #[test]
    fn rejects_params_exceeding_locals() {
        let image = image_with(vec![Insn::Return], 3, 1);
        assert!(verify(&image).unwrap_err().to_string().contains("params"));
    }

    #[test]
    fn rejects_falling_off_the_end() {
        let image = image_with(vec![Insn::PushInt(1), Insn::Pop], 0, 0);
        assert!(verify(&image)
            .unwrap_err()
            .to_string()
            .contains("fall off the end"));
    }

    #[test]
    fn rejects_inconsistent_depths() {
        // Two paths reach pc 4 with different stack depths.
        let image = image_with(
            vec![
                Insn::PushBool(true), // 0: depth 0 -> 1
                Insn::JumpIfFalse(3), // 1: -> 0, branch to 3 or fall to 2
                Insn::PushInt(1),     // 2: 0 -> 1
                Insn::PushInt(2),     // 3: reached with depth 0 (from 1) or 1 (from 2)
                Insn::Return,         // 4
            ],
            0,
            0,
        );
        assert!(verify(&image)
            .unwrap_err()
            .to_string()
            .contains("inconsistent"));
    }

    #[test]
    fn rejects_unknown_call_and_bad_arity() {
        let image = image_with(
            vec![Insn::Call {
                method: "nope".into(),
                argc: 0,
            }],
            0,
            0,
        );
        assert!(verify(&image)
            .unwrap_err()
            .to_string()
            .contains("unknown method"));

        let image = ClassImage {
            name: "T".into(),
            methods: vec![
                MethodImage {
                    name: "main".into(),
                    params: 0,
                    locals: 0,
                    code: vec![
                        Insn::PushInt(1),
                        Insn::Call {
                            method: "helper".into(),
                            argc: 1,
                        },
                        Insn::ReturnValue,
                    ],
                },
                MethodImage {
                    name: "helper".into(),
                    params: 2,
                    locals: 2,
                    code: vec![Insn::PushNull, Insn::ReturnValue],
                },
            ],
        };
        assert!(verify(&image).unwrap_err().to_string().contains("takes 2"));
    }

    #[test]
    fn accepts_loops() {
        // A counting loop: stack depth is consistent around the back edge.
        let image = image_with(
            vec![
                Insn::PushInt(0),      // 0
                Insn::Store(0),        // 1
                Insn::Load(0),         // 2 <- loop head
                Insn::PushInt(10),     // 3
                Insn::Lt,              // 4
                Insn::JumpIfFalse(10), // 5
                Insn::Load(0),         // 6
                Insn::PushInt(1),      // 7
                Insn::Add,             // 8
                Insn::Store(0),        // 9 ... falls to 10? no: jump back
                Insn::Return,          // 10
            ],
            0,
            1,
        );
        // Insert the back edge: replace pc 9's fallthrough with an explicit
        // jump after the store. Easier: append jump.
        let mut code = image.methods[0].code.clone();
        code[9] = Insn::Store(0);
        code.insert(10, Insn::Jump(2));
        // Return moves to index 11; fix branch target.
        code[5] = Insn::JumpIfFalse(11);
        let image = image_with(code, 0, 1);
        verify(&image).unwrap();
    }

    #[test]
    fn rejects_empty_method() {
        let image = image_with(vec![], 0, 0);
        assert!(verify(&image).unwrap_err().to_string().contains("empty"));
    }

    #[test]
    fn facts_report_max_operand_depth() {
        let image = image_with(
            vec![
                Insn::PushInt(1),
                Insn::PushInt(2),
                Insn::PushInt(3), // peak depth 3
                Insn::Add,
                Insn::Add,
                Insn::ReturnValue,
            ],
            0,
            0,
        );
        let facts = verify_facts(&image).unwrap();
        assert_eq!(facts.len(), 1);
        assert_eq!(facts[0].max_stack, 3);

        let image = image_with(vec![Insn::Return], 0, 0);
        assert_eq!(verify_facts(&image).unwrap()[0].max_stack, 0);
    }
}
