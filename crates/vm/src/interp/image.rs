use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// A runtime value in the `jbc` machine.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Value {
    /// The absence of a value.
    Null,
    /// A 64-bit signed integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// An immutable string.
    Str(Arc<str>),
}

impl Value {
    /// Creates a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Renders the value the way `print`-style natives do.
    pub fn display_string(&self) -> String {
        match self {
            Value::Null => "null".to_string(),
            Value::Int(i) => i.to_string(),
            Value::Bool(b) => b.to_string(),
            Value::Str(s) => s.to_string(),
        }
    }

    /// `Concat` semantics: the display forms of `a` then `b`, as one string
    /// value. Builds the result in a single buffer and converts to the
    /// `Arc<str>` directly — the `Str`/`Int` fast cases skip the per-operand
    /// `String` allocations `display_string` would pay.
    pub fn concat(a: &Value, b: &Value) -> Value {
        let mut out = String::with_capacity(a.display_len_hint() + b.display_len_hint());
        a.append_display(&mut out);
        b.append_display(&mut out);
        Value::Str(Arc::from(out.as_str()))
    }

    /// Capacity hint for [`Value::concat`]'s single buffer.
    fn display_len_hint(&self) -> usize {
        match self {
            Value::Null => 4,
            Value::Int(_) => 8,
            Value::Bool(_) => 5,
            Value::Str(s) => s.len(),
        }
    }

    /// Appends the display form to `out` without an intermediate `String`.
    fn append_display(&self, out: &mut String) {
        use std::fmt::Write;
        match self {
            Value::Null => out.push_str("null"),
            Value::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Str(s) => out.push_str(s),
        }
    }

    /// Owned heap bytes behind this value (string payloads), for the
    /// `Memory` quota's live-heap sample. Shared `Arc<str>` payloads are
    /// counted once per referencing slot — a deliberate overestimate that
    /// keeps the sample a single pass with no alias tracking.
    pub fn heap_bytes(&self) -> u64 {
        match self {
            Value::Str(s) => s.len() as u64,
            _ => 0,
        }
    }

    /// Truthiness used by conditional jumps: `false`, `0`, `null`, and the
    /// empty string are falsy.
    pub fn is_truthy(&self) -> bool {
        match self {
            Value::Null => false,
            Value::Int(i) => *i != 0,
            Value::Bool(b) => *b,
            Value::Str(s) => !s.is_empty(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display_string())
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(Arc::from(v.as_str()))
    }
}

/// One `jbc` instruction. Jump targets are absolute instruction indices
/// within the method.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Insn {
    /// Push an integer constant.
    PushInt(i64),
    /// Push a string constant.
    PushStr(String),
    /// Push a boolean constant.
    PushBool(bool),
    /// Push `null`.
    PushNull,
    /// Push a copy of local slot *n*.
    Load(u8),
    /// Pop into local slot *n*.
    Store(u8),
    /// Discard the top of stack.
    Pop,
    /// Duplicate the top of stack.
    Dup,
    /// Swap the top two stack values.
    Swap,
    /// Integer addition (`a + b`).
    Add,
    /// Integer subtraction (`a - b`).
    Sub,
    /// Integer multiplication.
    Mul,
    /// Integer division; traps on division by zero.
    Div,
    /// Integer remainder; traps on division by zero.
    Rem,
    /// Integer negation.
    Neg,
    /// String concatenation of the display forms of the top two values.
    Concat,
    /// Equality (any two values of the same kind).
    Eq,
    /// Inequality.
    Ne,
    /// Integer less-than.
    Lt,
    /// Integer less-or-equal.
    Le,
    /// Integer greater-than.
    Gt,
    /// Integer greater-or-equal.
    Ge,
    /// Boolean and.
    And,
    /// Boolean or.
    Or,
    /// Boolean not.
    Not,
    /// Unconditional jump to instruction index.
    Jump(u16),
    /// Jump if the popped value is falsy.
    JumpIfFalse(u16),
    /// Jump if the popped value is truthy.
    JumpIfTrue(u16),
    /// Call a static method of the same class image. Arguments are popped
    /// (last argument on top); the return value is pushed.
    Call {
        /// Callee method name.
        method: String,
        /// Argument count.
        argc: u8,
    },
    /// Call into the runtime through the [`NativeHost`](super::NativeHost).
    /// Arguments are popped (last on top); the result is pushed.
    CallNative {
        /// Native operation name, e.g. `print`, `read_file`, `connect`.
        name: String,
        /// Argument count.
        argc: u8,
    },
    /// Return `null` from the current method.
    Return,
    /// Return the popped top of stack.
    ReturnValue,
}

/// Number of base `jbc` opcodes ([`Insn`] variants) — the wire-format
/// instruction set. The compiled form appends superinstructions after
/// these; see [`OPCODE_COUNT`].
pub const BASE_OPCODE_COUNT: usize = 32;

/// Number of distinct opcodes the dispatch loop can execute: the 32 wire
/// opcodes plus the superinstructions the pre-decoder fuses (see
/// [`super::CompiledImage`]). Profile tallies are fixed arrays of this
/// length, indexed by [`Insn::opcode`] for base opcodes and by the
/// compiled opcode byte for fused ones.
pub const OPCODE_COUNT: usize = 55;

/// Opcode names: the 32 wire opcodes in [`Insn::opcode`] order (the
/// declaration order of the [`Insn`] variants, stable so `profile` output
/// for unfused opcodes never changes), followed by the superinstructions
/// in compiled-opcode order — the labels used by profile reports and
/// `vmstat`.
pub const OPCODE_NAMES: [&str; OPCODE_COUNT] = [
    "push_int",
    "push_str",
    "push_bool",
    "push_null",
    "load",
    "store",
    "pop",
    "dup",
    "swap",
    "add",
    "sub",
    "mul",
    "div",
    "rem",
    "neg",
    "concat",
    "eq",
    "ne",
    "lt",
    "le",
    "gt",
    "ge",
    "and",
    "or",
    "not",
    "jump",
    "jump_if_false",
    "jump_if_true",
    "call",
    "native",
    "return",
    "return_value",
    // Superinstructions (compiled form only; cost = fused component count).
    "load2_add",       // Load a; Load b; Add
    "load2_sub",       // Load a; Load b; Sub
    "load2_mul",       // Load a; Load b; Mul
    "lt_jf",           // Lt; JumpIfFalse
    "le_jf",           // Le; JumpIfFalse
    "gt_jf",           // Gt; JumpIfFalse
    "ge_jf",           // Ge; JumpIfFalse
    "eq_jf",           // Eq; JumpIfFalse
    "ne_jf",           // Ne; JumpIfFalse
    "load_addi",       // Load a; PushInt k; Add
    "load_subi",       // Load a; PushInt k; Sub
    "load_store",      // Load a; Store b
    "addi_store",      // Load a; PushInt k; Add; Store b
    "subi_store",      // Load a; PushInt k; Sub; Store b
    "add2_store",      // Load a; Load b; Add; Store c
    "lti_jf",          // Load a; PushInt k; Lt; JumpIfFalse
    "lei_jf",          // Load a; PushInt k; Le; JumpIfFalse
    "gti_jf",          // Load a; PushInt k; Gt; JumpIfFalse
    "gei_jf",          // Load a; PushInt k; Ge; JumpIfFalse
    "eqi_jf",          // Load a; PushInt k; Eq; JumpIfFalse
    "nei_jf",          // Load a; PushInt k; Ne; JumpIfFalse
    "addi_store_jump", // Load a; PushInt k; Add; Store b; Jump
    "subi_store_jump", // Load a; PushInt k; Sub; Store b; Jump
];

/// Relative cost weights in [`Insn::opcode`] order, used by the profiler to
/// apportion a measured batch's wall time across the opcodes it executed.
/// The weights encode what each opcode *does* beyond the shared dispatch
/// overhead: allocating instructions (strings, call frames) weigh more than
/// register shuffles; the exact values only matter relative to each other.
pub const OPCODE_WEIGHTS: [u64; OPCODE_COUNT] = [
    1,  // push_int
    3,  // push_str (allocates the string)
    1,  // push_bool
    1,  // push_null
    1,  // load
    1,  // store
    1,  // pop
    1,  // dup
    1,  // swap
    1,  // add
    1,  // sub
    1,  // mul
    2,  // div (zero check)
    2,  // rem
    1,  // neg
    6,  // concat (formats and allocates)
    1,  // eq
    1,  // ne
    1,  // lt
    1,  // le
    1,  // gt
    1,  // ge
    1,  // and
    1,  // or
    1,  // not
    1,  // jump
    1,  // jump_if_false
    1,  // jump_if_true
    6,  // call (locals setup + host frame)
    10, // native (host dispatch + security checks)
    1,  // return
    1,  // return_value
    // Superinstruction weights: the sum of their components' weights, so a
    // fused op's one tally still apportions the same cost the unfused
    // sequence would have — E16 attribution stays truthful under fusion.
    3, // load2_add
    3, // load2_sub
    3, // load2_mul
    2, // lt_jf
    2, // le_jf
    2, // gt_jf
    2, // ge_jf
    2, // eq_jf
    2, // ne_jf
    3, // load_addi
    3, // load_subi
    2, // load_store
    4, // addi_store
    4, // subi_store
    4, // add2_store
    4, // lti_jf
    4, // lei_jf
    4, // gti_jf
    4, // gei_jf
    4, // eqi_jf
    4, // nei_jf
    5, // addi_store_jump
    5, // subi_store_jump
];

impl Insn {
    /// This instruction's stable opcode index (`0..OPCODE_COUNT`), in
    /// variant declaration order — the index into [`OPCODE_NAMES`],
    /// [`OPCODE_WEIGHTS`], and the profiler's per-opcode tallies.
    pub fn opcode(&self) -> usize {
        match self {
            Insn::PushInt(_) => 0,
            Insn::PushStr(_) => 1,
            Insn::PushBool(_) => 2,
            Insn::PushNull => 3,
            Insn::Load(_) => 4,
            Insn::Store(_) => 5,
            Insn::Pop => 6,
            Insn::Dup => 7,
            Insn::Swap => 8,
            Insn::Add => 9,
            Insn::Sub => 10,
            Insn::Mul => 11,
            Insn::Div => 12,
            Insn::Rem => 13,
            Insn::Neg => 14,
            Insn::Concat => 15,
            Insn::Eq => 16,
            Insn::Ne => 17,
            Insn::Lt => 18,
            Insn::Le => 19,
            Insn::Gt => 20,
            Insn::Ge => 21,
            Insn::And => 22,
            Insn::Or => 23,
            Insn::Not => 24,
            Insn::Jump(_) => 25,
            Insn::JumpIfFalse(_) => 26,
            Insn::JumpIfTrue(_) => 27,
            Insn::Call { .. } => 28,
            Insn::CallNative { .. } => 29,
            Insn::Return => 30,
            Insn::ReturnValue => 31,
        }
    }

    /// The opcode's display name (the assembler mnemonic).
    pub fn name(&self) -> &'static str {
        OPCODE_NAMES[self.opcode()]
    }

    /// Net change this instruction applies to the operand-stack depth
    /// (pushes minus pops), assuming it does not trap.
    pub fn stack_delta(&self) -> i32 {
        match self {
            Insn::PushInt(_)
            | Insn::PushStr(_)
            | Insn::PushBool(_)
            | Insn::PushNull
            | Insn::Load(_)
            | Insn::Dup => 1,
            Insn::Store(_)
            | Insn::Pop
            | Insn::Add
            | Insn::Sub
            | Insn::Mul
            | Insn::Div
            | Insn::Rem
            | Insn::Concat
            | Insn::Eq
            | Insn::Ne
            | Insn::Lt
            | Insn::Le
            | Insn::Gt
            | Insn::Ge
            | Insn::And
            | Insn::Or
            | Insn::JumpIfFalse(_)
            | Insn::JumpIfTrue(_)
            | Insn::ReturnValue => -1,
            Insn::Swap | Insn::Neg | Insn::Not | Insn::Jump(_) | Insn::Return => 0,
            Insn::Call { argc, .. } | Insn::CallNative { argc, .. } => 1 - i32::from(*argc),
        }
    }

    /// How many operands the instruction pops.
    pub fn pops(&self) -> u32 {
        match self {
            Insn::PushInt(_)
            | Insn::PushStr(_)
            | Insn::PushBool(_)
            | Insn::PushNull
            | Insn::Load(_)
            | Insn::Jump(_)
            | Insn::Return => 0,
            Insn::Store(_)
            | Insn::Pop
            | Insn::Neg
            | Insn::Not
            | Insn::JumpIfFalse(_)
            | Insn::JumpIfTrue(_)
            | Insn::ReturnValue => 1,
            Insn::Dup => 1,
            Insn::Swap
            | Insn::Add
            | Insn::Sub
            | Insn::Mul
            | Insn::Div
            | Insn::Rem
            | Insn::Concat
            | Insn::Eq
            | Insn::Ne
            | Insn::Lt
            | Insn::Le
            | Insn::Gt
            | Insn::Ge
            | Insn::And
            | Insn::Or => 2,
            Insn::Call { argc, .. } | Insn::CallNative { argc, .. } => u32::from(*argc),
        }
    }
}

/// One method of a [`ClassImage`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MethodImage {
    /// Method name (`main` is the conventional entry point).
    pub name: String,
    /// Number of parameters; they arrive in local slots `0..params`.
    pub params: u8,
    /// Total local slots (must be ≥ `params`).
    pub locals: u8,
    /// The code.
    pub code: Vec<Insn>,
}

/// A `jbc` class image: the wire format for mobile code. Serializable, so
/// applets can be shipped over the simulated network and stored in the
/// virtual filesystem.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassImage {
    /// Class name.
    pub name: String,
    /// Methods, entry point included.
    pub methods: Vec<MethodImage>,
}

impl ClassImage {
    /// Finds a method by name.
    pub fn method(&self, name: &str) -> Option<&MethodImage> {
        self.methods.iter().find(|m| m.name == name)
    }

    /// Serializes to the JSON wire format used by the simulated network.
    ///
    /// # Errors
    ///
    /// Propagates serializer failures (none expected for well-formed images).
    pub fn to_wire(&self) -> Result<Vec<u8>, serde_json::Error> {
        serde_json::to_vec(self)
    }

    /// Deserializes from the JSON wire format.
    ///
    /// # Errors
    ///
    /// Fails on malformed or non-`ClassImage` input.
    pub fn from_wire(bytes: &[u8]) -> Result<ClassImage, serde_json::Error> {
        serde_json::from_slice(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_display_and_truthiness() {
        assert_eq!(Value::Null.display_string(), "null");
        assert_eq!(Value::Int(-3).display_string(), "-3");
        assert_eq!(Value::Bool(true).display_string(), "true");
        assert_eq!(Value::str("hi").display_string(), "hi");

        assert!(!Value::Null.is_truthy());
        assert!(!Value::Int(0).is_truthy());
        assert!(Value::Int(1).is_truthy());
        assert!(!Value::str("").is_truthy());
        assert!(Value::str("x").is_truthy());
    }

    #[test]
    fn concat_matches_display_semantics() {
        let cases = [
            Value::Null,
            Value::Int(-42),
            Value::Int(7),
            Value::Bool(true),
            Value::Bool(false),
            Value::str(""),
            Value::str("x="),
        ];
        for a in &cases {
            for b in &cases {
                let expected = format!("{}{}", a.display_string(), b.display_string());
                assert_eq!(Value::concat(a, b), Value::str(expected));
            }
        }
    }

    #[test]
    fn value_conversions() {
        assert_eq!(Value::from(5i64), Value::Int(5));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("s"), Value::str("s"));
        assert_eq!(Value::from("s".to_string()), Value::str("s"));
    }

    #[test]
    fn stack_delta_matches_pops_for_simple_insns() {
        // pushes = delta + pops must be non-negative and small.
        let samples = vec![
            Insn::PushInt(1),
            Insn::Load(0),
            Insn::Store(0),
            Insn::Add,
            Insn::Dup,
            Insn::Swap,
            Insn::Jump(0),
            Insn::JumpIfFalse(0),
            Insn::Call {
                method: "m".into(),
                argc: 3,
            },
            Insn::ReturnValue,
        ];
        for insn in samples {
            let pushes = insn.stack_delta() + insn.pops() as i32;
            assert!(
                (0..=2).contains(&pushes),
                "{insn:?} computed pushes {pushes}"
            );
        }
    }

    #[test]
    fn opcode_indices_are_dense_and_named() {
        let samples = vec![
            Insn::PushInt(1),
            Insn::PushStr("s".into()),
            Insn::PushBool(true),
            Insn::PushNull,
            Insn::Load(0),
            Insn::Store(0),
            Insn::Pop,
            Insn::Dup,
            Insn::Swap,
            Insn::Add,
            Insn::Sub,
            Insn::Mul,
            Insn::Div,
            Insn::Rem,
            Insn::Neg,
            Insn::Concat,
            Insn::Eq,
            Insn::Ne,
            Insn::Lt,
            Insn::Le,
            Insn::Gt,
            Insn::Ge,
            Insn::And,
            Insn::Or,
            Insn::Not,
            Insn::Jump(0),
            Insn::JumpIfFalse(0),
            Insn::JumpIfTrue(0),
            Insn::Call {
                method: "m".into(),
                argc: 0,
            },
            Insn::CallNative {
                name: "n".into(),
                argc: 0,
            },
            Insn::Return,
            Insn::ReturnValue,
        ];
        assert_eq!(samples.len(), BASE_OPCODE_COUNT, "one sample per variant");
        for (expected, insn) in samples.iter().enumerate() {
            assert_eq!(insn.opcode(), expected, "{insn:?} index is stable");
            assert_eq!(insn.name(), OPCODE_NAMES[expected]);
        }
        for weight in OPCODE_WEIGHTS {
            assert!(weight >= 1, "weights are positive");
        }
        const {
            assert!(OPCODE_COUNT > BASE_OPCODE_COUNT, "superinstructions named");
        }
        assert_eq!(
            Insn::CallNative {
                name: "n".into(),
                argc: 1
            }
            .name(),
            "native"
        );
    }

    #[test]
    fn wire_roundtrip() {
        let image = ClassImage {
            name: "Game".into(),
            methods: vec![MethodImage {
                name: "main".into(),
                params: 0,
                locals: 1,
                code: vec![Insn::PushInt(42), Insn::ReturnValue],
            }],
        };
        let wire = image.to_wire().unwrap();
        let back = ClassImage::from_wire(&wire).unwrap();
        assert_eq!(image, back);
        assert!(back.method("main").is_some());
        assert!(back.method("absent").is_none());
    }
}
