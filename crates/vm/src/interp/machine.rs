//! The `jbc` execution engine: a pre-decoded fast dispatch loop plus the
//! seed reference interpreter it is differentially tested against.
//!
//! [`Interpreter::run`] executes the compiled form ([`CompiledImage`]): a
//! flat `Vec<Op>` per method with interned string constants, resolved call
//! targets, fused superinstructions, and an explicit call-frame stack over
//! one contiguous reusable value arena (no Rust-stack recursion, no
//! per-call allocations in the steady state). Instruction accounting is
//! batched in locals and flushed to the shared [`InterpStats`] atomics at
//! the existing 1024-instruction safepoints; fuel is charged per dispatched
//! op (by its fused cost) rather than one atomic RMW per wire instruction.
//!
//! [`Interpreter::run_seed`] is the original recursive `match`-loop over
//! the wire [`Insn`] form, kept as the executable specification: the
//! differential corpus ([`super::difftest`]) and experiment E18 run both
//! engines over the same images and assert identical results, traps, and
//! counters. Semantics — trap messages and ordering, the cumulative
//! 1024-instruction safepoint cadence, fuel charging, call-depth limits —
//! are defined by the seed loop and replicated exactly by the fast loop
//! (fused ops charge their component count, so fusion is invisible to
//! fuel, accounting, and preemption).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use jmp_obs::Profiler;
use parking_lot::Mutex;

use super::compile::{op, CompiledImage, Op};
use super::image::{ClassImage, Insn, Value, OPCODE_COUNT, OPCODE_NAMES, OPCODE_WEIGHTS};
use crate::context::{AppContext, ResourceKind};
use crate::error::VmError;
use crate::snapshot::{FrameSnap, InterpSnapshot, SNAPSHOT_VERSION};
use crate::thread::check_interrupt;
use crate::Result;

/// The runtime services an interpreted class may invoke via
/// [`Insn::CallNative`].
///
/// Implementations perform the ordinary security checks — when the host is
/// consulted, the interpreted class's protection domain is on the caller's
/// stack (the host runs inside `Class::call`), so stack inspection sees the
/// mobile code and a `SecurityException` propagates as a [`VmError`].
pub trait NativeHost: Send + Sync {
    /// Invokes the native operation `name` with `args` (in call order).
    ///
    /// # Errors
    ///
    /// [`VmError::Trap`] for unknown natives or bad arguments;
    /// [`VmError::Security`] for denied operations; any other [`VmError`]
    /// the operation raises.
    fn invoke(&self, name: &str, args: Vec<Value>) -> Result<Value>;
}

/// A host that provides only the pure stdlib natives
/// ([`invoke_pure`](super::invoke_pure)); anything else traps. Useful for
/// pure-compute images and for tests.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoNatives;

impl NativeHost for NoNatives {
    fn invoke(&self, name: &str, args: Vec<Value>) -> Result<Value> {
        match super::stdlib::invoke_pure(name, &args) {
            Some(result) => result,
            None => Err(VmError::trap(format!("no such native: {name}"))),
        }
    }
}

/// Execution counters, for the interpreter benches (experiments A3/A9).
///
/// `instructions` counts *wire* instructions (a fused superinstruction
/// charges its component count), so the number is engine-independent;
/// `dispatches` counts ops the fast loop dispatched (0 under
/// [`Interpreter::run_seed`]) — the gap between the two is the fusion win.
#[derive(Debug, Default)]
pub struct InterpStats {
    instructions: AtomicU64,
    dispatches: AtomicU64,
    native_calls: AtomicU64,
    method_calls: AtomicU64,
}

impl InterpStats {
    /// Wire instructions executed so far (fused ops count their
    /// components).
    pub fn instructions(&self) -> u64 {
        self.instructions.load(Ordering::Relaxed)
    }

    /// Compiled ops dispatched so far (0 for seed-loop runs).
    pub fn dispatches(&self) -> u64 {
        self.dispatches.load(Ordering::Relaxed)
    }

    /// Native invocations so far.
    pub fn native_calls(&self) -> u64 {
        self.native_calls.load(Ordering::Relaxed)
    }

    /// Intra-class method calls so far.
    pub fn method_calls(&self) -> u64 {
        self.method_calls.load(Ordering::Relaxed)
    }

    /// Drains `pending` into the shared atomics. Called at safepoints,
    /// before native calls, and at run exit — never per instruction.
    fn flush_pending(&self, pending: &mut Pending) {
        if pending.instructions > 0 {
            self.instructions
                .fetch_add(pending.instructions, Ordering::Relaxed);
            pending.instructions = 0;
        }
        if pending.dispatches > 0 {
            self.dispatches
                .fetch_add(pending.dispatches, Ordering::Relaxed);
            pending.dispatches = 0;
        }
        if pending.native_calls > 0 {
            self.native_calls
                .fetch_add(pending.native_calls, Ordering::Relaxed);
            pending.native_calls = 0;
        }
        if pending.method_calls > 0 {
            self.method_calls
                .fetch_add(pending.method_calls, Ordering::Relaxed);
            pending.method_calls = 0;
        }
    }
}

/// Run-local counter batch. The seed loop paid one contended atomic RMW
/// per wire instruction; the fast loop accumulates here and flushes at
/// safepoint granularity.
#[derive(Debug, Default)]
struct Pending {
    instructions: u64,
    dispatches: u64,
    native_calls: u64,
    method_calls: u64,
}

/// How often the interpreter polls for interruption (in wire instructions).
/// Doubles as the profiler's safepoint: the per-opcode tallies
/// accumulated in [`ProfTally`] re-read the accounting switch here and
/// are pushed to the [`Profiler`] every
/// [`PROFILE_FLUSH_SAFEPOINTS`]th visit. The cadence is measured on the
/// interpreter's *cumulative* instruction counter, so it is preserved
/// across nested and repeated runs — and exactly matches the seed loop's.
const INTERRUPT_CHECK_EVERY: u64 = 1024;

/// Per-run opcode tally, flushed to the VM [`Profiler`] at safepoints.
///
/// The hot dispatch loop pays one well-predicted branch per dispatched op
/// (the array add itself is skipped while accounting is off — `active` is
/// re-read from the profiler only at safepoints, so toggles take effect
/// within `INTERRUPT_CHECK_EVERY` instructions). Batch wall time is
/// apportioned
/// across the batch's opcodes by the profiler using the installed weight
/// model; superinstruction weights are their components' sums, so fusion
/// does not skew attribution.
struct ProfTally {
    profiler: Option<Profiler>,
    app: Option<u64>,
    active: bool,
    /// Sized by the opcode byte's full range (not [`OPCODE_COUNT`]) so the
    /// hot-path index below compiles without a bounds check; only the
    /// first `OPCODE_COUNT` entries can ever be nonzero.
    counts: [u64; 256],
    safepoints: u32,
    started: Instant,
}

/// The batch is pushed every Nth safepoint (4 × 1024 instructions), not
/// at every one: `record_block`'s locks and apportionment are the
/// dominant accounting cost, and amortizing them 4× keeps the hot-loop
/// overhead comfortably inside the ≤5% budget. The accounting switch is
/// still re-read at *every* safepoint, so toggle latency stays at
/// `INTERRUPT_CHECK_EVERY` instructions.
const PROFILE_FLUSH_SAFEPOINTS: u32 = 4;

impl ProfTally {
    /// Resolves the profiler: an explicit one (benches, embedding) wins,
    /// otherwise the ambient VM's. Installs the opcode name/weight model on
    /// first contact (first-wins, idempotent).
    fn new(explicit: Option<&Profiler>) -> ProfTally {
        let profiler = explicit
            .cloned()
            .or_else(|| crate::Vm::current().map(|vm| vm.obs().profiler().clone()));
        let app = crate::thread::current_app_context().map(|ctx| ctx.app_id());
        let active = match &profiler {
            Some(p) => {
                p.install_model(&OPCODE_NAMES, &OPCODE_WEIGHTS);
                p.accounting_enabled()
            }
            None => false,
        };
        ProfTally {
            profiler,
            app,
            active,
            counts: [0; 256],
            safepoints: 0,
            started: Instant::now(),
        }
    }

    /// The hot-path increment: one branch (predicted not-taken while
    /// accounting is off) and, when active, one array add per dispatched
    /// op. An inactive tally stays all-zero and the safepoint flush
    /// skips it.
    #[inline]
    fn tally(&mut self, opcode: u8) {
        if self.active {
            self.counts[usize::from(opcode)] += 1;
        }
    }

    /// Safepoint: re-read the accounting switch, and push the batch on
    /// every [`PROFILE_FLUSH_SAFEPOINTS`]th visit.
    fn at_safepoint(&mut self) {
        if self.profiler.is_some() {
            self.safepoints = self.safepoints.wrapping_add(1);
            if self.safepoints.is_multiple_of(PROFILE_FLUSH_SAFEPOINTS) {
                self.flush();
            }
            self.active = self
                .profiler
                .as_ref()
                .is_some_and(Profiler::accounting_enabled);
        }
    }

    /// Pushes the accumulated batch (if any) to the profiler and restarts
    /// the batch timer.
    fn flush(&mut self) {
        let counts = &self.counts[..OPCODE_COUNT];
        if counts.iter().any(|&c| c > 0) {
            let elapsed = self.started.elapsed().as_nanos() as u64;
            if let Some(profiler) = &self.profiler {
                profiler.record_block(self.app, counts, elapsed);
            }
            self.counts = [0; 256];
        }
        self.started = Instant::now();
    }

    fn profiler(&self) -> Option<&Profiler> {
        self.profiler.as_ref()
    }
}

/// Maximum intra-class call depth. The fast loop's frames live on the heap
/// (no host-stack recursion), but the limit is part of the observable
/// semantics the seed loop defined, so both engines enforce the same bound.
const MAX_CALL_DEPTH: usize = 64;

/// A caller's registers, saved across an intra-class call by the fast
/// loop's explicit frame stack.
struct FrameState {
    method: u32,
    pc: u32,
    base: u32,
    /// Whether the *callee* published a profloc frame (popped on return).
    callee_guarded: bool,
}

/// How many arenas an idle interpreter keeps warm for reuse across runs
/// (and across threads sharing one interpreter). Runs attributed to an
/// application prefer the per-app pool on its [`AppContext`] (whose
/// `Memory` charge stays resident between runs and is reclaimed in one
/// bulk uncharge at reap).
const ARENA_POOL_CAP: usize = 8;

/// Bytes one arena slot occupies, for the `Memory` quota.
const VAL_BYTES: u64 = std::mem::size_of::<Value>() as u64;

/// Strings at or above this size are charged at the allocating op rather
/// than waiting for the next safepoint sample, so a doubling concat bomb
/// cannot balloon inside one 1024-instruction window.
const STR_PREPAY_BYTES: u64 = 4096;

/// Run-local memory governance for application-attributed runs.
///
/// The hot loop stays 1 compare + 1 subtract: the arena slab is charged
/// only when it grows (entry and CALL resizes), string bytes are sampled
/// from the arena at the existing 1024-instruction safepoints (live bytes,
/// not cumulative allocation), and only large allocations prepay at the
/// allocating op. `charged` is what this run currently holds on the
/// ledger; settlement at run exit either returns the (cleared) arena to
/// the per-app pool with its slab charge resident, or releases everything.
struct MemGov {
    ctx: Arc<AppContext>,
    /// `Memory` bytes currently charged for this run.
    charged: u64,
    /// Portion of `charged` covering the arena slab itself.
    arena_bytes: u64,
}

impl MemGov {
    /// Charges any growth of the arena slab (capacity × slot size).
    fn ensure_arena(&mut self, arena: &Vec<Value>) -> Result<()> {
        let bytes = arena.capacity() as u64 * VAL_BYTES;
        if bytes > self.arena_bytes {
            let delta = bytes - self.arena_bytes;
            self.ctx.try_charge(ResourceKind::Memory, delta)?;
            self.arena_bytes = bytes;
            self.charged += delta;
        }
        Ok(())
    }

    /// Eagerly charges a large allocation at the allocating op.
    fn prepay(&mut self, bytes: u64) -> Result<()> {
        self.ctx.try_charge(ResourceKind::Memory, bytes)?;
        self.charged += bytes;
        Ok(())
    }

    /// Safepoint sample: reconciles `charged` to the slab plus the string
    /// bytes actually live in the arena (shrinking as well as growing, so
    /// a legitimate long-running app is billed its working set, not its
    /// cumulative allocation).
    fn sample(&mut self, arena: &[Value]) -> Result<()> {
        let live = self.arena_bytes + arena.iter().map(Value::heap_bytes).sum::<u64>();
        if live > self.charged {
            self.ctx
                .try_charge(ResourceKind::Memory, live - self.charged)?;
            self.charged = live;
        } else if self.charged > live {
            self.ctx.uncharge(ResourceKind::Memory, self.charged - live);
            self.charged = live;
        }
        Ok(())
    }

    /// Run exit: the cleared arena returns to the per-app pool, keeping
    /// its slab charge resident; everything transient is released.
    fn settle_pool(self, arena: Vec<Value>) {
        self.ctx
            .uncharge(ResourceKind::Memory, self.charged - self.arena_bytes);
        self.ctx.put_arena(arena, self.arena_bytes);
    }

    /// Park/teardown: the arena left the governed heap (moved into a
    /// snapshot); the whole charge is released.
    fn settle_drop(self) {
        self.ctx.uncharge(ResourceKind::Memory, self.charged);
    }
}

/// A prepared continuation for [`Interpreter::exec`]: either a fresh entry
/// frame ([`Interpreter::run`]) or a restored one
/// ([`Interpreter::resume`]).
struct StartState {
    entry: String,
    arena: Vec<Value>,
    /// `Memory` bytes already charged for `arena` (per-app pool checkout).
    arena_charged: u64,
    frames: Vec<FrameState>,
    mi: usize,
    base: usize,
    sp: usize,
    pc: usize,
    fuel: u64,
}

/// The `jbc` interpreter for one verified, pre-decoded [`ClassImage`].
///
/// Construction verifies and compiles the image (or adopts an existing
/// [`CompiledImage`] via [`Interpreter::from_compiled`]);
/// [`Interpreter::run`] executes a method on the fast dispatch loop.
/// Interpreted code is preemptible: every `INTERRUPT_CHECK_EVERY` (1024)
/// wire instructions the thread's interruption flag is polled, so a runaway
/// applet is still stoppable by application teardown — something native
/// code can only promise cooperatively. An optional *fuel* bound aborts
/// execution after a fixed instruction budget.
pub struct Interpreter {
    compiled: Arc<CompiledImage>,
    host: Arc<dyn NativeHost>,
    stats: InterpStats,
    fuel: Option<u64>,
    profiler: Option<Profiler>,
    arena_pool: Mutex<Vec<Vec<Value>>>,
    /// Cumulative instruction count at which to park for a checkpoint
    /// (`u64::MAX` = never). One-shot: cleared when the park fires.
    checkpoint_at: AtomicU64,
    /// Where a park triggered by [`Interpreter::with_checkpoint_at`]
    /// deposits its snapshot (context-requested parks deposit on the
    /// [`AppContext`] instead).
    snapshot_slot: Mutex<Option<InterpSnapshot>>,
}

impl std::fmt::Debug for Interpreter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Interpreter")
            .field("class", &self.compiled.image().name)
            .field("fuel", &self.fuel)
            .field("instructions", &self.stats.instructions())
            .finish()
    }
}

impl Interpreter {
    /// Creates an interpreter over `image`, verifying and pre-decoding it
    /// first.
    ///
    /// # Errors
    ///
    /// [`VmError::Verification`] if the image is rejected.
    pub fn new(image: Arc<ClassImage>, host: Arc<dyn NativeHost>) -> Result<Interpreter> {
        let compiled = Arc::new(CompiledImage::compile(image)?);
        Ok(Interpreter::from_compiled(compiled, host))
    }

    /// Creates an interpreter over an already-compiled image — the
    /// class-define-time path: [`ClassDef`](crate::classes::ClassDef)
    /// compiles once and every execution adopts the shared form.
    pub fn from_compiled(compiled: Arc<CompiledImage>, host: Arc<dyn NativeHost>) -> Interpreter {
        Interpreter {
            compiled,
            host,
            stats: InterpStats::default(),
            fuel: None,
            profiler: None,
            arena_pool: Mutex::new(Vec::new()),
            checkpoint_at: AtomicU64::new(u64::MAX),
            snapshot_slot: Mutex::new(None),
        }
    }

    /// Limits execution to `fuel` instructions per [`Interpreter::run`]
    /// call chain; exceeding it traps.
    pub fn with_fuel(mut self, fuel: u64) -> Interpreter {
        self.fuel = Some(fuel);
        self
    }

    /// Directs opcode accounting and stack sampling to `profiler` instead
    /// of the ambient VM's ([`Vm::current`](crate::Vm::current)) — for
    /// benches and embedding without a VM.
    pub fn with_profiler(mut self, profiler: Profiler) -> Interpreter {
        self.profiler = Some(profiler);
        self
    }

    /// Parks the run at the first op boundary at or after cumulative wire
    /// instruction `n`: the run returns [`VmError::Checkpointed`] and the
    /// continuation is available via [`Interpreter::take_snapshot`].
    /// One-shot — the trigger clears when it fires, so a
    /// [`Interpreter::resume`] on the same interpreter runs to completion.
    pub fn with_checkpoint_at(self, n: u64) -> Interpreter {
        self.checkpoint_at.store(n, Ordering::Relaxed);
        self
    }

    /// Takes the snapshot deposited by a [`Interpreter::with_checkpoint_at`]
    /// park, if one fired.
    pub fn take_snapshot(&self) -> Option<InterpSnapshot> {
        self.snapshot_slot.lock().take()
    }

    /// Execution counters.
    pub fn stats(&self) -> &InterpStats {
        &self.stats
    }

    /// The class image being interpreted.
    pub fn image(&self) -> &Arc<ClassImage> {
        self.compiled.image()
    }

    /// The pre-decoded form being executed.
    pub fn compiled(&self) -> &Arc<CompiledImage> {
        &self.compiled
    }

    /// Runs `method` with `args` on the fast dispatch loop.
    ///
    /// # Errors
    ///
    /// [`VmError::Trap`] on runtime faults (unknown method, type mismatch,
    /// division by zero, fuel exhaustion, call-depth overflow);
    /// [`VmError::Interrupted`] if the thread is interrupted mid-run; plus
    /// anything the [`NativeHost`] raises.
    pub fn run(&self, method: &str, args: Vec<Value>) -> Result<Value> {
        let mut prof = ProfTally::new(self.profiler.as_ref());
        let result = self.run_compiled(method, args, &mut prof);
        prof.flush();
        result
    }

    /// Runs `method` with `args` on the original (seed) recursive
    /// `match`-loop over the wire instruction form.
    ///
    /// Kept as the executable specification of `jbc` semantics: the
    /// differential corpus and experiment E18 run both engines over the
    /// same images in the same binary. It still pays the seed costs — one
    /// global atomic RMW per instruction, fresh locals/stack vectors per
    /// call — so it doubles as an honest in-run baseline.
    ///
    /// # Errors
    ///
    /// Identical to [`Interpreter::run`].
    pub fn run_seed(&self, method: &str, args: Vec<Value>) -> Result<Value> {
        let mut budget = self.fuel;
        let mut prof = ProfTally::new(self.profiler.as_ref());
        let result = self.run_method_seed(method, args, 0, &mut budget, &mut prof);
        prof.flush();
        result
    }

    /// Prepares a fresh entry frame for `method` and hands it to the
    /// dispatch loop ([`Interpreter::exec`]).
    fn run_compiled(
        &self,
        method: &str,
        mut args: Vec<Value>,
        prof: &mut ProfTally,
    ) -> Result<Value> {
        let ci: &CompiledImage = &self.compiled;
        let methods = ci.methods();
        let Some(entry) = ci.method_index(method) else {
            return Err(VmError::trap(format!("no such method: {method}")));
        };
        if args.len() != usize::from(methods[entry].params) {
            return Err(VmError::trap(format!(
                "method {method} takes {} args, got {}",
                methods[entry].params,
                args.len()
            )));
        }

        // Application-attributed runs check their arena out of the per-app
        // pool (the `Memory` charge for a pooled slab transfers with it);
        // unattributed runs (benches, difftest) use the interpreter's own.
        let app = crate::thread::current_app_context();
        let (mut arena, arena_charged) = app
            .as_ref()
            .and_then(|ctx| ctx.take_arena())
            .unwrap_or_else(|| (self.arena_pool.lock().pop().unwrap_or_default(), 0));
        arena.resize(methods[entry].frame_size as usize, Value::Null);
        let sp = usize::from(methods[entry].locals);
        for (slot, arg) in args.drain(..).enumerate() {
            arena[slot] = arg;
        }
        self.exec(
            StartState {
                entry: method.to_string(),
                arena,
                arena_charged,
                frames: Vec::new(),
                mi: entry,
                base: 0,
                sp,
                pc: 0,
                fuel: self.fuel.unwrap_or(u64::MAX),
            },
            prof,
        )
    }

    /// Resumes a parked continuation (see [`Interpreter::with_checkpoint_at`]
    /// and [`AppContext::request_checkpoint`]) with identical observable
    /// behaviour to the run that parked: the cumulative counters are
    /// pre-seeded so safepoint cadence, fuel, and final instruction counts
    /// match an unparked run exactly. Restored frames are not re-published
    /// to the sampling profiler (attribution resumes at the next call).
    ///
    /// # Errors
    ///
    /// [`VmError::Trap`] if the snapshot does not belong to this class
    /// image or its indices are out of range; otherwise exactly
    /// [`Interpreter::run`].
    pub fn resume(&self, snap: &InterpSnapshot) -> Result<Value> {
        let mut prof = ProfTally::new(self.profiler.as_ref());
        let result = self.resume_compiled(snap, &mut prof);
        prof.flush();
        result
    }

    fn resume_compiled(&self, snap: &InterpSnapshot, prof: &mut ProfTally) -> Result<Value> {
        let methods = self.compiled.methods();
        if snap.image.name != self.compiled.image().name {
            return Err(VmError::trap(format!(
                "snapshot of class {} cannot resume on {}",
                snap.image.name,
                self.compiled.image().name
            )));
        }
        let mi = snap.method as usize;
        let in_range = |f: &FrameSnap| {
            (f.method as usize) < methods.len()
                && (f.pc as usize) <= methods[f.method as usize].code.len()
        };
        if mi >= methods.len()
            || snap.pc as usize >= methods[mi].code.len()
            || !snap.frames.iter().all(in_range)
        {
            return Err(VmError::trap("snapshot frame out of range"));
        }
        self.stats
            .instructions
            .store(snap.instructions, Ordering::Relaxed);
        self.stats
            .dispatches
            .store(snap.dispatches, Ordering::Relaxed);
        self.stats
            .method_calls
            .store(snap.method_calls, Ordering::Relaxed);
        self.stats
            .native_calls
            .store(snap.native_calls, Ordering::Relaxed);
        let frames = snap
            .frames
            .iter()
            .map(|f| FrameState {
                method: f.method,
                pc: f.pc,
                base: f.base,
                callee_guarded: false,
            })
            .collect();
        self.exec(
            StartState {
                entry: snap.entry.clone(),
                arena: snap.arena.clone(),
                arena_charged: 0,
                frames,
                mi,
                base: snap.base as usize,
                sp: snap.sp as usize,
                pc: snap.pc as usize,
                fuel: snap.fuel.unwrap_or(u64::MAX),
            },
            prof,
        )
    }

    /// The fast dispatch loop: explicit frames over one reusable arena.
    ///
    /// Arena layout per frame: `[base .. base+locals)` are the local
    /// slots, `[base+locals .. base+frame_size)` the operand stack (sized
    /// by the verifier's proven `max_stack`, so pushes never bounds-grow).
    /// A callee's `base` is the caller's `sp - argc`: the pushed arguments
    /// are already its first locals in call order, so calls move no values
    /// at all.
    #[allow(clippy::too_many_lines)]
    fn exec(&self, start: StartState, prof: &mut ProfTally) -> Result<Value> {
        let ci: &CompiledImage = &self.compiled;
        let methods = ci.methods();
        let StartState {
            entry,
            mut arena,
            arena_charged,
            mut frames,
            mut mi,
            mut base,
            mut sp,
            mut pc,
            fuel: fuel_start,
        } = start;
        let mut guards: Vec<crate::profloc::FrameGuard> = Vec::new();
        let mut code: &[Op] = &methods[mi].code;
        if let Some(p) = prof.profiler() {
            if p.sampling_enabled() {
                guards.push(crate::profloc::frame_arc(&methods[mi].qualified, Some(p)));
            }
        }

        // Memory governance (application-attributed runs only): charge the
        // entry slab before dispatching anything.
        let app = crate::thread::current_app_context();
        let mut gov = app.as_ref().map(|ctx| MemGov {
            ctx: Arc::clone(ctx),
            charged: arena_charged,
            arena_bytes: arena_charged,
        });
        if let Err(err) = gov.as_mut().map_or(Ok(()), |g| g.ensure_arena(&arena)) {
            drop(guards);
            arena.clear();
            if let Some(g) = gov {
                g.settle_pool(arena);
            }
            return Err(err);
        }

        // Charging state. `until_check` counts wire instructions down to
        // the next safepoint on the interpreter's *cumulative* counter —
        // the same cadence the seed loop derives from its per-instruction
        // `fetch_add`. Fuel is run-local, like the seed's `budget`.
        let mut pending = Pending::default();
        let mut until_check =
            INTERRUPT_CHECK_EVERY - (self.stats.instructions() % INTERRUPT_CHECK_EVERY);
        let fueled = fuel_start != u64::MAX;
        let mut fuel: u64 = fuel_start;
        // Checkpoint countdown: wire instructions until the requested park
        // point (`u64::MAX` = no trigger). Folded into `slack` exactly
        // like fuel, so the fast path stays 1 compare + 1 subtract; a
        // context-requested checkpoint is polled at safepoints and parks
        // at the following op boundary.
        let mut ckpt: u64 = {
            let at = self.checkpoint_at.load(Ordering::Relaxed);
            if at == u64::MAX {
                u64::MAX
            } else {
                at.saturating_sub(self.stats.instructions())
            }
        };
        let mut want_ckpt = false;
        // The headrooms merged into one counter for the hot path: `slack`
        // components can be charged without reaching a safepoint boundary
        // (`until_check` must stay ≥ 1), running out of fuel, or crossing
        // a requested checkpoint; `slack_base - slack` is what the slow
        // path reconciles back into the real counters before charging
        // component-wise.
        let mut slack = (until_check - 1).min(fuel).min(ckpt);
        let mut slack_base = slack;
        // Batched-counter shadows kept out of `pending` so the fast path
        // touches only registers: the wire-instruction charge is derived
        // from `slack_base - slack` and dispatches from `dispatched`, both
        // folded back into `pending` at reconcile points (slow-path entry,
        // native calls, run exit). `trap_refund` carries a fused op's
        // never-reached tail components out to the exit reconcile.
        let mut dispatched: u64 = 0;
        let mut trap_refund: u64 = 0;
        macro_rules! reconcile {
            () => {{
                pending.instructions += slack_base - slack;
                slack_base = slack;
                pending.dispatches += dispatched;
                dispatched = 0;
            }};
        }

        let outcome: Result<Value> = 'run: loop {
            let o = code[pc];
            pc += 1;
            let cost = u64::from(o.cost);
            if slack >= cost {
                // Fast path: no safepoint boundary inside this op and
                // enough fuel for every component.
                slack -= cost;
            } else {
                // Slow path: charge component-wise in exact seed order —
                // count, then (at a boundary) safepoint + interrupt poll,
                // then the fuel check — so a trap attributes to the same
                // wire instruction the seed loop would pick.
                let spent = slack_base - slack;
                reconcile!();
                until_check -= spent;
                fuel -= spent;
                ckpt = ckpt.saturating_sub(spent);
                // Park for a checkpoint *before* charging the current op:
                // it is uncharged and unexecuted, so the snapshot resumes
                // by re-dispatching it and the cumulative counters match
                // an unparked run exactly. Only op boundaries park — no
                // instruction is ever half-charged in a snapshot.
                if want_ckpt || ckpt < cost {
                    pc -= 1;
                    self.stats.flush_pending(&mut pending);
                    self.checkpoint_at.store(u64::MAX, Ordering::Relaxed);
                    let snap = InterpSnapshot {
                        version: SNAPSHOT_VERSION,
                        image: (**ci.image()).clone(),
                        entry: entry.clone(),
                        frames: frames
                            .iter()
                            .map(|f| FrameSnap {
                                method: f.method,
                                pc: f.pc,
                                base: f.base,
                            })
                            .collect(),
                        method: mi as u32,
                        pc: pc as u32,
                        base: base as u32,
                        sp: sp as u32,
                        arena: std::mem::take(&mut arena),
                        fuel: fueled.then_some(fuel),
                        instructions: self.stats.instructions(),
                        dispatches: self.stats.dispatches(),
                        method_calls: self.stats.method_calls(),
                        native_calls: self.stats.native_calls(),
                    };
                    match (&app, want_ckpt) {
                        (Some(ctx), true) => {
                            ctx.clear_checkpoint_request();
                            ctx.deposit_snapshot(snap);
                        }
                        _ => *self.snapshot_slot.lock() = Some(snap),
                    }
                    break 'run Err(VmError::Checkpointed);
                }
                let mut trapped: Option<VmError> = None;
                for _ in 0..o.cost {
                    pending.instructions += 1;
                    until_check -= 1;
                    if until_check == 0 {
                        until_check = INTERRUPT_CHECK_EVERY;
                        self.stats.flush_pending(&mut pending);
                        prof.at_safepoint();
                        if let Err(err) = check_interrupt() {
                            trapped = Some(err);
                            break;
                        }
                        // Safepoint services beyond the seed's: reconcile
                        // the memory charge to the live working set, and
                        // poll for a context-requested checkpoint (parks
                        // at the next op boundary).
                        if let Some(g) = gov.as_mut() {
                            if let Err(err) = g.sample(&arena) {
                                trapped = Some(err);
                                break;
                            }
                        }
                        if let Some(ctx) = &app {
                            if ctx.checkpoint_requested() {
                                want_ckpt = true;
                            }
                        }
                    }
                    if fuel == 0 {
                        trapped = Some(VmError::trap("fuel exhausted"));
                        break;
                    }
                    fuel -= 1;
                }
                if let Some(err) = trapped {
                    break 'run Err(err);
                }
                ckpt = ckpt.saturating_sub(cost);
                // The component loop leaves `until_check` ≥ 1 (a boundary
                // resets it to the full interval mid-iteration).
                slack = (until_check - 1).min(fuel).min(ckpt);
                if want_ckpt {
                    slack = 0;
                }
                slack_base = slack;
            }
            dispatched += 1;
            prof.tally(o.code);

            // Pop a value, leaving `Null` so the slot holds no stale Arc.
            macro_rules! pop_take {
                () => {{
                    sp -= 1;
                    std::mem::replace(&mut arena[sp], Value::Null)
                }};
            }
            // Read an int at an arena index; on type mismatch, trap with
            // the seed's message. `$refund` is the number of *tail*
            // components of a fused op the seed loop would never have
            // reached (it traps at the compute component), keeping the
            // instruction count seed-identical even for mid-pattern traps.
            macro_rules! int_at {
                ($idx:expr) => {
                    int_at!($idx, 0)
                };
                ($idx:expr, $refund:expr) => {
                    match &arena[$idx] {
                        Value::Int(v) => *v,
                        other => {
                            trap_refund = $refund;
                            break 'run Err(expected_int(other));
                        }
                    }
                };
            }

            match o.code {
                op::PUSH_INT => {
                    arena[sp] = Value::Int(o.k);
                    sp += 1;
                }
                op::PUSH_STR => {
                    arena[sp] = Value::Str(Arc::clone(ci.pool_str(o.t)));
                    sp += 1;
                }
                op::PUSH_BOOL => {
                    arena[sp] = Value::Bool(o.a != 0);
                    sp += 1;
                }
                op::PUSH_NULL => {
                    arena[sp] = Value::Null;
                    sp += 1;
                }
                op::LOAD => {
                    arena[sp] = arena[base + usize::from(o.a)].clone();
                    sp += 1;
                }
                op::STORE => {
                    let v = pop_take!();
                    arena[base + usize::from(o.a)] = v;
                }
                op::POP => {
                    sp -= 1;
                    arena[sp] = Value::Null;
                }
                op::DUP => {
                    arena[sp] = arena[sp - 1].clone();
                    sp += 1;
                }
                op::SWAP => {
                    arena.swap(sp - 1, sp - 2);
                }
                op::ADD => {
                    let b = int_at!(sp - 1);
                    let a = int_at!(sp - 2);
                    arena[sp - 2] = Value::Int(a.wrapping_add(b));
                    sp -= 1;
                }
                op::SUB => {
                    let b = int_at!(sp - 1);
                    let a = int_at!(sp - 2);
                    arena[sp - 2] = Value::Int(a.wrapping_sub(b));
                    sp -= 1;
                }
                op::MUL => {
                    let b = int_at!(sp - 1);
                    let a = int_at!(sp - 2);
                    arena[sp - 2] = Value::Int(a.wrapping_mul(b));
                    sp -= 1;
                }
                op::DIV | op::REM => {
                    let b = int_at!(sp - 1);
                    let a = int_at!(sp - 2);
                    if b == 0 {
                        break 'run Err(VmError::trap("division by zero"));
                    }
                    arena[sp - 2] = Value::Int(if o.code == op::REM {
                        a.wrapping_rem(b)
                    } else {
                        a.wrapping_div(b)
                    });
                    sp -= 1;
                }
                op::NEG => {
                    let v = int_at!(sp - 1);
                    arena[sp - 1] = Value::Int(v.wrapping_neg());
                }
                op::CONCAT => {
                    let joined = Value::concat(&arena[sp - 2], &arena[sp - 1]);
                    // Large results prepay their bytes at the allocating
                    // op (small ones are picked up by the safepoint
                    // sample): a doubling concat bomb is denied at the
                    // allocation that crosses the quota, not 1024
                    // instructions later.
                    if let Some(g) = gov.as_mut() {
                        let bytes = joined.heap_bytes();
                        if bytes >= STR_PREPAY_BYTES {
                            if let Err(err) = g.prepay(bytes) {
                                break 'run Err(err);
                            }
                        }
                    }
                    arena[sp - 2] = joined;
                    arena[sp - 1] = Value::Null;
                    sp -= 1;
                }
                op::EQ | op::NE => {
                    let eq = arena[sp - 2] == arena[sp - 1];
                    arena[sp - 2] = Value::Bool(if o.code == op::EQ { eq } else { !eq });
                    arena[sp - 1] = Value::Null;
                    sp -= 1;
                }
                op::LT => {
                    let b = int_at!(sp - 1);
                    let a = int_at!(sp - 2);
                    arena[sp - 2] = Value::Bool(a < b);
                    sp -= 1;
                }
                op::LE => {
                    let b = int_at!(sp - 1);
                    let a = int_at!(sp - 2);
                    arena[sp - 2] = Value::Bool(a <= b);
                    sp -= 1;
                }
                op::GT => {
                    let b = int_at!(sp - 1);
                    let a = int_at!(sp - 2);
                    arena[sp - 2] = Value::Bool(a > b);
                    sp -= 1;
                }
                op::GE => {
                    let b = int_at!(sp - 1);
                    let a = int_at!(sp - 2);
                    arena[sp - 2] = Value::Bool(a >= b);
                    sp -= 1;
                }
                op::AND | op::OR => {
                    let b = arena[sp - 1].is_truthy();
                    let a = arena[sp - 2].is_truthy();
                    arena[sp - 2] = Value::Bool(if o.code == op::AND { a && b } else { a || b });
                    arena[sp - 1] = Value::Null;
                    sp -= 1;
                }
                op::NOT => {
                    let t = arena[sp - 1].is_truthy();
                    arena[sp - 1] = Value::Bool(!t);
                }
                op::JUMP => pc = usize::from(o.t),
                op::JUMP_IF_FALSE => {
                    if !pop_take!().is_truthy() {
                        pc = usize::from(o.t);
                    }
                }
                op::JUMP_IF_TRUE => {
                    if pop_take!().is_truthy() {
                        pc = usize::from(o.t);
                    }
                }
                op::CALL => {
                    pending.method_calls += 1;
                    if frames.len() + 1 >= MAX_CALL_DEPTH {
                        break 'run Err(VmError::trap(format!(
                            "call depth exceeds {MAX_CALL_DEPTH}"
                        )));
                    }
                    let callee = usize::from(o.t);
                    let cm = &methods[callee];
                    let argc = usize::from(o.a);
                    // The pushed args are already the callee's first
                    // locals, in call order.
                    let callee_base = sp - argc;
                    let need = callee_base + cm.frame_size as usize;
                    if arena.len() < need {
                        arena.resize(need, Value::Null);
                        if let Some(g) = gov.as_mut() {
                            if let Err(err) = g.ensure_arena(&arena) {
                                break 'run Err(err);
                            }
                        }
                    }
                    // Non-parameter locals must start Null (the arena may
                    // hold stale values from earlier frames).
                    for slot in &mut arena[callee_base + argc..callee_base + usize::from(cm.locals)]
                    {
                        *slot = Value::Null;
                    }
                    let callee_guarded = match prof.profiler() {
                        Some(p) if p.sampling_enabled() => {
                            guards.push(crate::profloc::frame_arc(&cm.qualified, Some(p)));
                            true
                        }
                        _ => false,
                    };
                    frames.push(FrameState {
                        method: mi as u32,
                        pc: pc as u32,
                        base: base as u32,
                        callee_guarded,
                    });
                    mi = callee;
                    base = callee_base;
                    sp = callee_base + usize::from(cm.locals);
                    code = &cm.code;
                    pc = 0;
                }
                op::CALL_NATIVE => {
                    pending.native_calls += 1;
                    let argc = usize::from(o.a);
                    let site = ci.site(o.t);
                    let args_start = sp - argc;
                    let mut call_args = Vec::with_capacity(argc);
                    for slot in &mut arena[args_start..sp] {
                        call_args.push(std::mem::replace(slot, Value::Null));
                    }
                    sp = args_start;
                    // Keep the shared counters fresh across the host call
                    // (a native may observe stats or re-enter the
                    // interpreter), and mark this site active so access
                    // checks it triggers hit its inline cache.
                    reconcile!();
                    self.stats.flush_pending(&mut pending);
                    let result = {
                        let _active = crate::decision_cache::enter_native_site(&site.cache);
                        self.host.invoke(&site.name, call_args)
                    };
                    match result {
                        Ok(v) => {
                            arena[sp] = v;
                            sp += 1;
                        }
                        Err(err) => break 'run Err(err),
                    }
                }
                op::RETURN | op::RETURN_VALUE => {
                    let result = if o.code == op::RETURN_VALUE {
                        pop_take!()
                    } else {
                        Value::Null
                    };
                    match frames.pop() {
                        None => break 'run Ok(result),
                        Some(f) => {
                            if f.callee_guarded {
                                guards.pop();
                            }
                            // The callee's base is where the caller's args
                            // started; the result lands there.
                            let ret_slot = base;
                            mi = f.method as usize;
                            base = f.base as usize;
                            code = &methods[mi].code;
                            pc = f.pc as usize;
                            arena[ret_slot] = result;
                            sp = ret_slot + 1;
                        }
                    }
                }
                // Superinstructions. Operand-read order mirrors the seed's
                // pop order (top of stack / second load first), so type
                // mismatch traps report the same value.
                op::LOAD2_ADD | op::LOAD2_SUB | op::LOAD2_MUL => {
                    let b = int_at!(base + usize::from(o.b), 0);
                    let a = int_at!(base + usize::from(o.a), 0);
                    arena[sp] = Value::Int(match o.code {
                        op::LOAD2_ADD => a.wrapping_add(b),
                        op::LOAD2_SUB => a.wrapping_sub(b),
                        _ => a.wrapping_mul(b),
                    });
                    sp += 1;
                }
                op::LT_JF | op::LE_JF | op::GT_JF | op::GE_JF => {
                    let b = int_at!(sp - 1, 1);
                    let a = int_at!(sp - 2, 1);
                    sp -= 2;
                    let cond = match o.code {
                        op::LT_JF => a < b,
                        op::LE_JF => a <= b,
                        op::GT_JF => a > b,
                        _ => a >= b,
                    };
                    if !cond {
                        pc = usize::from(o.t);
                    }
                }
                op::EQ_JF | op::NE_JF => {
                    let eq = arena[sp - 2] == arena[sp - 1];
                    arena[sp - 1] = Value::Null;
                    arena[sp - 2] = Value::Null;
                    sp -= 2;
                    let cond = if o.code == op::EQ_JF { eq } else { !eq };
                    if !cond {
                        pc = usize::from(o.t);
                    }
                }
                op::LOAD_ADDI | op::LOAD_SUBI => {
                    let a = int_at!(base + usize::from(o.a), 0);
                    arena[sp] = Value::Int(if o.code == op::LOAD_ADDI {
                        a.wrapping_add(o.k)
                    } else {
                        a.wrapping_sub(o.k)
                    });
                    sp += 1;
                }
                op::LOAD_STORE => {
                    arena[base + usize::from(o.b)] = arena[base + usize::from(o.a)].clone();
                }
                op::ADDI_STORE | op::SUBI_STORE => {
                    let a = int_at!(base + usize::from(o.a), 1);
                    arena[base + usize::from(o.b)] = Value::Int(if o.code == op::ADDI_STORE {
                        a.wrapping_add(o.k)
                    } else {
                        a.wrapping_sub(o.k)
                    });
                }
                op::ADD2_STORE => {
                    let b = int_at!(base + usize::from(o.b), 1);
                    let a = int_at!(base + usize::from(o.a), 1);
                    arena[usize::from(o.t) + base] = Value::Int(a.wrapping_add(b));
                }
                op::LTI_JF | op::LEI_JF | op::GTI_JF | op::GEI_JF => {
                    let a = int_at!(base + usize::from(o.a), 1);
                    let cond = match o.code {
                        op::LTI_JF => a < o.k,
                        op::LEI_JF => a <= o.k,
                        op::GTI_JF => a > o.k,
                        _ => a >= o.k,
                    };
                    if !cond {
                        pc = usize::from(o.t);
                    }
                }
                op::EQI_JF => {
                    if arena[base + usize::from(o.a)] != Value::Int(o.k) {
                        pc = usize::from(o.t);
                    }
                }
                op::NEI_JF => {
                    if arena[base + usize::from(o.a)] == Value::Int(o.k) {
                        pc = usize::from(o.t);
                    }
                }
                op::ADDI_STORE_JUMP | op::SUBI_STORE_JUMP => {
                    // Seed traps at the add/sub (3rd component); the store
                    // and the jump are never counted.
                    let a = int_at!(base + usize::from(o.a), 2);
                    arena[base + usize::from(o.b)] = Value::Int(if o.code == op::ADDI_STORE_JUMP {
                        a.wrapping_add(o.k)
                    } else {
                        a.wrapping_sub(o.k)
                    });
                    pc = usize::from(o.t);
                }
                other => unreachable!("invalid compiled opcode {other}"),
            }
        };

        // Fold the register shadows back in; the trapping op's full cost
        // is in by now (via slack on the fast path, component-wise on the
        // slow path), so subtracting the refund cannot underflow.
        pending.instructions += slack_base - slack;
        pending.dispatches += dispatched;
        pending.instructions -= trap_refund;
        self.stats.flush_pending(&mut pending);
        drop(guards);
        let parked = matches!(outcome, Err(VmError::Checkpointed));
        arena.clear();
        match gov {
            // A parked run's arena moved into the snapshot — release its
            // whole charge; otherwise the slab returns to the per-app pool
            // with its charge resident (reclaimed in bulk at reap).
            Some(g) if parked => g.settle_drop(),
            Some(g) => g.settle_pool(arena),
            None => {
                let mut pool = self.arena_pool.lock();
                if pool.len() < ARENA_POOL_CAP {
                    pool.push(arena);
                }
            }
        }
        outcome
    }

    /// The seed recursive interpreter over the wire [`Insn`] form — the
    /// executable specification `run_compiled` is tested against.
    fn run_method_seed(
        &self,
        method: &str,
        args: Vec<Value>,
        depth: usize,
        budget: &mut Option<u64>,
        prof: &mut ProfTally,
    ) -> Result<Value> {
        if depth >= MAX_CALL_DEPTH {
            return Err(VmError::trap(format!(
                "call depth exceeds {MAX_CALL_DEPTH}"
            )));
        }
        let image = self.compiled.image();
        let mi = image
            .methods
            .iter()
            .position(|m| m.name == method)
            .ok_or_else(|| VmError::trap(format!("no such method: {method}")))?;
        let m = &image.methods[mi];
        if args.len() != usize::from(m.params) {
            return Err(VmError::trap(format!(
                "method {method} takes {} args, got {}",
                m.params,
                args.len()
            )));
        }
        let mut locals = vec![Value::Null; usize::from(m.locals)];
        locals[..args.len()].clone_from_slice(&args);
        // Publish "Class.method" to the sampling profiler for the duration
        // of this frame (no-op when sampling is off or no profiler exists).
        // The label was interned at compile time (satellite of the same
        // fix in the fast loop).
        let _loc = match prof.profiler() {
            Some(p) if p.sampling_enabled() => Some(crate::profloc::frame_arc(
                &self.compiled.methods()[mi].qualified,
                Some(p),
            )),
            _ => None,
        };
        let mut stack: Vec<Value> = Vec::with_capacity(8);
        let mut pc: usize = 0;
        loop {
            let count = self.stats.instructions.fetch_add(1, Ordering::Relaxed) + 1;
            if count.is_multiple_of(INTERRUPT_CHECK_EVERY) {
                prof.at_safepoint();
                check_interrupt()?;
            }
            if let Some(fuel) = budget {
                if *fuel == 0 {
                    return Err(VmError::trap("fuel exhausted"));
                }
                *fuel -= 1;
            }
            // The verifier guarantees pc validity and stack discipline; the
            // `expect`s below are unreachable for verified images.
            let insn = &m.code[pc];
            pc += 1;
            // Wire opcodes are 0..BASE_OPCODE_COUNT, always a byte.
            prof.tally(insn.opcode() as u8);
            match insn {
                Insn::PushInt(v) => stack.push(Value::Int(*v)),
                Insn::PushStr(s) => stack.push(Value::str(s)),
                Insn::PushBool(b) => stack.push(Value::Bool(*b)),
                Insn::PushNull => stack.push(Value::Null),
                Insn::Load(slot) => stack.push(locals[usize::from(*slot)].clone()),
                Insn::Store(slot) => {
                    locals[usize::from(*slot)] = pop(&mut stack)?;
                }
                Insn::Pop => {
                    pop(&mut stack)?;
                }
                Insn::Dup => {
                    let top = stack
                        .last()
                        .cloned()
                        .ok_or_else(|| VmError::trap("dup on empty stack"))?;
                    stack.push(top);
                }
                Insn::Swap => {
                    let a = pop(&mut stack)?;
                    let b = pop(&mut stack)?;
                    stack.push(a);
                    stack.push(b);
                }
                Insn::Add => binary_int(&mut stack, |a, b| a.wrapping_add(b))?,
                Insn::Sub => binary_int(&mut stack, |a, b| a.wrapping_sub(b))?,
                Insn::Mul => binary_int(&mut stack, |a, b| a.wrapping_mul(b))?,
                Insn::Div => checked_div(&mut stack, false)?,
                Insn::Rem => checked_div(&mut stack, true)?,
                Insn::Neg => {
                    let v = pop_int(&mut stack)?;
                    stack.push(Value::Int(v.wrapping_neg()));
                }
                Insn::Concat => {
                    let b = pop(&mut stack)?;
                    let a = pop(&mut stack)?;
                    stack.push(Value::concat(&a, &b));
                }
                Insn::Eq => binary_cmp(&mut stack, |a, b| a == b)?,
                Insn::Ne => binary_cmp(&mut stack, |a, b| a != b)?,
                Insn::Lt => binary_int_cmp(&mut stack, |a, b| a < b)?,
                Insn::Le => binary_int_cmp(&mut stack, |a, b| a <= b)?,
                Insn::Gt => binary_int_cmp(&mut stack, |a, b| a > b)?,
                Insn::Ge => binary_int_cmp(&mut stack, |a, b| a >= b)?,
                Insn::And => binary_bool(&mut stack, |a, b| a && b)?,
                Insn::Or => binary_bool(&mut stack, |a, b| a || b)?,
                Insn::Not => {
                    let v = pop(&mut stack)?;
                    stack.push(Value::Bool(!v.is_truthy()));
                }
                Insn::Jump(t) => pc = usize::from(*t),
                Insn::JumpIfFalse(t) => {
                    if !pop(&mut stack)?.is_truthy() {
                        pc = usize::from(*t);
                    }
                }
                Insn::JumpIfTrue(t) => {
                    if pop(&mut stack)?.is_truthy() {
                        pc = usize::from(*t);
                    }
                }
                Insn::Call {
                    method: callee,
                    argc,
                } => {
                    self.stats.method_calls.fetch_add(1, Ordering::Relaxed);
                    let mut call_args = split_args(&mut stack, *argc)?;
                    call_args.reverse();
                    let result =
                        self.run_method_seed(callee, call_args, depth + 1, budget, prof)?;
                    stack.push(result);
                }
                Insn::CallNative { name, argc } => {
                    self.stats.native_calls.fetch_add(1, Ordering::Relaxed);
                    let mut call_args = split_args(&mut stack, *argc)?;
                    call_args.reverse();
                    let result = self.host.invoke(name, call_args)?;
                    stack.push(result);
                }
                Insn::Return => return Ok(Value::Null),
                Insn::ReturnValue => return pop(&mut stack),
            }
        }
    }
}

fn expected_int(other: &Value) -> VmError {
    VmError::trap(format!("expected int, got {other}"))
}

fn pop(stack: &mut Vec<Value>) -> Result<Value> {
    stack
        .pop()
        .ok_or_else(|| VmError::trap("operand stack underflow"))
}

fn pop_int(stack: &mut Vec<Value>) -> Result<i64> {
    match pop(stack)? {
        Value::Int(v) => Ok(v),
        other => Err(expected_int(&other)),
    }
}

fn binary_int(stack: &mut Vec<Value>, f: impl Fn(i64, i64) -> i64) -> Result<()> {
    let b = pop_int(stack)?;
    let a = pop_int(stack)?;
    stack.push(Value::Int(f(a, b)));
    Ok(())
}

fn checked_div(stack: &mut Vec<Value>, rem: bool) -> Result<()> {
    let b = pop_int(stack)?;
    let a = pop_int(stack)?;
    if b == 0 {
        return Err(VmError::trap("division by zero"));
    }
    stack.push(Value::Int(if rem {
        a.wrapping_rem(b)
    } else {
        a.wrapping_div(b)
    }));
    Ok(())
}

fn binary_int_cmp(stack: &mut Vec<Value>, f: impl Fn(i64, i64) -> bool) -> Result<()> {
    let b = pop_int(stack)?;
    let a = pop_int(stack)?;
    stack.push(Value::Bool(f(a, b)));
    Ok(())
}

fn binary_cmp(stack: &mut Vec<Value>, f: impl Fn(&Value, &Value) -> bool) -> Result<()> {
    let b = pop(stack)?;
    let a = pop(stack)?;
    stack.push(Value::Bool(f(&a, &b)));
    Ok(())
}

fn binary_bool(stack: &mut Vec<Value>, f: impl Fn(bool, bool) -> bool) -> Result<()> {
    let b = pop(stack)?.is_truthy();
    let a = pop(stack)?.is_truthy();
    stack.push(Value::Bool(f(a, b)));
    Ok(())
}

fn split_args(stack: &mut Vec<Value>, argc: u8) -> Result<Vec<Value>> {
    let mut args = Vec::with_capacity(usize::from(argc));
    for _ in 0..argc {
        args.push(pop(stack)?);
    }
    Ok(args)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::image::MethodImage;
    use parking_lot::Mutex;

    fn interp(image: ClassImage) -> Interpreter {
        Interpreter::new(Arc::new(image), Arc::new(NoNatives)).unwrap()
    }

    fn single(code: Vec<Insn>, params: u8, locals: u8) -> ClassImage {
        ClassImage {
            name: "T".into(),
            methods: vec![MethodImage {
                name: "main".into(),
                params,
                locals,
                code,
            }],
        }
    }

    #[test]
    fn arithmetic() {
        let i = interp(single(
            vec![
                Insn::PushInt(7),
                Insn::PushInt(3),
                Insn::Mul, // 21
                Insn::PushInt(1),
                Insn::Sub, // 20
                Insn::PushInt(6),
                Insn::Div, // 3
                Insn::ReturnValue,
            ],
            0,
            0,
        ));
        assert_eq!(i.run("main", vec![]).unwrap(), Value::Int(3));
    }

    #[test]
    fn division_by_zero_traps() {
        let i = interp(single(
            vec![
                Insn::PushInt(1),
                Insn::PushInt(0),
                Insn::Div,
                Insn::ReturnValue,
            ],
            0,
            0,
        ));
        assert!(matches!(
            i.run("main", vec![]).unwrap_err(),
            VmError::Trap { .. }
        ));
    }

    #[test]
    fn loop_sums_one_to_ten() {
        // locals: 0 = i, 1 = sum
        let code = vec![
            Insn::PushInt(1),
            Insn::Store(0), // i = 1
            Insn::PushInt(0),
            Insn::Store(1), // sum = 0
            Insn::Load(0),  // 4: loop head
            Insn::PushInt(10),
            Insn::Le,
            Insn::JumpIfFalse(17),
            Insn::Load(1),
            Insn::Load(0),
            Insn::Add,
            Insn::Store(1),
            Insn::Load(0),
            Insn::PushInt(1),
            Insn::Add,
            Insn::Store(0),
            Insn::Jump(4),
            Insn::Load(1), // 17
            Insn::ReturnValue,
        ];
        let i = interp(single(code, 0, 2));
        assert_eq!(i.run("main", vec![]).unwrap(), Value::Int(55));
        assert!(i.stats().instructions() > 50);
        assert!(
            i.stats().dispatches() < i.stats().instructions(),
            "fusion must dispatch fewer ops than wire instructions: {} vs {}",
            i.stats().dispatches(),
            i.stats().instructions()
        );
    }

    #[test]
    fn method_calls_pass_args_in_order() {
        let image = ClassImage {
            name: "T".into(),
            methods: vec![
                MethodImage {
                    name: "main".into(),
                    params: 0,
                    locals: 0,
                    code: vec![
                        Insn::PushInt(10),
                        Insn::PushInt(3),
                        Insn::Call {
                            method: "sub".into(),
                            argc: 2,
                        },
                        Insn::ReturnValue,
                    ],
                },
                MethodImage {
                    name: "sub".into(),
                    params: 2,
                    locals: 2,
                    code: vec![Insn::Load(0), Insn::Load(1), Insn::Sub, Insn::ReturnValue],
                },
            ],
        };
        let i = interp(image);
        assert_eq!(i.run("main", vec![]).unwrap(), Value::Int(7));
        assert_eq!(i.stats().method_calls(), 1);
    }

    #[test]
    fn recursion_with_depth_limit() {
        let image = ClassImage {
            name: "T".into(),
            methods: vec![MethodImage {
                name: "forever".into(),
                params: 0,
                locals: 0,
                code: vec![
                    Insn::Call {
                        method: "forever".into(),
                        argc: 0,
                    },
                    Insn::ReturnValue,
                ],
            }],
        };
        let i = interp(image);
        let err = i.run("forever", vec![]).unwrap_err();
        assert!(err.to_string().contains("call depth"));
    }

    #[test]
    fn fuel_bounds_runaway_code() {
        let i = Interpreter::new(
            Arc::new(single(vec![Insn::Jump(0)], 0, 0)),
            Arc::new(NoNatives),
        )
        .unwrap()
        .with_fuel(10_000);
        let err = i.run("main", vec![]).unwrap_err();
        assert!(err.to_string().contains("fuel"));
    }

    #[test]
    fn natives_receive_args_in_call_order() {
        struct Recorder(Mutex<Vec<(String, Vec<Value>)>>);
        impl NativeHost for Recorder {
            fn invoke(&self, name: &str, args: Vec<Value>) -> Result<Value> {
                self.0.lock().push((name.to_string(), args));
                Ok(Value::Int(99))
            }
        }
        let host = Arc::new(Recorder(Mutex::new(Vec::new())));
        let image = single(
            vec![
                Insn::PushStr("hello".into()),
                Insn::PushInt(5),
                Insn::CallNative {
                    name: "print2".into(),
                    argc: 2,
                },
                Insn::ReturnValue,
            ],
            0,
            0,
        );
        let i =
            Interpreter::new(Arc::new(image), Arc::clone(&host) as Arc<dyn NativeHost>).unwrap();
        assert_eq!(i.run("main", vec![]).unwrap(), Value::Int(99));
        let calls = host.0.lock();
        assert_eq!(calls.len(), 1);
        assert_eq!(calls[0].0, "print2");
        assert_eq!(calls[0].1, vec![Value::str("hello"), Value::Int(5)]);
        assert_eq!(i.stats().native_calls(), 1);
    }

    #[test]
    fn unknown_native_traps() {
        let i = interp(single(
            vec![
                Insn::CallNative {
                    name: "missing".into(),
                    argc: 0,
                },
                Insn::ReturnValue,
            ],
            0,
            0,
        ));
        assert!(i
            .run("main", vec![])
            .unwrap_err()
            .to_string()
            .contains("missing"));
    }

    #[test]
    fn string_ops() {
        let i = interp(single(
            vec![
                Insn::PushStr("x=".into()),
                Insn::PushInt(42),
                Insn::Concat,
                Insn::ReturnValue,
            ],
            0,
            0,
        ));
        assert_eq!(i.run("main", vec![]).unwrap(), Value::str("x=42"));
    }

    #[test]
    fn comparisons_and_bools() {
        let i = interp(single(
            vec![
                Insn::PushInt(3),
                Insn::PushInt(5),
                Insn::Lt, // true
                Insn::PushBool(false),
                Insn::Or,  // true
                Insn::Not, // false
                Insn::ReturnValue,
            ],
            0,
            0,
        ));
        assert_eq!(i.run("main", vec![]).unwrap(), Value::Bool(false));
    }

    #[test]
    fn wrong_arg_count_traps() {
        let i = interp(single(vec![Insn::Return], 2, 2));
        assert!(i
            .run("main", vec![Value::Int(1)])
            .unwrap_err()
            .to_string()
            .contains("takes 2"));
    }

    fn sum_loop() -> Vec<Insn> {
        // locals: 0 = i, 1 = sum
        vec![
            Insn::PushInt(1),
            Insn::Store(0),
            Insn::PushInt(0),
            Insn::Store(1),
            Insn::Load(0), // 4: loop head
            Insn::PushInt(500),
            Insn::Le,
            Insn::JumpIfFalse(17),
            Insn::Load(1),
            Insn::Load(0),
            Insn::Add,
            Insn::Store(1),
            Insn::Load(0),
            Insn::PushInt(1),
            Insn::Add,
            Insn::Store(0),
            Insn::Jump(4),
            Insn::Load(1), // 17
            Insn::ReturnValue,
        ]
    }

    #[test]
    fn opcode_accounting_bills_an_explicit_profiler() {
        let profiler = jmp_obs::Profiler::new();
        let i = interp(single(sum_loop(), 0, 2)).with_profiler(profiler.clone());
        assert_eq!(i.run("main", vec![]).unwrap(), Value::Int(125_250));
        let report = profiler.report();
        // Every dispatched op is tallied once (accounting was on for the
        // whole run); the wire-instruction counter is strictly larger
        // because fused ops charge their component count.
        assert_eq!(report.vm.instructions, i.stats().dispatches());
        assert!(i.stats().instructions() > i.stats().dispatches());
        // The loop body fuses: its adds surface as superinstructions with
        // component-sum weights, keeping attribution truthful.
        let fused_adds: u64 = report
            .vm
            .opcodes
            .iter()
            .filter(|o| o.opcode == "add2_store" || o.opcode == "addi_store_jump")
            .map(|o| o.count)
            .sum();
        assert!(
            fused_adds >= 1000,
            "two fused adds per iteration: {fused_adds}"
        );
        assert!(report.flushes >= 1);
    }

    #[test]
    fn seed_loop_accounting_still_tallies_wire_opcodes() {
        let profiler = jmp_obs::Profiler::new();
        let i = interp(single(sum_loop(), 0, 2)).with_profiler(profiler.clone());
        assert_eq!(i.run_seed("main", vec![]).unwrap(), Value::Int(125_250));
        let report = profiler.report();
        assert_eq!(report.vm.instructions, i.stats().instructions());
        assert_eq!(i.stats().dispatches(), 0, "seed loop never dispatches");
        let add = report
            .vm
            .opcodes
            .iter()
            .find(|o| o.opcode == "add")
            .expect("add opcode accounted");
        assert!(add.count >= 500, "two adds per iteration: {}", add.count);
    }

    #[test]
    fn accounting_toggle_takes_effect_at_safepoints() {
        let profiler = jmp_obs::Profiler::new();
        profiler.set_accounting(false);
        let i = interp(single(sum_loop(), 0, 2)).with_profiler(profiler.clone());
        i.run("main", vec![]).unwrap();
        assert_eq!(profiler.report().vm.instructions, 0);
        profiler.set_accounting(true);
        i.run("main", vec![]).unwrap();
        assert!(profiler.report().vm.instructions > 0);
    }

    #[test]
    fn interpreted_frames_reach_the_sampler() {
        // Sample from *inside* a native call, while the interpreted frames
        // are live and published — deterministic, no cross-thread timing.
        struct SampleHost(jmp_obs::Profiler);
        impl NativeHost for SampleHost {
            fn invoke(&self, _name: &str, _args: Vec<Value>) -> Result<Value> {
                self.0.sample_once(1_000);
                Ok(Value::Null)
            }
        }
        let profiler = jmp_obs::Profiler::new();
        let image = ClassImage {
            name: "Deep".into(),
            methods: vec![
                MethodImage {
                    name: "main".into(),
                    params: 0,
                    locals: 0,
                    code: vec![
                        Insn::Call {
                            method: "leaf".into(),
                            argc: 0,
                        },
                        Insn::ReturnValue,
                    ],
                },
                MethodImage {
                    name: "leaf".into(),
                    params: 0,
                    locals: 0,
                    code: vec![
                        Insn::CallNative {
                            name: "snap".into(),
                            argc: 0,
                        },
                        Insn::ReturnValue,
                    ],
                },
            ],
        };
        let i = Interpreter::new(Arc::new(image), Arc::new(SampleHost(profiler.clone())))
            .unwrap()
            .with_profiler(profiler.clone());
        i.run("main", vec![]).unwrap();
        let report = profiler.report();
        assert!(
            report.vm.stacks.keys().any(|k| k == "Deep.main;Deep.leaf"),
            "stacks: {:?}",
            report.vm.stacks.keys().collect::<Vec<_>>()
        );
        crate::profloc::clear();
    }

    #[test]
    fn interpreter_rejects_unverifiable_images() {
        let bad = single(vec![Insn::Add, Insn::Return], 0, 0);
        assert!(matches!(
            Interpreter::new(Arc::new(bad), Arc::new(NoNatives)).unwrap_err(),
            VmError::Verification { .. }
        ));
    }

    #[test]
    fn seed_and_compiled_agree_on_the_sum_loop() {
        let a = interp(single(sum_loop(), 0, 2));
        let b = interp(single(sum_loop(), 0, 2));
        assert_eq!(
            a.run("main", vec![]).unwrap(),
            b.run_seed("main", vec![]).unwrap()
        );
        assert_eq!(a.stats().instructions(), b.stats().instructions());
    }

    #[test]
    fn fused_type_mismatch_matches_seed_trap_and_accounting() {
        // local 0 arrives as a string; the loop body's addi_store pattern
        // traps at its Add component. Both engines must report the same
        // message and have charged the same number of wire instructions.
        let code = vec![
            Insn::Load(0),
            Insn::PushInt(1),
            Insn::Add,
            Insn::Store(0),
            Insn::Return,
        ];
        let fast = interp(single(code.clone(), 1, 1));
        let seed = interp(single(code, 1, 1));
        let fast_err = fast.run("main", vec![Value::str("oops")]).unwrap_err();
        let seed_err = seed.run_seed("main", vec![Value::str("oops")]).unwrap_err();
        assert_eq!(fast_err.to_string(), seed_err.to_string());
        assert!(fast_err.to_string().contains("expected int, got"));
        assert_eq!(fast.stats().instructions(), seed.stats().instructions());
    }

    #[test]
    fn arena_is_reused_across_runs() {
        let i = interp(single(sum_loop(), 0, 2));
        for _ in 0..5 {
            assert_eq!(i.run("main", vec![]).unwrap(), Value::Int(125_250));
        }
        // Deep call chains also unwind cleanly back into the pool.
        let fib = ClassImage {
            name: "F".into(),
            methods: vec![MethodImage {
                name: "fib".into(),
                params: 1,
                locals: 1,
                code: vec![
                    Insn::Load(0),
                    Insn::PushInt(2),
                    Insn::Lt,
                    Insn::JumpIfFalse(6),
                    Insn::Load(0),
                    Insn::ReturnValue,
                    Insn::Load(0), // 6
                    Insn::PushInt(1),
                    Insn::Sub,
                    Insn::Call {
                        method: "fib".into(),
                        argc: 1,
                    },
                    Insn::Load(0),
                    Insn::PushInt(2),
                    Insn::Sub,
                    Insn::Call {
                        method: "fib".into(),
                        argc: 1,
                    },
                    Insn::Add,
                    Insn::ReturnValue,
                ],
            }],
        };
        let i = interp(fib);
        assert_eq!(i.run("fib", vec![Value::Int(15)]).unwrap(), Value::Int(610));
        assert_eq!(
            i.run("fib", vec![Value::Int(10)]).unwrap(),
            Value::Int(55),
            "second run reuses the pooled arena"
        );
    }

    #[test]
    fn checkpoint_resume_matches_plain_run_exactly() {
        // Plain run.
        let plain = interp(single(sum_loop(), 0, 2));
        let expect = plain.run("main", vec![]).unwrap();
        let expect_insns = plain.stats().instructions();
        let expect_dispatches = plain.stats().dispatches();

        // Park mid-loop, serialize, restore on a *fresh* interpreter (as a
        // second VM would), resume.
        let parked = interp(single(sum_loop(), 0, 2)).with_checkpoint_at(expect_insns / 2);
        let err = parked.run("main", vec![]).unwrap_err();
        assert!(matches!(err, VmError::Checkpointed), "got {err:?}");
        let snap = parked.take_snapshot().expect("snapshot deposited");
        assert!(snap.instructions < expect_insns, "parked mid-run");
        let bytes = snap.to_bytes().unwrap();
        let snap = crate::snapshot::InterpSnapshot::from_bytes(&bytes).unwrap();
        let restored = Interpreter::new(Arc::new(snap.image.clone()), Arc::new(NoNatives)).unwrap();
        assert_eq!(restored.resume(&snap).unwrap(), expect);
        assert_eq!(restored.stats().instructions(), expect_insns);
        assert_eq!(restored.stats().dispatches(), expect_dispatches);

        // The parked interpreter itself can also resume (trigger is
        // one-shot).
        assert_eq!(parked.resume(&snap).unwrap(), expect);
        assert_eq!(parked.stats().instructions(), expect_insns);
    }

    #[test]
    fn checkpoint_preserves_call_frames_and_fuel() {
        let fib = ClassImage {
            name: "F".into(),
            methods: vec![MethodImage {
                name: "fib".into(),
                params: 1,
                locals: 1,
                code: vec![
                    Insn::Load(0),
                    Insn::PushInt(2),
                    Insn::Lt,
                    Insn::JumpIfFalse(6),
                    Insn::Load(0),
                    Insn::ReturnValue,
                    Insn::Load(0), // 6
                    Insn::PushInt(1),
                    Insn::Sub,
                    Insn::Call {
                        method: "fib".into(),
                        argc: 1,
                    },
                    Insn::Load(0),
                    Insn::PushInt(2),
                    Insn::Sub,
                    Insn::Call {
                        method: "fib".into(),
                        argc: 1,
                    },
                    Insn::Add,
                    Insn::ReturnValue,
                ],
            }],
        };
        let plain = interp(fib.clone());
        let expect = plain.run("fib", vec![Value::Int(14)]).unwrap();
        let expect_insns = plain.stats().instructions();
        let expect_calls = plain.stats().method_calls();

        let parked = interp(fib)
            .with_fuel(1_000_000)
            .with_checkpoint_at(expect_insns / 3);
        let err = parked.run("fib", vec![Value::Int(14)]).unwrap_err();
        assert!(matches!(err, VmError::Checkpointed));
        let snap = parked.take_snapshot().expect("snapshot");
        assert!(!snap.frames.is_empty(), "parked inside the recursion");
        assert!(snap.fuel.is_some(), "fuel budget travels with the snapshot");
        let restored = Interpreter::new(Arc::new(snap.image.clone()), Arc::new(NoNatives)).unwrap();
        assert_eq!(restored.resume(&snap).unwrap(), expect);
        assert_eq!(restored.stats().instructions(), expect_insns);
        assert_eq!(restored.stats().method_calls(), expect_calls);
    }

    #[test]
    fn resume_rejects_foreign_snapshots() {
        let parked = interp(single(sum_loop(), 0, 2)).with_checkpoint_at(100);
        parked.run("main", vec![]).unwrap_err();
        let snap = parked.take_snapshot().unwrap();
        let other = interp(ClassImage {
            name: "Other".into(),
            methods: vec![MethodImage {
                name: "main".into(),
                params: 0,
                locals: 0,
                code: vec![Insn::Return],
            }],
        });
        let err = other.resume(&snap).unwrap_err();
        assert!(err.to_string().contains("cannot resume"), "{err}");
    }

    #[test]
    fn checkpoint_past_end_runs_to_completion() {
        let i = interp(single(sum_loop(), 0, 2)).with_checkpoint_at(u64::MAX - 1);
        assert_eq!(i.run("main", vec![]).unwrap(), Value::Int(125_250));
        assert!(i.take_snapshot().is_none());
    }

    #[test]
    fn interrupt_preempts_both_engines_at_the_same_safepoint() {
        // Pre-set the interruption flag on this (non-VM) test thread via a
        // scoped VM thread context, then run an infinite loop: both engines
        // must stop at the first safepoint — cumulative instruction 1024 —
        // with `Interrupted`.
        let forever = || {
            Interpreter::new(
                Arc::new(single(vec![Insn::Jump(0)], 0, 0)),
                Arc::new(NoNatives),
            )
            .unwrap()
        };
        for compiled_loop in [true, false] {
            let i = forever();
            let err = crate::thread::with_interrupted_for_test(|| {
                if compiled_loop {
                    i.run("main", vec![])
                } else {
                    i.run_seed("main", vec![])
                }
            })
            .unwrap_err();
            assert!(
                matches!(err, VmError::Interrupted),
                "engine compiled={compiled_loop}: {err:?}"
            );
            assert_eq!(
                i.stats().instructions(),
                INTERRUPT_CHECK_EVERY,
                "engine compiled={compiled_loop} stopped at the first safepoint"
            );
        }
    }
}
