use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use jmp_obs::Profiler;

use super::image::{ClassImage, Insn, Value, OPCODE_COUNT, OPCODE_NAMES, OPCODE_WEIGHTS};
use super::verify::verify;
use crate::error::VmError;
use crate::thread::check_interrupt;
use crate::Result;

/// The runtime services an interpreted class may invoke via
/// [`Insn::CallNative`].
///
/// Implementations perform the ordinary security checks — when the host is
/// consulted, the interpreted class's protection domain is on the caller's
/// stack (the host runs inside `Class::call`), so stack inspection sees the
/// mobile code and a `SecurityException` propagates as a [`VmError`].
pub trait NativeHost: Send + Sync {
    /// Invokes the native operation `name` with `args` (in call order).
    ///
    /// # Errors
    ///
    /// [`VmError::Trap`] for unknown natives or bad arguments;
    /// [`VmError::Security`] for denied operations; any other [`VmError`]
    /// the operation raises.
    fn invoke(&self, name: &str, args: Vec<Value>) -> Result<Value>;
}

/// A host that provides only the pure stdlib natives
/// ([`invoke_pure`](super::invoke_pure)); anything else traps. Useful for
/// pure-compute images and for tests.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoNatives;

impl NativeHost for NoNatives {
    fn invoke(&self, name: &str, args: Vec<Value>) -> Result<Value> {
        match super::stdlib::invoke_pure(name, &args) {
            Some(result) => result,
            None => Err(VmError::trap(format!("no such native: {name}"))),
        }
    }
}

/// Execution counters, for the interpreter benches (experiment A3).
#[derive(Debug, Default)]
pub struct InterpStats {
    instructions: AtomicU64,
    native_calls: AtomicU64,
    method_calls: AtomicU64,
}

impl InterpStats {
    /// Instructions executed so far.
    pub fn instructions(&self) -> u64 {
        self.instructions.load(Ordering::Relaxed)
    }

    /// Native invocations so far.
    pub fn native_calls(&self) -> u64 {
        self.native_calls.load(Ordering::Relaxed)
    }

    /// Intra-class method calls so far.
    pub fn method_calls(&self) -> u64 {
        self.method_calls.load(Ordering::Relaxed)
    }
}

/// How often the interpreter polls for interruption (in instructions).
/// Doubles as the profiler's safepoint: the per-opcode tallies
/// accumulated in [`ProfTally`] re-read the accounting switch here and
/// are pushed to the [`Profiler`] every
/// [`PROFILE_FLUSH_SAFEPOINTS`]th visit.
const INTERRUPT_CHECK_EVERY: u64 = 1024;

/// Per-run opcode tally, flushed to the VM [`Profiler`] at safepoints.
///
/// The hot dispatch loop pays one branchless masked array add per
/// instruction (with a zero addend while accounting is off — `active` is
/// re-read from the profiler only at safepoints, so toggles take effect
/// within `INTERRUPT_CHECK_EVERY` instructions). Batch wall time is
/// apportioned across the batch's opcodes by the profiler using the
/// installed weight model.
struct ProfTally {
    profiler: Option<Profiler>,
    app: Option<u64>,
    active: bool,
    counts: [u64; OPCODE_COUNT],
    safepoints: u32,
    started: Instant,
}

/// The batch is pushed every Nth safepoint (4 × 1024 instructions), not
/// at every one: `record_block`'s locks and apportionment are the
/// dominant accounting cost, and amortizing them 4× keeps the hot-loop
/// overhead comfortably inside the ≤5% budget. The accounting switch is
/// still re-read at *every* safepoint, so toggle latency stays at
/// `INTERRUPT_CHECK_EVERY` instructions.
const PROFILE_FLUSH_SAFEPOINTS: u32 = 4;

// `tally` masks the opcode index instead of bounds-checking it.
const _: () = assert!(OPCODE_COUNT.is_power_of_two());

impl ProfTally {
    /// Resolves the profiler: an explicit one (benches, embedding) wins,
    /// otherwise the ambient VM's. Installs the opcode name/weight model on
    /// first contact (first-wins, idempotent).
    fn new(explicit: Option<&Profiler>) -> ProfTally {
        let profiler = explicit
            .cloned()
            .or_else(|| crate::Vm::current().map(|vm| vm.obs().profiler().clone()));
        let app = crate::thread::current_app_context().map(|ctx| ctx.app_id());
        let active = match &profiler {
            Some(p) => {
                p.install_model(&OPCODE_NAMES, &OPCODE_WEIGHTS);
                p.accounting_enabled()
            }
            None => false,
        };
        ProfTally {
            profiler,
            app,
            active,
            counts: [0; OPCODE_COUNT],
            safepoints: 0,
            started: Instant::now(),
        }
    }

    /// The hot-path increment: one branchless masked array add. The
    /// addend is 0 while accounting is off, so an inactive tally stays
    /// all-zero and the safepoint flush skips it.
    #[inline]
    fn tally(&mut self, opcode: usize) {
        self.counts[opcode & (OPCODE_COUNT - 1)] += self.active as u64;
    }

    /// Safepoint: re-read the accounting switch, and push the batch on
    /// every [`PROFILE_FLUSH_SAFEPOINTS`]th visit.
    fn at_safepoint(&mut self) {
        if self.profiler.is_some() {
            self.safepoints = self.safepoints.wrapping_add(1);
            if self.safepoints.is_multiple_of(PROFILE_FLUSH_SAFEPOINTS) {
                self.flush();
            }
            self.active = self
                .profiler
                .as_ref()
                .is_some_and(Profiler::accounting_enabled);
        }
    }

    /// Pushes the accumulated batch (if any) to the profiler and restarts
    /// the batch timer.
    fn flush(&mut self) {
        if self.counts.iter().any(|&c| c > 0) {
            let elapsed = self.started.elapsed().as_nanos() as u64;
            if let Some(profiler) = &self.profiler {
                profiler.record_block(self.app, &self.counts, elapsed);
            }
            self.counts = [0; OPCODE_COUNT];
        }
        self.started = Instant::now();
    }

    fn profiler(&self) -> Option<&Profiler> {
        self.profiler.as_ref()
    }
}

/// Maximum intra-class call depth. Interpreted calls consume host stack
/// frames, so this is sized to stay well inside a default 2 MiB thread stack
/// even in unoptimized builds.
const MAX_CALL_DEPTH: usize = 64;

/// The `jbc` interpreter for one verified [`ClassImage`].
///
/// Construction verifies the image; [`Interpreter::run`] executes a method.
/// Interpreted code is preemptible: every `INTERRUPT_CHECK_EVERY` (1024)
/// instructions the thread's interruption flag is polled, so a runaway
/// applet is still stoppable by application teardown — something native
/// code can only promise cooperatively. An optional *fuel* bound aborts
/// execution after a fixed instruction budget.
pub struct Interpreter {
    image: Arc<ClassImage>,
    host: Arc<dyn NativeHost>,
    stats: InterpStats,
    fuel: Option<u64>,
    profiler: Option<Profiler>,
}

impl std::fmt::Debug for Interpreter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Interpreter")
            .field("class", &self.image.name)
            .field("fuel", &self.fuel)
            .field("instructions", &self.stats.instructions())
            .finish()
    }
}

impl Interpreter {
    /// Creates an interpreter over `image`, verifying it first.
    ///
    /// # Errors
    ///
    /// [`VmError::Verification`] if the image is rejected.
    pub fn new(image: Arc<ClassImage>, host: Arc<dyn NativeHost>) -> Result<Interpreter> {
        verify(&image)?;
        Ok(Interpreter {
            image,
            host,
            stats: InterpStats::default(),
            fuel: None,
            profiler: None,
        })
    }

    /// Limits execution to `fuel` instructions per [`Interpreter::run`]
    /// call chain; exceeding it traps.
    pub fn with_fuel(mut self, fuel: u64) -> Interpreter {
        self.fuel = Some(fuel);
        self
    }

    /// Directs opcode accounting and stack sampling to `profiler` instead
    /// of the ambient VM's ([`Vm::current`](crate::Vm::current)) — for
    /// benches and embedding without a VM.
    pub fn with_profiler(mut self, profiler: Profiler) -> Interpreter {
        self.profiler = Some(profiler);
        self
    }

    /// Execution counters.
    pub fn stats(&self) -> &InterpStats {
        &self.stats
    }

    /// The class image being interpreted.
    pub fn image(&self) -> &Arc<ClassImage> {
        &self.image
    }

    /// Runs `method` with `args`.
    ///
    /// # Errors
    ///
    /// [`VmError::Trap`] on runtime faults (unknown method, type mismatch,
    /// division by zero, fuel exhaustion, call-depth overflow);
    /// [`VmError::Interrupted`] if the thread is interrupted mid-run; plus
    /// anything the [`NativeHost`] raises.
    pub fn run(&self, method: &str, args: Vec<Value>) -> Result<Value> {
        let mut budget = self.fuel;
        let mut prof = ProfTally::new(self.profiler.as_ref());
        let result = self.run_method(method, args, 0, &mut budget, &mut prof);
        prof.flush();
        result
    }

    fn run_method(
        &self,
        method: &str,
        args: Vec<Value>,
        depth: usize,
        budget: &mut Option<u64>,
        prof: &mut ProfTally,
    ) -> Result<Value> {
        if depth >= MAX_CALL_DEPTH {
            return Err(VmError::trap(format!(
                "call depth exceeds {MAX_CALL_DEPTH}"
            )));
        }
        let m = self
            .image
            .method(method)
            .ok_or_else(|| VmError::trap(format!("no such method: {method}")))?;
        if args.len() != usize::from(m.params) {
            return Err(VmError::trap(format!(
                "method {method} takes {} args, got {}",
                m.params,
                args.len()
            )));
        }
        let mut locals = vec![Value::Null; usize::from(m.locals)];
        locals[..args.len()].clone_from_slice(&args);
        // Publish "Class.method" to the sampling profiler for the duration
        // of this frame (no-op when sampling is off or no profiler exists).
        let _loc = match prof.profiler() {
            Some(p) if p.sampling_enabled() => Some(crate::profloc::frame(
                &format!("{}.{}", self.image.name, m.name),
                Some(p),
            )),
            _ => None,
        };
        let mut stack: Vec<Value> = Vec::with_capacity(8);
        let mut pc: usize = 0;
        loop {
            let count = self.stats.instructions.fetch_add(1, Ordering::Relaxed) + 1;
            if count.is_multiple_of(INTERRUPT_CHECK_EVERY) {
                prof.at_safepoint();
                check_interrupt()?;
            }
            if let Some(fuel) = budget {
                if *fuel == 0 {
                    return Err(VmError::trap("fuel exhausted"));
                }
                *fuel -= 1;
            }
            // The verifier guarantees pc validity and stack discipline; the
            // `expect`s below are unreachable for verified images.
            let insn = &m.code[pc];
            pc += 1;
            prof.tally(insn.opcode());
            match insn {
                Insn::PushInt(v) => stack.push(Value::Int(*v)),
                Insn::PushStr(s) => stack.push(Value::str(s)),
                Insn::PushBool(b) => stack.push(Value::Bool(*b)),
                Insn::PushNull => stack.push(Value::Null),
                Insn::Load(slot) => stack.push(locals[usize::from(*slot)].clone()),
                Insn::Store(slot) => {
                    locals[usize::from(*slot)] = pop(&mut stack)?;
                }
                Insn::Pop => {
                    pop(&mut stack)?;
                }
                Insn::Dup => {
                    let top = stack
                        .last()
                        .cloned()
                        .ok_or_else(|| VmError::trap("dup on empty stack"))?;
                    stack.push(top);
                }
                Insn::Swap => {
                    let a = pop(&mut stack)?;
                    let b = pop(&mut stack)?;
                    stack.push(a);
                    stack.push(b);
                }
                Insn::Add => binary_int(&mut stack, |a, b| a.wrapping_add(b))?,
                Insn::Sub => binary_int(&mut stack, |a, b| a.wrapping_sub(b))?,
                Insn::Mul => binary_int(&mut stack, |a, b| a.wrapping_mul(b))?,
                Insn::Div => checked_div(&mut stack, false)?,
                Insn::Rem => checked_div(&mut stack, true)?,
                Insn::Neg => {
                    let v = pop_int(&mut stack)?;
                    stack.push(Value::Int(v.wrapping_neg()));
                }
                Insn::Concat => {
                    let b = pop(&mut stack)?;
                    let a = pop(&mut stack)?;
                    stack.push(Value::str(format!(
                        "{}{}",
                        a.display_string(),
                        b.display_string()
                    )));
                }
                Insn::Eq => binary_cmp(&mut stack, |a, b| a == b)?,
                Insn::Ne => binary_cmp(&mut stack, |a, b| a != b)?,
                Insn::Lt => binary_int_cmp(&mut stack, |a, b| a < b)?,
                Insn::Le => binary_int_cmp(&mut stack, |a, b| a <= b)?,
                Insn::Gt => binary_int_cmp(&mut stack, |a, b| a > b)?,
                Insn::Ge => binary_int_cmp(&mut stack, |a, b| a >= b)?,
                Insn::And => binary_bool(&mut stack, |a, b| a && b)?,
                Insn::Or => binary_bool(&mut stack, |a, b| a || b)?,
                Insn::Not => {
                    let v = pop(&mut stack)?;
                    stack.push(Value::Bool(!v.is_truthy()));
                }
                Insn::Jump(t) => pc = usize::from(*t),
                Insn::JumpIfFalse(t) => {
                    if !pop(&mut stack)?.is_truthy() {
                        pc = usize::from(*t);
                    }
                }
                Insn::JumpIfTrue(t) => {
                    if pop(&mut stack)?.is_truthy() {
                        pc = usize::from(*t);
                    }
                }
                Insn::Call {
                    method: callee,
                    argc,
                } => {
                    self.stats.method_calls.fetch_add(1, Ordering::Relaxed);
                    let mut call_args = split_args(&mut stack, *argc)?;
                    call_args.reverse();
                    let result = self.run_method(callee, call_args, depth + 1, budget, prof)?;
                    stack.push(result);
                }
                Insn::CallNative { name, argc } => {
                    self.stats.native_calls.fetch_add(1, Ordering::Relaxed);
                    let mut call_args = split_args(&mut stack, *argc)?;
                    call_args.reverse();
                    let result = self.host.invoke(name, call_args)?;
                    stack.push(result);
                }
                Insn::Return => return Ok(Value::Null),
                Insn::ReturnValue => return pop(&mut stack),
            }
        }
    }
}

fn pop(stack: &mut Vec<Value>) -> Result<Value> {
    stack
        .pop()
        .ok_or_else(|| VmError::trap("operand stack underflow"))
}

fn pop_int(stack: &mut Vec<Value>) -> Result<i64> {
    match pop(stack)? {
        Value::Int(v) => Ok(v),
        other => Err(VmError::trap(format!("expected int, got {other}"))),
    }
}

fn binary_int(stack: &mut Vec<Value>, f: impl Fn(i64, i64) -> i64) -> Result<()> {
    let b = pop_int(stack)?;
    let a = pop_int(stack)?;
    stack.push(Value::Int(f(a, b)));
    Ok(())
}

fn checked_div(stack: &mut Vec<Value>, rem: bool) -> Result<()> {
    let b = pop_int(stack)?;
    let a = pop_int(stack)?;
    if b == 0 {
        return Err(VmError::trap("division by zero"));
    }
    stack.push(Value::Int(if rem {
        a.wrapping_rem(b)
    } else {
        a.wrapping_div(b)
    }));
    Ok(())
}

fn binary_int_cmp(stack: &mut Vec<Value>, f: impl Fn(i64, i64) -> bool) -> Result<()> {
    let b = pop_int(stack)?;
    let a = pop_int(stack)?;
    stack.push(Value::Bool(f(a, b)));
    Ok(())
}

fn binary_cmp(stack: &mut Vec<Value>, f: impl Fn(&Value, &Value) -> bool) -> Result<()> {
    let b = pop(stack)?;
    let a = pop(stack)?;
    stack.push(Value::Bool(f(&a, &b)));
    Ok(())
}

fn binary_bool(stack: &mut Vec<Value>, f: impl Fn(bool, bool) -> bool) -> Result<()> {
    let b = pop(stack)?.is_truthy();
    let a = pop(stack)?.is_truthy();
    stack.push(Value::Bool(f(a, b)));
    Ok(())
}

fn split_args(stack: &mut Vec<Value>, argc: u8) -> Result<Vec<Value>> {
    let mut args = Vec::with_capacity(usize::from(argc));
    for _ in 0..argc {
        args.push(pop(stack)?);
    }
    Ok(args)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::image::MethodImage;
    use parking_lot::Mutex;

    fn interp(image: ClassImage) -> Interpreter {
        Interpreter::new(Arc::new(image), Arc::new(NoNatives)).unwrap()
    }

    fn single(code: Vec<Insn>, params: u8, locals: u8) -> ClassImage {
        ClassImage {
            name: "T".into(),
            methods: vec![MethodImage {
                name: "main".into(),
                params,
                locals,
                code,
            }],
        }
    }

    #[test]
    fn arithmetic() {
        let i = interp(single(
            vec![
                Insn::PushInt(7),
                Insn::PushInt(3),
                Insn::Mul, // 21
                Insn::PushInt(1),
                Insn::Sub, // 20
                Insn::PushInt(6),
                Insn::Div, // 3
                Insn::ReturnValue,
            ],
            0,
            0,
        ));
        assert_eq!(i.run("main", vec![]).unwrap(), Value::Int(3));
    }

    #[test]
    fn division_by_zero_traps() {
        let i = interp(single(
            vec![
                Insn::PushInt(1),
                Insn::PushInt(0),
                Insn::Div,
                Insn::ReturnValue,
            ],
            0,
            0,
        ));
        assert!(matches!(
            i.run("main", vec![]).unwrap_err(),
            VmError::Trap { .. }
        ));
    }

    #[test]
    fn loop_sums_one_to_ten() {
        // locals: 0 = i, 1 = sum
        let code = vec![
            Insn::PushInt(1),
            Insn::Store(0), // i = 1
            Insn::PushInt(0),
            Insn::Store(1), // sum = 0
            Insn::Load(0),  // 4: loop head
            Insn::PushInt(10),
            Insn::Le,
            Insn::JumpIfFalse(17),
            Insn::Load(1),
            Insn::Load(0),
            Insn::Add,
            Insn::Store(1),
            Insn::Load(0),
            Insn::PushInt(1),
            Insn::Add,
            Insn::Store(0),
            Insn::Jump(4),
            Insn::Load(1), // 17
            Insn::ReturnValue,
        ];
        let i = interp(single(code, 0, 2));
        assert_eq!(i.run("main", vec![]).unwrap(), Value::Int(55));
        assert!(i.stats().instructions() > 50);
    }

    #[test]
    fn method_calls_pass_args_in_order() {
        let image = ClassImage {
            name: "T".into(),
            methods: vec![
                MethodImage {
                    name: "main".into(),
                    params: 0,
                    locals: 0,
                    code: vec![
                        Insn::PushInt(10),
                        Insn::PushInt(3),
                        Insn::Call {
                            method: "sub".into(),
                            argc: 2,
                        },
                        Insn::ReturnValue,
                    ],
                },
                MethodImage {
                    name: "sub".into(),
                    params: 2,
                    locals: 2,
                    code: vec![Insn::Load(0), Insn::Load(1), Insn::Sub, Insn::ReturnValue],
                },
            ],
        };
        let i = interp(image);
        assert_eq!(i.run("main", vec![]).unwrap(), Value::Int(7));
        assert_eq!(i.stats().method_calls(), 1);
    }

    #[test]
    fn recursion_with_depth_limit() {
        let image = ClassImage {
            name: "T".into(),
            methods: vec![MethodImage {
                name: "forever".into(),
                params: 0,
                locals: 0,
                code: vec![
                    Insn::Call {
                        method: "forever".into(),
                        argc: 0,
                    },
                    Insn::ReturnValue,
                ],
            }],
        };
        let i = interp(image);
        let err = i.run("forever", vec![]).unwrap_err();
        assert!(err.to_string().contains("call depth"));
    }

    #[test]
    fn fuel_bounds_runaway_code() {
        let i = Interpreter::new(
            Arc::new(single(vec![Insn::Jump(0)], 0, 0)),
            Arc::new(NoNatives),
        )
        .unwrap()
        .with_fuel(10_000);
        let err = i.run("main", vec![]).unwrap_err();
        assert!(err.to_string().contains("fuel"));
    }

    #[test]
    fn natives_receive_args_in_call_order() {
        struct Recorder(Mutex<Vec<(String, Vec<Value>)>>);
        impl NativeHost for Recorder {
            fn invoke(&self, name: &str, args: Vec<Value>) -> Result<Value> {
                self.0.lock().push((name.to_string(), args));
                Ok(Value::Int(99))
            }
        }
        let host = Arc::new(Recorder(Mutex::new(Vec::new())));
        let image = single(
            vec![
                Insn::PushStr("hello".into()),
                Insn::PushInt(5),
                Insn::CallNative {
                    name: "print2".into(),
                    argc: 2,
                },
                Insn::ReturnValue,
            ],
            0,
            0,
        );
        let i =
            Interpreter::new(Arc::new(image), Arc::clone(&host) as Arc<dyn NativeHost>).unwrap();
        assert_eq!(i.run("main", vec![]).unwrap(), Value::Int(99));
        let calls = host.0.lock();
        assert_eq!(calls.len(), 1);
        assert_eq!(calls[0].0, "print2");
        assert_eq!(calls[0].1, vec![Value::str("hello"), Value::Int(5)]);
        assert_eq!(i.stats().native_calls(), 1);
    }

    #[test]
    fn unknown_native_traps() {
        let i = interp(single(
            vec![
                Insn::CallNative {
                    name: "missing".into(),
                    argc: 0,
                },
                Insn::ReturnValue,
            ],
            0,
            0,
        ));
        assert!(i
            .run("main", vec![])
            .unwrap_err()
            .to_string()
            .contains("missing"));
    }

    #[test]
    fn string_ops() {
        let i = interp(single(
            vec![
                Insn::PushStr("x=".into()),
                Insn::PushInt(42),
                Insn::Concat,
                Insn::ReturnValue,
            ],
            0,
            0,
        ));
        assert_eq!(i.run("main", vec![]).unwrap(), Value::str("x=42"));
    }

    #[test]
    fn comparisons_and_bools() {
        let i = interp(single(
            vec![
                Insn::PushInt(3),
                Insn::PushInt(5),
                Insn::Lt, // true
                Insn::PushBool(false),
                Insn::Or,  // true
                Insn::Not, // false
                Insn::ReturnValue,
            ],
            0,
            0,
        ));
        assert_eq!(i.run("main", vec![]).unwrap(), Value::Bool(false));
    }

    #[test]
    fn wrong_arg_count_traps() {
        let i = interp(single(vec![Insn::Return], 2, 2));
        assert!(i
            .run("main", vec![Value::Int(1)])
            .unwrap_err()
            .to_string()
            .contains("takes 2"));
    }

    fn sum_loop() -> Vec<Insn> {
        // locals: 0 = i, 1 = sum
        vec![
            Insn::PushInt(1),
            Insn::Store(0),
            Insn::PushInt(0),
            Insn::Store(1),
            Insn::Load(0), // 4: loop head
            Insn::PushInt(500),
            Insn::Le,
            Insn::JumpIfFalse(17),
            Insn::Load(1),
            Insn::Load(0),
            Insn::Add,
            Insn::Store(1),
            Insn::Load(0),
            Insn::PushInt(1),
            Insn::Add,
            Insn::Store(0),
            Insn::Jump(4),
            Insn::Load(1), // 17
            Insn::ReturnValue,
        ]
    }

    #[test]
    fn opcode_accounting_bills_an_explicit_profiler() {
        let profiler = jmp_obs::Profiler::new();
        let i = interp(single(sum_loop(), 0, 2)).with_profiler(profiler.clone());
        assert_eq!(i.run("main", vec![]).unwrap(), Value::Int(125_250));
        let report = profiler.report();
        // Every executed instruction is tallied (accounting was on for the
        // whole run, so the profiler and the raw stats counter agree).
        assert_eq!(report.vm.instructions, i.stats().instructions());
        let add = report
            .vm
            .opcodes
            .iter()
            .find(|o| o.opcode == "add")
            .expect("add opcode accounted");
        assert!(add.count >= 500, "two adds per iteration: {}", add.count);
        assert!(report.flushes >= 1);
    }

    #[test]
    fn accounting_toggle_takes_effect_at_safepoints() {
        let profiler = jmp_obs::Profiler::new();
        profiler.set_accounting(false);
        let i = interp(single(sum_loop(), 0, 2)).with_profiler(profiler.clone());
        i.run("main", vec![]).unwrap();
        assert_eq!(profiler.report().vm.instructions, 0);
        profiler.set_accounting(true);
        i.run("main", vec![]).unwrap();
        assert!(profiler.report().vm.instructions > 0);
    }

    #[test]
    fn interpreted_frames_reach_the_sampler() {
        // Sample from *inside* a native call, while the interpreted frames
        // are live and published — deterministic, no cross-thread timing.
        struct SampleHost(jmp_obs::Profiler);
        impl NativeHost for SampleHost {
            fn invoke(&self, _name: &str, _args: Vec<Value>) -> Result<Value> {
                self.0.sample_once(1_000);
                Ok(Value::Null)
            }
        }
        let profiler = jmp_obs::Profiler::new();
        let image = ClassImage {
            name: "Deep".into(),
            methods: vec![
                MethodImage {
                    name: "main".into(),
                    params: 0,
                    locals: 0,
                    code: vec![
                        Insn::Call {
                            method: "leaf".into(),
                            argc: 0,
                        },
                        Insn::ReturnValue,
                    ],
                },
                MethodImage {
                    name: "leaf".into(),
                    params: 0,
                    locals: 0,
                    code: vec![
                        Insn::CallNative {
                            name: "snap".into(),
                            argc: 0,
                        },
                        Insn::ReturnValue,
                    ],
                },
            ],
        };
        let i = Interpreter::new(Arc::new(image), Arc::new(SampleHost(profiler.clone())))
            .unwrap()
            .with_profiler(profiler.clone());
        i.run("main", vec![]).unwrap();
        let report = profiler.report();
        assert!(
            report.vm.stacks.keys().any(|k| k == "Deep.main;Deep.leaf"),
            "stacks: {:?}",
            report.vm.stacks.keys().collect::<Vec<_>>()
        );
        crate::profloc::clear();
    }

    #[test]
    fn interpreter_rejects_unverifiable_images() {
        let bad = single(vec![Insn::Add, Insn::Return], 0, 0);
        assert!(matches!(
            Interpreter::new(Arc::new(bad), Arc::new(NoNatives)).unwrap_err(),
            VmError::Verification { .. }
        ));
    }
}
