//! `jbc`: a small, verified stack bytecode for *mobile code*.
//!
//! The paper's environment executes untrusted applets fetched over the
//! network (paper §1, §6.3). In this reproduction, trusted local code is
//! native Rust registered as class material, but mobile code must remain
//! *data*: an applet ships as a serializable [`ClassImage`], is defined by
//! an applet class loader (acquiring a protection domain for its network
//! code source), passes the [`verify`] pass, and is then executed by the
//! [`Interpreter`] — which reaches the outside world only through
//! [`NativeHost`] calls, each of which performs the ordinary security-manager
//! checks with the applet's domain on the stack.
//!
//! The instruction set is deliberately small (integers, booleans, strings,
//! arithmetic, comparisons, jumps, intra-class static calls, native calls)
//! — enough to write real applets, small enough to verify exhaustively.

mod asm;
mod compile;
pub mod difftest;
mod image;
mod machine;
mod stdlib;
mod verify;

pub use asm::assemble;
pub use compile::CompiledImage;
pub use image::{
    ClassImage, Insn, MethodImage, Value, BASE_OPCODE_COUNT, OPCODE_COUNT, OPCODE_NAMES,
    OPCODE_WEIGHTS,
};
pub use machine::{InterpStats, Interpreter, NativeHost, NoNatives};
pub use stdlib::invoke_pure;
pub use verify::verify;
