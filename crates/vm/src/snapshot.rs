//! Checkpoint images for quiesced interpreter runs.
//!
//! The multi-processing runtime makes an application's entire state a
//! movable object (ROADMAP item 2, and the migration primitive the
//! *Remote Playground* pool needs): the interpreter parks at a safepoint
//! — an op boundary where no instruction is half-charged — and serializes
//! its continuation as an [`InterpSnapshot`]. The snapshot embeds the
//! mobile-code [`ClassImage`] itself (class-define-time compilation is
//! deterministic, so the restoring VM recompiles to the identical op
//! stream), every live frame, the value arena, the remaining fuel, and the
//! cumulative instruction accounting — enough for a resumed run to produce
//! byte-identical results *and* identical instruction counts, which the
//! differential corpus in `interp::difftest` pins down.
//!
//! The byte format is versioned: a fixed magic + version header followed
//! by a self-describing JSON body. Decoders reject unknown versions rather
//! than guessing.

use serde::{Deserialize, Serialize};

use crate::error::VmError;
use crate::interp::{ClassImage, Value};

/// Current snapshot wire-format version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Magic prefix on every serialized snapshot.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"JMPSNAP\0";

/// One suspended interpreter frame: indices into the deterministically
/// recompiled [`CompiledImage`](crate::interp::CompiledImage).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameSnap {
    /// Method index of the caller frame.
    pub method: u32,
    /// Resume pc inside the caller (the op after its CALL).
    pub pc: u32,
    /// Arena base slot of the caller frame.
    pub base: u32,
}

/// A parked interpreter continuation: everything needed to resume the run
/// on this VM or another one with identical observable behaviour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InterpSnapshot {
    /// Wire-format version ([`SNAPSHOT_VERSION`]).
    pub version: u32,
    /// The mobile-code class image; recompiled (deterministically) on
    /// restore, so op-level pcs and method indices stay valid.
    pub image: ClassImage,
    /// The entry method name the run was started with.
    pub entry: String,
    /// Suspended caller frames, outermost first.
    pub frames: Vec<FrameSnap>,
    /// Method index of the innermost (executing) frame.
    pub method: u32,
    /// The op index the resumed run dispatches next (the parked op:
    /// uncharged and unexecuted at park time).
    pub pc: u32,
    /// Arena base slot of the executing frame.
    pub base: u32,
    /// Arena operand-stack top of the executing frame.
    pub sp: u32,
    /// The value arena: locals and operand stacks of every live frame.
    pub arena: Vec<Value>,
    /// Remaining fuel, if the run was fuel-limited.
    pub fuel: Option<u64>,
    /// Cumulative wire instructions retired before the park; pre-seeded
    /// into the resuming interpreter so safepoint cadence and final
    /// instruction counts match an unparked run exactly.
    pub instructions: u64,
    /// Cumulative dispatch count at park.
    pub dispatches: u64,
    /// Cumulative method calls at park.
    pub method_calls: u64,
    /// Cumulative native calls at park.
    pub native_calls: u64,
}

impl InterpSnapshot {
    /// Serializes to the versioned byte format (magic + version header,
    /// JSON body).
    ///
    /// # Errors
    ///
    /// [`VmError::Io`] if encoding fails.
    pub fn to_bytes(&self) -> Result<Vec<u8>, VmError> {
        let body = serde_json::to_vec(self).map_err(|e| VmError::Io {
            message: format!("snapshot encode: {e}"),
        })?;
        let mut out = Vec::with_capacity(SNAPSHOT_MAGIC.len() + 4 + body.len());
        out.extend_from_slice(SNAPSHOT_MAGIC);
        out.extend_from_slice(&self.version.to_le_bytes());
        out.extend_from_slice(&body);
        Ok(out)
    }

    /// Decodes a snapshot produced by [`InterpSnapshot::to_bytes`],
    /// rejecting bad magic and unknown versions.
    ///
    /// # Errors
    ///
    /// [`VmError::Io`] on a malformed image or unsupported version.
    pub fn from_bytes(bytes: &[u8]) -> Result<InterpSnapshot, VmError> {
        let header = SNAPSHOT_MAGIC.len() + 4;
        if bytes.len() < header || &bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
            return Err(VmError::Io {
                message: "snapshot decode: bad magic".into(),
            });
        }
        let mut ver = [0u8; 4];
        ver.copy_from_slice(&bytes[SNAPSHOT_MAGIC.len()..header]);
        let version = u32::from_le_bytes(ver);
        if version != SNAPSHOT_VERSION {
            return Err(VmError::Io {
                message: format!(
                    "snapshot decode: version {version} unsupported (expected {SNAPSHOT_VERSION})"
                ),
            });
        }
        let snap: InterpSnapshot =
            serde_json::from_slice(&bytes[header..]).map_err(|e| VmError::Io {
                message: format!("snapshot decode: {e}"),
            })?;
        if snap.version != version {
            return Err(VmError::Io {
                message: "snapshot decode: header/body version mismatch".into(),
            });
        }
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::assemble;

    fn snap() -> InterpSnapshot {
        let image = assemble(
            "class Loop\nmethod main/0 locals=1\n  push_int 0\n  store 0\n  load 0\n  return_value\n",
        )
        .expect("assembles");
        InterpSnapshot {
            version: SNAPSHOT_VERSION,
            image,
            entry: "main".into(),
            frames: vec![FrameSnap {
                method: 0,
                pc: 2,
                base: 0,
            }],
            method: 0,
            pc: 1,
            base: 0,
            sp: 3,
            arena: vec![Value::Int(7), Value::Null, Value::str("hello")],
            fuel: Some(1000),
            instructions: 2048,
            dispatches: 1800,
            method_calls: 1,
            native_calls: 0,
        }
    }

    #[test]
    fn snapshot_bytes_roundtrip() {
        let s = snap();
        let bytes = s.to_bytes().unwrap();
        assert_eq!(&bytes[..SNAPSHOT_MAGIC.len()], SNAPSHOT_MAGIC);
        let back = InterpSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn snapshot_rejects_bad_magic_and_version() {
        let s = snap();
        let mut bytes = s.to_bytes().unwrap();
        assert!(InterpSnapshot::from_bytes(&bytes[..4]).is_err());
        bytes[0] = b'X';
        assert!(InterpSnapshot::from_bytes(&bytes).is_err());
        let mut vbytes = s.to_bytes().unwrap();
        vbytes[SNAPSHOT_MAGIC.len()] = 99;
        let err = InterpSnapshot::from_bytes(&vbytes).unwrap_err();
        assert!(err.to_string().contains("version"));
    }
}
