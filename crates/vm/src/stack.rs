//! Per-thread frame stacks: the explicit call-chain model that stack
//! inspection runs against.
//!
//! A real JVM walks its interpreter stack to find the protection domain of
//! every method on the call chain (paper §3.3). Our runtime executes trusted
//! library code natively, so the call chain is modeled explicitly: code that
//! "belongs to a class" runs inside [`call_as`], which pushes a frame
//! carrying the class's [`ProtectionDomain`]; the `jbc` interpreter pushes a
//! frame per interpreted method call. [`current_access_context`] snapshots
//! the stack (newest first) for the
//! [`AccessController`](jmp_security::AccessController).
//!
//! [`do_privileged`] reproduces JDK 1.2 `AccessController.doPrivileged`: it
//! re-pushes the current top domain with the privileged mark, so a check
//! from inside stops walking there — and, crucially for the paper's luring-
//! attack discussion (§5.6), privileged code that *calls into* less trusted
//! code (which pushes its own frame on top) does not lend it any privilege.

use std::cell::RefCell;
use std::sync::Arc;

use jmp_security::{
    AccessContext, ContextFingerprint, DomainEntry, FingerprintBuilder, ProtectionDomain,
};

#[derive(Clone)]
struct Frame {
    class_name: String,
    domain: Arc<ProtectionDomain>,
    privileged: bool,
}

#[derive(Default)]
struct FrameStack {
    /// Oldest first; snapshots reverse into newest-first order.
    frames: Vec<Frame>,
    /// Context captured from the spawning thread (JDK inherited
    /// `AccessControlContext`).
    inherited: Option<Arc<AccessContext>>,
    /// Bumped on every stack mutation; keys `probe_memo` so repeated
    /// fingerprint probes between mutations are O(1).
    generation: u64,
    /// The last probe's `(generation, fingerprint, depth)`. Valid while
    /// `generation` still matches — i.e. until the next push/pop.
    probe_memo: Option<(u64, ContextFingerprint, usize)>,
}

thread_local! {
    static STACK: RefCell<FrameStack> = RefCell::new(FrameStack::default());
}

/// Runs `f` with a stack frame attributing the code to `class_name`
/// executing under `domain`. Pops the frame when `f` returns or panics.
pub fn call_as<R>(class_name: &str, domain: Arc<ProtectionDomain>, f: impl FnOnce() -> R) -> R {
    push(Frame {
        class_name: class_name.to_string(),
        domain,
        privileged: false,
    });
    let _guard = PopGuard(());
    let _loc = crate::profloc::frame(class_name, None);
    f()
}

/// Runs `f` with the current top domain re-pushed as a privileged frame
/// (JDK `AccessController.doPrivileged`). Checks performed inside `f` stop
/// their stack walk at this frame — the caller's callers (and the inherited
/// context) are not consulted.
///
/// On an empty stack this is a no-op wrapper: an empty stack is already
/// fully trusted.
pub fn do_privileged<R>(f: impl FnOnce() -> R) -> R {
    let top = STACK.with(|s| s.borrow().frames.last().cloned());
    match top {
        Some(frame) => {
            push(Frame {
                privileged: true,
                ..frame
            });
            let _guard = PopGuard(());
            f()
        }
        None => f(),
    }
}

fn push(frame: Frame) {
    STACK.with(|s| {
        let mut stack = s.borrow_mut();
        stack.frames.push(frame);
        stack.generation += 1;
    });
}

struct PopGuard(());

impl Drop for PopGuard {
    fn drop(&mut self) {
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            stack.frames.pop();
            stack.generation += 1;
        });
    }
}

/// Snapshots the current thread's protection-domain stack, newest frame
/// first, with the thread's inherited context attached below.
pub fn current_access_context() -> AccessContext {
    STACK.with(|s| {
        let stack = s.borrow();
        let entries: Vec<DomainEntry> = stack
            .frames
            .iter()
            .rev()
            .map(|f| DomainEntry {
                domain: Arc::clone(&f.domain),
                privileged: f.privileged,
            })
            .collect();
        let ctx = AccessContext::from_entries(entries);
        match &stack.inherited {
            Some(parent) => ctx.inherit(Arc::clone(parent)),
            None => ctx,
        }
    })
}

/// Fingerprints the domain set an access check on the current thread would
/// visit, without snapshotting an [`AccessContext`] (no `Arc` clones, no
/// `Vec`). Also returns the full-walk depth, matching
/// [`AccessContext::depth`] on the snapshot [`current_access_context`] would
/// have produced.
///
/// Mirrors [`AccessContext::fingerprint`] exactly, including `doPrivileged`
/// truncation: frames older than a privileged frame — and the inherited
/// context behind them — contribute nothing, so the fast path keys the
/// decision cache on precisely the set the real walk would consult.
///
/// The result is memoized against a per-thread stack generation counter
/// (bumped on every frame push/pop), so back-to-back checks from the same
/// frame — the dominant pattern on hot paths — pay for the walk once.
pub fn probe_fingerprint() -> (ContextFingerprint, usize) {
    STACK.with(|s| {
        let mut stack = s.borrow_mut();
        if let Some((generation, fingerprint, depth)) = stack.probe_memo {
            if generation == stack.generation {
                return (fingerprint, depth);
            }
        }
        let mut builder = FingerprintBuilder::new();
        let mut truncated = false;
        for frame in stack.frames.iter().rev() {
            builder.add(&frame.domain);
            if frame.privileged {
                truncated = true;
                break;
            }
        }
        if !truncated {
            let mut current = stack.inherited.as_deref();
            'walk: while let Some(ctx) = current {
                for entry in ctx.entries() {
                    builder.add(&entry.domain);
                    if entry.privileged {
                        break 'walk;
                    }
                }
                current = ctx.inherited().map(Arc::as_ref);
            }
        }
        let depth = stack.frames.len() + stack.inherited.as_ref().map_or(0, |p| p.depth());
        let fingerprint = builder.fingerprint();
        stack.probe_memo = Some((stack.generation, fingerprint, depth));
        (fingerprint, depth)
    })
}

/// Captures the current context as an `Arc`, suitable for installing as a
/// new thread's inherited context (JDK captures the creating thread's
/// context at `Thread` creation).
pub fn capture_context() -> Arc<AccessContext> {
    Arc::new(current_access_context())
}

/// Installs the inherited context for the current thread. Called by the
/// spawn wrapper before the thread body runs.
pub(crate) fn set_inherited(ctx: Arc<AccessContext>) {
    STACK.with(|s| {
        let mut stack = s.borrow_mut();
        stack.inherited = Some(ctx);
        stack.generation += 1;
    });
}

/// Clears all frame state for the current thread (spawn wrapper teardown).
pub(crate) fn clear() {
    STACK.with(|s| *s.borrow_mut() = FrameStack::default());
}

/// Number of frames on the current thread's stack (diagnostics, benches).
pub fn depth() -> usize {
    STACK.with(|s| s.borrow().frames.len())
}

/// The class name of the newest frame, if any (diagnostics).
pub fn top_class() -> Option<String> {
    STACK.with(|s| s.borrow().frames.last().map(|f| f.class_name.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use jmp_security::{
        AccessController, CodeSource, FileActions, Permission, PermissionCollection,
    };

    fn domain(url: &str, perms: Vec<Permission>) -> Arc<ProtectionDomain> {
        Arc::new(ProtectionDomain::new(
            CodeSource::local(url),
            perms.into_iter().collect::<PermissionCollection>(),
        ))
    }

    fn read_tmp() -> Permission {
        Permission::file("/tmp/x", FileActions::READ)
    }

    #[test]
    fn frames_nest_and_pop() {
        assert_eq!(depth(), 0);
        call_as("A", domain("file:/a", vec![]), || {
            assert_eq!(depth(), 1);
            assert_eq!(top_class().as_deref(), Some("A"));
            call_as("B", domain("file:/b", vec![]), || {
                assert_eq!(depth(), 2);
                assert_eq!(top_class().as_deref(), Some("B"));
            });
            assert_eq!(depth(), 1);
        });
        assert_eq!(depth(), 0);
    }

    #[test]
    fn frames_pop_on_panic() {
        let result = std::panic::catch_unwind(|| {
            call_as("A", domain("file:/a", vec![]), || {
                panic!("boom");
            })
        });
        assert!(result.is_err());
        assert_eq!(depth(), 0);
    }

    #[test]
    fn snapshot_is_newest_first() {
        call_as("Old", domain("file:/old", vec![]), || {
            call_as("New", domain("file:/new", vec![]), || {
                let ctx = current_access_context();
                assert_eq!(ctx.entries().len(), 2);
                assert_eq!(ctx.entries()[0].domain.code_source().url(), "file:/new");
                assert_eq!(ctx.entries()[1].domain.code_source().url(), "file:/old");
            });
        });
    }

    #[test]
    fn untrusted_frame_poisons_checks() {
        let trusted = domain("file:/sys", vec![Permission::All]);
        let untrusted = domain("http://evil", vec![]);
        call_as("Sys", Arc::clone(&trusted), || {
            AccessController::check(&current_access_context(), &read_tmp()).unwrap();
            call_as("Evil", untrusted, || {
                AccessController::check(&current_access_context(), &read_tmp()).unwrap_err();
            });
        });
    }

    #[test]
    fn do_privileged_shields_callers() {
        let trusted = domain("file:/sys", vec![Permission::All]);
        let untrusted = domain("http://evil", vec![]);
        // Untrusted code calls a trusted API; the trusted API asserts its own
        // authority with do_privileged (e.g. the Font class reading font
        // files on behalf of an app that cannot read files itself, §5.6).
        call_as("Evil", untrusted, || {
            call_as("Font", Arc::clone(&trusted), || {
                // Without doPrivileged, the untrusted caller poisons the check.
                AccessController::check(&current_access_context(), &read_tmp()).unwrap_err();
                do_privileged(|| {
                    AccessController::check(&current_access_context(), &read_tmp()).unwrap();
                });
            });
        });
    }

    #[test]
    fn privilege_is_lost_when_calling_back_down() {
        // The luring-attack property (§5.6): privileged code that calls into
        // unprivileged code loses its privileges for that code.
        let trusted = domain("file:/sys", vec![Permission::All]);
        let untrusted = domain("http://evil", vec![]);
        call_as("Font", trusted, || {
            do_privileged(|| {
                AccessController::check(&current_access_context(), &read_tmp()).unwrap();
                call_as("EvilCallback", untrusted, || {
                    AccessController::check(&current_access_context(), &read_tmp()).unwrap_err();
                });
            });
        });
    }

    #[test]
    fn do_privileged_on_empty_stack_is_noop() {
        clear();
        let got = do_privileged(|| 42);
        assert_eq!(got, 42);
        assert_eq!(depth(), 0);
    }

    #[test]
    fn inherited_context_attaches_below() {
        let untrusted = domain("http://evil", vec![]);
        let parent = Arc::new(AccessContext::from_domains(vec![untrusted]));
        set_inherited(Arc::clone(&parent));
        let ctx = current_access_context();
        assert!(ctx.inherited().is_some());
        AccessController::check(&ctx, &read_tmp()).unwrap_err();
        clear();
        AccessController::check(&current_access_context(), &read_tmp()).unwrap();
    }

    #[test]
    fn probe_matches_snapshot_fingerprint() {
        let a = domain("file:/probe/a", vec![Permission::All]);
        let b = domain("file:/probe/b", vec![]);
        call_as("A", a, || {
            call_as("B", b, || {
                let (fp, depth) = probe_fingerprint();
                let ctx = current_access_context();
                assert_eq!(fp, ctx.fingerprint());
                assert_eq!(depth, ctx.depth());
                assert_eq!(fp.unique, 2);
            });
        });
    }

    #[test]
    fn probe_respects_privileged_truncation() {
        let trusted = domain("file:/probe/sys", vec![Permission::All]);
        let untrusted = domain("http://probe/evil", vec![]);
        call_as("Evil", untrusted, || {
            call_as("Font", trusted, || {
                do_privileged(|| {
                    let (fp, depth) = probe_fingerprint();
                    let ctx = current_access_context();
                    assert_eq!(fp, ctx.fingerprint());
                    assert_eq!(depth, ctx.depth());
                    // Only the privileged trusted domain is visible.
                    assert_eq!(fp.unique, 1);
                });
                let (full, _) = probe_fingerprint();
                assert_eq!(full.unique, 2);
            });
        });
    }

    #[test]
    fn probe_covers_inherited_context() {
        let parent = Arc::new(AccessContext::from_domains(vec![domain(
            "http://probe/parent",
            vec![],
        )]));
        set_inherited(parent);
        call_as("Child", domain("file:/probe/child", vec![]), || {
            let (fp, depth) = probe_fingerprint();
            let ctx = current_access_context();
            assert_eq!(fp, ctx.fingerprint());
            assert_eq!(depth, ctx.depth());
            assert_eq!(fp.unique, 2);
        });
        clear();
    }

    #[test]
    fn probe_memo_tracks_stack_mutations() {
        let a = domain("file:/memo/a", vec![Permission::All]);
        let b = domain("file:/memo/b", vec![]);
        call_as("A", a, || {
            let (fp_a, _) = probe_fingerprint();
            // Memoized repeat is identical.
            assert_eq!(probe_fingerprint().0, fp_a);
            call_as("B", b, || {
                let (fp_ab, _) = probe_fingerprint();
                assert_ne!(fp_ab, fp_a, "push must invalidate the probe memo");
            });
            // The pop restored the original visible set.
            assert_eq!(probe_fingerprint().0, fp_a, "pop must invalidate too");
        });
    }

    #[test]
    fn probe_on_empty_stack_reports_unique_zero() {
        clear();
        let (fp, depth) = probe_fingerprint();
        assert_eq!(fp.unique, 0);
        assert_eq!(depth, 0);
    }

    #[test]
    fn capture_context_snapshots() {
        let trusted = domain("file:/sys", vec![Permission::All]);
        let captured = call_as("A", trusted, capture_context);
        // After the frame popped, the captured context still holds it.
        assert_eq!(captured.entries().len(), 1);
        assert_eq!(depth(), 0);
    }
}
