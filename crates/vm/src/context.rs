//! Per-application ownership and resource accounting.
//!
//! The paper's multi-processing model (§2, §4) puts many mutually-suspicious
//! applications in one VM, which makes "which application owns this thread /
//! buffer / queue slot?" the load-bearing question of every layer. Before
//! this module, the answer was derived five different ways (thread→group
//! walks, two runtime hash maps, observability resolvers, queue tags, user
//! lookups). [`AppContext`] is the single ownership record: every VM thread
//! carries an `Arc<AppContext>` set at spawn, and every allocation path
//! charges the context's [`ResourceLedger`].
//!
//! On top of the unified ledger sit **quotas**: a [`ResourceLimits`] table
//! (per-resource ceilings, `u64::MAX` = unlimited) checked at charge time.
//! An over-limit allocation fails with
//! [`VmError::QuotaExceeded`](crate::VmError::QuotaExceeded), is counted
//! (`quota.denied`) and audited through the observability hub, and — only
//! after repeated breaches past the hard-breach threshold — escalates to a
//! termination hook the runtime wires to its reaper. Everything here is
//! lock-free atomics: charge/uncharge sit on the pipe-write and
//! event-enqueue hot paths.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use jmp_obs::ObsHub;
use parking_lot::{Mutex, RwLock};

use crate::error::VmError;
use crate::group::GroupId;
use crate::interp::Value;
use crate::snapshot::InterpSnapshot;

/// The resources the ledger accounts, one atomic slot each.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceKind {
    /// Live VM threads owned by the application.
    Threads,
    /// Bytes currently buffered in the application's pipes.
    PipeBytes,
    /// Events currently queued on the application's event queue.
    QueuedEvents,
    /// Open handles: owned streams plus published shared entries.
    Handles,
    /// Bytes of governed heap: interpreter value arenas and strings,
    /// compiled class-image footprints, pipe ring buffers, and queued
    /// event slots.
    Memory,
}

/// All resource kinds, in display order.
pub const RESOURCE_KINDS: [ResourceKind; 5] = [
    ResourceKind::Threads,
    ResourceKind::PipeBytes,
    ResourceKind::QueuedEvents,
    ResourceKind::Handles,
    ResourceKind::Memory,
];

impl ResourceKind {
    /// Stable dotted name, used in metrics, audit records, policy limit
    /// overrides (`limit.threads:256`), and the shell `ulimit` builtin.
    pub fn as_str(self) -> &'static str {
        match self {
            ResourceKind::Threads => "threads",
            ResourceKind::PipeBytes => "pipe.bytes",
            ResourceKind::QueuedEvents => "queued.events",
            ResourceKind::Handles => "handles",
            ResourceKind::Memory => "memory",
        }
    }

    /// Parses the stable name back to a kind.
    pub fn parse(name: &str) -> Option<ResourceKind> {
        RESOURCE_KINDS.iter().copied().find(|k| k.as_str() == name)
    }

    fn index(self) -> usize {
        match self {
            ResourceKind::Threads => 0,
            ResourceKind::PipeBytes => 1,
            ResourceKind::QueuedEvents => 2,
            ResourceKind::Handles => 3,
            ResourceKind::Memory => 4,
        }
    }

    /// `true` for kinds whose unit is bytes (rendered with KiB/MiB units
    /// by the shell ledger views).
    pub fn is_bytes(self) -> bool {
        matches!(self, ResourceKind::PipeBytes | ResourceKind::Memory)
    }
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Lock-free live-usage accounting, one [`AtomicU64`] per resource.
///
/// The ledger tracks *current* usage, not cumulative totals (those live in
/// the metrics registries). Every charge has a matching uncharge on the
/// release path, so a quiescent application's ledger reads zero — the
/// exactness property the integration tests pin down.
#[derive(Debug, Default)]
pub struct ResourceLedger {
    slots: [AtomicU64; 5],
}

impl ResourceLedger {
    /// Creates an empty ledger.
    pub fn new() -> ResourceLedger {
        ResourceLedger::default()
    }

    /// Current usage of `kind`.
    pub fn get(&self, kind: ResourceKind) -> u64 {
        self.slots[kind.index()].load(Ordering::Relaxed)
    }

    /// Unconditionally records `amount` more of `kind` (no quota check);
    /// returns the new usage. Quota-checked paths go through
    /// [`AppContext::try_charge`] instead.
    pub fn charge(&self, kind: ResourceKind, amount: u64) -> u64 {
        self.slots[kind.index()].fetch_add(amount, Ordering::Relaxed) + amount
    }

    /// Releases `amount` of `kind`, saturating at zero (a stray double
    /// release must not wrap the ledger to `u64::MAX` and wedge the app).
    pub fn uncharge(&self, kind: ResourceKind, amount: u64) {
        let slot = &self.slots[kind.index()];
        let mut current = slot.load(Ordering::Relaxed);
        loop {
            let next = current.saturating_sub(amount);
            match slot.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// `true` if every slot reads zero.
    pub fn is_drained(&self) -> bool {
        RESOURCE_KINDS.iter().all(|&k| self.get(k) == 0)
    }
}

/// Default hard-breach threshold: an application is escalated to the
/// reaper only after this many quota denials. High enough that transient
/// over-limit bursts merely fail, low enough that a hostile loop hammering
/// a quota is eventually terminated rather than audited forever.
pub const DEFAULT_HARD_BREACH_THRESHOLD: u64 = 4096;

/// Per-resource ceilings plus the hard-breach escalation threshold, all
/// atomics so `setLimits` takes effect without locking the hot path.
/// `u64::MAX` means unlimited.
#[derive(Debug)]
pub struct ResourceLimits {
    slots: [AtomicU64; 5],
    hard_breach_threshold: AtomicU64,
}

impl Default for ResourceLimits {
    fn default() -> ResourceLimits {
        ResourceLimits {
            slots: [
                AtomicU64::new(u64::MAX),
                AtomicU64::new(u64::MAX),
                AtomicU64::new(u64::MAX),
                AtomicU64::new(u64::MAX),
                AtomicU64::new(u64::MAX),
            ],
            hard_breach_threshold: AtomicU64::new(DEFAULT_HARD_BREACH_THRESHOLD),
        }
    }
}

impl ResourceLimits {
    /// All-unlimited limits (the quotas-off configuration).
    pub fn unlimited() -> ResourceLimits {
        ResourceLimits::default()
    }

    /// Current ceiling for `kind` (`u64::MAX` = unlimited).
    pub fn get(&self, kind: ResourceKind) -> u64 {
        self.slots[kind.index()].load(Ordering::Relaxed)
    }

    /// Sets the ceiling for `kind`. Takes effect on the next charge; usage
    /// already above the new ceiling is not clawed back, further charges
    /// simply fail.
    pub fn set(&self, kind: ResourceKind, limit: u64) {
        self.slots[kind.index()].store(limit, Ordering::Relaxed);
    }

    /// The number of quota denials after which the owner is escalated to
    /// termination.
    pub fn hard_breach_threshold(&self) -> u64 {
        self.hard_breach_threshold.load(Ordering::Relaxed)
    }

    /// Sets the hard-breach threshold (`u64::MAX` disables escalation).
    pub fn set_hard_breach_threshold(&self, threshold: u64) {
        self.hard_breach_threshold
            .store(threshold, Ordering::Relaxed);
    }
}

/// The termination hook invoked when an application crosses its hard-breach
/// threshold; the runtime wires this to its reaper.
pub type HardBreachHook = Box<dyn Fn(&AppContext) + Send + Sync>;

/// How many freed interpreter arenas the per-app pool keeps for reuse
/// (composes with the interpreter's own `ARENA_POOL_CAP` frame pools).
pub const APP_ARENA_POOL_CAP: usize = 8;

/// The single per-application ownership record: identity (app id, user,
/// root thread group) plus live resource accounting ([`ResourceLedger`])
/// and quotas ([`ResourceLimits`]).
///
/// One context is interned per application by the multi-processing runtime;
/// every thread the application owns carries an `Arc` to it (see
/// [`thread::current_app_context`](crate::thread::current_app_context)),
/// so attribution anywhere in the VM is a pointer load, not a walk.
pub struct AppContext {
    app_id: u64,
    name: String,
    user: RwLock<String>,
    group: GroupId,
    ledger: ResourceLedger,
    limits: ResourceLimits,
    breaches: AtomicU64,
    hub: ObsHub,
    hard_breach_hook: OnceLock<HardBreachHook>,
    escalated: AtomicU64,
    /// VM-wide cumulative counters for the memory dimension, cached at
    /// construction so the (batched) charge path is one `Arc` deref.
    mem_charged: Arc<jmp_obs::Counter>,
    mem_denied: Arc<jmp_obs::Counter>,
    /// Freed interpreter value arenas, kept charged for O(1) reuse; each
    /// entry carries the `Memory` bytes still charged for it.
    arena_pool: Mutex<Vec<(Vec<Value>, u64)>>,
    arena_reuses: AtomicU64,
    /// `Memory` bytes charged to allocations that outlive any single
    /// interpreter run (pooled arenas, class-image footprints). Reclaimed
    /// in one bulk uncharge by [`AppContext::reclaim_memory`] at reap.
    resident: AtomicU64,
    checkpoint_requested: AtomicU64,
    snapshot_slot: Mutex<Option<InterpSnapshot>>,
}

impl fmt::Debug for AppContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AppContext")
            .field("app_id", &self.app_id)
            .field("name", &self.name)
            .field("user", &*self.user.read())
            .field("group", &self.group)
            .finish_non_exhaustive()
    }
}

impl AppContext {
    /// Creates a context for application `app_id` rooted at `group`,
    /// reporting denials through `hub`.
    pub fn new(
        app_id: u64,
        name: impl Into<String>,
        user: impl Into<String>,
        group: GroupId,
        hub: ObsHub,
    ) -> Arc<AppContext> {
        let mem_charged = hub.vm_metrics().counter("memory.charged");
        let mem_denied = hub.vm_metrics().counter("memory.denied");
        Arc::new(AppContext {
            app_id,
            name: name.into(),
            user: RwLock::new(user.into()),
            group,
            ledger: ResourceLedger::new(),
            limits: ResourceLimits::default(),
            breaches: AtomicU64::new(0),
            hub,
            hard_breach_hook: OnceLock::new(),
            escalated: AtomicU64::new(0),
            mem_charged,
            mem_denied,
            arena_pool: Mutex::new(Vec::new()),
            arena_reuses: AtomicU64::new(0),
            resident: AtomicU64::new(0),
            checkpoint_requested: AtomicU64::new(0),
            snapshot_slot: Mutex::new(None),
        })
    }

    /// The application id.
    pub fn app_id(&self) -> u64 {
        self.app_id
    }

    /// The application's display name (its main class).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The user the application currently runs as.
    pub fn user(&self) -> String {
        self.user.read().clone()
    }

    /// Updates the recorded user (mirrors `Application::set_user`).
    pub fn set_user(&self, user: impl Into<String>) {
        *self.user.write() = user.into();
    }

    /// The application's root thread group.
    pub fn group(&self) -> GroupId {
        self.group
    }

    /// The live-usage ledger.
    pub fn ledger(&self) -> &ResourceLedger {
        &self.ledger
    }

    /// The quota table.
    pub fn limits(&self) -> &ResourceLimits {
        &self.limits
    }

    /// Total quota denials so far.
    pub fn breaches(&self) -> u64 {
        self.breaches.load(Ordering::Relaxed)
    }

    /// Installs the hard-breach termination hook. First installation wins;
    /// the runtime installs exactly one at application spawn.
    pub fn set_hard_breach_hook(&self, hook: HardBreachHook) {
        let _ = self.hard_breach_hook.set(hook);
    }

    /// Attempts to charge `amount` of `kind` against the quota.
    ///
    /// On success the ledger is increased and `Ok(())` returned. Over the
    /// ceiling, the charge is rolled back and the denial is counted
    /// (`quota.denied`), audited with a flight-recorder dump, and — past
    /// the hard-breach threshold — escalated to the termination hook.
    ///
    /// # Errors
    ///
    /// [`VmError::QuotaExceeded`] when the new usage would exceed the limit.
    pub fn try_charge(&self, kind: ResourceKind, amount: u64) -> Result<(), VmError> {
        let limit = self.limits.get(kind);
        let slot = &self.ledger.slots[kind.index()];
        let used = slot.fetch_add(amount, Ordering::Relaxed);
        if used.saturating_add(amount) <= limit {
            if kind == ResourceKind::Memory {
                self.mem_charged.add(amount);
            }
            return Ok(());
        }
        slot.fetch_sub(amount, Ordering::Relaxed);
        self.record_breach(kind, limit);
        Err(VmError::QuotaExceeded {
            app: self.app_id,
            resource: kind.as_str(),
            limit,
        })
    }

    /// Releases `amount` of `kind` (see [`ResourceLedger::uncharge`]).
    pub fn uncharge(&self, kind: ResourceKind, amount: u64) {
        self.ledger.uncharge(kind, amount);
    }

    /// Checks out a pooled interpreter arena, if one is available. Returns
    /// the (cleared) arena and the `Memory` bytes still charged for it —
    /// ownership of that charge transfers to the run, which settles it via
    /// [`AppContext::put_arena`] or an uncharge.
    pub fn take_arena(&self) -> Option<(Vec<Value>, u64)> {
        let taken = self.arena_pool.lock().pop();
        if let Some((_, bytes)) = &taken {
            self.arena_reuses.fetch_add(1, Ordering::Relaxed);
            self.resident.fetch_sub(*bytes, Ordering::Relaxed);
        }
        taken
    }

    /// Returns a cleared arena (with `charged` bytes of `Memory` still on
    /// the ledger) to the per-app pool. A full pool drops the arena and
    /// releases its charge instead.
    pub fn put_arena(&self, arena: Vec<Value>, charged: u64) {
        debug_assert!(arena.is_empty(), "pooled arenas must be cleared");
        let mut pool = self.arena_pool.lock();
        if pool.len() < APP_ARENA_POOL_CAP {
            self.resident.fetch_add(charged, Ordering::Relaxed);
            pool.push((arena, charged));
        } else {
            drop(pool);
            self.uncharge(ResourceKind::Memory, charged);
        }
    }

    /// Charges `bytes` of `Memory` that outlive any single interpreter run
    /// (class-image footprints); released in bulk by
    /// [`AppContext::reclaim_memory`] at reap.
    ///
    /// # Errors
    ///
    /// [`VmError::QuotaExceeded`] when the charge would exceed the limit.
    pub fn charge_resident(&self, bytes: u64) -> Result<(), VmError> {
        self.try_charge(ResourceKind::Memory, bytes)?;
        self.resident.fetch_add(bytes, Ordering::Relaxed);
        Ok(())
    }

    /// `Memory` bytes currently held by resident allocations (pooled
    /// arenas + charged class images).
    pub fn resident_memory(&self) -> u64 {
        self.resident.load(Ordering::Relaxed)
    }

    /// How many times a freed arena was reused from the pool.
    pub fn arena_reuses(&self) -> u64 {
        self.arena_reuses.load(Ordering::Relaxed)
    }

    /// Drops all resident allocations (pooled arenas, image footprints) and
    /// releases their `Memory` charge in one bulk uncharge — the O(1)
    /// reclaim the reaper relies on. Returns the bytes freed.
    pub fn reclaim_memory(&self) -> u64 {
        self.arena_pool.lock().clear();
        let freed = self.resident.swap(0, Ordering::Relaxed);
        self.uncharge(ResourceKind::Memory, freed);
        freed
    }

    /// Asks the application's interpreter to park at its next safepoint and
    /// deposit an [`InterpSnapshot`] (see [`AppContext::take_snapshot`]).
    pub fn request_checkpoint(&self) {
        self.checkpoint_requested.store(1, Ordering::Release);
    }

    /// `true` once a checkpoint has been requested and not yet cleared.
    pub fn checkpoint_requested(&self) -> bool {
        self.checkpoint_requested.load(Ordering::Acquire) != 0
    }

    /// Clears a pending checkpoint request (restore paths call this so the
    /// resumed run is not immediately re-parked).
    pub fn clear_checkpoint_request(&self) {
        self.checkpoint_requested.store(0, Ordering::Release);
    }

    /// Deposits the snapshot produced by a parked interpreter run.
    pub fn deposit_snapshot(&self, snapshot: InterpSnapshot) {
        *self.snapshot_slot.lock() = Some(snapshot);
    }

    /// Takes the deposited snapshot, if any.
    pub fn take_snapshot(&self) -> Option<InterpSnapshot> {
        self.snapshot_slot.lock().take()
    }

    fn record_breach(&self, kind: ResourceKind, limit: u64) {
        if kind == ResourceKind::Memory {
            self.mem_denied.add(1);
        }
        let user = self.user();
        let breaches = self.breaches.fetch_add(1, Ordering::Relaxed) + 1;
        // Power-of-two sampling for the flight-recorder dump: the first few
        // breaches get full forensics, a storm of them cannot weaponise the
        // (expensive) ring snapshot against the rest of the VM.
        self.hub.record_quota_denial(
            self.app_id,
            Some(&user),
            kind.as_str(),
            limit,
            breaches.is_power_of_two(),
        );
        let threshold = self.limits.hard_breach_threshold();
        if breaches >= threshold && self.escalated.swap(1, Ordering::Relaxed) == 0 {
            if let Some(hook) = self.hard_breach_hook.get() {
                hook(self);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> Arc<AppContext> {
        AppContext::new(7, "Demo", "alice", GroupId(3), ObsHub::new())
    }

    #[test]
    fn ledger_charges_and_drains() {
        let ctx = ctx();
        ctx.try_charge(ResourceKind::Threads, 2).unwrap();
        ctx.try_charge(ResourceKind::PipeBytes, 100).unwrap();
        assert_eq!(ctx.ledger().get(ResourceKind::Threads), 2);
        assert_eq!(ctx.ledger().get(ResourceKind::PipeBytes), 100);
        assert!(!ctx.ledger().is_drained());
        ctx.uncharge(ResourceKind::Threads, 2);
        ctx.uncharge(ResourceKind::PipeBytes, 100);
        assert!(ctx.ledger().is_drained());
    }

    #[test]
    fn uncharge_saturates_at_zero() {
        let ctx = ctx();
        ctx.uncharge(ResourceKind::Handles, 5);
        assert_eq!(ctx.ledger().get(ResourceKind::Handles), 0);
    }

    #[test]
    fn over_limit_charge_fails_and_rolls_back() {
        let ctx = ctx();
        ctx.limits().set(ResourceKind::QueuedEvents, 3);
        ctx.try_charge(ResourceKind::QueuedEvents, 3).unwrap();
        let err = ctx.try_charge(ResourceKind::QueuedEvents, 1).unwrap_err();
        match err {
            VmError::QuotaExceeded {
                app,
                resource,
                limit,
            } => {
                assert_eq!(app, 7);
                assert_eq!(resource, "queued.events");
                assert_eq!(limit, 3);
            }
            other => panic!("expected QuotaExceeded, got {other:?}"),
        }
        // The failed charge must not stick.
        assert_eq!(ctx.ledger().get(ResourceKind::QueuedEvents), 3);
        assert_eq!(ctx.breaches(), 1);
    }

    #[test]
    fn hard_breach_threshold_fires_hook_once() {
        let ctx = ctx();
        ctx.limits().set(ResourceKind::Threads, 0);
        ctx.limits().set_hard_breach_threshold(3);
        let fired = Arc::new(AtomicU64::new(0));
        let observed = fired.clone();
        ctx.set_hard_breach_hook(Box::new(move |c| {
            assert_eq!(c.app_id(), 7);
            observed.fetch_add(1, Ordering::Relaxed);
        }));
        for _ in 0..5 {
            let _ = ctx.try_charge(ResourceKind::Threads, 1);
        }
        assert_eq!(fired.load(Ordering::Relaxed), 1, "hook fires exactly once");
        assert_eq!(ctx.breaches(), 5);
    }

    #[test]
    fn memory_denials_bump_typed_counters() {
        let hub = ObsHub::new();
        let ctx = AppContext::new(11, "Bomb", "mallory", GroupId(5), hub.clone());
        ctx.limits().set(ResourceKind::Memory, 1024);
        ctx.try_charge(ResourceKind::Memory, 1000).unwrap();
        assert_eq!(hub.vm_metrics().counter("memory.charged").get(), 1000);
        assert!(ctx.try_charge(ResourceKind::Memory, 100).is_err());
        assert_eq!(hub.vm_metrics().counter("memory.denied").get(), 1);
        // The denied charge must not have been counted as charged.
        assert_eq!(hub.vm_metrics().counter("memory.charged").get(), 1000);
    }

    #[test]
    fn arena_pool_keeps_charge_resident_and_reclaims_in_bulk() {
        let ctx = ctx();
        ctx.try_charge(ResourceKind::Memory, 512).unwrap();
        ctx.put_arena(Vec::new(), 512);
        assert_eq!(ctx.resident_memory(), 512);
        assert_eq!(ctx.ledger().get(ResourceKind::Memory), 512);
        // Checkout transfers the charge back to the run.
        let (arena, charged) = ctx.take_arena().expect("pooled arena");
        assert!(arena.is_empty());
        assert_eq!(charged, 512);
        assert_eq!(ctx.arena_reuses(), 1);
        assert_eq!(ctx.resident_memory(), 0);
        ctx.put_arena(arena, charged);
        // Reap path: one bulk uncharge drains the ledger to zero.
        assert_eq!(ctx.reclaim_memory(), 512);
        assert!(ctx.ledger().is_drained());
        assert!(ctx.take_arena().is_none());
    }

    #[test]
    fn checkpoint_request_and_snapshot_slot_roundtrip() {
        let ctx = ctx();
        assert!(!ctx.checkpoint_requested());
        ctx.request_checkpoint();
        assert!(ctx.checkpoint_requested());
        ctx.clear_checkpoint_request();
        assert!(!ctx.checkpoint_requested());
        assert!(ctx.take_snapshot().is_none());
    }

    #[test]
    fn resource_kind_name_roundtrip() {
        for kind in RESOURCE_KINDS {
            assert_eq!(ResourceKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(ResourceKind::parse("nope"), None);
    }

    #[test]
    fn denials_are_counted_and_audited() {
        let hub = ObsHub::new();
        let ctx = AppContext::new(9, "Evil", "mallory", GroupId(4), hub.clone());
        hub.app_registry(9, "Evil");
        ctx.limits().set(ResourceKind::PipeBytes, 10);
        assert!(ctx.try_charge(ResourceKind::PipeBytes, 11).is_err());
        assert_eq!(hub.vm_metrics().counter("quota.denied").get(), 1);
        let records = hub.audit_query(None, Some(9));
        assert_eq!(records.len(), 1);
        assert!(records[0].permission.contains("pipe.bytes"));
        assert_eq!(records[0].user.as_deref(), Some("mallory"));
    }
}
