//! Per-application ownership and resource accounting.
//!
//! The paper's multi-processing model (§2, §4) puts many mutually-suspicious
//! applications in one VM, which makes "which application owns this thread /
//! buffer / queue slot?" the load-bearing question of every layer. Before
//! this module, the answer was derived five different ways (thread→group
//! walks, two runtime hash maps, observability resolvers, queue tags, user
//! lookups). [`AppContext`] is the single ownership record: every VM thread
//! carries an `Arc<AppContext>` set at spawn, and every allocation path
//! charges the context's [`ResourceLedger`].
//!
//! On top of the unified ledger sit **quotas**: a [`ResourceLimits`] table
//! (per-resource ceilings, `u64::MAX` = unlimited) checked at charge time.
//! An over-limit allocation fails with
//! [`VmError::QuotaExceeded`](crate::VmError::QuotaExceeded), is counted
//! (`quota.denied`) and audited through the observability hub, and — only
//! after repeated breaches past the hard-breach threshold — escalates to a
//! termination hook the runtime wires to its reaper. Everything here is
//! lock-free atomics: charge/uncharge sit on the pipe-write and
//! event-enqueue hot paths.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use jmp_obs::ObsHub;
use parking_lot::RwLock;

use crate::error::VmError;
use crate::group::GroupId;

/// The resources the ledger accounts, one atomic slot each.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceKind {
    /// Live VM threads owned by the application.
    Threads,
    /// Bytes currently buffered in the application's pipes.
    PipeBytes,
    /// Events currently queued on the application's event queue.
    QueuedEvents,
    /// Open handles: owned streams plus published shared entries.
    Handles,
}

/// All resource kinds, in display order.
pub const RESOURCE_KINDS: [ResourceKind; 4] = [
    ResourceKind::Threads,
    ResourceKind::PipeBytes,
    ResourceKind::QueuedEvents,
    ResourceKind::Handles,
];

impl ResourceKind {
    /// Stable dotted name, used in metrics, audit records, policy limit
    /// overrides (`limit.threads:256`), and the shell `ulimit` builtin.
    pub fn as_str(self) -> &'static str {
        match self {
            ResourceKind::Threads => "threads",
            ResourceKind::PipeBytes => "pipe.bytes",
            ResourceKind::QueuedEvents => "queued.events",
            ResourceKind::Handles => "handles",
        }
    }

    /// Parses the stable name back to a kind.
    pub fn parse(name: &str) -> Option<ResourceKind> {
        RESOURCE_KINDS.iter().copied().find(|k| k.as_str() == name)
    }

    fn index(self) -> usize {
        match self {
            ResourceKind::Threads => 0,
            ResourceKind::PipeBytes => 1,
            ResourceKind::QueuedEvents => 2,
            ResourceKind::Handles => 3,
        }
    }
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Lock-free live-usage accounting, one [`AtomicU64`] per resource.
///
/// The ledger tracks *current* usage, not cumulative totals (those live in
/// the metrics registries). Every charge has a matching uncharge on the
/// release path, so a quiescent application's ledger reads zero — the
/// exactness property the integration tests pin down.
#[derive(Debug, Default)]
pub struct ResourceLedger {
    slots: [AtomicU64; 4],
}

impl ResourceLedger {
    /// Creates an empty ledger.
    pub fn new() -> ResourceLedger {
        ResourceLedger::default()
    }

    /// Current usage of `kind`.
    pub fn get(&self, kind: ResourceKind) -> u64 {
        self.slots[kind.index()].load(Ordering::Relaxed)
    }

    /// Unconditionally records `amount` more of `kind` (no quota check);
    /// returns the new usage. Quota-checked paths go through
    /// [`AppContext::try_charge`] instead.
    pub fn charge(&self, kind: ResourceKind, amount: u64) -> u64 {
        self.slots[kind.index()].fetch_add(amount, Ordering::Relaxed) + amount
    }

    /// Releases `amount` of `kind`, saturating at zero (a stray double
    /// release must not wrap the ledger to `u64::MAX` and wedge the app).
    pub fn uncharge(&self, kind: ResourceKind, amount: u64) {
        let slot = &self.slots[kind.index()];
        let mut current = slot.load(Ordering::Relaxed);
        loop {
            let next = current.saturating_sub(amount);
            match slot.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// `true` if every slot reads zero.
    pub fn is_drained(&self) -> bool {
        RESOURCE_KINDS.iter().all(|&k| self.get(k) == 0)
    }
}

/// Default hard-breach threshold: an application is escalated to the
/// reaper only after this many quota denials. High enough that transient
/// over-limit bursts merely fail, low enough that a hostile loop hammering
/// a quota is eventually terminated rather than audited forever.
pub const DEFAULT_HARD_BREACH_THRESHOLD: u64 = 4096;

/// Per-resource ceilings plus the hard-breach escalation threshold, all
/// atomics so `setLimits` takes effect without locking the hot path.
/// `u64::MAX` means unlimited.
#[derive(Debug)]
pub struct ResourceLimits {
    slots: [AtomicU64; 4],
    hard_breach_threshold: AtomicU64,
}

impl Default for ResourceLimits {
    fn default() -> ResourceLimits {
        ResourceLimits {
            slots: [
                AtomicU64::new(u64::MAX),
                AtomicU64::new(u64::MAX),
                AtomicU64::new(u64::MAX),
                AtomicU64::new(u64::MAX),
            ],
            hard_breach_threshold: AtomicU64::new(DEFAULT_HARD_BREACH_THRESHOLD),
        }
    }
}

impl ResourceLimits {
    /// All-unlimited limits (the quotas-off configuration).
    pub fn unlimited() -> ResourceLimits {
        ResourceLimits::default()
    }

    /// Current ceiling for `kind` (`u64::MAX` = unlimited).
    pub fn get(&self, kind: ResourceKind) -> u64 {
        self.slots[kind.index()].load(Ordering::Relaxed)
    }

    /// Sets the ceiling for `kind`. Takes effect on the next charge; usage
    /// already above the new ceiling is not clawed back, further charges
    /// simply fail.
    pub fn set(&self, kind: ResourceKind, limit: u64) {
        self.slots[kind.index()].store(limit, Ordering::Relaxed);
    }

    /// The number of quota denials after which the owner is escalated to
    /// termination.
    pub fn hard_breach_threshold(&self) -> u64 {
        self.hard_breach_threshold.load(Ordering::Relaxed)
    }

    /// Sets the hard-breach threshold (`u64::MAX` disables escalation).
    pub fn set_hard_breach_threshold(&self, threshold: u64) {
        self.hard_breach_threshold
            .store(threshold, Ordering::Relaxed);
    }
}

/// The termination hook invoked when an application crosses its hard-breach
/// threshold; the runtime wires this to its reaper.
pub type HardBreachHook = Box<dyn Fn(&AppContext) + Send + Sync>;

/// The single per-application ownership record: identity (app id, user,
/// root thread group) plus live resource accounting ([`ResourceLedger`])
/// and quotas ([`ResourceLimits`]).
///
/// One context is interned per application by the multi-processing runtime;
/// every thread the application owns carries an `Arc` to it (see
/// [`thread::current_app_context`](crate::thread::current_app_context)),
/// so attribution anywhere in the VM is a pointer load, not a walk.
pub struct AppContext {
    app_id: u64,
    name: String,
    user: RwLock<String>,
    group: GroupId,
    ledger: ResourceLedger,
    limits: ResourceLimits,
    breaches: AtomicU64,
    hub: ObsHub,
    hard_breach_hook: OnceLock<HardBreachHook>,
    escalated: AtomicU64,
}

impl fmt::Debug for AppContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AppContext")
            .field("app_id", &self.app_id)
            .field("name", &self.name)
            .field("user", &*self.user.read())
            .field("group", &self.group)
            .finish_non_exhaustive()
    }
}

impl AppContext {
    /// Creates a context for application `app_id` rooted at `group`,
    /// reporting denials through `hub`.
    pub fn new(
        app_id: u64,
        name: impl Into<String>,
        user: impl Into<String>,
        group: GroupId,
        hub: ObsHub,
    ) -> Arc<AppContext> {
        Arc::new(AppContext {
            app_id,
            name: name.into(),
            user: RwLock::new(user.into()),
            group,
            ledger: ResourceLedger::new(),
            limits: ResourceLimits::default(),
            breaches: AtomicU64::new(0),
            hub,
            hard_breach_hook: OnceLock::new(),
            escalated: AtomicU64::new(0),
        })
    }

    /// The application id.
    pub fn app_id(&self) -> u64 {
        self.app_id
    }

    /// The application's display name (its main class).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The user the application currently runs as.
    pub fn user(&self) -> String {
        self.user.read().clone()
    }

    /// Updates the recorded user (mirrors `Application::set_user`).
    pub fn set_user(&self, user: impl Into<String>) {
        *self.user.write() = user.into();
    }

    /// The application's root thread group.
    pub fn group(&self) -> GroupId {
        self.group
    }

    /// The live-usage ledger.
    pub fn ledger(&self) -> &ResourceLedger {
        &self.ledger
    }

    /// The quota table.
    pub fn limits(&self) -> &ResourceLimits {
        &self.limits
    }

    /// Total quota denials so far.
    pub fn breaches(&self) -> u64 {
        self.breaches.load(Ordering::Relaxed)
    }

    /// Installs the hard-breach termination hook. First installation wins;
    /// the runtime installs exactly one at application spawn.
    pub fn set_hard_breach_hook(&self, hook: HardBreachHook) {
        let _ = self.hard_breach_hook.set(hook);
    }

    /// Attempts to charge `amount` of `kind` against the quota.
    ///
    /// On success the ledger is increased and `Ok(())` returned. Over the
    /// ceiling, the charge is rolled back and the denial is counted
    /// (`quota.denied`), audited with a flight-recorder dump, and — past
    /// the hard-breach threshold — escalated to the termination hook.
    ///
    /// # Errors
    ///
    /// [`VmError::QuotaExceeded`] when the new usage would exceed the limit.
    pub fn try_charge(&self, kind: ResourceKind, amount: u64) -> Result<(), VmError> {
        let limit = self.limits.get(kind);
        let slot = &self.ledger.slots[kind.index()];
        let used = slot.fetch_add(amount, Ordering::Relaxed);
        if used.saturating_add(amount) <= limit {
            return Ok(());
        }
        slot.fetch_sub(amount, Ordering::Relaxed);
        self.record_breach(kind, limit);
        Err(VmError::QuotaExceeded {
            app: self.app_id,
            resource: kind.as_str(),
            limit,
        })
    }

    /// Releases `amount` of `kind` (see [`ResourceLedger::uncharge`]).
    pub fn uncharge(&self, kind: ResourceKind, amount: u64) {
        self.ledger.uncharge(kind, amount);
    }

    fn record_breach(&self, kind: ResourceKind, limit: u64) {
        let user = self.user();
        let breaches = self.breaches.fetch_add(1, Ordering::Relaxed) + 1;
        // Power-of-two sampling for the flight-recorder dump: the first few
        // breaches get full forensics, a storm of them cannot weaponise the
        // (expensive) ring snapshot against the rest of the VM.
        self.hub.record_quota_denial(
            self.app_id,
            Some(&user),
            kind.as_str(),
            limit,
            breaches.is_power_of_two(),
        );
        let threshold = self.limits.hard_breach_threshold();
        if breaches >= threshold && self.escalated.swap(1, Ordering::Relaxed) == 0 {
            if let Some(hook) = self.hard_breach_hook.get() {
                hook(self);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> Arc<AppContext> {
        AppContext::new(7, "Demo", "alice", GroupId(3), ObsHub::new())
    }

    #[test]
    fn ledger_charges_and_drains() {
        let ctx = ctx();
        ctx.try_charge(ResourceKind::Threads, 2).unwrap();
        ctx.try_charge(ResourceKind::PipeBytes, 100).unwrap();
        assert_eq!(ctx.ledger().get(ResourceKind::Threads), 2);
        assert_eq!(ctx.ledger().get(ResourceKind::PipeBytes), 100);
        assert!(!ctx.ledger().is_drained());
        ctx.uncharge(ResourceKind::Threads, 2);
        ctx.uncharge(ResourceKind::PipeBytes, 100);
        assert!(ctx.ledger().is_drained());
    }

    #[test]
    fn uncharge_saturates_at_zero() {
        let ctx = ctx();
        ctx.uncharge(ResourceKind::Handles, 5);
        assert_eq!(ctx.ledger().get(ResourceKind::Handles), 0);
    }

    #[test]
    fn over_limit_charge_fails_and_rolls_back() {
        let ctx = ctx();
        ctx.limits().set(ResourceKind::QueuedEvents, 3);
        ctx.try_charge(ResourceKind::QueuedEvents, 3).unwrap();
        let err = ctx.try_charge(ResourceKind::QueuedEvents, 1).unwrap_err();
        match err {
            VmError::QuotaExceeded {
                app,
                resource,
                limit,
            } => {
                assert_eq!(app, 7);
                assert_eq!(resource, "queued.events");
                assert_eq!(limit, 3);
            }
            other => panic!("expected QuotaExceeded, got {other:?}"),
        }
        // The failed charge must not stick.
        assert_eq!(ctx.ledger().get(ResourceKind::QueuedEvents), 3);
        assert_eq!(ctx.breaches(), 1);
    }

    #[test]
    fn hard_breach_threshold_fires_hook_once() {
        let ctx = ctx();
        ctx.limits().set(ResourceKind::Threads, 0);
        ctx.limits().set_hard_breach_threshold(3);
        let fired = Arc::new(AtomicU64::new(0));
        let observed = fired.clone();
        ctx.set_hard_breach_hook(Box::new(move |c| {
            assert_eq!(c.app_id(), 7);
            observed.fetch_add(1, Ordering::Relaxed);
        }));
        for _ in 0..5 {
            let _ = ctx.try_charge(ResourceKind::Threads, 1);
        }
        assert_eq!(fired.load(Ordering::Relaxed), 1, "hook fires exactly once");
        assert_eq!(ctx.breaches(), 5);
    }

    #[test]
    fn resource_kind_name_roundtrip() {
        for kind in RESOURCE_KINDS {
            assert_eq!(ResourceKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(ResourceKind::parse("nope"), None);
    }

    #[test]
    fn denials_are_counted_and_audited() {
        let hub = ObsHub::new();
        let ctx = AppContext::new(9, "Evil", "mallory", GroupId(4), hub.clone());
        hub.app_registry(9, "Evil");
        ctx.limits().set(ResourceKind::PipeBytes, 10);
        assert!(ctx.try_charge(ResourceKind::PipeBytes, 11).is_err());
        assert_eq!(hub.vm_metrics().counter("quota.denied").get(), 1);
        let records = hub.audit_query(None, Some(9));
        assert_eq!(records.len(), 1);
        assert!(records[0].permission.contains("pipe.bytes"));
        assert_eq!(records[0].user.as_deref(), Some("mallory"));
    }
}
