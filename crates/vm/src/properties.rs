use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;

/// A thread-safe string-to-string property table, like
/// `java.util.Properties`.
///
/// The runtime's *system properties* (paper §3.1: "values that provide
/// information about the system, for example the running user, the Java
/// version, the underlying O/S version") are one shared `Properties`
/// instance; the multi-processing layer additionally gives each application
/// an overlay of per-application properties (paper §5.1).
///
/// Cloning a `Properties` yields a handle to the *same* table; use
/// [`Properties::snapshot`]/[`Properties::overlay`] for copies.
#[derive(Clone, Default)]
pub struct Properties {
    map: Arc<RwLock<BTreeMap<String, String>>>,
}

impl Properties {
    /// Creates an empty table.
    pub fn new() -> Properties {
        Properties::default()
    }

    /// The conventional system-property defaults of this runtime, standing
    /// in for the values JDK 1.2 hard-codes or obtains from the O/S.
    pub fn system_defaults() -> Properties {
        let props = Properties::new();
        props.set("java.version", "1.2-jmp");
        props.set("java.vendor", "jmproc");
        props.set("os.name", "jmpos");
        props.set("os.version", "0.1");
        props.set("file.separator", "/");
        props.set("line.separator", "\n");
        props.set("path.separator", ":");
        props
    }

    /// Returns the value for `key`, if present.
    pub fn get(&self, key: &str) -> Option<String> {
        self.map.read().get(key).cloned()
    }

    /// Returns the value for `key` or `default` if absent.
    pub fn get_or(&self, key: &str, default: &str) -> String {
        self.get(key).unwrap_or_else(|| default.to_string())
    }

    /// Sets `key` to `value`, returning the previous value if any.
    pub fn set(&self, key: impl Into<String>, value: impl Into<String>) -> Option<String> {
        self.map.write().insert(key.into(), value.into())
    }

    /// Removes `key`, returning its previous value.
    pub fn remove(&self, key: &str) -> Option<String> {
        self.map.write().remove(key)
    }

    /// Returns `true` if `key` is present.
    pub fn contains(&self, key: &str) -> bool {
        self.map.read().contains_key(key)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// Returns `true` if the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }

    /// A point-in-time copy of all entries, sorted by key.
    pub fn snapshot(&self) -> Vec<(String, String)> {
        self.map
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Creates a new, independent table seeded with this table's current
    /// contents — how a child application inherits its parent's properties
    /// (paper §5.1: "the current application-wide state of the parent is
    /// inherited by the child").
    pub fn overlay(&self) -> Properties {
        Properties {
            map: Arc::new(RwLock::new(self.map.read().clone())),
        }
    }

    /// Returns `true` if `other` is a handle to the same underlying table.
    pub fn same_table(&self, other: &Properties) -> bool {
        Arc::ptr_eq(&self.map, &other.map)
    }
}

impl fmt::Debug for Properties {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.map.read().iter()).finish()
    }
}

impl FromIterator<(String, String)> for Properties {
    fn from_iter<I: IntoIterator<Item = (String, String)>>(iter: I) -> Self {
        Properties {
            map: Arc::new(RwLock::new(iter.into_iter().collect())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_remove() {
        let p = Properties::new();
        assert_eq!(p.set("user.name", "alice"), None);
        assert_eq!(p.get("user.name").as_deref(), Some("alice"));
        assert_eq!(p.set("user.name", "bob").as_deref(), Some("alice"));
        assert_eq!(p.remove("user.name").as_deref(), Some("bob"));
        assert!(!p.contains("user.name"));
        assert_eq!(p.get_or("user.name", "nobody"), "nobody");
    }

    #[test]
    fn clone_shares_overlay_copies() {
        let p = Properties::new();
        p.set("k", "1");
        let shared = p.clone();
        shared.set("k", "2");
        assert_eq!(p.get("k").as_deref(), Some("2"), "clone shares the table");
        assert!(p.same_table(&shared));

        let copy = p.overlay();
        copy.set("k", "3");
        assert_eq!(p.get("k").as_deref(), Some("2"), "overlay is independent");
        assert!(!p.same_table(&copy));
    }

    #[test]
    fn system_defaults_present() {
        let p = Properties::system_defaults();
        assert_eq!(p.get("os.name").as_deref(), Some("jmpos"));
        assert_eq!(p.get("java.version").as_deref(), Some("1.2-jmp"));
        assert!(p.len() >= 5);
    }

    #[test]
    fn snapshot_is_sorted() {
        let p = Properties::new();
        p.set("b", "2");
        p.set("a", "1");
        let snap = p.snapshot();
        assert_eq!(
            snap,
            vec![("a".into(), "1".into()), ("b".into(), "2".into())]
        );
    }

    #[test]
    fn from_iterator() {
        let p: Properties = vec![("x".to_string(), "y".to_string())]
            .into_iter()
            .collect();
        assert_eq!(p.get("x").as_deref(), Some("y"));
        assert!(!p.is_empty());
    }
}
