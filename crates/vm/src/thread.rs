use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::context::AppContext;
use crate::error::VmError;
use crate::group::ThreadGroup;
use crate::Result;

/// Identifier of a VM thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ThreadId(pub u64);

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t:{}", self.0)
    }
}

/// Poll interval for host-side wait loops that sit outside the interrupt
/// machinery (e.g. [`crate::Vm::await_termination`] rounds). The blocking
/// primitives themselves — event queues, pipes, and since the control-plane
/// scale-out also `sleep`/`join` — do not poll: they block for real and are
/// woken explicitly through an [interrupt waker]
/// (`register_interrupt_waker`). A parked fleet of 10,000 applications
/// sleeping in `jmp_vm::thread::sleep` costs zero wakeups (and, parked on
/// its [`SleepChannel`]s rather than in futex waits, leaves the kernel's
/// futex tables alone); with the old 5 ms poll it cost 2 million timer
/// fires a second.
pub const BLOCK_POLL: Duration = Duration::from_millis(5);

/// A callback invoked when the thread it is registered on is interrupted.
/// Blocking primitives register one that acquires their state lock and
/// notifies their condition variable, turning cooperative interruption into
/// an immediate wakeup instead of a ≤[`BLOCK_POLL`] poll.
pub type InterruptWaker = Arc<dyn Fn() + Send + Sync>;

/// Process-wide cap on sleep socketpairs (two fds each), sized to leave
/// headroom under common `RLIMIT_NOFILE` settings. Sleepers beyond the cap
/// fall back to bounded nanosleep chunks.
const SLEEP_CHANNEL_CAP: usize = 8_192;

/// Chunk bound for the capped fallback: interruption is observed at the
/// next chunk boundary, comfortably inside the reaper's 2 s join timeout.
const SLEEP_FALLBACK_CHUNK: Duration = Duration::from_millis(500);

/// Live [`SleepChannel`] count against [`SLEEP_CHANNEL_CAP`].
static SLEEP_CHANNELS: AtomicUsize = AtomicUsize::new(0);

/// The parking spot of a sleeping VM thread: a socketpair the sleeper
/// blocks on with a read timeout, and that the interrupt waker writes one
/// byte into to wake it.
///
/// Why not a condition variable: a condvar wait is a futex wait, and a
/// fleet of thousands of threads parked in futexes degrades *every* futex
/// operation in the process — the kernel's futex hash buckets walk long
/// waiter chains, measured here as a condvar handoff going from ~4 µs with
/// an empty fleet to ~170 µs with 10,000 parked sleepers, whichever
/// addresses the waiters park on. Threads blocked in a socket read sit on
/// per-socket wait queues instead and leave the futex tables alone, so the
/// same handoff stays flat at any fleet size. One channel is created per
/// thread on first sleep and lives until the thread dies.
#[cfg(unix)]
struct SleepChannel {
    rx: std::os::unix::net::UnixStream,
    tx: std::os::unix::net::UnixStream,
}

#[cfg(unix)]
impl SleepChannel {
    /// Claims an fd-budget slot and builds the socketpair; `None` when the
    /// cap is reached or the pair cannot be created.
    fn claim() -> Option<Arc<SleepChannel>> {
        SLEEP_CHANNELS
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                (n < SLEEP_CHANNEL_CAP).then_some(n + 1)
            })
            .ok()?;
        match std::os::unix::net::UnixStream::pair() {
            Ok((rx, tx)) => {
                // A full buffer must never block the interrupting thread.
                let _ = tx.set_nonblocking(true);
                Some(Arc::new(SleepChannel { rx, tx }))
            }
            Err(_) => {
                SLEEP_CHANNELS.fetch_sub(1, Ordering::SeqCst);
                None
            }
        }
    }

    /// Wakes the parked owner (called from the interrupting thread).
    fn wake(&self) {
        use std::io::Write;
        let _ = (&self.tx).write(&[1]);
    }

    /// Discards wake bytes from earlier sleeps. The caller re-checks the
    /// interrupt flag *after* draining and before [`Self::block`]: the
    /// interrupter sets the flag before writing, so a wake drained here is
    /// always visible as the flag, and a wake arriving later is a byte the
    /// blocking read returns on.
    fn drain(&self) {
        use std::io::Read;
        let mut buf = [0u8; 16];
        let _ = self.rx.set_nonblocking(true);
        while matches!((&self.rx).read(&mut buf), Ok(n) if n > 0) {}
        let _ = self.rx.set_nonblocking(false);
    }

    /// Parks for up to `remaining` or until a wake byte arrives.
    fn block(&self, remaining: Duration) {
        use std::io::Read;
        if self
            .rx
            .set_read_timeout(Some(remaining.max(Duration::from_millis(1))))
            .is_err()
        {
            std::thread::sleep(remaining.min(SLEEP_FALLBACK_CHUNK));
            return;
        }
        let mut buf = [0u8; 16];
        match (&self.rx).read(&mut buf) {
            Ok(n) if n > 0 => {}
            Ok(_) => {
                // EOF cannot happen while we hold `tx`; don't spin on it.
                std::thread::sleep(remaining.min(SLEEP_FALLBACK_CHUNK));
            }
            Err(_) => {} // timeout (or EINTR): the caller re-checks the clock
        }
    }
}

#[cfg(unix)]
impl Drop for SleepChannel {
    fn drop(&mut self) {
        SLEEP_CHANNELS.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(not(unix))]
struct SleepChannel;

#[cfg(not(unix))]
impl SleepChannel {
    fn claim() -> Option<Arc<SleepChannel>> {
        None
    }
    fn wake(&self) {}
    fn drain(&self) {}
    fn block(&self, _remaining: Duration) {}
}

#[derive(Debug)]
enum RunState {
    Running,
    /// Finished; `Some(msg)` if the thread body panicked.
    Finished(Option<String>),
}

pub(crate) struct ThreadCtl {
    pub(crate) id: ThreadId,
    pub(crate) name: String,
    pub(crate) daemon: bool,
    pub(crate) group: ThreadGroup,
    /// The owning application's context, set at spawn (inherited from the
    /// spawning thread unless overridden). `None` for system threads.
    pub(crate) app: Option<Arc<AppContext>>,
    interrupted: AtomicBool,
    state: Mutex<RunState>,
    finished: Condvar,
    /// Wakers to invoke on interruption, keyed for O(1)ish removal. The
    /// interrupting thread snapshots the list and calls each waker *after*
    /// releasing this lock, so wakers may freely take their own locks.
    wakers: Mutex<Vec<(u64, InterruptWaker)>>,
    next_waker: AtomicU64,
    /// The thread's sleep parking spot, created on first [`sleep`]. `None`
    /// until then, and stays `None` past [`SLEEP_CHANNEL_CAP`].
    sleep_channel: Mutex<Option<Arc<SleepChannel>>>,
}

impl ThreadCtl {
    pub(crate) fn new(
        id: ThreadId,
        name: String,
        daemon: bool,
        group: ThreadGroup,
        app: Option<Arc<AppContext>>,
    ) -> Arc<ThreadCtl> {
        Arc::new(ThreadCtl {
            id,
            name,
            daemon,
            group,
            app,
            interrupted: AtomicBool::new(false),
            state: Mutex::new(RunState::Running),
            finished: Condvar::new(),
            wakers: Mutex::new(Vec::new()),
            next_waker: AtomicU64::new(1),
            sleep_channel: Mutex::new(None),
        })
    }

    /// The thread's sleep channel, claimed on first use. Re-attempts the
    /// claim on later sleeps if the cap was full the first time.
    fn sleep_channel(&self) -> Option<Arc<SleepChannel>> {
        let mut slot = self.sleep_channel.lock();
        if slot.is_none() {
            *slot = SleepChannel::claim();
        }
        slot.clone()
    }

    fn add_waker(self: &Arc<ThreadCtl>, waker: InterruptWaker) -> u64 {
        let id = self.next_waker.fetch_add(1, Ordering::Relaxed);
        self.wakers.lock().push((id, waker));
        id
    }

    fn remove_waker(&self, id: u64) {
        self.wakers.lock().retain(|(wid, _)| *wid != id);
    }

    pub(crate) fn mark_finished(&self, panic_message: Option<String>) {
        *self.state.lock() = RunState::Finished(panic_message);
        self.finished.notify_all();
    }
}

/// A handle to a thread managed by the runtime.
///
/// VM threads are real OS threads with extra bookkeeping: a [`ThreadGroup`]
/// membership, a daemon flag (Fig 1), and a *cooperative interruption* flag.
/// All blocking runtime primitives are interruption points; a thread blocked
/// in one returns [`VmError::Interrupted`] shortly after
/// interruption — this is how the application layer implements "stop all
/// threads" during teardown (paper §5.1) without unsafe thread killing.
///
/// Handles are cheap clones referring to the same thread.
#[derive(Clone)]
pub struct VmThread {
    ctl: Arc<ThreadCtl>,
}

impl VmThread {
    pub(crate) fn from_ctl(ctl: Arc<ThreadCtl>) -> VmThread {
        VmThread { ctl }
    }

    #[cfg(test)]
    pub(crate) fn ctl(&self) -> &Arc<ThreadCtl> {
        &self.ctl
    }

    /// The thread's id.
    pub fn id(&self) -> ThreadId {
        self.ctl.id
    }

    /// The thread's name.
    pub fn name(&self) -> &str {
        &self.ctl.name
    }

    /// Whether the thread is a daemon (Fig 1: daemon threads do not keep the
    /// VM alive).
    pub fn is_daemon(&self) -> bool {
        self.ctl.daemon
    }

    /// The group the thread belongs to.
    pub fn group(&self) -> &ThreadGroup {
        &self.ctl.group
    }

    /// The application context the thread runs under, if any.
    pub fn app_context(&self) -> Option<Arc<AppContext>> {
        self.ctl.app.clone()
    }

    /// Returns `true` while the thread body is still executing.
    pub fn is_alive(&self) -> bool {
        matches!(*self.ctl.state.lock(), RunState::Running)
    }

    /// Returns `true` if the thread has been interrupted.
    pub fn is_interrupted(&self) -> bool {
        self.ctl.interrupted.load(Ordering::SeqCst)
    }

    /// Sets the interruption flag without any access-control check.
    ///
    /// Public callers go through [`crate::Vm::interrupt_thread`], which first
    /// consults the installed security manager (the paper's system security
    /// manager protects threads of one application from another, §5.6).
    pub(crate) fn interrupt_raw(&self) {
        self.ctl.interrupted.store(true, Ordering::SeqCst);
        // Snapshot outside the lock so wakers may take their own locks
        // (an interrupt waker typically locks a queue/pipe state mutex to
        // close the check-then-wait race before notifying).
        let wakers: Vec<InterruptWaker> = self
            .ctl
            .wakers
            .lock()
            .iter()
            .map(|(_, w)| Arc::clone(w))
            .collect();
        for waker in wakers {
            waker();
        }
    }

    /// Waits for the thread to finish.
    ///
    /// # Errors
    ///
    /// [`VmError::Interrupted`] if the *calling* thread is interrupted while
    /// waiting; [`VmError::ThreadPanicked`] if the joined thread's body
    /// panicked.
    pub fn join(&self) -> Result<()> {
        // Interrupting the *caller* must wake this wait immediately: the
        // waker locks the target's state mutex before notifying, so a
        // notification can never land between the interrupt check below
        // and the wait.
        let target = Arc::clone(&self.ctl);
        let _waker = register_interrupt_waker(Arc::new(move || {
            let _state = target.state.lock();
            target.finished.notify_all();
        }));
        let mut state = self.ctl.state.lock();
        loop {
            match &*state {
                RunState::Finished(None) => return Ok(()),
                RunState::Finished(Some(_)) => {
                    return Err(VmError::ThreadPanicked {
                        thread: self.ctl.name.clone(),
                    })
                }
                RunState::Running => {
                    if current_interrupted() {
                        return Err(VmError::Interrupted);
                    }
                    self.ctl.finished.wait(&mut state);
                }
            }
        }
    }

    /// Waits for the thread to finish, up to `timeout`. Returns `true` if it
    /// finished (even by panicking).
    pub fn join_timeout(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut state = self.ctl.state.lock();
        loop {
            if matches!(*state, RunState::Finished(_)) {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            // One wait for the whole remainder: `mark_finished` notifies.
            self.ctl.finished.wait_for(&mut state, deadline - now);
        }
    }
}

impl fmt::Debug for VmThread {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VmThread")
            .field("id", &self.ctl.id)
            .field("name", &self.ctl.name)
            .field("daemon", &self.ctl.daemon)
            .field("group", &self.ctl.group.name())
            .field("alive", &self.is_alive())
            .field("interrupted", &self.is_interrupted())
            .finish()
    }
}

impl fmt::Display for VmThread {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.ctl.name, self.ctl.id)
    }
}

// ---------------------------------------------------------------------------
// Current-thread state
// ---------------------------------------------------------------------------

thread_local! {
    static CURRENT: RefCell<Option<Arc<ThreadCtl>>> = const { RefCell::new(None) };
}

/// Binds `ctl` as the current VM thread for the duration of the returned
/// guard (installed by the spawn wrapper in `vm.rs`).
pub(crate) fn enter_thread(ctl: Arc<ThreadCtl>) -> CurrentGuard {
    CURRENT.with(|c| *c.borrow_mut() = Some(ctl));
    CurrentGuard(())
}

pub(crate) struct CurrentGuard(());

impl Drop for CurrentGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = None);
    }
}

/// The current VM thread, or `None` when called from a plain OS thread that
/// the runtime does not manage.
pub fn current() -> Option<VmThread> {
    CURRENT.with(|c| c.borrow().clone().map(VmThread::from_ctl))
}

/// The current VM thread's id, if on a VM thread.
pub fn current_id() -> Option<ThreadId> {
    CURRENT.with(|c| c.borrow().as_ref().map(|ctl| ctl.id))
}

/// The application context of the current thread: the single ownership
/// record every layer reads instead of re-deriving app identity through
/// thread→group walks. `None` on system threads and plain OS threads.
pub fn current_app_context() -> Option<Arc<AppContext>> {
    CURRENT.with(|c| c.borrow().as_ref().and_then(|ctl| ctl.app.clone()))
}

/// Returns `true` if the current thread is a VM thread whose interruption
/// flag is set. Plain OS threads are never interrupted.
pub fn current_interrupted() -> bool {
    CURRENT.with(|c| {
        c.borrow()
            .as_ref()
            .is_some_and(|ctl| ctl.interrupted.load(Ordering::SeqCst))
    })
}

/// Fails with [`VmError::Interrupted`] if the current thread has been
/// interrupted. The flag is *not* cleared: once an application is being torn
/// down, every subsequent blocking call should keep failing. (Deviation from
/// Java, where `InterruptedException` clears the flag; stickiness is what
/// teardown wants, and nothing in the paper depends on re-arming.)
///
/// # Errors
///
/// [`VmError::Interrupted`] when the flag is set.
pub fn check_interrupt() -> Result<()> {
    if current_interrupted() {
        Err(VmError::Interrupted)
    } else {
        Ok(())
    }
}

/// Test-only: runs `f` with the calling thread bound to a VM thread whose
/// interruption flag is already set — for asserting that interpreter
/// safepoints observe interruption without cross-thread timing.
#[cfg(test)]
pub(crate) fn with_interrupted_for_test<T>(f: impl FnOnce() -> T) -> T {
    let ctl = ThreadCtl::new(
        ThreadId(u64::MAX),
        "interrupted-test".into(),
        false,
        ThreadGroup::new_root("test"),
        None,
    );
    VmThread::from_ctl(Arc::clone(&ctl)).interrupt_raw();
    let _guard = enter_thread(ctl);
    f()
}

/// Deregisters an interrupt waker on drop. Returned by
/// [`register_interrupt_waker`]; hold it for exactly the region where the
/// waker's notification is wanted (typically across a condvar wait loop).
#[must_use = "dropping the guard deregisters the waker immediately"]
pub struct InterruptWakerGuard {
    ctl: Option<(Arc<ThreadCtl>, u64)>,
}

impl Drop for InterruptWakerGuard {
    fn drop(&mut self) {
        if let Some((ctl, id)) = self.ctl.take() {
            ctl.remove_waker(id);
        }
    }
}

impl fmt::Debug for InterruptWakerGuard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("InterruptWakerGuard")
            .field("registered", &self.ctl.is_some())
            .finish()
    }
}

/// Registers `waker` to fire when the *current* thread is interrupted,
/// until the returned guard is dropped. On a plain OS thread (which the
/// runtime never interrupts) this is a no-op guard.
///
/// Blocking primitives use this to wait on their condition variable without
/// a timeout: the waker acquires the primitive's state lock and notifies,
/// which cannot be lost as long as the caller re-checks
/// [`check_interrupt`] under that same lock before every wait.
pub fn register_interrupt_waker(waker: InterruptWaker) -> InterruptWakerGuard {
    let ctl = CURRENT.with(|c| c.borrow().clone());
    InterruptWakerGuard {
        ctl: ctl.map(|ctl| {
            let id = ctl.add_waker(waker);
            (ctl, id)
        }),
    }
}

/// Sleeps for `duration`, waking early with an error if interrupted.
///
/// # Errors
///
/// [`VmError::Interrupted`] if the current thread is interrupted before the
/// duration elapses.
pub fn sleep(duration: Duration) -> Result<()> {
    let deadline = Instant::now() + duration;
    let Some(ctl) = CURRENT.with(|c| c.borrow().clone()) else {
        // Plain OS threads are never interrupted: one real sleep.
        std::thread::sleep(duration);
        return Ok(());
    };
    // Park on the thread's sleep channel — a socket read, *not* a condvar
    // wait — so a fleet of thousands of sleeping applications neither
    // costs wakeups (no BLOCK_POLL chunking) nor crowds the kernel's
    // futex tables (see [`SleepChannel`]; the E19 storm measures exactly
    // this). Past the channel cap, bounded nanosleep chunks: still no
    // futex waiter, interruption seen at the next chunk boundary.
    let channel = ctl.sleep_channel();
    let _waker = channel.as_ref().map(|chan| {
        let chan = Arc::clone(chan);
        register_interrupt_waker(Arc::new(move || chan.wake()))
    });
    loop {
        if ctl.interrupted.load(Ordering::SeqCst) {
            return Err(VmError::Interrupted);
        }
        let now = Instant::now();
        if now >= deadline {
            return Ok(());
        }
        let remaining = deadline - now;
        match &channel {
            Some(chan) => {
                chan.drain();
                // The interrupter sets the flag before writing the wake
                // byte: re-checking here after the drain means a wake can
                // never be lost between the check and the blocking read.
                if ctl.interrupted.load(Ordering::SeqCst) {
                    return Err(VmError::Interrupted);
                }
                chan.block(remaining);
            }
            None => std::thread::sleep(remaining.min(SLEEP_FALLBACK_CHUNK)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(unix)]
    #[test]
    fn sleep_channel_wake_unblocks_and_drain_discards_stale_bytes() {
        let chan = SleepChannel::claim().expect("claim under cap");
        // A wake byte written before the park unblocks it immediately.
        chan.wake();
        let start = Instant::now();
        chan.block(Duration::from_secs(5));
        assert!(start.elapsed() < Duration::from_secs(1), "wake byte lost");
        // Draining discards the stale wake: the next park runs to timeout.
        chan.wake();
        chan.drain();
        let start = Instant::now();
        chan.block(Duration::from_millis(60));
        assert!(
            start.elapsed() >= Duration::from_millis(40),
            "stale byte not drained"
        );
    }

    fn test_ctl(id: u64, daemon: bool) -> Arc<ThreadCtl> {
        ThreadCtl::new(
            ThreadId(id),
            format!("test-{id}"),
            daemon,
            ThreadGroup::new_root("g"),
            None,
        )
    }

    #[test]
    fn handle_reports_metadata() {
        let t = VmThread::from_ctl(test_ctl(7, true));
        assert_eq!(t.id(), ThreadId(7));
        assert_eq!(t.name(), "test-7");
        assert!(t.is_daemon());
        assert!(t.is_alive());
        assert!(!t.is_interrupted());
    }

    #[test]
    fn join_returns_after_finish() {
        let ctl = test_ctl(1, false);
        let t = VmThread::from_ctl(Arc::clone(&ctl));
        let waiter = std::thread::spawn(move || t.join());
        std::thread::sleep(Duration::from_millis(10));
        ctl.mark_finished(None);
        waiter.join().unwrap().unwrap();
    }

    #[test]
    fn join_surfaces_panics() {
        let ctl = test_ctl(2, false);
        ctl.mark_finished(Some("boom".into()));
        let t = VmThread::from_ctl(ctl);
        assert!(matches!(
            t.join().unwrap_err(),
            VmError::ThreadPanicked { .. }
        ));
        assert!(!t.is_alive());
    }

    #[test]
    fn join_timeout_expires() {
        let t = VmThread::from_ctl(test_ctl(3, false));
        assert!(!t.join_timeout(Duration::from_millis(10)));
        t.ctl().mark_finished(None);
        assert!(t.join_timeout(Duration::from_millis(10)));
    }

    #[test]
    fn os_threads_are_never_interrupted() {
        assert!(current().is_none());
        assert!(!current_interrupted());
        check_interrupt().unwrap();
    }

    #[test]
    fn enter_thread_binds_current() {
        let ctl = test_ctl(4, false);
        {
            let _guard = enter_thread(Arc::clone(&ctl));
            assert_eq!(current_id(), Some(ThreadId(4)));
            let t = current().unwrap();
            t.interrupt_raw();
            assert!(current_interrupted());
            assert!(check_interrupt().is_err());
        }
        assert!(current().is_none());
    }

    #[test]
    fn sleep_is_interruptible() {
        let ctl = test_ctl(5, false);
        let handle = {
            let ctl = Arc::clone(&ctl);
            std::thread::spawn(move || {
                let _guard = enter_thread(ctl);
                let start = Instant::now();
                let result = sleep(Duration::from_secs(60));
                (result, start.elapsed())
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        VmThread::from_ctl(ctl).interrupt_raw();
        let (result, elapsed) = handle.join().unwrap();
        assert!(matches!(result.unwrap_err(), VmError::Interrupted));
        assert!(elapsed < Duration::from_secs(5));
    }

    #[test]
    fn interrupt_fires_registered_wakers_once_registered() {
        let ctl = test_ctl(6, false);
        let fired = Arc::new(AtomicBool::new(false));
        let handle = {
            let ctl = Arc::clone(&ctl);
            let fired = Arc::clone(&fired);
            std::thread::spawn(move || {
                let _guard = enter_thread(ctl);
                let fired2 = Arc::clone(&fired);
                let guard = register_interrupt_waker(Arc::new(move || {
                    fired2.store(true, Ordering::SeqCst);
                }));
                while !current_interrupted() {
                    std::thread::sleep(Duration::from_millis(1));
                }
                drop(guard);
            })
        };
        std::thread::sleep(Duration::from_millis(10));
        VmThread::from_ctl(Arc::clone(&ctl)).interrupt_raw();
        handle.join().unwrap();
        assert!(fired.load(Ordering::SeqCst), "waker fires on interrupt");
        // After the guard dropped, another interrupt finds no wakers.
        assert!(ctl.wakers.lock().is_empty(), "guard deregisters");
    }

    #[test]
    fn os_threads_get_noop_waker_guards() {
        let guard = register_interrupt_waker(Arc::new(|| {}));
        assert!(guard.ctl.is_none());
    }

    #[test]
    fn sleep_completes_without_interruption() {
        let start = Instant::now();
        sleep(Duration::from_millis(15)).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(14));
    }
}
