use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::context::AppContext;
use crate::error::VmError;
use crate::group::ThreadGroup;
use crate::Result;

/// Identifier of a VM thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ThreadId(pub u64);

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t:{}", self.0)
    }
}

/// Poll interval used by the remaining poll-style blocking primitives
/// (`join`, `sleep`) to observe interruption. The data-plane paths — event
/// queues and pipes — no longer poll: they block on a condition variable for
/// real and are woken explicitly through an [interrupt waker]
/// (`register_interrupt_waker`), so an idle dispatcher costs zero wakeups.
pub const BLOCK_POLL: Duration = Duration::from_millis(5);

/// A callback invoked when the thread it is registered on is interrupted.
/// Blocking primitives register one that acquires their state lock and
/// notifies their condition variable, turning cooperative interruption into
/// an immediate wakeup instead of a ≤[`BLOCK_POLL`] poll.
pub type InterruptWaker = Arc<dyn Fn() + Send + Sync>;

#[derive(Debug)]
enum RunState {
    Running,
    /// Finished; `Some(msg)` if the thread body panicked.
    Finished(Option<String>),
}

pub(crate) struct ThreadCtl {
    pub(crate) id: ThreadId,
    pub(crate) name: String,
    pub(crate) daemon: bool,
    pub(crate) group: ThreadGroup,
    /// The owning application's context, set at spawn (inherited from the
    /// spawning thread unless overridden). `None` for system threads.
    pub(crate) app: Option<Arc<AppContext>>,
    interrupted: AtomicBool,
    state: Mutex<RunState>,
    finished: Condvar,
    /// Wakers to invoke on interruption, keyed for O(1)ish removal. The
    /// interrupting thread snapshots the list and calls each waker *after*
    /// releasing this lock, so wakers may freely take their own locks.
    wakers: Mutex<Vec<(u64, InterruptWaker)>>,
    next_waker: AtomicU64,
}

impl ThreadCtl {
    pub(crate) fn new(
        id: ThreadId,
        name: String,
        daemon: bool,
        group: ThreadGroup,
        app: Option<Arc<AppContext>>,
    ) -> Arc<ThreadCtl> {
        Arc::new(ThreadCtl {
            id,
            name,
            daemon,
            group,
            app,
            interrupted: AtomicBool::new(false),
            state: Mutex::new(RunState::Running),
            finished: Condvar::new(),
            wakers: Mutex::new(Vec::new()),
            next_waker: AtomicU64::new(1),
        })
    }

    fn add_waker(self: &Arc<ThreadCtl>, waker: InterruptWaker) -> u64 {
        let id = self.next_waker.fetch_add(1, Ordering::Relaxed);
        self.wakers.lock().push((id, waker));
        id
    }

    fn remove_waker(&self, id: u64) {
        self.wakers.lock().retain(|(wid, _)| *wid != id);
    }

    pub(crate) fn mark_finished(&self, panic_message: Option<String>) {
        *self.state.lock() = RunState::Finished(panic_message);
        self.finished.notify_all();
    }
}

/// A handle to a thread managed by the runtime.
///
/// VM threads are real OS threads with extra bookkeeping: a [`ThreadGroup`]
/// membership, a daemon flag (Fig 1), and a *cooperative interruption* flag.
/// All blocking runtime primitives are interruption points; a thread blocked
/// in one returns [`VmError::Interrupted`] shortly after
/// interruption — this is how the application layer implements "stop all
/// threads" during teardown (paper §5.1) without unsafe thread killing.
///
/// Handles are cheap clones referring to the same thread.
#[derive(Clone)]
pub struct VmThread {
    ctl: Arc<ThreadCtl>,
}

impl VmThread {
    pub(crate) fn from_ctl(ctl: Arc<ThreadCtl>) -> VmThread {
        VmThread { ctl }
    }

    #[cfg(test)]
    pub(crate) fn ctl(&self) -> &Arc<ThreadCtl> {
        &self.ctl
    }

    /// The thread's id.
    pub fn id(&self) -> ThreadId {
        self.ctl.id
    }

    /// The thread's name.
    pub fn name(&self) -> &str {
        &self.ctl.name
    }

    /// Whether the thread is a daemon (Fig 1: daemon threads do not keep the
    /// VM alive).
    pub fn is_daemon(&self) -> bool {
        self.ctl.daemon
    }

    /// The group the thread belongs to.
    pub fn group(&self) -> &ThreadGroup {
        &self.ctl.group
    }

    /// The application context the thread runs under, if any.
    pub fn app_context(&self) -> Option<Arc<AppContext>> {
        self.ctl.app.clone()
    }

    /// Returns `true` while the thread body is still executing.
    pub fn is_alive(&self) -> bool {
        matches!(*self.ctl.state.lock(), RunState::Running)
    }

    /// Returns `true` if the thread has been interrupted.
    pub fn is_interrupted(&self) -> bool {
        self.ctl.interrupted.load(Ordering::SeqCst)
    }

    /// Sets the interruption flag without any access-control check.
    ///
    /// Public callers go through [`crate::Vm::interrupt_thread`], which first
    /// consults the installed security manager (the paper's system security
    /// manager protects threads of one application from another, §5.6).
    pub(crate) fn interrupt_raw(&self) {
        self.ctl.interrupted.store(true, Ordering::SeqCst);
        // Snapshot outside the lock so wakers may take their own locks
        // (an interrupt waker typically locks a queue/pipe state mutex to
        // close the check-then-wait race before notifying).
        let wakers: Vec<InterruptWaker> = self
            .ctl
            .wakers
            .lock()
            .iter()
            .map(|(_, w)| Arc::clone(w))
            .collect();
        for waker in wakers {
            waker();
        }
    }

    /// Waits for the thread to finish.
    ///
    /// # Errors
    ///
    /// [`VmError::Interrupted`] if the *calling* thread is interrupted while
    /// waiting; [`VmError::ThreadPanicked`] if the joined thread's body
    /// panicked.
    pub fn join(&self) -> Result<()> {
        let mut state = self.ctl.state.lock();
        loop {
            match &*state {
                RunState::Finished(None) => return Ok(()),
                RunState::Finished(Some(_)) => {
                    return Err(VmError::ThreadPanicked {
                        thread: self.ctl.name.clone(),
                    })
                }
                RunState::Running => {
                    if current_interrupted() {
                        return Err(VmError::Interrupted);
                    }
                    self.ctl.finished.wait_for(&mut state, BLOCK_POLL);
                }
            }
        }
    }

    /// Waits for the thread to finish, up to `timeout`. Returns `true` if it
    /// finished (even by panicking).
    pub fn join_timeout(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut state = self.ctl.state.lock();
        loop {
            if matches!(*state, RunState::Finished(_)) {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let wait = BLOCK_POLL.min(deadline - now);
            self.ctl.finished.wait_for(&mut state, wait);
        }
    }
}

impl fmt::Debug for VmThread {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VmThread")
            .field("id", &self.ctl.id)
            .field("name", &self.ctl.name)
            .field("daemon", &self.ctl.daemon)
            .field("group", &self.ctl.group.name())
            .field("alive", &self.is_alive())
            .field("interrupted", &self.is_interrupted())
            .finish()
    }
}

impl fmt::Display for VmThread {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.ctl.name, self.ctl.id)
    }
}

// ---------------------------------------------------------------------------
// Current-thread state
// ---------------------------------------------------------------------------

thread_local! {
    static CURRENT: RefCell<Option<Arc<ThreadCtl>>> = const { RefCell::new(None) };
}

/// Binds `ctl` as the current VM thread for the duration of the returned
/// guard (installed by the spawn wrapper in `vm.rs`).
pub(crate) fn enter_thread(ctl: Arc<ThreadCtl>) -> CurrentGuard {
    CURRENT.with(|c| *c.borrow_mut() = Some(ctl));
    CurrentGuard(())
}

pub(crate) struct CurrentGuard(());

impl Drop for CurrentGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = None);
    }
}

/// The current VM thread, or `None` when called from a plain OS thread that
/// the runtime does not manage.
pub fn current() -> Option<VmThread> {
    CURRENT.with(|c| c.borrow().clone().map(VmThread::from_ctl))
}

/// The current VM thread's id, if on a VM thread.
pub fn current_id() -> Option<ThreadId> {
    CURRENT.with(|c| c.borrow().as_ref().map(|ctl| ctl.id))
}

/// The application context of the current thread: the single ownership
/// record every layer reads instead of re-deriving app identity through
/// thread→group walks. `None` on system threads and plain OS threads.
pub fn current_app_context() -> Option<Arc<AppContext>> {
    CURRENT.with(|c| c.borrow().as_ref().and_then(|ctl| ctl.app.clone()))
}

/// Returns `true` if the current thread is a VM thread whose interruption
/// flag is set. Plain OS threads are never interrupted.
pub fn current_interrupted() -> bool {
    CURRENT.with(|c| {
        c.borrow()
            .as_ref()
            .is_some_and(|ctl| ctl.interrupted.load(Ordering::SeqCst))
    })
}

/// Fails with [`VmError::Interrupted`] if the current thread has been
/// interrupted. The flag is *not* cleared: once an application is being torn
/// down, every subsequent blocking call should keep failing. (Deviation from
/// Java, where `InterruptedException` clears the flag; stickiness is what
/// teardown wants, and nothing in the paper depends on re-arming.)
///
/// # Errors
///
/// [`VmError::Interrupted`] when the flag is set.
pub fn check_interrupt() -> Result<()> {
    if current_interrupted() {
        Err(VmError::Interrupted)
    } else {
        Ok(())
    }
}

/// Test-only: runs `f` with the calling thread bound to a VM thread whose
/// interruption flag is already set — for asserting that interpreter
/// safepoints observe interruption without cross-thread timing.
#[cfg(test)]
pub(crate) fn with_interrupted_for_test<T>(f: impl FnOnce() -> T) -> T {
    let ctl = ThreadCtl::new(
        ThreadId(u64::MAX),
        "interrupted-test".into(),
        false,
        ThreadGroup::new_root("test"),
        None,
    );
    VmThread::from_ctl(Arc::clone(&ctl)).interrupt_raw();
    let _guard = enter_thread(ctl);
    f()
}

/// Deregisters an interrupt waker on drop. Returned by
/// [`register_interrupt_waker`]; hold it for exactly the region where the
/// waker's notification is wanted (typically across a condvar wait loop).
#[must_use = "dropping the guard deregisters the waker immediately"]
pub struct InterruptWakerGuard {
    ctl: Option<(Arc<ThreadCtl>, u64)>,
}

impl Drop for InterruptWakerGuard {
    fn drop(&mut self) {
        if let Some((ctl, id)) = self.ctl.take() {
            ctl.remove_waker(id);
        }
    }
}

impl fmt::Debug for InterruptWakerGuard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("InterruptWakerGuard")
            .field("registered", &self.ctl.is_some())
            .finish()
    }
}

/// Registers `waker` to fire when the *current* thread is interrupted,
/// until the returned guard is dropped. On a plain OS thread (which the
/// runtime never interrupts) this is a no-op guard.
///
/// Blocking primitives use this to wait on their condition variable without
/// a timeout: the waker acquires the primitive's state lock and notifies,
/// which cannot be lost as long as the caller re-checks
/// [`check_interrupt`] under that same lock before every wait.
pub fn register_interrupt_waker(waker: InterruptWaker) -> InterruptWakerGuard {
    let ctl = CURRENT.with(|c| c.borrow().clone());
    InterruptWakerGuard {
        ctl: ctl.map(|ctl| {
            let id = ctl.add_waker(waker);
            (ctl, id)
        }),
    }
}

/// Sleeps for `duration`, waking early with an error if interrupted.
///
/// # Errors
///
/// [`VmError::Interrupted`] if the current thread is interrupted before the
/// duration elapses.
pub fn sleep(duration: Duration) -> Result<()> {
    let deadline = Instant::now() + duration;
    loop {
        check_interrupt()?;
        let now = Instant::now();
        if now >= deadline {
            return Ok(());
        }
        std::thread::sleep(BLOCK_POLL.min(deadline - now));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_ctl(id: u64, daemon: bool) -> Arc<ThreadCtl> {
        ThreadCtl::new(
            ThreadId(id),
            format!("test-{id}"),
            daemon,
            ThreadGroup::new_root("g"),
            None,
        )
    }

    #[test]
    fn handle_reports_metadata() {
        let t = VmThread::from_ctl(test_ctl(7, true));
        assert_eq!(t.id(), ThreadId(7));
        assert_eq!(t.name(), "test-7");
        assert!(t.is_daemon());
        assert!(t.is_alive());
        assert!(!t.is_interrupted());
    }

    #[test]
    fn join_returns_after_finish() {
        let ctl = test_ctl(1, false);
        let t = VmThread::from_ctl(Arc::clone(&ctl));
        let waiter = std::thread::spawn(move || t.join());
        std::thread::sleep(Duration::from_millis(10));
        ctl.mark_finished(None);
        waiter.join().unwrap().unwrap();
    }

    #[test]
    fn join_surfaces_panics() {
        let ctl = test_ctl(2, false);
        ctl.mark_finished(Some("boom".into()));
        let t = VmThread::from_ctl(ctl);
        assert!(matches!(
            t.join().unwrap_err(),
            VmError::ThreadPanicked { .. }
        ));
        assert!(!t.is_alive());
    }

    #[test]
    fn join_timeout_expires() {
        let t = VmThread::from_ctl(test_ctl(3, false));
        assert!(!t.join_timeout(Duration::from_millis(10)));
        t.ctl().mark_finished(None);
        assert!(t.join_timeout(Duration::from_millis(10)));
    }

    #[test]
    fn os_threads_are_never_interrupted() {
        assert!(current().is_none());
        assert!(!current_interrupted());
        check_interrupt().unwrap();
    }

    #[test]
    fn enter_thread_binds_current() {
        let ctl = test_ctl(4, false);
        {
            let _guard = enter_thread(Arc::clone(&ctl));
            assert_eq!(current_id(), Some(ThreadId(4)));
            let t = current().unwrap();
            t.interrupt_raw();
            assert!(current_interrupted());
            assert!(check_interrupt().is_err());
        }
        assert!(current().is_none());
    }

    #[test]
    fn sleep_is_interruptible() {
        let ctl = test_ctl(5, false);
        let handle = {
            let ctl = Arc::clone(&ctl);
            std::thread::spawn(move || {
                let _guard = enter_thread(ctl);
                let start = Instant::now();
                let result = sleep(Duration::from_secs(60));
                (result, start.elapsed())
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        VmThread::from_ctl(ctl).interrupt_raw();
        let (result, elapsed) = handle.join().unwrap();
        assert!(matches!(result.unwrap_err(), VmError::Interrupted));
        assert!(elapsed < Duration::from_secs(5));
    }

    #[test]
    fn interrupt_fires_registered_wakers_once_registered() {
        let ctl = test_ctl(6, false);
        let fired = Arc::new(AtomicBool::new(false));
        let handle = {
            let ctl = Arc::clone(&ctl);
            let fired = Arc::clone(&fired);
            std::thread::spawn(move || {
                let _guard = enter_thread(ctl);
                let fired2 = Arc::clone(&fired);
                let guard = register_interrupt_waker(Arc::new(move || {
                    fired2.store(true, Ordering::SeqCst);
                }));
                while !current_interrupted() {
                    std::thread::sleep(Duration::from_millis(1));
                }
                drop(guard);
            })
        };
        std::thread::sleep(Duration::from_millis(10));
        VmThread::from_ctl(Arc::clone(&ctl)).interrupt_raw();
        handle.join().unwrap();
        assert!(fired.load(Ordering::SeqCst), "waker fires on interrupt");
        // After the guard dropped, another interrupt finds no wakers.
        assert!(ctl.wakers.lock().is_empty(), "guard deregisters");
    }

    #[test]
    fn os_threads_get_noop_waker_guards() {
        let guard = register_interrupt_waker(Arc::new(|| {}));
        assert!(guard.ctl.is_none());
    }

    #[test]
    fn sleep_completes_without_interruption() {
        let start = Instant::now();
        sleep(Duration::from_millis(15)).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(14));
    }
}
