use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use jmp_obs::{CacheOutcome, EventKind, ObsHub};
use jmp_security::{AccessController, Permission, Policy};
use parking_lot::{Mutex, RwLock};

use crate::classes::{Class, ClassLoader, MaterialRegistry};
use crate::context::{AppContext, ResourceKind};
use crate::decision_cache::DecisionCache;
use crate::epoch_cell::EpochCell;
use crate::error::VmError;
use crate::group::ThreadGroup;
use crate::properties::Properties;
use crate::stack;
use crate::thread::{self, ThreadCtl, ThreadId, VmThread};
use crate::Result;

/// Resolves the *running user* for the current thread — installed by the
/// multi-processing layer, which maps the current thread to its application
/// and the application to its user (paper §5.2/§5.3). Without a resolver,
/// checks proceed with no user (pure code-source policy, as in stock JDK).
pub type UserResolver = Arc<dyn Fn() -> Option<String> + Send + Sync>;

/// The security manager interface consulted by runtime services (paper
/// §3.3). The multi-processing layer installs its *system security manager*
/// implementing the §5.6 rules; with none installed, thread and member
/// checks are permitted and permission checks fall back to pure stack
/// inspection, matching a stock JVM run without a security manager.
pub trait SecurityManager: Send + Sync {
    /// General permission check (`SecurityManager.checkPermission`).
    ///
    /// # Errors
    ///
    /// [`VmError::Security`] to deny.
    fn check_permission(&self, vm: &Vm, perm: &Permission) -> Result<()>;

    /// May the current thread manipulate (interrupt/join-control) `target`?
    ///
    /// # Errors
    ///
    /// [`VmError::Security`] to deny.
    fn check_thread_access(&self, vm: &Vm, target: &VmThread) -> Result<()> {
        let _ = (vm, target);
        Ok(())
    }

    /// May the current thread create threads in / manipulate `group`?
    ///
    /// # Errors
    ///
    /// [`VmError::Security`] to deny.
    fn check_thread_group_access(&self, vm: &Vm, group: &ThreadGroup) -> Result<()> {
        let _ = (vm, group);
        Ok(())
    }

    /// May the current thread reflectively access non-public members of
    /// `class`? (Paper §5.6: public members are free, non-public members
    /// need permission.)
    ///
    /// # Errors
    ///
    /// [`VmError::Security`] to deny.
    fn check_member_access(&self, vm: &Vm, class: &Class) -> Result<()> {
        let _ = (vm, class);
        Ok(())
    }
}

struct VmInner {
    name: String,
    extensions: RwLock<HashMap<String, Arc<dyn std::any::Any + Send + Sync>>>,
    // The three security roots are epoch-published: every access check
    // reads them, every reload rewrites them, and a single RwLock here is
    // the hottest lock in the VM under an exec storm (see `epoch_cell`).
    policy: Arc<EpochCell<Policy>>,
    properties: Properties,
    material: Arc<MaterialRegistry>,
    system_loader: ClassLoader,
    system_group: ThreadGroup,
    main_group: ThreadGroup,
    threads: RwLock<HashMap<ThreadId, VmThread>>,
    next_thread_id: AtomicU64,
    security_manager: EpochCell<dyn SecurityManager>,
    user_resolver: EpochCell<dyn Fn() -> Option<String> + Send + Sync>,
    decisions: DecisionCache,
    obs: ObsHub,
    shutdown: AtomicBool,
    shutdown_at: Mutex<Option<Instant>>,
    exit_code: Mutex<Option<i32>>,
}

/// The virtual machine: thread and group bookkeeping, the class system, the
/// system properties, the policy, and the Fig-1 lifetime rule ("once all
/// non-daemon threads of an application have finished, the JVM exits").
///
/// Cheap handle; clones refer to the same VM.
#[derive(Clone)]
pub struct Vm {
    inner: Arc<VmInner>,
}

/// Configures and builds a [`Vm`].
pub struct VmBuilder {
    name: String,
    policy: Policy,
    properties: Vec<(String, String)>,
}

impl VmBuilder {
    /// Sets the VM's display name.
    pub fn name(mut self, name: impl Into<String>) -> VmBuilder {
        self.name = name.into();
        self
    }

    /// Sets the security policy.
    pub fn policy(mut self, policy: Policy) -> VmBuilder {
        self.policy = policy;
        self
    }

    /// Overrides or adds a system property.
    pub fn property(mut self, key: impl Into<String>, value: impl Into<String>) -> VmBuilder {
        self.properties.push((key.into(), value.into()));
        self
    }

    /// Builds the VM: creates the `system` root group, the `main` group
    /// beneath it, and the system class loader whose protection domains are
    /// resolved against the policy at class-definition time.
    pub fn build(self) -> Vm {
        let policy = Arc::new(EpochCell::new(Some(Arc::new(self.policy))));
        let resolver_policy = Arc::clone(&policy);
        let material = Arc::new(MaterialRegistry::new());
        let system_loader = ClassLoader::new_system(
            "system",
            Arc::clone(&material),
            Arc::new(move |source| {
                resolver_policy
                    .load()
                    .expect("policy root is always published")
                    .permissions_for(source)
            }),
        );
        let system_group = ThreadGroup::new_root("system");
        let main_group = system_group
            .new_child("main")
            .expect("fresh root group cannot be destroyed");
        let properties = Properties::system_defaults();
        for (k, v) in self.properties {
            properties.set(k, v);
        }
        let obs = ObsHub::new();
        let obs_for_loader = obs.clone();
        system_loader.set_define_observer(Arc::new(move |name, via_reload| {
            let vm_metrics = obs_for_loader.vm_metrics();
            vm_metrics.counter("classes.defined").inc();
            let kind = if via_reload {
                vm_metrics.counter("classes.reloaded").inc();
                EventKind::ClassReloaded
            } else {
                EventKind::ClassDefined
            };
            let app = obs_for_loader.current_app();
            if let Some(registry) = app.and_then(|id| obs_for_loader.existing_app_registry(id)) {
                registry.counter("classes.defined").inc();
                if via_reload {
                    registry.counter("classes.reloaded").inc();
                }
            }
            obs_for_loader.sink().publish(kind, app, None, name);
        }));
        Vm {
            inner: Arc::new(VmInner {
                name: self.name,
                extensions: RwLock::new(HashMap::new()),
                policy,
                properties,
                material,
                system_loader,
                system_group,
                main_group,
                threads: RwLock::new(HashMap::new()),
                next_thread_id: AtomicU64::new(1),
                security_manager: EpochCell::new(None),
                user_resolver: EpochCell::new(None),
                decisions: DecisionCache::new(),
                obs,
                shutdown: AtomicBool::new(false),
                shutdown_at: Mutex::new(None),
                exit_code: Mutex::new(None),
            }),
        }
    }
}

thread_local! {
    static CURRENT_VM: RefCell<Option<Vm>> = const { RefCell::new(None) };
}

impl Vm {
    /// Starts building a VM.
    pub fn builder() -> VmBuilder {
        VmBuilder {
            name: "jmp".into(),
            policy: Policy::new(),
            properties: Vec::new(),
        }
    }

    /// Builds a VM with defaults (empty policy, default properties).
    pub fn new() -> Vm {
        Vm::builder().build()
    }

    /// The VM executing on the current thread, if this is a VM thread.
    pub fn current() -> Option<Vm> {
        CURRENT_VM.with(|c| c.borrow().clone())
    }

    /// The VM's display name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Returns `true` if `other` is a handle to the same VM.
    pub fn same_vm(&self, other: &Vm) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Attaches a named extension object to the VM. Used by higher layers
    /// (e.g. the multi-processing runtime) to make themselves discoverable
    /// from any VM thread via [`Vm::current`]. Requires
    /// `RuntimePermission("setVmExtension")`.
    ///
    /// # Errors
    ///
    /// [`VmError::Security`] if the caller lacks the permission.
    pub fn set_extension(
        &self,
        name: impl Into<String>,
        value: Arc<dyn std::any::Any + Send + Sync>,
    ) -> Result<()> {
        self.check_permission(&Permission::runtime("setVmExtension"))?;
        self.inner.extensions.write().insert(name.into(), value);
        Ok(())
    }

    /// Fetches a typed extension previously attached with
    /// [`Vm::set_extension`].
    pub fn extension<T: Send + Sync + 'static>(&self, name: &str) -> Option<Arc<T>> {
        self.inner
            .extensions
            .read()
            .get(name)
            .cloned()?
            .downcast::<T>()
            .ok()
    }

    /// The VM's observability hub: the event stream, the per-application
    /// metrics registries, and the security audit trail. Reading it is free
    /// at this layer; the multi-processing runtime gates read-out behind
    /// `RuntimePermission("readMetrics")` / `RuntimePermission("readAuditLog")`.
    pub fn obs(&self) -> &ObsHub {
        &self.inner.obs
    }

    // -- policy & security ---------------------------------------------------

    /// The current security policy.
    pub fn policy(&self) -> Arc<Policy> {
        self.inner
            .policy
            .load()
            .expect("policy root is always published")
    }

    /// Replaces the policy. Requires `RuntimePermission("setPolicy")`.
    ///
    /// The publication never queues behind in-flight checks (see
    /// [`EpochCell`]), so a reload completes even while every other thread
    /// spins on cold checks. Any lazily cached per-user grants attached to
    /// the incoming policy are invalidated before it is published, and the
    /// decision-cache epoch is bumped after — together with the
    /// capture-epoch-before-walk rule in [`Vm::access_check`], no
    /// pre-reload decision or grant set can serve a post-reload check.
    ///
    /// # Errors
    ///
    /// [`VmError::Security`] if the caller lacks the permission.
    pub fn set_policy(&self, policy: Policy) -> Result<()> {
        self.check_permission(&Permission::runtime("setPolicy"))?;
        policy.invalidate_user_store();
        self.inner.policy.store(Some(Arc::new(policy)));
        self.flush_access_cache();
        Ok(())
    }

    /// Drops every cached access-control decision by bumping the cache
    /// epoch. Called automatically by [`Vm::set_policy`],
    /// [`Vm::set_security_manager`] and [`Vm::set_user_resolver`]; exposed
    /// for benchmarks and tests that need a cold cache on an unchanged
    /// policy.
    pub fn flush_access_cache(&self) {
        self.inner.decisions.invalidate();
        self.inner.obs.record_access_cache_invalidation();
    }

    /// Pure stack-inspection check against the policy, combining user-based
    /// grants (paper §5.3) via the installed user resolver. This is what
    /// security-manager implementations delegate to — the analogue of
    /// `AccessController.checkPermission`.
    ///
    /// The warm path is O(1): the stack is reduced to a [fingerprint of the
    /// visible domain set](stack::probe_fingerprint) without snapshotting a
    /// context, and a granted decision cached for `(fingerprint, demand,
    /// running user)` under the current policy epoch is returned directly.
    /// Denials are never cached — every denial re-runs the full walk so the
    /// audit record names exactly the refusing domain.
    ///
    /// # Errors
    ///
    /// [`VmError::Security`] naming the refusing domain.
    pub fn access_check(&self, perm: &Permission) -> Result<()> {
        let started = Instant::now();
        let (fingerprint, depth) = stack::probe_fingerprint();
        if fingerprint.unique == 0 {
            // Empty visible domain set: only runtime-internal code executes,
            // which is fully trusted. No context, no policy, no cache.
            let latency_ns = started.elapsed().as_nanos() as u64;
            self.inner.obs.record_access_check(
                "",
                None,
                depth,
                None,
                latency_ns,
                CacheOutcome::Bypass,
            );
            return Ok(());
        }
        // Capture the epoch before consulting anything the epoch guards
        // (user resolver, policy): if a reload races this check, the stale
        // insert below can never serve a post-reload lookup.
        let epoch = self.inner.decisions.epoch();
        let user = self.current_user();
        // Per-site inline cache: when this check was triggered from inside
        // an interpreted `CallNative` site, the site remembers its last
        // grant, so a warm repeat is answered by one epoch/fingerprint
        // compare — before even hashing into the shared decision cache.
        if crate::decision_cache::site_check(
            epoch,
            fingerprint,
            perm,
            user.as_deref(),
            self.inner.obs.demands(),
        ) {
            let latency_ns = started.elapsed().as_nanos() as u64;
            self.inner.obs.record_access_check(
                "",
                None,
                depth,
                user.as_deref(),
                latency_ns,
                CacheOutcome::Hit,
            );
            return Ok(());
        }
        // A hit also bumps the demand-ledger cell captured when the decision
        // was first derived (one relaxed fetch_add inside the lookup), so
        // the always-on ledger adds no hashing, strings, or clock here.
        // With a native site active, the hit additionally primes the site's
        // inline cache (carrying the cell along) for the next repeat.
        let shared_hit = if crate::decision_cache::has_active_site() {
            match self.inner.decisions.lookup_granted_with_cell(
                fingerprint,
                perm,
                user.as_deref(),
                self.inner.obs.demands(),
            ) {
                Some(cell) => {
                    crate::decision_cache::site_store(
                        epoch,
                        fingerprint,
                        perm,
                        user.as_deref(),
                        cell,
                    );
                    true
                }
                None => false,
            }
        } else {
            self.inner.decisions.lookup_granted(
                fingerprint,
                perm,
                user.as_deref(),
                self.inner.obs.demands(),
            )
        };
        if shared_hit {
            let latency_ns = started.elapsed().as_nanos() as u64;
            self.inner.obs.record_access_check(
                "",
                None,
                depth,
                user.as_deref(),
                latency_ns,
                CacheOutcome::Hit,
            );
            return Ok(());
        }
        let ctx = stack::current_access_context();
        let ledger = self.inner.obs.demands();
        let mut routes = Vec::new();
        let result = if ledger.enabled() {
            AccessController::check_with_routes(
                &ctx,
                perm,
                user.as_deref(),
                &self.policy(),
                &mut routes,
            )
        } else {
            AccessController::check_with(&ctx, perm, user.as_deref(), &self.policy())
        };
        let latency_ns = started.elapsed().as_nanos() as u64;
        // The hub only reads the permission/context strings on a denial, so
        // the granted (hot) path skips both display allocations. The demand
        // ledger *does* format the permission here — but only on the slow
        // (full-walk) path, never on a warm hit.
        match &result {
            Ok(()) => {
                let demand_cell = if routes.is_empty() {
                    // Every visible domain was fully trusted: no policy
                    // grant was exercised, so there is nothing to infer.
                    None
                } else {
                    let at_ms = self.inner.obs.clock().millis_of(started);
                    let app = self.inner.obs.current_app();
                    let permission = perm.to_string();
                    let mut first_cell = None;
                    for route in &routes {
                        let cell = ledger.record(
                            app,
                            &route.source,
                            user.as_deref(),
                            &permission,
                            true,
                            route.via_user,
                            at_ms,
                        );
                        // Warm hits bump only the first route's cell; rows
                        // for further domains on the same stack keep their
                        // first-walk counts (existence, not exact totals, is
                        // what inference needs from them).
                        if first_cell.is_none() {
                            first_cell = cell;
                        }
                    }
                    first_cell
                };
                self.inner.decisions.insert_granted(
                    fingerprint,
                    perm,
                    user.as_deref(),
                    epoch,
                    demand_cell.clone(),
                );
                // Prime the triggering native call site's inline cache
                // (no-op when the check came from outside the interpreter).
                crate::decision_cache::site_store(
                    epoch,
                    fingerprint,
                    perm,
                    user.as_deref(),
                    demand_cell,
                );
                self.inner.obs.record_access_check(
                    "",
                    None,
                    depth,
                    user.as_deref(),
                    latency_ns,
                    CacheOutcome::Miss,
                );
            }
            Err(err) => {
                if let Some(refused) = routes.iter().find(|r| r.refused) {
                    ledger.record(
                        self.inner.obs.current_app(),
                        &refused.source,
                        user.as_deref(),
                        &perm.to_string(),
                        false,
                        false,
                        self.inner.obs.clock().millis_of(started),
                    );
                }
                self.inner.obs.record_access_check(
                    &perm.to_string(),
                    Some(&err.to_string()),
                    depth,
                    user.as_deref(),
                    latency_ns,
                    CacheOutcome::Bypass,
                );
            }
        }
        result?;
        Ok(())
    }

    /// Clears the demand ledger and flushes the access cache. The flush is
    /// mandatory, not hygiene: cached decisions hold `Arc` handles to ledger
    /// cells, and bumping a cell from a cleared ledger would count demands
    /// into rows no report can see.
    pub fn reset_demands(&self) {
        self.inner.obs.demands().reset();
        self.flush_access_cache();
    }

    /// Full permission check: consults the installed security manager, or
    /// falls back to [`Vm::access_check`] when none is installed.
    ///
    /// # Errors
    ///
    /// [`VmError::Security`] to deny.
    pub fn check_permission(&self, perm: &Permission) -> Result<()> {
        match self.inner.security_manager.load() {
            Some(sm) => sm.check_permission(self, perm),
            None => self.access_check(perm),
        }
    }

    /// The installed security manager, if any.
    pub fn security_manager(&self) -> Option<Arc<dyn SecurityManager>> {
        self.inner.security_manager.load()
    }

    /// Installs a security manager. Requires
    /// `RuntimePermission("setSecurityManager")`.
    ///
    /// # Errors
    ///
    /// [`VmError::Security`] if the caller lacks the permission.
    pub fn set_security_manager(&self, sm: Arc<dyn SecurityManager>) -> Result<()> {
        self.check_permission(&Permission::runtime("setSecurityManager"))?;
        self.inner.security_manager.store(Some(sm));
        self.flush_access_cache();
        Ok(())
    }

    /// The running user for the current thread, per the installed resolver.
    pub fn current_user(&self) -> Option<String> {
        self.inner.user_resolver.load().and_then(|r| r())
    }

    /// Installs the user resolver. Requires
    /// `RuntimePermission("setUserResolver")`.
    ///
    /// # Errors
    ///
    /// [`VmError::Security`] if the caller lacks the permission.
    pub fn set_user_resolver(&self, resolver: UserResolver) -> Result<()> {
        self.check_permission(&Permission::runtime("setUserResolver"))?;
        self.inner.user_resolver.store(Some(resolver));
        self.flush_access_cache();
        Ok(())
    }

    // -- classes -------------------------------------------------------------

    /// The shared class-material registry (the "class path").
    pub fn material(&self) -> &Arc<MaterialRegistry> {
        &self.inner.material
    }

    /// The system class loader.
    pub fn system_loader(&self) -> &ClassLoader {
        &self.inner.system_loader
    }

    /// Creates a child class loader of `parent`. Requires
    /// `RuntimePermission("createClassLoader")`.
    ///
    /// # Errors
    ///
    /// [`VmError::Security`] if the caller lacks the permission.
    pub fn create_loader(&self, name: &str, parent: &ClassLoader) -> Result<ClassLoader> {
        self.check_permission(&Permission::runtime("createClassLoader"))?;
        Ok(parent.new_child(name))
    }

    // -- properties ----------------------------------------------------------

    /// The JVM-wide system properties (shared by all applications; see the
    /// paper's `SystemProperties` discussion, §5.5 and Fig 5).
    pub fn properties(&self) -> &Properties {
        &self.inner.properties
    }

    // -- groups & threads ----------------------------------------------------

    /// The root (`system`) thread group: runtime helper threads live here,
    /// not in any application's group (paper Feature 6 / §5.4).
    pub fn system_group(&self) -> &ThreadGroup {
        &self.inner.system_group
    }

    /// The `main` group, beneath which application groups are created.
    pub fn main_group(&self) -> &ThreadGroup {
        &self.inner.main_group
    }

    /// Starts configuring a new VM thread.
    pub fn thread_builder(&self) -> ThreadBuilder {
        ThreadBuilder {
            vm: self.clone(),
            name: None,
            group: None,
            daemon: false,
            app: None,
            detach_app: false,
        }
    }

    /// Live threads, sorted by id.
    pub fn threads(&self) -> Vec<VmThread> {
        let mut threads: Vec<VmThread> = self.inner.threads.read().values().cloned().collect();
        threads.sort_by_key(VmThread::id);
        threads
    }

    /// Looks up a live thread by id.
    pub fn find_thread(&self, id: ThreadId) -> Option<VmThread> {
        self.inner.threads.read().get(&id).cloned()
    }

    /// Number of live threads.
    pub fn thread_count(&self) -> usize {
        self.inner.threads.read().len()
    }

    /// Interrupts `target`, after consulting the security manager's
    /// thread-access rule (paper §5.6).
    ///
    /// # Errors
    ///
    /// [`VmError::Security`] if access to the target thread is denied.
    pub fn interrupt_thread(&self, target: &VmThread) -> Result<()> {
        if let Some(sm) = self.security_manager() {
            sm.check_thread_access(self, target)?;
        }
        target.interrupt_raw();
        Ok(())
    }

    // -- running applications (single-application mode, paper §3.1) ----------

    /// Loads `class_name` through the system loader and spawns a non-daemon
    /// thread in the `main` group running its `main(args)` — what `java
    /// MyClass` does (paper §3.1). If `main` returns an error the thread
    /// panics with it, surfacing through [`VmThread::join`].
    ///
    /// # Errors
    ///
    /// [`VmError::ClassNotFound`]/[`VmError::NoMainMethod`] for bad classes;
    /// spawn errors otherwise.
    pub fn run_class(&self, class_name: &str, args: Vec<String>) -> Result<VmThread> {
        let class = self.inner.system_loader.load_class(class_name)?;
        let thread_name = format!("main:{class_name}");
        self.thread_builder()
            .name(thread_name)
            .group(self.inner.main_group.clone())
            .spawn(move |_vm| {
                if let Err(err) = class.run_main(args) {
                    panic!("uncaught exception in main: {err}");
                }
            })
    }

    /// Runs `class_name` to completion: [`Vm::run_class`] followed by
    /// [`Vm::await_termination`].
    ///
    /// # Errors
    ///
    /// As [`Vm::run_class`].
    pub fn run(&self, class_name: &str, args: Vec<String>) -> Result<i32> {
        self.run_class(class_name, args)?;
        Ok(self.await_termination())
    }

    /// Blocks until no non-daemon threads remain anywhere in the VM (Fig 1),
    /// or until a [`Vm::exit`] grace period expires. Returns the exit code
    /// (0 unless [`Vm::exit`] supplied one).
    pub fn await_termination(&self) -> i32 {
        const EXIT_GRACE: Duration = Duration::from_secs(2);
        loop {
            if self
                .inner
                .system_group
                .wait_nondaemon_zero(Duration::from_millis(20))
            {
                break;
            }
            if self.inner.shutdown.load(Ordering::SeqCst) {
                let expired = self
                    .inner
                    .shutdown_at
                    .lock()
                    .is_none_or(|at| at.elapsed() > EXIT_GRACE);
                if expired {
                    break;
                }
            }
        }
        self.inner.exit_code.lock().unwrap_or(0)
    }

    /// Returns `true` once [`Vm::exit`] has been called.
    pub fn is_shutdown(&self) -> bool {
        self.inner.shutdown.load(Ordering::SeqCst)
    }

    /// Stops the VM: requires `RuntimePermission("exitVM")` — the check whose
    /// *absence* of scoping the paper criticizes ("an application can exit
    /// the virtual machine by calling `System.exit()`, since the 'system' is
    /// the same as the application", §4). The multi-processing layer maps
    /// applications' exits to `Application.exit` instead and reserves this
    /// for the system.
    ///
    /// # Errors
    ///
    /// [`VmError::Security`] if the caller lacks the permission.
    pub fn exit(&self, code: i32) -> Result<()> {
        self.check_permission(&Permission::runtime("exitVM"))?;
        self.exit_unchecked(code);
        Ok(())
    }

    /// Stops the VM without a permission check (bootstrap/host use).
    pub fn exit_unchecked(&self, code: i32) {
        {
            let mut exit_code = self.inner.exit_code.lock();
            if exit_code.is_none() {
                *exit_code = Some(code);
            }
        }
        if !self.inner.shutdown.swap(true, Ordering::SeqCst) {
            *self.inner.shutdown_at.lock() = Some(Instant::now());
        }
        for thread in self.threads() {
            thread.interrupt_raw();
        }
    }
}

impl Default for Vm {
    fn default() -> Vm {
        Vm::new()
    }
}

impl fmt::Debug for Vm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Vm")
            .field("name", &self.inner.name)
            .field("threads", &self.thread_count())
            .field("nondaemon", &self.inner.system_group.nondaemon_count())
            .field("shutdown", &self.is_shutdown())
            .finish()
    }
}

/// Builder for VM threads (see [`Vm::thread_builder`]).
pub struct ThreadBuilder {
    vm: Vm,
    name: Option<String>,
    group: Option<ThreadGroup>,
    daemon: bool,
    app: Option<Arc<AppContext>>,
    detach_app: bool,
}

impl ThreadBuilder {
    /// Names the thread.
    pub fn name(mut self, name: impl Into<String>) -> ThreadBuilder {
        self.name = Some(name.into());
        self
    }

    /// Puts the thread in `group`. Defaults to the spawning VM thread's
    /// group ("created in whatever thread group happens to be current",
    /// paper §4), or the `main` group when spawning from a non-VM thread.
    pub fn group(mut self, group: ThreadGroup) -> ThreadBuilder {
        self.group = Some(group);
        self
    }

    /// Marks the thread daemon (default: non-daemon).
    pub fn daemon(mut self, daemon: bool) -> ThreadBuilder {
        self.daemon = daemon;
        self
    }

    /// Runs the thread under `app`'s ownership: the thread carries the
    /// context (readable via [`thread::current_app_context`]) and counts
    /// against the application's thread quota. Defaults to the spawning
    /// thread's own context, so application threads propagate ownership to
    /// everything they spawn.
    pub fn app_context(mut self, app: Arc<AppContext>) -> ThreadBuilder {
        self.app = Some(app);
        self
    }

    /// Detaches the thread from application ownership even when spawned by
    /// an application thread: it carries no [`AppContext`] and is charged to
    /// no ledger. For runtime-infrastructure threads (the toolkit's
    /// X-connection thread, watchdogs) that happen to be started lazily from
    /// whatever application touched the facility first — billing a VM-lifetime
    /// helper to that application would leak a thread slot the application
    /// can never drain.
    pub fn detached(mut self) -> ThreadBuilder {
        self.detach_app = true;
        self
    }

    /// Spawns the thread. The body receives the VM handle; its protection
    /// context inherits the spawning thread's access-control context, as in
    /// the JDK.
    ///
    /// # Errors
    ///
    /// [`VmError::VmShutdown`] if the VM is stopping;
    /// [`VmError::Security`] if the security manager denies access to the
    /// target group; [`VmError::IllegalState`] if the group is destroyed.
    pub fn spawn(self, body: impl FnOnce(Vm) + Send + 'static) -> Result<VmThread> {
        let vm = self.vm;
        if vm.inner.shutdown.load(Ordering::SeqCst) {
            return Err(VmError::VmShutdown);
        }
        let group = match self.group {
            Some(group) => group,
            None => match thread::current() {
                Some(current) => current.group().clone(),
                None => vm.inner.main_group.clone(),
            },
        };
        if let Some(sm) = vm.security_manager() {
            sm.check_thread_group_access(&vm, &group)?;
        }
        // Ownership propagates: a thread spawned by an application thread
        // belongs to that application unless explicitly re-homed or detached.
        let app = if self.detach_app {
            None
        } else {
            self.app.or_else(thread::current_app_context)
        };
        if let Some(app) = &app {
            app.try_charge(ResourceKind::Threads, 1)?;
        }
        let id = ThreadId(vm.inner.next_thread_id.fetch_add(1, Ordering::Relaxed));
        let name = self.name.unwrap_or_else(|| format!("thread-{}", id.0));
        let ctl = ThreadCtl::new(id, name.clone(), self.daemon, group.clone(), app.clone());
        if let Err(err) = group.register_thread(id, self.daemon) {
            if let Some(app) = &app {
                app.uncharge(ResourceKind::Threads, 1);
            }
            return Err(err);
        }
        let handle = VmThread::from_ctl(Arc::clone(&ctl));
        vm.inner.threads.write().insert(id, handle.clone());

        let inherited = stack::capture_context();
        // Like the access-control context, the trace context crosses the
        // spawn: work the child does stays causally attached to the trace
        // that requested it.
        let inherited_trace = jmp_obs::trace::current();
        let vm_for_thread = vm.clone();
        let daemon = self.daemon;
        let spawn_result = std::thread::Builder::new().name(name).spawn(move || {
            let _guard = thread::enter_thread(Arc::clone(&ctl));
            CURRENT_VM.with(|c| *c.borrow_mut() = Some(vm_for_thread.clone()));
            stack::set_inherited(inherited);
            jmp_obs::trace::install(inherited_trace);
            let outcome = catch_unwind(AssertUnwindSafe(|| body(vm_for_thread.clone())));
            let panic_message = outcome.err().map(|payload| {
                payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                    .unwrap_or_else(|| "unknown panic".to_string())
            });
            jmp_obs::trace::clear();
            stack::clear();
            crate::profloc::clear();
            CURRENT_VM.with(|c| *c.borrow_mut() = None);
            vm_for_thread.inner.threads.write().remove(&id);
            // Release the ledger slot *before* deregistering: the group's
            // empty hook can trigger a reap that observes the ledger, and a
            // drained app must read as drained by then.
            if let Some(app) = &ctl.app {
                app.uncharge(ResourceKind::Threads, 1);
            }
            group.deregister_thread(id, daemon);
            ctl.mark_finished(panic_message);
        });
        match spawn_result {
            Ok(_join) => Ok(handle),
            Err(err) => {
                // Roll back bookkeeping if the OS refused the thread.
                vm.inner.threads.write().remove(&id);
                handle.group().deregister_thread(id, daemon);
                if let Some(app) = &app {
                    app.uncharge(ResourceKind::Threads, 1);
                }
                Err(VmError::Io {
                    message: format!("OS thread spawn failed: {err}"),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::ClassDef;
    use jmp_security::CodeSource;
    use std::sync::atomic::AtomicUsize;

    fn vm_with_class(
        name: &str,
        main: impl Fn(Vec<String>) -> Result<()> + Send + Sync + 'static,
    ) -> Vm {
        let vm = Vm::builder().name("test-vm").build();
        vm.material()
            .register(
                ClassDef::builder(name).main(main).build(),
                CodeSource::local("file:/sys/classes"),
            )
            .unwrap();
        vm
    }

    #[test]
    fn run_class_to_completion() {
        static RAN: AtomicUsize = AtomicUsize::new(0);
        let vm = vm_with_class("Hello", |args| {
            assert_eq!(args, vec!["world".to_string()]);
            RAN.fetch_add(1, Ordering::SeqCst);
            Ok(())
        });
        let code = vm.run("Hello", vec!["world".into()]).unwrap();
        assert_eq!(code, 0);
        assert_eq!(RAN.load(Ordering::SeqCst), 1);
        assert_eq!(vm.thread_count(), 0);
    }

    #[test]
    fn vm_stays_alive_while_nondaemon_runs() {
        let vm = vm_with_class("Sleeper", |_| {
            thread::sleep(Duration::from_millis(50))?;
            Ok(())
        });
        let start = Instant::now();
        vm.run("Sleeper", vec![]).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(45));
    }

    #[test]
    fn daemon_threads_do_not_block_termination() {
        // Fig 1: the VM exits even though a daemon thread still runs.
        let vm = vm_with_class("SpawnsDaemon", |_| {
            let vm = Vm::current().expect("on a VM thread");
            vm.thread_builder()
                .name("background")
                .daemon(true)
                .spawn(|_| {
                    // Runs "forever" — until the VM stops caring.
                    let _ = thread::sleep(Duration::from_secs(600));
                })
                .unwrap();
            Ok(())
        });
        let start = Instant::now();
        vm.run("SpawnsDaemon", vec![]).unwrap();
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "daemon thread must not keep the VM alive"
        );
    }

    #[test]
    fn nondaemon_spawned_thread_keeps_vm_alive() {
        static DONE: AtomicUsize = AtomicUsize::new(0);
        let vm = vm_with_class("SpawnsWorker", |_| {
            let vm = Vm::current().unwrap();
            vm.thread_builder()
                .name("worker")
                .spawn(|_| {
                    thread::sleep(Duration::from_millis(60)).unwrap();
                    DONE.fetch_add(1, Ordering::SeqCst);
                })
                .unwrap();
            Ok(())
        });
        vm.run("SpawnsWorker", vec![]).unwrap();
        assert_eq!(
            DONE.load(Ordering::SeqCst),
            1,
            "VM must wait for the non-daemon worker (Fig 1)"
        );
    }

    #[test]
    fn spawned_thread_inherits_group_of_spawner() {
        let vm = Vm::new();
        let custom = vm.main_group().new_child("custom").unwrap();
        let vm2 = vm.clone();
        let t = vm
            .thread_builder()
            .group(custom.clone())
            .name("outer")
            .spawn(move |_| {
                let inner = vm2.thread_builder().name("inner").spawn(|_| {}).unwrap();
                assert_eq!(inner.group().name(), "custom");
                inner.join().unwrap();
            })
            .unwrap();
        t.join().unwrap();
        assert!(custom.same_group(t.group()));
    }

    #[test]
    fn exit_interrupts_everything() {
        let vm = vm_with_class("Stuck", |_| {
            // Blocks forever unless interrupted.
            match thread::sleep(Duration::from_secs(600)) {
                Err(VmError::Interrupted) => Ok(()),
                other => panic!("expected interruption, got {other:?}"),
            }
        });
        let t = vm.run_class("Stuck", vec![]).unwrap();
        std::thread::sleep(Duration::from_millis(20));
        vm.exit_unchecked(3);
        assert_eq!(vm.await_termination(), 3);
        t.join().unwrap();
    }

    #[test]
    fn exit_requires_permission_for_untrusted_code() {
        let vm = Vm::new();
        // On a plain OS thread the stack is empty => trusted; simulate an
        // untrusted caller with an explicit frame.
        let untrusted = Arc::new(jmp_security::ProtectionDomain::untrusted(
            CodeSource::remote("http://evil/x"),
        ));
        let denied = stack::call_as("Evil", untrusted, || vm.exit(1));
        assert!(denied.unwrap_err().is_security());
        assert!(!vm.is_shutdown());
        // Trusted (empty stack) callers may exit.
        vm.exit(0).unwrap();
        assert!(vm.is_shutdown());
    }

    #[test]
    fn run_class_missing_is_class_not_found() {
        let vm = Vm::new();
        assert!(matches!(
            vm.run_class("Nope", vec![]).unwrap_err(),
            VmError::ClassNotFound { .. }
        ));
    }

    #[test]
    fn main_error_surfaces_as_thread_panic() {
        let vm = vm_with_class("Fails", |_| Err(VmError::illegal_state("deliberate")));
        let t = vm.run_class("Fails", vec![]).unwrap();
        assert!(matches!(
            t.join().unwrap_err(),
            VmError::ThreadPanicked { .. }
        ));
        vm.await_termination();
    }

    #[test]
    fn spawn_after_shutdown_is_rejected() {
        let vm = Vm::new();
        vm.exit_unchecked(0);
        assert!(matches!(
            vm.thread_builder().spawn(|_| {}).unwrap_err(),
            VmError::VmShutdown
        ));
    }

    #[test]
    fn current_vm_is_visible_inside_threads() {
        let vm = Vm::new();
        let vm2 = vm.clone();
        let t = vm
            .thread_builder()
            .spawn(move |vm_arg| {
                assert!(vm_arg.same_vm(&Vm::current().unwrap()));
                assert!(vm_arg.same_vm(&vm2));
            })
            .unwrap();
        t.join().unwrap();
        assert!(Vm::current().is_none(), "not set on non-VM threads");
    }

    #[test]
    fn threads_listing_and_lookup() {
        let vm = Vm::new();
        let t = vm
            .thread_builder()
            .name("lister")
            .spawn(|_| {
                thread::sleep(Duration::from_millis(50)).unwrap();
            })
            .unwrap();
        assert_eq!(vm.thread_count(), 1);
        assert_eq!(vm.threads()[0].name(), "lister");
        assert!(vm.find_thread(t.id()).is_some());
        t.join().unwrap();
        assert_eq!(vm.thread_count(), 0);
        assert!(vm.find_thread(t.id()).is_none());
    }

    #[test]
    fn security_manager_gates_thread_spawn_and_interrupt() {
        struct DenyAll;
        impl SecurityManager for DenyAll {
            fn check_permission(&self, _vm: &Vm, perm: &Permission) -> Result<()> {
                // Allow installing the manager itself and misc checks.
                if matches!(perm, Permission::Runtime(t) if t == "setSecurityManager") {
                    Ok(())
                } else {
                    Err(VmError::Security(jmp_security::SecurityError::denied(
                        perm, "DenyAll",
                    )))
                }
            }
            fn check_thread_access(&self, _vm: &Vm, target: &VmThread) -> Result<()> {
                Err(VmError::Security(jmp_security::SecurityError::denied(
                    &Permission::runtime("modifyThread"),
                    format!("DenyAll for {}", target.name()),
                )))
            }
            fn check_thread_group_access(&self, _vm: &Vm, _group: &ThreadGroup) -> Result<()> {
                Err(VmError::Security(jmp_security::SecurityError::denied(
                    &Permission::runtime("modifyThreadGroup"),
                    "DenyAll",
                )))
            }
        }
        let vm = Vm::new();
        let victim = vm
            .thread_builder()
            .name("victim")
            .daemon(true)
            .spawn(|_| {
                let _ = thread::sleep(Duration::from_secs(600));
            })
            .unwrap();
        vm.set_security_manager(Arc::new(DenyAll)).unwrap();
        assert!(vm.thread_builder().spawn(|_| {}).unwrap_err().is_security());
        assert!(vm.interrupt_thread(&victim).unwrap_err().is_security());
        assert!(!victim.is_interrupted());
        victim.interrupt_raw();
    }

    #[test]
    fn user_resolver_feeds_access_checks() {
        use jmp_security::{FileActions, PermissionCollection};
        let mut policy = Policy::new();
        policy.grant_user(
            "alice",
            vec![Permission::file("/home/alice/-", FileActions::ALL)],
        );
        policy.grant_code(
            CodeSource::local("file:/apps/-"),
            vec![Permission::exercise_user_permissions()],
        );
        let vm = Vm::builder().policy(policy).build();
        vm.set_user_resolver(Arc::new(|| Some("alice".to_string())))
            .unwrap();

        let editor = Arc::new(jmp_security::ProtectionDomain::new(
            CodeSource::local("file:/apps/editor"),
            vm.policy()
                .permissions_for(&CodeSource::local("file:/apps/editor")),
        ));
        let alice_file = Permission::file("/home/alice/notes", FileActions::READ);
        stack::call_as("Editor", editor, || {
            vm.check_permission(&alice_file).unwrap();
            vm.check_permission(&Permission::file("/home/bob/notes", FileActions::READ))
                .unwrap_err();
        });

        // Untrusted code can't exercise alice's grants.
        let applet = Arc::new(jmp_security::ProtectionDomain::new(
            CodeSource::remote("http://applets/x"),
            PermissionCollection::new(),
        ));
        stack::call_as("Applet", applet, || {
            assert!(vm.check_permission(&alice_file).unwrap_err().is_security());
        });
    }

    #[test]
    fn extensions_are_typed_and_permission_gated() {
        let vm = Vm::new();
        vm.set_extension("answer", Arc::new(42u32)).unwrap();
        assert_eq!(*vm.extension::<u32>("answer").unwrap(), 42);
        assert!(vm.extension::<String>("answer").is_none(), "typed lookup");
        assert!(vm.extension::<u32>("missing").is_none());

        // Untrusted code may not attach extensions.
        let untrusted = Arc::new(jmp_security::ProtectionDomain::untrusted(
            CodeSource::remote("http://evil/x"),
        ));
        let denied = stack::call_as("Evil", untrusted, || {
            vm.set_extension("evil", Arc::new(1u8))
        });
        assert!(denied.unwrap_err().is_security());
        assert!(vm.extension::<u8>("evil").is_none());
    }

    #[test]
    fn create_loader_requires_permission() {
        let vm = Vm::new();
        // Trusted (host) context: allowed.
        let child = vm.create_loader("child", vm.system_loader()).unwrap();
        assert_eq!(child.parent().unwrap().id(), vm.system_loader().id());
        // Untrusted frame: denied.
        let untrusted = Arc::new(jmp_security::ProtectionDomain::untrusted(
            CodeSource::remote("http://evil/x"),
        ));
        let denied = stack::call_as("Evil", untrusted, || {
            vm.create_loader("evil", vm.system_loader())
        });
        assert!(denied.unwrap_err().is_security());
    }

    #[test]
    fn set_policy_requires_permission() {
        let vm = Vm::new();
        let untrusted = Arc::new(jmp_security::ProtectionDomain::untrusted(
            CodeSource::remote("http://evil/x"),
        ));
        let denied = stack::call_as("Evil", untrusted, || vm.set_policy(Policy::new()));
        assert!(denied.unwrap_err().is_security());
        // Host context may replace the policy.
        let mut policy = Policy::new();
        policy.grant_user("alice", vec![Permission::runtime("x")]);
        vm.set_policy(policy).unwrap();
        assert!(vm.policy().user_implies("alice", &Permission::runtime("x")));
    }

    #[test]
    fn access_checks_feed_the_obs_hub() {
        let vm = Vm::new();
        // Empty stack => trusted => granted.
        vm.check_permission(&Permission::runtime("harmless"))
            .unwrap();
        let untrusted = Arc::new(jmp_security::ProtectionDomain::untrusted(
            CodeSource::remote("http://evil/x"),
        ));
        stack::call_as("Evil", untrusted, || {
            assert!(vm
                .check_permission(&Permission::runtime("forbidden"))
                .is_err());
        });
        let metrics = vm.obs().vm_metrics();
        assert_eq!(metrics.counter("security.checks").get(), 2);
        assert_eq!(metrics.counter("security.denied").get(), 1);
        assert_eq!(metrics.histogram("security.check_ns").count(), 2);
        let denials = vm.obs().audit().recent();
        assert_eq!(denials.len(), 1, "only the denial is audited");
        assert!(denials[0].permission.contains("forbidden"));
        let events = vm.obs().sink().recent();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, EventKind::AccessDenied);
    }

    #[test]
    fn warm_checks_hit_the_decision_cache() {
        use jmp_security::FileActions;
        let mut policy = Policy::new();
        policy.grant_code(
            CodeSource::local("file:/apps/-"),
            vec![Permission::file("/data/-", FileActions::READ)],
        );
        let vm = Vm::builder().policy(policy).build();
        let app = Arc::new(jmp_security::ProtectionDomain::new(
            CodeSource::local("file:/apps/reader"),
            vm.policy()
                .permissions_for(&CodeSource::local("file:/apps/reader")),
        ));
        let demand = Permission::file("/data/report", FileActions::READ);
        stack::call_as("Reader", app, || {
            for _ in 0..5 {
                vm.access_check(&demand).unwrap();
            }
        });
        let metrics = vm.obs().vm_metrics();
        assert_eq!(metrics.counter("access.cache.misses").get(), 1);
        assert_eq!(metrics.counter("access.cache.hits").get(), 4);
        assert_eq!(metrics.counter("security.checks").get(), 5);
    }

    #[test]
    fn native_call_sites_answer_warm_checks_from_their_inline_cache() {
        use jmp_security::FileActions;
        let mut policy = Policy::new();
        policy.grant_code(
            CodeSource::remote("http://applets/-"),
            vec![Permission::file("/data/-", FileActions::READ)],
        );
        let vm = Vm::builder().policy(policy).build();
        let applet = Arc::new(jmp_security::ProtectionDomain::new(
            CodeSource::remote("http://applets/clock"),
            vm.policy()
                .permissions_for(&CodeSource::remote("http://applets/clock")),
        ));
        let demand = Permission::file("/data/report", FileActions::READ);
        let site = Arc::new(crate::decision_cache::NativeSiteCache::new());
        stack::call_as("Applet", Arc::clone(&applet), || {
            for _ in 0..5 {
                // One guard per call, exactly like the interpreter's
                // CALL_NATIVE dispatch arm.
                let _active = crate::decision_cache::enter_native_site(&site);
                vm.access_check(&demand).unwrap();
            }
            // After the first full walk primed it, the site is warm: the
            // next check through it is answered by the inline compare alone.
            let _active = crate::decision_cache::enter_native_site(&site);
            let (fingerprint, _) = stack::probe_fingerprint();
            assert!(crate::decision_cache::site_check(
                vm.inner.decisions.epoch(),
                fingerprint,
                &demand,
                None,
                vm.obs().demands(),
            ));
        });
        let metrics = vm.obs().vm_metrics();
        assert_eq!(metrics.counter("access.cache.misses").get(), 1);
        assert_eq!(metrics.counter("access.cache.hits").get(), 4);
        // Inline-cache hits keep feeding the always-on demand ledger.
        let rows = vm.obs().demands().rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].granted, 6, "1 walk + 4 warm checks + 1 probe");
        // An epoch bump (policy/manager/resolver change) kills the site's
        // cached grant along with the shared cache.
        vm.inner.decisions.invalidate();
        stack::call_as("Applet", applet, || {
            let _active = crate::decision_cache::enter_native_site(&site);
            let (fingerprint, _) = stack::probe_fingerprint();
            assert!(!crate::decision_cache::site_check(
                vm.inner.decisions.epoch(),
                fingerprint,
                &demand,
                None,
                vm.obs().demands(),
            ));
        });
    }

    #[test]
    fn demand_ledger_records_routes_and_warm_hits() {
        use jmp_security::FileActions;
        let mut policy = Policy::new();
        policy.grant_code(
            CodeSource::local("file:/apps/-"),
            vec![Permission::file("/data/-", FileActions::READ)],
        );
        let vm = Vm::builder().policy(policy).build();
        let app = Arc::new(jmp_security::ProtectionDomain::new(
            CodeSource::local("file:/apps/reader"),
            vm.policy()
                .permissions_for(&CodeSource::local("file:/apps/reader")),
        ));
        let demand = Permission::file("/data/report", FileActions::READ);
        let forbidden = Permission::file("/etc/shadow", FileActions::READ);
        stack::call_as("Reader", Arc::clone(&app), || {
            for _ in 0..5 {
                vm.access_check(&demand).unwrap();
            }
            vm.access_check(&forbidden).unwrap_err();
        });
        let rows = vm.obs().demands().rows();
        let granted = rows
            .iter()
            .find(|r| r.permission.contains("/data/report"))
            .unwrap();
        assert_eq!(granted.source, "file:/apps/reader");
        assert_eq!(granted.granted, 5, "1 full walk + 4 warm bumps");
        assert_eq!(granted.denied, 0);
        assert!(!granted.via_user);
        let denied = rows
            .iter()
            .find(|r| r.permission.contains("/etc/shadow"))
            .unwrap();
        assert_eq!(denied.source, "file:/apps/reader");
        assert_eq!(denied.granted, 0);
        assert_eq!(denied.denied, 1);
        // The `demands.recorded` instrument is derived at export time; a
        // rollup syncs it (the vmstat path).
        assert_eq!(vm.obs().rollup().counters["demands.recorded"], 6);
        assert_eq!(vm.obs().vm_metrics().counter("demands.unique").get(), 2);

        // Reset clears the rows *and* the decision cache, so the next check
        // re-records rather than bumping an orphaned cell.
        vm.reset_demands();
        assert!(vm.obs().demands().rows().is_empty());
        stack::call_as("Reader", app, || {
            vm.access_check(&demand).unwrap();
        });
        let rows = vm.obs().demands().rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].granted, 1);
    }

    #[test]
    fn demand_ledger_routes_user_grants_and_honors_disable() {
        use jmp_security::FileActions;
        let mut policy = Policy::new();
        policy.grant_user(
            "alice",
            vec![Permission::file("/home/alice/-", FileActions::ALL)],
        );
        policy.grant_code(
            CodeSource::local("file:/apps/-"),
            vec![Permission::exercise_user_permissions()],
        );
        let vm = Vm::builder().policy(policy).build();
        vm.set_user_resolver(Arc::new(|| Some("alice".to_string())))
            .unwrap();
        let editor = Arc::new(jmp_security::ProtectionDomain::new(
            CodeSource::local("file:/apps/editor"),
            vm.policy()
                .permissions_for(&CodeSource::local("file:/apps/editor")),
        ));
        let alice_file = Permission::file("/home/alice/notes", FileActions::READ);
        stack::call_as("Editor", Arc::clone(&editor), || {
            vm.access_check(&alice_file).unwrap();
        });
        let rows = vm.obs().demands().rows();
        assert_eq!(rows.len(), 1);
        assert!(rows[0].via_user, "grant went through alice's permissions");
        assert_eq!(rows[0].user.as_deref(), Some("alice"));
        assert_eq!(rows[0].source, "file:/apps/editor");

        // A disabled ledger records nothing — not even on full walks.
        vm.reset_demands();
        vm.obs().demands().set_enabled(false);
        stack::call_as("Editor", editor, || {
            vm.access_check(&alice_file).unwrap();
            vm.access_check(&alice_file).unwrap();
        });
        assert!(vm.obs().demands().rows().is_empty());
        // The pre-reset observation stays in the monotone total; the
        // disabled checks added nothing.
        assert_eq!(vm.obs().demands().recorded(), 1);
        assert_eq!(vm.obs().rollup().counters["demands.recorded"], 1);
    }

    #[test]
    fn policy_reload_invalidates_cached_decisions() {
        use jmp_security::FileActions;
        let grant = |targets: &[&str]| {
            let mut policy = Policy::new();
            for target in targets {
                policy.grant_code(
                    CodeSource::local("file:/apps/-"),
                    vec![Permission::file(*target, FileActions::READ)],
                );
            }
            policy
        };
        let vm = Vm::builder().policy(grant(&["/a"])).build();
        let app = Arc::new(jmp_security::ProtectionDomain::new(
            CodeSource::local("file:/apps/x"),
            vm.policy()
                .permissions_for(&CodeSource::local("file:/apps/x")),
        ));
        let read_a = Permission::file("/a", FileActions::READ);
        let read_b = Permission::file("/b", FileActions::READ);
        stack::call_as("App", Arc::clone(&app), || {
            vm.access_check(&read_a).unwrap();
            vm.access_check(&read_a).unwrap(); // cached
            vm.access_check(&read_b).unwrap_err();
        });
        // Note the domain keeps its *old* permission collection (resolved at
        // definition time, as in the JDK) — the reload is visible through
        // the user/policy walk only for domains re-resolved afterwards. Here
        // we re-resolve to model a freshly defined class.
        vm.set_policy(grant(&["/b"])).unwrap();
        assert_eq!(
            vm.obs()
                .vm_metrics()
                .counter("access.cache.invalidations")
                .get(),
            1
        );
        let app2 = Arc::new(jmp_security::ProtectionDomain::new(
            CodeSource::local("file:/apps/x"),
            vm.policy()
                .permissions_for(&CodeSource::local("file:/apps/x")),
        ));
        stack::call_as("App", app2, || {
            // Revoked grant is denied even though the old decision was
            // cached; new grant is honored.
            vm.access_check(&read_b).unwrap();
            vm.access_check(&read_a).unwrap_err();
        });
    }

    #[test]
    fn flush_access_cache_forces_cold_rechecks() {
        let vm = Vm::new();
        let trusted = Arc::new(jmp_security::ProtectionDomain::new(
            CodeSource::local("file:/sys"),
            [Permission::All].into_iter().collect(),
        ));
        let demand = Permission::runtime("anything");
        stack::call_as("Sys", trusted, || {
            vm.access_check(&demand).unwrap();
            vm.access_check(&demand).unwrap();
            vm.flush_access_cache();
            vm.access_check(&demand).unwrap();
        });
        let metrics = vm.obs().vm_metrics();
        assert_eq!(metrics.counter("access.cache.misses").get(), 2);
        assert_eq!(metrics.counter("access.cache.hits").get(), 1);
        assert_eq!(metrics.counter("access.cache.invalidations").get(), 1);
    }

    #[test]
    fn policy_reload_completes_under_cold_check_pressure() {
        // The writer-starvation regression (satellite of the control-plane
        // scale-out): with the old fair RwLock root, 32 threads spinning on
        // cold checks could queue a reload indefinitely. The epoch cell
        // never queues the publisher behind readers, so 50 back-to-back
        // reloads must complete promptly under full read pressure.
        use jmp_security::FileActions;
        let vm = Vm::new();
        let stop = Arc::new(AtomicBool::new(false));
        let checkers: Vec<_> = (0..32)
            .map(|t| {
                let vm = vm.clone();
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let trusted = Arc::new(jmp_security::ProtectionDomain::new(
                        CodeSource::local("file:/sys"),
                        [Permission::All].into_iter().collect(),
                    ));
                    let mut i = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        // A fresh target every iteration keeps the decision
                        // cache cold, so every check consults the policy
                        // root and the user resolver.
                        let demand =
                            Permission::file(format!("/tmp/spin-{t}/{i}"), FileActions::READ);
                        stack::call_as("Spinner", Arc::clone(&trusted), || {
                            vm.access_check(&demand).unwrap();
                        });
                        i += 1;
                    }
                })
            })
            .collect();
        let started = Instant::now();
        for _ in 0..50 {
            let mut policy = Policy::new();
            policy.grant_user("alice", vec![Permission::runtime("x")]);
            vm.set_policy(policy).unwrap();
        }
        let elapsed = started.elapsed();
        stop.store(true, Ordering::Relaxed);
        for checker in checkers {
            checker.join().unwrap();
        }
        assert!(
            vm.policy().user_implies("alice", &Permission::runtime("x")),
            "the last reload is visible"
        );
        assert!(
            elapsed < Duration::from_secs(10),
            "50 reloads took {elapsed:?} under 32-thread cold-check pressure"
        );
    }

    #[test]
    fn class_definitions_feed_the_obs_hub() {
        let vm = vm_with_class("Observed", |_| Ok(()));
        vm.system_loader().load_class("Observed").unwrap();
        let metrics = vm.obs().vm_metrics();
        assert_eq!(metrics.counter("classes.defined").get(), 1);
        assert_eq!(metrics.counter("classes.reloaded").get(), 0);

        // A child re-defining off its re-load list counts as a reload and
        // the inherited observer still fires (§5.5).
        let child = vm.system_loader().new_child("app-1");
        child.add_reload("Observed");
        child.load_class("Observed").unwrap();
        assert_eq!(metrics.counter("classes.defined").get(), 2);
        assert_eq!(metrics.counter("classes.reloaded").get(), 1);
        let kinds: Vec<_> = vm.obs().sink().recent().iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![EventKind::ClassDefined, EventKind::ClassReloaded]
        );
    }

    #[test]
    fn exit_code_first_writer_wins() {
        let vm = Vm::new();
        vm.exit_unchecked(7);
        vm.exit_unchecked(9);
        assert_eq!(vm.await_termination(), 7);
    }
}
